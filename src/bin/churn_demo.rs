//! Interactive-ish churn demo: drive a protocol through random topology
//! changes and print per-change costs, with optional message tracing.
//!
//! ```text
//! cargo run --bin churn_demo -- [--nodes N] [--changes C] [--seed S]
//!                               [--protocol alg2|direct] [--trace]
//! ```

#![forbid(unsafe_code)]

use dynamic_mis::graph::generators;
use dynamic_mis::graph::stream::{self, ChurnConfig};
use dynamic_mis::protocol::{ConstantBroadcast, TemplateDirect};
use dynamic_mis::sim::{Protocol, SyncNetwork};
use rand::rngs::StdRng;
use rand::SeedableRng;

struct Options {
    nodes: usize,
    changes: usize,
    seed: u64,
    protocol: String,
    trace: bool,
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        nodes: 60,
        changes: 20,
        seed: 1,
        protocol: "alg2".to_string(),
        trace: false,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let take_value = |i: &mut usize| -> Result<String, String> {
            *i += 1;
            args.get(*i)
                .cloned()
                .ok_or_else(|| format!("missing value after {}", args[*i - 1]))
        };
        match args[i].as_str() {
            "--nodes" => opts.nodes = take_value(&mut i)?.parse().map_err(|e| format!("{e}"))?,
            "--changes" => {
                opts.changes = take_value(&mut i)?.parse().map_err(|e| format!("{e}"))?;
            }
            "--seed" => opts.seed = take_value(&mut i)?.parse().map_err(|e| format!("{e}"))?,
            "--protocol" => opts.protocol = take_value(&mut i)?,
            "--trace" => opts.trace = true,
            "--help" | "-h" => {
                return Err("usage: churn_demo [--nodes N] [--changes C] [--seed S] \
                            [--protocol alg2|direct] [--trace]"
                    .to_string())
            }
            other => return Err(format!("unknown argument '{other}' (try --help)")),
        }
        i += 1;
    }
    Ok(opts)
}

fn run<P: Protocol>(proto: P, opts: &Options) {
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let (g, _) = generators::erdos_renyi(opts.nodes, 8.0 / opts.nodes as f64, &mut rng);
    let mut net = SyncNetwork::bootstrap(proto, g, opts.seed);
    if opts.trace {
        net.enable_tracing();
    }
    println!(
        "bootstrapped: {} nodes, {} edges, MIS size {}",
        net.graph().node_count(),
        net.graph().edge_count(),
        net.mis().len()
    );
    println!(
        "{:>4}  {:<24} {:>7} {:>7} {:>7}",
        "#", "change", "adjust", "rounds", "bcasts"
    );
    for step in 0..opts.changes {
        let Some(change) =
            stream::random_change(&net.logical_graph(), &ChurnConfig::default(), &mut rng)
        else {
            continue;
        };
        let change = stream::randomize_distributed(&change, &mut rng);
        let outcome = net.apply_change(&change).expect("valid change");
        println!(
            "{:>4}  {:<24} {:>7} {:>7} {:>7}",
            step + 1,
            change.label(),
            outcome.adjustments(),
            outcome.metrics.rounds,
            outcome.metrics.broadcasts
        );
        if opts.trace {
            for event in net.take_trace() {
                println!("        {event}");
            }
        }
    }
    net.assert_greedy_invariant();
    let m = net.lifetime_metrics();
    println!(
        "\ntotals: {} rounds, {} broadcasts, {} bits — invariant verified ✓",
        m.rounds, m.broadcasts, m.bits
    );
}

fn main() {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    println!(
        "churn demo: n={}, changes={}, seed={}, protocol={}",
        opts.nodes, opts.changes, opts.seed, opts.protocol
    );
    match opts.protocol.as_str() {
        "alg2" => run(ConstantBroadcast, &opts),
        "direct" => run(TemplateDirect, &opts),
        other => {
            eprintln!("unknown protocol '{other}' — expected alg2 or direct");
            std::process::exit(2);
        }
    }
}
