//! Serving demo: replay a flapping churn stream on a writer thread while
//! concurrent readers hammer the epoch-versioned snapshot channel, then
//! print the serving report.
//!
//! ```text
//! cargo run --bin mis_serve -- [--nodes N] [--changes C] [--seed S]
//!                              [--shards K] [--threads T]
//!                              [--watermark W] [--policy SPEC]
//!                              [--readers R] [--probes P]
//!                              [--checkpoint-dir DIR] [--checkpoint-every N]
//! ```
//!
//! `--policy` selects the flush policy by spec string — `depth:N`,
//! `deadline:MS`, `either:N:MS`, or `adaptive` — and overrides
//! `--watermark` (which is shorthand for `depth:W`).
//!
//! `--checkpoint-dir` makes the run durable: every flushed window is
//! appended to `DIR/wal.bin` *before* it is applied, and a full
//! checkpoint image is written to `DIR/checkpoint.bin` every
//! `--checkpoint-every` flushes (default 32). A killed run recovers
//! with `dmis_core::durability::recover` from the same directory.

#![forbid(unsafe_code)]

use std::sync::Arc;
use std::time::Duration;

use dynamic_mis::core::durability::RealIo;
use dynamic_mis::core::FlushPolicy;
use dynamic_mis::graph::{generators, stream, ShardLayout};
use dynamic_mis::sim::RunConfig;
use rand::rngs::StdRng;
use rand::SeedableRng;

struct Options {
    nodes: usize,
    changes: usize,
    seed: u64,
    shards: usize,
    threads: usize,
    policy: FlushPolicy,
    readers: usize,
    probes: usize,
    checkpoint_dir: Option<String>,
    checkpoint_every: usize,
}

/// Parses a `--policy` spec: `depth:N`, `deadline:MS`, `either:N:MS`,
/// or `adaptive`.
fn parse_policy(spec: &str) -> Result<FlushPolicy, String> {
    let parts: Vec<&str> = spec.split(':').collect();
    let num = |s: &str| -> Result<u64, String> {
        s.parse().map_err(|e| format!("bad number '{s}': {e}"))
    };
    match parts.as_slice() {
        ["depth", n] => Ok(FlushPolicy::Depth(num(n)? as usize)),
        ["deadline", ms] => Ok(FlushPolicy::Deadline(Duration::from_millis(num(ms)?))),
        ["either", n, ms] => Ok(FlushPolicy::Either(
            num(n)? as usize,
            Duration::from_millis(num(ms)?),
        )),
        ["adaptive"] => Ok(FlushPolicy::adaptive()),
        _ => Err(format!(
            "unknown policy '{spec}' (expected depth:N, deadline:MS, either:N:MS, or adaptive)"
        )),
    }
}

fn parse_args() -> Result<Options, String> {
    let mut opts = Options {
        nodes: 1024,
        changes: 4096,
        seed: 1,
        shards: 4,
        threads: 2,
        policy: FlushPolicy::Depth(8),
        readers: 2,
        probes: 32,
        checkpoint_dir: None,
        checkpoint_every: 32,
    };
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut i = 0;
    while i < args.len() {
        let take_value = |i: &mut usize| -> Result<String, String> {
            *i += 1;
            args.get(*i)
                .cloned()
                .ok_or_else(|| format!("missing value after {}", args[*i - 1]))
        };
        let parse = |s: String| s.parse().map_err(|e| format!("{e}"));
        match args[i].as_str() {
            "--nodes" => opts.nodes = parse(take_value(&mut i)?)?,
            "--changes" => opts.changes = parse(take_value(&mut i)?)?,
            "--seed" => opts.seed = take_value(&mut i)?.parse().map_err(|e| format!("{e}"))?,
            "--shards" => opts.shards = parse(take_value(&mut i)?)?,
            "--threads" => opts.threads = parse(take_value(&mut i)?)?,
            "--watermark" => opts.policy = FlushPolicy::Depth(parse(take_value(&mut i)?)?),
            "--policy" => opts.policy = parse_policy(&take_value(&mut i)?)?,
            "--readers" => opts.readers = parse(take_value(&mut i)?)?,
            "--probes" => opts.probes = parse(take_value(&mut i)?)?,
            "--checkpoint-dir" => opts.checkpoint_dir = Some(take_value(&mut i)?),
            "--checkpoint-every" => opts.checkpoint_every = parse(take_value(&mut i)?)?,
            "--help" | "-h" => {
                return Err("usage: mis_serve [--nodes N] [--changes C] [--seed S] \
                            [--shards K] [--threads T] [--watermark W] \
                            [--policy depth:N|deadline:MS|either:N:MS|adaptive] \
                            [--readers R] [--probes P] \
                            [--checkpoint-dir DIR] [--checkpoint-every N]"
                    .to_string())
            }
            other => return Err(format!("unknown argument '{other}' (try --help)")),
        }
        i += 1;
    }
    Ok(opts)
}

fn main() {
    let opts = match parse_args() {
        Ok(o) => o,
        Err(msg) => {
            eprintln!("{msg}");
            std::process::exit(2);
        }
    };
    println!(
        "serve demo: n={}, changes={}, seed={}, shards={}, threads={}, \
         policy={:?}, readers={}, probes={}",
        opts.nodes,
        opts.changes,
        opts.seed,
        opts.shards,
        opts.threads,
        opts.policy,
        opts.readers,
        opts.probes
    );
    let mut rng = StdRng::seed_from_u64(opts.seed);
    let (g, _ids) = generators::erdos_renyi(opts.nodes, 8.0 / opts.nodes as f64, &mut rng);
    let pool = stream::random_pair_pool(&g, opts.nodes / 2, &mut rng);
    let churn = stream::flapping_stream(&g, &pool, opts.changes, false, &mut rng);
    println!(
        "bootstrapped: {} nodes, {} edges",
        g.node_count(),
        g.edge_count()
    );
    let mut run = RunConfig::new(g)
        .layout(ShardLayout::striped(opts.shards))
        .threads(opts.threads)
        .policy(opts.policy)
        .seed(opts.seed)
        .readers(opts.readers)
        .probes(opts.probes)
        .serve();
    if let Some(dir) = &opts.checkpoint_dir {
        let io = match RealIo::new(dir) {
            Ok(io) => io,
            Err(e) => {
                eprintln!("cannot open checkpoint dir '{dir}': {e}");
                std::process::exit(1);
            }
        };
        run = match run.with_durability(Arc::new(io), opts.checkpoint_every) {
            Ok(run) => run,
            Err(e) => {
                eprintln!("durability bootstrap failed in '{dir}': {e}");
                std::process::exit(1);
            }
        };
        println!(
            "durable : wal + checkpoint in {dir}, checkpoint every {} flushes",
            opts.checkpoint_every
        );
    }
    let report = match run.run(&churn) {
        Ok(r) => r,
        Err(e) => {
            eprintln!("serve run failed: {e}");
            std::process::exit(1);
        }
    };
    println!(
        "writer : {} flushes, {} changes applied, final epoch {}",
        report.flushes, report.applied, report.final_epoch
    );
    println!(
        "updates: p50 {} ns, p99 {} ns per flush",
        report.update_p50_ns, report.update_p99_ns
    );
    println!(
        "queue  : delay p50 {:?}, p99 {:?} (arrival→flush)",
        report.queue_delay_p50, report.queue_delay_p99
    );
    println!(
        "readers: {} reads, {:.0} reads/s, staleness mean {:.3} max {} epochs",
        report.reads_total, report.reads_per_sec, report.staleness_mean, report.staleness_max
    );
    if report.epoch_regressions != 0 {
        eprintln!(
            "epoch regressions observed: {} — snapshot channel is broken",
            report.epoch_regressions
        );
        std::process::exit(1);
    }
    println!(
        "epochs monotone across all readers ✓ (final MIS size {})",
        run.engine().mis_len()
    );
}
