//! # dynamic-mis
//!
//! Facade crate for the *Optimal Dynamic Distributed MIS* reproduction
//! (Censor-Hillel, Haramaty, Karnin, PODC 2016).
//!
//! Re-exports the workspace crates under stable module names:
//!
//! - [`graph`] — dynamic graph substrate, generators, reductions;
//! - [`core`] — the MIS engine, template simulation, theory checks;
//! - [`sim`] — synchronous/asynchronous distributed simulator;
//! - [`protocol`] — Algorithm 2, the direct template protocol, baselines;
//! - [`cluster`] — correlation clustering (3-approximation);
//! - [`derived`] — maximal matching and (Δ+1)-coloring reductions.
//!
//! See the `examples/` directory for runnable end-to-end scenarios and
//! `DESIGN.md` for the crate layering, the dense node-indexed storage
//! layer, and the experiment index.

#![forbid(unsafe_code)]
#![deny(deprecated)]

pub use dmis_cluster as cluster;
pub use dmis_core as core;
pub use dmis_derived as derived;
pub use dmis_graph as graph;
pub use dmis_protocol as protocol;
pub use dmis_sim as sim;
