//! Integration of the derived structures: matching, coloring (both
//! reductions) and clustering maintained side by side over one shared
//! change stream, with every structural guarantee checked at every step.

use dynamic_mis::cluster::DynamicClustering;
use dynamic_mis::derived::{verify, BlowupColoring, ColoringEngine, DynamicMatching};
use dynamic_mis::graph::{generators, DynGraph, NodeId, TopologyChange};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// One stream of edge changes drives four structures simultaneously.
#[test]
fn all_structures_survive_one_shared_edge_stream() {
    let mut rng = StdRng::seed_from_u64(42);
    let (g, _) = generators::cycle(12);
    // Degree cap 4 for the blow-up (palette 5).
    let mut matching = DynamicMatching::new(g.clone(), 1);
    let mut coloring = ColoringEngine::from_graph(g.clone(), 2);
    let mut blowup = BlowupColoring::new(g.clone(), 5, 3);
    let mut clustering = DynamicClustering::new(g.clone(), 4);
    let mut shadow = g;

    for _ in 0..120 {
        let insert = rng.random_bool(0.5);
        let change = if insert {
            let Some((u, v)) = generators::random_non_edge(&shadow, &mut rng) else {
                continue;
            };
            if shadow.degree(u).unwrap() >= 4 || shadow.degree(v).unwrap() >= 4 {
                continue; // respect the blow-up degree cap
            }
            TopologyChange::InsertEdge(u, v)
        } else {
            let Some((u, v)) = generators::random_edge(&shadow, &mut rng) else {
                continue;
            };
            TopologyChange::DeleteEdge(u, v)
        };
        change.apply(&mut shadow).expect("valid");
        match &change {
            TopologyChange::InsertEdge(u, v) => {
                matching.insert_edge(*u, *v).expect("valid");
                coloring.insert_edge(*u, *v).expect("valid");
                blowup.insert_edge(*u, *v).expect("valid");
            }
            TopologyChange::DeleteEdge(u, v) => {
                matching.remove_edge(*u, *v).expect("valid");
                coloring.remove_edge(*u, *v).expect("valid");
                blowup.remove_edge(*u, *v).expect("valid");
            }
            _ => unreachable!(),
        }
        clustering.apply(&change).expect("valid");

        assert!(verify::is_maximal_matching(
            matching.base_graph(),
            &matching.matching()
        ));
        assert!(verify::is_proper_coloring(
            coloring.graph(),
            &coloring.colors()
        ));
        assert!(verify::is_proper_coloring(
            blowup.base_graph(),
            &blowup.colors()
        ));
        clustering.assert_consistent();
    }
}

/// The two coloring routes (greedy-by-π and clique blow-up) both stay
/// within the Δ+1 palette on the same graphs.
#[test]
fn both_coloring_routes_respect_palette() {
    for seed in 0..5u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let (g, _) = generators::erdos_renyi(12, 0.25, &mut rng);
        let delta = g.max_degree();
        let greedy = ColoringEngine::from_graph(g.clone(), seed);
        assert!(greedy.palette_size() <= delta + 1);
        let blowup = BlowupColoring::new(g.clone(), delta + 1, seed);
        let colors = blowup.colors();
        assert!(verify::is_proper_coloring(&g, &colors));
        assert!(verify::palette_size(&colors) <= delta + 1);
    }
}

/// Matching under node churn on bipartite graphs — the dispatch scenario.
#[test]
fn matching_under_bipartite_node_churn() {
    let mut rng = StdRng::seed_from_u64(6);
    let (g, _, right) = generators::random_bipartite(8, 8, 0.3, &mut rng);
    let mut dm = DynamicMatching::new(g, 7);
    for _ in 0..40 {
        // A right-side node leaves; a fresh one joins with random links.
        if let Some(&victim) = right.iter().find(|v| dm.base_graph().has_node(**v)) {
            dm.remove_node(victim).expect("valid");
        }
        let targets: Vec<NodeId> = dm
            .base_graph()
            .nodes()
            .filter(|_| rng.random_bool(0.25))
            .collect();
        dm.insert_node(targets).expect("valid");
        dm.assert_consistent();
    }
}

/// Clustering cost tracks the graph: on disjoint cliques it is always 0.
#[test]
fn clustering_is_exact_on_clique_unions() {
    for seed in 0..10u64 {
        let (mut g, ids) = DynGraph::with_nodes(9);
        for chunk in ids.chunks(3) {
            for i in 0..chunk.len() {
                for j in (i + 1)..chunk.len() {
                    g.insert_edge(chunk[i], chunk[j]).expect("fresh");
                }
            }
        }
        let dc = DynamicClustering::new(g, seed);
        assert_eq!(dc.cost(), 0, "pivot clustering is exact on clique unions");
        assert_eq!(dc.clustering().clusters().len(), 3);
    }
}

/// Matching receipts bound the change in matched edges.
#[test]
fn matching_changes_are_bounded_by_receipts() {
    let mut rng = StdRng::seed_from_u64(11);
    let (g, _) = generators::erdos_renyi(12, 0.3, &mut rng);
    let mut dm = DynamicMatching::new(g, 13);
    for _ in 0..60 {
        let before = dm.matching();
        if rng.random_bool(0.5) {
            if let Some((u, v)) = generators::random_non_edge(dm.base_graph(), &mut rng) {
                let receipt = dm.insert_edge(u, v).expect("valid");
                let after = dm.matching();
                let diff = before.symmetric_difference(&after).count();
                // The new line node may join silently (flip count covers
                // surviving flips; the inserted edge appears via its own
                // receipt flip).
                assert!(diff <= receipt.adjustments() + 1);
            }
        } else if let Some((u, v)) = generators::random_edge(dm.base_graph(), &mut rng) {
            let receipt = dm.remove_edge(u, v).expect("valid");
            let after = dm.matching();
            let diff = before.symmetric_difference(&after).count();
            assert!(diff <= receipt.adjustments() + 1);
        }
    }
}

/// Differential test: the native edge-level matching engine and the
/// line-graph-reduction matching draw identical key sequences from equal
/// seeds, so their matchings must be *identical* (not just both maximal)
/// through arbitrary edge churn.
#[test]
fn native_and_reduction_matchings_are_identical() {
    use dynamic_mis::derived::NativeMatching;
    for seed in 0..6u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let (g, _) = generators::erdos_renyi(14, 0.25, &mut rng);
        let mut reduction = DynamicMatching::new(g.clone(), seed);
        let mut native = NativeMatching::new(g, seed);
        assert_eq!(reduction.matching(), native.matching(), "initial state");
        for _ in 0..120 {
            if rng.random_bool(0.5) {
                if let Some((u, v)) = generators::random_non_edge(reduction.base_graph(), &mut rng)
                {
                    reduction.insert_edge(u, v).expect("valid");
                    native.insert_edge(u, v).expect("valid");
                }
            } else if let Some((u, v)) = generators::random_edge(reduction.base_graph(), &mut rng) {
                reduction.remove_edge(u, v).expect("valid");
                native.remove_edge(u, v).expect("valid");
            }
            assert_eq!(
                reduction.matching(),
                native.matching(),
                "implementations diverged (seed {seed})"
            );
        }
        reduction.assert_consistent();
        native.assert_consistent();
    }
}
