//! Integration tests for the history-independence property (Section 5,
//! Definition 14) across the whole stack, including the composed
//! structures (clustering, matching, coloring).

use std::collections::BTreeMap;

use dynamic_mis::cluster::from_mis;
use dynamic_mis::core::{static_greedy, DynamicMis};
use dynamic_mis::graph::stream::{self, ChurnConfig};
use dynamic_mis::graph::{generators, DynGraph, NodeId, TopologyChange};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// At fixed priorities, the dynamic output is a *function* of the current
/// graph: replaying any change sequence that ends at the same graph gives
/// the same MIS.
#[test]
fn output_is_a_function_of_graph_and_priorities() {
    let mut rng = StdRng::seed_from_u64(1);
    let (g0, _) = generators::erdos_renyi(12, 0.3, &mut rng);
    // Wander around and come back: apply a change and its inverse.
    let mut engine = dynamic_mis::core::Engine::builder()
        .graph(g0.clone())
        .seed(9)
        .build_unsharded();
    let baseline = engine.mis();
    for _ in 0..30 {
        let Some(change) =
            stream::random_change(engine.graph(), &ChurnConfig::edges_only(), &mut rng)
        else {
            continue;
        };
        let inverse = match &change {
            TopologyChange::InsertEdge(u, v) => TopologyChange::DeleteEdge(*u, *v),
            TopologyChange::DeleteEdge(u, v) => TopologyChange::InsertEdge(*u, *v),
            _ => unreachable!("edges-only churn"),
        };
        engine.apply(&change).expect("valid");
        engine.apply(&inverse).expect("valid");
        assert_eq!(engine.graph(), &g0);
        assert_eq!(engine.mis(), baseline, "detour changed the output");
    }
}

/// The output *distribution* over seeds is history independent: building a
/// graph edge-by-edge in two different orders yields the same empirical
/// MIS distribution (up to sampling noise).
#[test]
fn distribution_is_history_independent() {
    let trials = 4000;
    let (target, ids) = generators::cycle(6);
    let edges: Vec<(NodeId, NodeId)> = target.edges().map(|k| k.endpoints()).collect();

    let sample = |edge_order: &[(NodeId, NodeId)], tag: u64| -> BTreeMap<u64, usize> {
        let mut dist = BTreeMap::new();
        for t in 0..trials {
            let mut engine = dynamic_mis::core::Engine::builder()
                .seed(tag * 1_000_000 + t)
                .build_unsharded();
            for i in 0..6u64 {
                engine
                    .apply(&TopologyChange::InsertNode {
                        id: NodeId(i),
                        edges: vec![],
                    })
                    .expect("valid");
            }
            for &(u, v) in edge_order {
                engine.insert_edge(u, v).expect("valid");
            }
            let mask: u64 = engine.mis().iter().map(|v| 1 << v.index()).sum();
            *dist.entry(mask).or_insert(0) += 1;
        }
        dist
    };

    let forward = sample(&edges, 1);
    let mut reversed = edges.clone();
    reversed.reverse();
    let backward = sample(&reversed, 2);
    let tv = total_variation(&forward, &backward);
    assert!(
        tv < 0.06,
        "TV distance {tv} too large for same-graph histories"
    );
    let _ = ids;
}

/// Composition: the clustering inherits history independence — at equal
/// priorities it is a function of the graph alone.
#[test]
fn clustering_composes_history_independence() {
    let mut rng = StdRng::seed_from_u64(3);
    let (g, _) = generators::erdos_renyi(14, 0.25, &mut rng);
    let mut engine = dynamic_mis::core::Engine::builder()
        .graph(g.clone())
        .seed(77)
        .build_unsharded();
    // Detour: delete a node's edges and reinsert them.
    let v = generators::random_node(&g, &mut rng).expect("non-empty");
    let nbrs: Vec<NodeId> = g.neighbors(v).expect("live").collect();
    for &u in &nbrs {
        engine.remove_edge(v, u).expect("valid");
    }
    for &u in &nbrs {
        engine.insert_edge(v, u).expect("valid");
    }
    assert_eq!(engine.graph(), &g);
    let direct = dynamic_mis::core::Engine::builder()
        .graph(g.clone())
        .priorities(engine.priorities().clone())
        .seed(0)
        .build_unsharded();
    assert_eq!(engine.mis(), direct.mis());
    let c1 = from_mis(
        engine.graph(),
        engine.priorities(),
        &engine.mis_iter().collect(),
    );
    let c2 = from_mis(
        direct.graph(),
        direct.priorities(),
        &direct.mis_iter().collect(),
    );
    assert_eq!(c1, c2, "clustering must not remember the detour");
}

/// The adversary cannot bias the star: even after building it leaf by leaf
/// (the worst history for a natural greedy), the expected MIS stays Θ(n).
#[test]
fn star_output_cannot_be_biased() {
    let n = 32;
    let trials = 600;
    let mut linear = 0usize;
    for t in 0..trials {
        let mut engine = dynamic_mis::core::Engine::builder()
            .seed(t)
            .build_unsharded();
        for change in stream::adversarial_star_stream(n) {
            engine.apply(&change).expect("valid");
        }
        if engine.mis().len() == n - 1 {
            linear += 1;
        } else {
            assert_eq!(engine.mis().len(), 1, "star MIS is center xor leaves");
        }
    }
    let frac = linear as f64 / trials as f64;
    // P[all leaves] = 1 - 1/n = 0.969…
    assert!(
        frac > 0.9,
        "all-leaves MIS should dominate, got fraction {frac}"
    );
}

fn total_variation(a: &BTreeMap<u64, usize>, b: &BTreeMap<u64, usize>) -> f64 {
    let na: f64 = a.values().map(|&c| c as f64).sum();
    let nb: f64 = b.values().map(|&c| c as f64).sum();
    let keys: std::collections::BTreeSet<&u64> = a.keys().chain(b.keys()).collect();
    keys.into_iter()
        .map(|k| {
            let pa = a.get(k).map_or(0.0, |&c| c as f64) / na;
            let pb = b.get(k).map_or(0.0, |&c| c as f64) / nb;
            (pa - pb).abs()
        })
        .sum::<f64>()
        / 2.0
}

/// Static greedy is the ground truth everywhere: a long-lived mixed churn
/// never lets the engine drift.
#[test]
fn long_lived_equivalence_with_static_greedy() {
    let mut rng = StdRng::seed_from_u64(8);
    let mut engine = dynamic_mis::core::Engine::builder()
        .seed(123)
        .build_unsharded();
    // Grow from empty, then churn.
    let mut graph_steps = 0;
    while graph_steps < 400 {
        let Some(change) = stream::random_change(
            engine.graph(),
            &ChurnConfig {
                edge_insert: 0.35,
                edge_delete: 0.25,
                node_insert: 0.25,
                node_delete: 0.15,
                max_new_degree: 4,
            },
            &mut rng,
        ) else {
            // Empty graph with no applicable change: seed a node.
            let id = engine.graph().peek_next_id();
            engine
                .apply(&TopologyChange::InsertNode { id, edges: vec![] })
                .expect("valid");
            graph_steps += 1;
            continue;
        };
        engine.apply(&change).expect("valid");
        graph_steps += 1;
        if graph_steps % 40 == 0 {
            let truth = static_greedy::greedy_mis(engine.graph(), engine.priorities());
            assert_eq!(engine.mis(), truth);
        }
    }
    assert!(engine.graph().node_count() > 0 || DynGraph::new().is_empty());
}
