//! Cross-crate integration: the sequential engine, the faithful template,
//! and both distributed protocols must agree on the maintained MIS when
//! they share the same random order π — across all seven distributed
//! change types.

use std::collections::BTreeSet;

use dynamic_mis::core::{static_greedy, DynamicMis, PriorityMap};
use dynamic_mis::graph::stream::{self, ChurnConfig};
use dynamic_mis::graph::{generators, DistributedChange, NodeId};
use dynamic_mis::protocol::{ConstantBroadcast, TemplateDirect};
use dynamic_mis::sim::{Protocol, SyncNetwork};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Drives a network through a mixed change stream, checking the greedy
/// invariant and comparing against a from-scratch greedy computation with
/// the network's own priorities after every step.
fn drive<P: Protocol + Copy>(proto: P, seed: u64, steps: usize) {
    let mut rng = StdRng::seed_from_u64(seed);
    let (g, _) = generators::erdos_renyi(18, 0.22, &mut rng);
    let mut net = SyncNetwork::bootstrap(proto, g, seed ^ 0xABC);
    for _ in 0..steps {
        let Some(change) =
            stream::random_change(&net.logical_graph(), &ChurnConfig::default(), &mut rng)
        else {
            continue;
        };
        let change = stream::randomize_distributed(&change, &mut rng);
        net.apply_change(&change).expect("valid change");
        net.assert_greedy_invariant();
        let expected = static_greedy::greedy_mis(&net.logical_graph(), net.priorities());
        assert_eq!(net.mis(), expected, "output diverged after {change}");
    }
}

#[test]
fn constant_broadcast_tracks_greedy_through_mixed_churn() {
    for seed in 0..6 {
        drive(ConstantBroadcast, seed, 60);
    }
}

#[test]
fn template_direct_tracks_greedy_through_mixed_churn() {
    for seed in 0..6 {
        drive(TemplateDirect, seed, 60);
    }
}

#[test]
fn both_protocols_and_engine_agree_at_equal_priorities() {
    let mut rng = StdRng::seed_from_u64(5);
    let (g, ids) = generators::erdos_renyi(14, 0.3, &mut rng);
    let mut order = ids;
    use rand::seq::SliceRandom;
    order.shuffle(&mut rng);
    let pm = PriorityMap::from_order(&order);
    let mut cb =
        SyncNetwork::bootstrap_with_priorities(ConstantBroadcast, g.clone(), pm.clone(), 0);
    let mut td = SyncNetwork::bootstrap_with_priorities(TemplateDirect, g.clone(), pm.clone(), 0);
    let mut engine = dynamic_mis::core::Engine::builder()
        .graph(g)
        .priorities(pm)
        .seed(0)
        .build_unsharded();
    assert_eq!(cb.mis(), engine.mis());
    assert_eq!(td.mis(), engine.mis());
    // A sequence of edge changes applied to all three.
    for _ in 0..40 {
        let change = {
            let g = engine.graph();
            if g.edge_count() > 0 && rand::Rng::random_bool(&mut rng, 0.5) {
                let (u, v) = generators::random_edge(g, &mut rng).expect("edges exist");
                (u, v, false)
            } else if let Some((u, v)) = generators::random_non_edge(g, &mut rng) {
                (u, v, true)
            } else {
                continue;
            }
        };
        let (u, v, insert) = change;
        if insert {
            engine.insert_edge(u, v).expect("valid");
            cb.apply_change(&DistributedChange::InsertEdge(u, v))
                .expect("valid");
            td.apply_change(&DistributedChange::InsertEdge(u, v))
                .expect("valid");
        } else {
            engine.remove_edge(u, v).expect("valid");
            cb.apply_change(&DistributedChange::AbruptDeleteEdge(u, v))
                .expect("valid");
            td.apply_change(&DistributedChange::GracefulDeleteEdge(u, v))
                .expect("valid");
        }
        assert_eq!(cb.mis(), engine.mis(), "algorithm 2 diverged");
        assert_eq!(td.mis(), engine.mis(), "direct template diverged");
    }
}

#[test]
fn unmuting_equals_insertion_in_output() {
    // The output after an unmute must equal the output after inserting the
    // same node with the same priority — only communication differs.
    for seed in 0..10u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let (g, ids) = generators::erdos_renyi(12, 0.3, &mut rng);
        let attach: Vec<NodeId> = ids.iter().copied().take(4).collect();
        let mut a = SyncNetwork::bootstrap(ConstantBroadcast, g.clone(), seed);
        let mut b = SyncNetwork::bootstrap(ConstantBroadcast, g, seed);
        let fresh_a = a.graph().peek_next_id();
        let fresh_b = b.graph().peek_next_id();
        a.apply_change(&DistributedChange::InsertNode {
            id: fresh_a,
            edges: attach.clone(),
        })
        .expect("valid");
        b.apply_change(&DistributedChange::UnmuteNode {
            id: fresh_b,
            edges: attach,
        })
        .expect("valid");
        // Same bootstrap seed → same π for old nodes; the newcomer draws
        // from the same network RNG stream in both cases.
        assert_eq!(a.mis(), b.mis());
    }
}

#[test]
fn graceful_and_abrupt_deletion_agree_on_final_output() {
    for seed in 0..10u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let (g, _) = generators::erdos_renyi(14, 0.3, &mut rng);
        let victim = generators::random_node(&g, &mut rng).expect("non-empty");
        let mut a = SyncNetwork::bootstrap(ConstantBroadcast, g.clone(), seed);
        let mut b = SyncNetwork::bootstrap(ConstantBroadcast, g, seed);
        a.apply_change(&DistributedChange::GracefulDeleteNode(victim))
            .expect("valid");
        b.apply_change(&DistributedChange::AbruptDeleteNode(victim))
            .expect("valid");
        assert_eq!(a.mis(), b.mis(), "deletion variants must agree");
        a.assert_greedy_invariant();
        b.assert_greedy_invariant();
    }
}

#[test]
fn adjustments_equal_template_prediction() {
    // The distributed adjustment set equals the symmetric difference of
    // greedy MIS outputs, which the sequential receipt also reports.
    let mut rng = StdRng::seed_from_u64(77);
    let (g, _) = generators::erdos_renyi(16, 0.25, &mut rng);
    let mut net = SyncNetwork::bootstrap(ConstantBroadcast, g, 3);
    for _ in 0..50 {
        let logical = net.logical_graph();
        let Some((u, v)) = generators::random_edge(&logical, &mut rng) else {
            continue;
        };
        let before: BTreeSet<NodeId> = net.mis();
        let outcome = net
            .apply_change(&DistributedChange::AbruptDeleteEdge(u, v))
            .expect("valid");
        let after = net.mis();
        let diff: BTreeSet<NodeId> = before.symmetric_difference(&after).copied().collect();
        assert_eq!(diff, outcome.adjusted);
        // Reinsert to keep the graph stationary.
        net.apply_change(&DistributedChange::InsertEdge(u, v))
            .expect("valid");
    }
}

#[test]
fn batched_failures_recover_with_both_protocols() {
    // Multiple simultaneous failures (open question 1): crash several
    // nodes and cut several edges at once; both protocols must converge
    // to the greedy MIS of the resulting graph.
    for seed in 0..8u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let (g, ids) = generators::erdos_renyi(16, 0.3, &mut rng);
        let mut batch = Vec::new();
        for &v in ids.iter().take(2) {
            batch.push(DistributedChange::AbruptDeleteNode(v));
        }
        if let Some((u, v)) = generators::random_edge(&g, &mut rng) {
            if !batch
                .iter()
                .any(|c| matches!(c, DistributedChange::AbruptDeleteNode(x) if *x == u || *x == v))
            {
                batch.push(DistributedChange::AbruptDeleteEdge(u, v));
            }
        }
        let mut cb = SyncNetwork::bootstrap(ConstantBroadcast, g.clone(), seed);
        let mut td = SyncNetwork::bootstrap(TemplateDirect, g, seed);
        cb.apply_batch(&batch).expect("valid batch");
        td.apply_batch(&batch).expect("valid batch");
        cb.assert_greedy_invariant();
        td.assert_greedy_invariant();
    }
}

#[test]
fn batched_mixed_changes_through_engine_and_network_agree() {
    let mut rng = StdRng::seed_from_u64(17);
    let (g, _) = generators::erdos_renyi(14, 0.3, &mut rng);
    let mut net = SyncNetwork::bootstrap(ConstantBroadcast, g.clone(), 11);
    let mut engine = dynamic_mis::core::Engine::builder()
        .graph(g)
        .priorities(net.priorities().clone())
        .seed(0)
        .build_unsharded();
    // A batch of edge cuts.
    let edges: Vec<(NodeId, NodeId)> = engine
        .graph()
        .edges()
        .take(3)
        .map(|k| k.endpoints())
        .collect();
    let net_batch: Vec<DistributedChange> = edges
        .iter()
        .map(|&(u, v)| DistributedChange::AbruptDeleteEdge(u, v))
        .collect();
    let engine_batch: Vec<dynamic_mis::graph::TopologyChange> = edges
        .iter()
        .map(|&(u, v)| dynamic_mis::graph::TopologyChange::DeleteEdge(u, v))
        .collect();
    net.apply_batch(&net_batch).expect("valid");
    engine.apply_batch(&engine_batch).expect("valid");
    assert_eq!(net.mis(), engine.mis());
}

#[test]
fn tracing_captures_algorithm2_state_machine() {
    // The trace facility exposes the full M̄→C→R→M walk of Algorithm 2.
    let (g, ids) = generators::path(2);
    let pm = PriorityMap::from_order(&ids);
    let mut net = SyncNetwork::bootstrap_with_priorities(ConstantBroadcast, g, pm, 0);
    net.enable_tracing();
    net.apply_change(&DistributedChange::AbruptDeleteEdge(ids[0], ids[1]))
        .expect("valid");
    let trace: Vec<String> = net.take_trace().iter().map(|e| e.message.clone()).collect();
    assert_eq!(trace, vec!["ToC", "ToR", "Commit(In)"], "C → R → M walk");
}
