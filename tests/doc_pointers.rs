//! Doc-rot guard: every file path cited in the repo's prose docs must
//! still exist.
//!
//! Scans backtick spans in `DESIGN.md`, `vendor/README.md`, and
//! `README.md` for path-shaped tokens (contain a `/` or end in a known
//! source/doc extension) and asserts each resolves relative to the repo
//! root. Rust paths (`a::b`), flags (`--test`), and env vars (`$VAR`)
//! are out of scope by construction.

use std::path::Path;

const DOCS: [&str; 3] = ["DESIGN.md", "vendor/README.md", "README.md"];
const EXTENSIONS: [&str; 7] = ["rs", "md", "toml", "json", "sh", "yml", "lock"];

/// A token that claims to be a repo file path.
fn path_like(token: &str) -> bool {
    if token.is_empty() || token.starts_with('-') || token.starts_with('$') {
        return false;
    }
    if !token
        .chars()
        .all(|c| c.is_ascii_alphanumeric() || matches!(c, '_' | '.' | '/' | '-'))
    {
        return false;
    }
    let has_known_ext = Path::new(token)
        .extension()
        .is_some_and(|e| EXTENSIONS.iter().any(|&x| e == x));
    // Extension-less slash tokens must be all-lowercase paths: this keeps
    // directories (`crates/graph`) and drops type alternations written
    // with a slash (`NodeMap/NodeSet`).
    let lowercase_path = token.contains('/') && !token.chars().any(|c| c.is_ascii_uppercase());
    has_known_ext || lowercase_path
}

/// The Scale-tier section of `DESIGN.md` cites Rust items by name — a
/// rename there would silently strand the prose, since item names are
/// not path-shaped and escape [`cited_file_paths_resolve`]. Each cited
/// item must still be declared in the source file the section points
/// at, and must still be mentioned by the doc.
#[test]
fn cited_scale_tier_items_exist() {
    const ITEMS: [(&str, &str, &str); 8] = [
        (
            "crates/graph/src/generators.rs",
            "pub fn chung_lu",
            "chung_lu",
        ),
        (
            "crates/graph/src/stream.rs",
            "pub fn power_law_churn",
            "power_law_churn",
        ),
        (
            "crates/graph/src/stream.rs",
            "pub fn community_churn",
            "community_churn",
        ),
        (
            "crates/graph/src/stream.rs",
            "pub fn sliding_window_stream",
            "sliding_window_stream",
        ),
        (
            "crates/core/src/rank.rs",
            "pub fn maybe_compact",
            "maybe_compact",
        ),
        (
            "crates/core/src/invariant.rs",
            "pub fn check_mis_invariant_sampled",
            "check_mis_invariant_sampled",
        ),
        ("crates/bench/src/families.rs", "ChungLu", "Family::ChungLu"),
        (
            "crates/core/src/engine.rs",
            "pub fn storage_regrows",
            "storage_regrows",
        ),
    ];
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let design = std::fs::read_to_string(root.join("DESIGN.md")).expect("DESIGN.md readable");
    for (file, declaration, citation) in ITEMS {
        let source = std::fs::read_to_string(root.join(file))
            .unwrap_or_else(|e| panic!("cannot read {file}: {e}"));
        assert!(
            source.contains(declaration),
            "{file} no longer declares `{declaration}` — update DESIGN.md"
        );
        assert!(
            design.contains(citation),
            "DESIGN.md dropped its `{citation}` citation — update this table"
        );
    }
}

/// Same guard for the Snapshot-read-path section: its cited items must
/// still be declared where the prose points, and the prose must still
/// mention them.
#[test]
fn cited_snapshot_tier_items_exist() {
    const ITEMS: [(&str, &str, &str); 6] = [
        (
            "crates/core/src/snapshot.rs",
            "pub struct MisReader",
            "MisReader",
        ),
        (
            "crates/core/src/snapshot.rs",
            "pub fn rank_compactions",
            "rank_compactions",
        ),
        (
            "crates/core/src/rank.rs",
            "pub fn compactions",
            "RankIndex::compactions",
        ),
        (
            "crates/core/src/api.rs",
            "pub fn build_with_reader",
            "build_with_reader",
        ),
        ("crates/sim/src/serve.rs", "pub struct ServeRun", "ServeRun"),
        (
            "tools/bench_gate.sh",
            "BENCH_GATE_SERVE_MAX_OVERHEAD",
            "BENCH_GATE_SERVE_MAX_OVERHEAD",
        ),
    ];
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let design = std::fs::read_to_string(root.join("DESIGN.md")).expect("DESIGN.md readable");
    for (file, declaration, citation) in ITEMS {
        let source = std::fs::read_to_string(root.join(file))
            .unwrap_or_else(|e| panic!("cannot read {file}: {e}"));
        assert!(
            source.contains(declaration),
            "{file} no longer declares `{declaration}` — update DESIGN.md"
        );
        assert!(
            design.contains(citation),
            "DESIGN.md dropped its `{citation}` citation — update this table"
        );
    }
}

/// Same guard for the Adaptive-ingest section: its cited items must
/// still be declared where the prose points, and the prose must still
/// mention them.
#[test]
fn cited_adaptive_ingest_items_exist() {
    const ITEMS: [(&str, &str, &str); 8] = [
        (
            "crates/core/src/policy.rs",
            "pub enum FlushPolicy",
            "FlushPolicy",
        ),
        (
            "crates/core/src/policy.rs",
            "pub struct ManualClock",
            "ManualClock",
        ),
        (
            "crates/core/src/policy.rs",
            "pub struct QueueDelay",
            "QueueDelay",
        ),
        (
            "crates/core/src/api.rs",
            "pub fn build_with_session",
            "build_with_session",
        ),
        (
            "crates/graph/src/stream.rs",
            "pub fn fresh_pair_stream",
            "fresh_pair_stream",
        ),
        (
            "crates/graph/src/stream.rs",
            "pub fn barrier_churn",
            "barrier_churn",
        ),
        (
            "crates/sim/src/config.rs",
            "pub struct RunConfig",
            "RunConfig",
        ),
        (
            "tools/bench_gate.sh",
            "BENCH_GATE_INGEST_P99_MAX_DELAY",
            "BENCH_GATE_INGEST_P99_MAX_DELAY",
        ),
    ];
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let design = std::fs::read_to_string(root.join("DESIGN.md")).expect("DESIGN.md readable");
    for (file, declaration, citation) in ITEMS {
        let source = std::fs::read_to_string(root.join(file))
            .unwrap_or_else(|e| panic!("cannot read {file}: {e}"));
        assert!(
            source.contains(declaration),
            "{file} no longer declares `{declaration}` — update DESIGN.md"
        );
        assert!(
            design.contains(citation),
            "DESIGN.md dropped its `{citation}` citation — update this table"
        );
    }
}

/// Same guard for the Durability-&-repair section: its cited items must
/// still be declared where the prose points, and the prose must still
/// mention them.
#[test]
fn cited_durability_items_exist() {
    const ITEMS: [(&str, &str, &str); 8] = [
        (
            "crates/core/src/durability/checkpoint.rs",
            "pub struct Checkpoint",
            "Checkpoint::restore",
        ),
        (
            "crates/core/src/durability/wal.rs",
            "pub struct WriteAheadLog",
            "scan-and-truncate",
        ),
        (
            "crates/core/src/durability/io.rs",
            "pub trait StorageIo",
            "StorageIo",
        ),
        (
            "crates/core/src/durability/io.rs",
            "pub struct FaultIo",
            "FaultIo",
        ),
        (
            "crates/core/src/api.rs",
            "pub fn set_wal_sink",
            "IngestSession::flush",
        ),
        (
            "crates/core/src/engine.rs",
            "pub fn verify_and_repair",
            "verify_and_repair",
        ),
        (
            "crates/sim/src/drill.rs",
            "pub fn crash_restart_drill",
            "crash_restart_drill",
        ),
        (
            "tools/bench_gate.sh",
            "BENCH_GATE_RECOVERY_MAX_REPLAY_RATIO",
            "BENCH_GATE_RECOVERY_MAX_REPLAY_RATIO",
        ),
    ];
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let design = std::fs::read_to_string(root.join("DESIGN.md")).expect("DESIGN.md readable");
    for (file, declaration, citation) in ITEMS {
        let source = std::fs::read_to_string(root.join(file))
            .unwrap_or_else(|e| panic!("cannot read {file}: {e}"));
        assert!(
            source.contains(declaration),
            "{file} no longer declares `{declaration}` — update DESIGN.md"
        );
        assert!(
            design.contains(citation),
            "DESIGN.md dropped its `{citation}` citation — update this table"
        );
    }
}

/// Same guard for the Static-contracts section: its cited items must
/// still be declared where the prose points, and the prose must still
/// mention them.
#[test]
fn cited_lint_items_exist() {
    const ITEMS: [(&str, &str, &str); 8] = [
        (
            "crates/lint/src/lexer.rs",
            "pub fn lex",
            "nested block comments",
        ),
        (
            "crates/lint/src/rules.rs",
            "pub const NO_ORDERED_MAP",
            "no-ordered-map-hot-path",
        ),
        (
            "crates/lint/src/rules.rs",
            "pub const NO_AMBIENT_TIME",
            "no-ambient-time",
        ),
        (
            "crates/lint/src/rules.rs",
            "pub const FORBID_UNSAFE",
            "forbid-unsafe-everywhere",
        ),
        (
            "crates/lint/src/engine.rs",
            "pub fn test_mask",
            "cfg_attr(test,",
        ),
        ("crates/lint/src/waiver.rs", "pub fn parse", "waiver rot"),
        (
            "crates/lint/src/main.rs",
            "\"--explain\"",
            "--explain <rule>",
        ),
        ("tools/lint_waivers.toml", "[ratchet]", "[ratchet]"),
    ];
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let design = std::fs::read_to_string(root.join("DESIGN.md")).expect("DESIGN.md readable");
    for (file, declaration, citation) in ITEMS {
        let source = std::fs::read_to_string(root.join(file))
            .unwrap_or_else(|e| panic!("cannot read {file}: {e}"));
        assert!(
            source.contains(declaration),
            "{file} no longer declares `{declaration}` — update DESIGN.md"
        );
        assert!(
            design.contains(citation),
            "DESIGN.md dropped its `{citation}` citation — update this table"
        );
    }
}

#[test]
fn cited_file_paths_resolve() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut missing = Vec::new();
    let mut checked = 0usize;
    for doc in DOCS {
        let text = std::fs::read_to_string(root.join(doc))
            .unwrap_or_else(|e| panic!("cannot read {doc}: {e}"));
        // Odd-indexed segments of a backtick split are inside spans;
        // fenced code blocks (``` pairs) land on even indexes and are
        // deliberately skipped — command lines are not path citations.
        for span in text.split('`').skip(1).step_by(2) {
            for raw in span.split_whitespace() {
                let token = raw.trim_end_matches([',', ';', ':', ')', '.']);
                if !path_like(token) {
                    continue;
                }
                checked += 1;
                if !root.join(token).exists() {
                    missing.push(format!("{doc} cites `{token}`"));
                }
            }
        }
    }
    assert!(
        missing.is_empty(),
        "dangling doc pointers:\n{}",
        missing.join("\n")
    );
    assert!(checked >= 10, "scanner went blind: only {checked} tokens");
}
