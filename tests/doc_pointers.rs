//! Doc-rot guard: every file path cited in the repo's prose docs must
//! still exist.
//!
//! Scans backtick spans in `DESIGN.md`, `vendor/README.md`, and
//! `README.md` for path-shaped tokens (contain a `/` or end in a known
//! source/doc extension) and asserts each resolves relative to the repo
//! root. Rust paths (`a::b`), flags (`--test`), and env vars (`$VAR`)
//! are out of scope by construction.

use std::path::Path;

const DOCS: [&str; 3] = ["DESIGN.md", "vendor/README.md", "README.md"];
const EXTENSIONS: [&str; 7] = ["rs", "md", "toml", "json", "sh", "yml", "lock"];

/// A token that claims to be a repo file path.
fn path_like(token: &str) -> bool {
    if token.is_empty() || token.starts_with('-') || token.starts_with('$') {
        return false;
    }
    if !token
        .chars()
        .all(|c| c.is_ascii_alphanumeric() || matches!(c, '_' | '.' | '/' | '-'))
    {
        return false;
    }
    let has_known_ext = Path::new(token)
        .extension()
        .is_some_and(|e| EXTENSIONS.iter().any(|&x| e == x));
    // Extension-less slash tokens must be all-lowercase paths: this keeps
    // directories (`crates/graph`) and drops type alternations written
    // with a slash (`NodeMap/NodeSet`).
    let lowercase_path = token.contains('/') && !token.chars().any(|c| c.is_ascii_uppercase());
    has_known_ext || lowercase_path
}

#[test]
fn cited_file_paths_resolve() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"));
    let mut missing = Vec::new();
    let mut checked = 0usize;
    for doc in DOCS {
        let text = std::fs::read_to_string(root.join(doc))
            .unwrap_or_else(|e| panic!("cannot read {doc}: {e}"));
        // Odd-indexed segments of a backtick split are inside spans;
        // fenced code blocks (``` pairs) land on even indexes and are
        // deliberately skipped — command lines are not path citations.
        for span in text.split('`').skip(1).step_by(2) {
            for raw in span.split_whitespace() {
                let token = raw.trim_end_matches([',', ';', ':', ')', '.']);
                if !path_like(token) {
                    continue;
                }
                checked += 1;
                if !root.join(token).exists() {
                    missing.push(format!("{doc} cites `{token}`"));
                }
            }
        }
    }
    assert!(
        missing.is_empty(),
        "dangling doc pointers:\n{}",
        missing.join("\n")
    );
    assert!(checked >= 10, "scanner went blind: only {checked} tokens");
}
