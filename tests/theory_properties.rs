//! Property-based integration tests of the paper's analysis machinery over
//! the full stack: Lemma 2 under distributed change types, Theorem 1
//! statistics on the distributed protocols, and failure injection under
//! adversarial asynchronous schedules.

use std::collections::BTreeMap;

use dynamic_mis::core::{static_greedy, theory, MisState, PriorityMap};
use dynamic_mis::graph::stream::{self, ChurnConfig};
use dynamic_mis::graph::{generators, NodeId, TopologyChange};
use dynamic_mis::protocol::{TdNode, TemplateDirect};
use dynamic_mis::sim::{
    AsyncNetwork, DelaySchedule, LocalEvent, NeighborInfo, Protocol, RandomDelays,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Lemma 2 holds on graphs drawn from every experiment family shape,
    /// not just ER (the unit tests cover ER).
    #[test]
    fn lemma2_on_structured_graphs(
        shape in 0usize..4,
        n in 4usize..14,
        pm_seed in any::<u64>(),
        change_seed in any::<u64>(),
    ) {
        let g = match shape {
            0 => generators::star(n).0,
            1 => generators::cycle(n.max(3)).0,
            2 => generators::complete_bipartite(n / 2, n - n / 2).0,
            _ => generators::grid(2, n / 2 + 1).0,
        };
        let mut prio_rng = StdRng::seed_from_u64(pm_seed);
        let mut pm = PriorityMap::new();
        for v in g.nodes() {
            pm.assign(v, &mut prio_rng);
        }
        let mut change_rng = StdRng::seed_from_u64(change_seed);
        let Some(change) =
            stream::random_change(&g, &ChurnConfig::default(), &mut change_rng)
        else { return Ok(()) };
        if let TopologyChange::InsertNode { id, .. } = &change {
            pm.assign(*id, &mut change_rng);
        }
        let report = theory::check_lemma2_on(&g, &pm, &change);
        prop_assert!(report.holds(), "lemma 2 violated: {:?}", report);
    }

    /// Failure injection: under arbitrary random delay schedules the async
    /// direct template still converges to the greedy MIS after an abrupt
    /// node crash.
    #[test]
    fn async_crash_recovery_under_random_delays(
        n in 5usize..16,
        p in 0.15f64..0.5,
        seed in any::<u64>(),
        max_delay in 1u64..12,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let (g, _) = generators::erdos_renyi(n, p, &mut rng);
        let mut pm = PriorityMap::new();
        for v in g.nodes() {
            pm.assign(v, &mut rng);
        }
        let Some(victim) = generators::random_node(&g, &mut rng) else { return Ok(()) };
        let mis = static_greedy::greedy_mis(&g, &pm);
        let proto = TemplateDirect;
        let nodes: BTreeMap<NodeId, TdNode> = g
            .nodes()
            .map(|w| {
                let info: Vec<NeighborInfo> = g
                    .neighbors(w)
                    .expect("live")
                    .map(|x| NeighborInfo {
                        id: x,
                        ell: pm.of(x).key(),
                        state: MisState::from_membership(mis.contains(&x)),
                    })
                    .collect();
                (
                    w,
                    proto.spawn_stable(
                        w,
                        pm.of(w).key(),
                        MisState::from_membership(mis.contains(&w)),
                        &info,
                    ),
                )
            })
            .collect();
        let mut net = AsyncNetwork::new(g.clone(), nodes, RandomDelays::new(seed, max_delay));
        // Crash: remove the victim and notify the survivors.
        let nbrs: Vec<NodeId> = g.neighbors(victim).expect("live").collect();
        net.graph_mut().remove_node(victim).expect("valid");
        net.remove_node(victim);
        for u in nbrs {
            net.inject_event(u, LocalEvent::NeighborDepartedAbrupt { peer: victim });
        }
        net.run();
        let mut g_new = g;
        g_new.remove_node(victim).expect("valid");
        let expect = static_greedy::greedy_mis(&g_new, &pm);
        prop_assert_eq!(net.mis(), expect);
    }
}

/// An adversarial schedule that delivers messages from lower-priority
/// senders as slowly as possible (a worst case for the relaxation).
struct SlowLow {
    cutoff: NodeId,
}

impl DelaySchedule for SlowLow {
    fn delay(&mut self, from: NodeId, _to: NodeId, _now: u64) -> u64 {
        if from < self.cutoff {
            10
        } else {
            1
        }
    }
}

#[test]
fn async_convergence_under_adversarial_delays() {
    for seed in 0..10u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let (g, ids) = generators::erdos_renyi(12, 0.3, &mut rng);
        let mut pm = PriorityMap::new();
        for v in g.nodes() {
            pm.assign(v, &mut rng);
        }
        let Some((u, v)) = generators::random_edge(&g, &mut rng) else {
            continue;
        };
        let mis = static_greedy::greedy_mis(&g, &pm);
        let proto = TemplateDirect;
        let nodes: BTreeMap<NodeId, TdNode> = g
            .nodes()
            .map(|w| {
                let info: Vec<NeighborInfo> = g
                    .neighbors(w)
                    .expect("live")
                    .map(|x| NeighborInfo {
                        id: x,
                        ell: pm.of(x).key(),
                        state: MisState::from_membership(mis.contains(&x)),
                    })
                    .collect();
                (
                    w,
                    proto.spawn_stable(
                        w,
                        pm.of(w).key(),
                        MisState::from_membership(mis.contains(&w)),
                        &info,
                    ),
                )
            })
            .collect();
        let schedule = SlowLow {
            cutoff: ids[ids.len() / 2],
        };
        let mut net = AsyncNetwork::new(g.clone(), nodes, schedule);
        net.graph_mut().remove_edge(u, v).expect("valid");
        for (a, b) in [(u, v), (v, u)] {
            net.inject_event(
                a,
                LocalEvent::EdgeRemoved {
                    peer: b,
                    graceful: false,
                },
            );
        }
        net.run();
        let mut g_new = g;
        g_new.remove_edge(u, v).expect("valid");
        assert_eq!(net.mis(), static_greedy::greedy_mis(&g_new, &pm));
    }
}

/// Statistical rendition of Theorem 1 at integration level: mean template
/// |S| over random orders stays ≤ 1 + CI on a mixed workload.
#[test]
fn theorem1_statistics_hold_end_to_end() {
    let trials = 800;
    let mut total = 0usize;
    let mut counted = 0usize;
    for t in 0..trials {
        let mut rng = StdRng::seed_from_u64(t);
        let (g, _) = generators::erdos_renyi(40, 0.15, &mut rng);
        let mut pm = PriorityMap::new();
        for v in g.nodes() {
            pm.assign(v, &mut rng);
        }
        let Some(change) = stream::random_change(&g, &ChurnConfig::default(), &mut rng) else {
            continue;
        };
        if let TopologyChange::InsertNode { id, .. } = &change {
            pm.assign(*id, &mut rng);
        }
        let mut g_new = g.clone();
        change.apply(&mut g_new).expect("valid");
        let trace = dynamic_mis::core::template::simulate_change(&g, &g_new, &pm, &change);
        total += trace.s_size();
        counted += 1;
    }
    let mean = total as f64 / counted as f64;
    assert!(
        mean <= 1.15,
        "mean |S| = {mean} over {counted} trials contradicts Theorem 1"
    );
}

/// Statistical check of **Lemma 3**, the probabilistic heart of Theorem 1:
/// for any set P, conditioned on S' = P, the probability that π(v*) is
/// minimal among P is exactly 1/|P|.
///
/// We fix a small graph and a node deletion (so v* is fixed and the
/// π(v**) ≤ π(v*) conditioning is trivial), sample many uniform orders,
/// bucket them by the realized S', and compare the empirical minimality
/// frequency against 1/|P| within binomial confidence bounds.
#[test]
fn lemma3_minimality_probability_is_one_over_p() {
    use dynamic_mis::graph::TopologyChange;
    use std::collections::BTreeMap;

    let mut rng = StdRng::seed_from_u64(1);
    let (g, ids) = generators::erdos_renyi(8, 0.35, &mut rng);
    let victim = ids[3];
    let mut g_new = g.clone();
    g_new.remove_node(victim).expect("exists");
    let change = TopologyChange::DeleteNode(victim);

    let samples = 30_000u32;
    // Bucket: S' (as a sorted vec) → (count, v*-minimal count).
    let mut buckets: BTreeMap<Vec<NodeId>, (u32, u32)> = BTreeMap::new();
    for s in 0..samples {
        let mut prio_rng = StdRng::seed_from_u64(1_000_000 + u64::from(s));
        let mut pm = PriorityMap::new();
        for v in g.nodes() {
            pm.assign(v, &mut prio_rng);
        }
        let sp = theory::s_prime(&g, &g_new, &pm, &change);
        let min = sp.iter().map(|&u| pm.of(u)).min().expect("S' contains v*");
        let v_star_min = pm.of(victim) == min;
        let key: Vec<NodeId> = sp.into_iter().collect();
        let entry = buckets.entry(key).or_insert((0, 0));
        entry.0 += 1;
        if v_star_min {
            entry.1 += 1;
        }
    }

    let mut checked = 0;
    for (p_set, (count, min_count)) in buckets {
        if count < 800 {
            continue; // not enough mass for a tight test
        }
        let expected = 1.0 / p_set.len() as f64;
        let observed = f64::from(min_count) / f64::from(count);
        let sigma = (expected * (1.0 - expected) / f64::from(count)).sqrt();
        assert!(
            (observed - expected).abs() <= 4.5 * sigma + 0.01,
            "lemma 3 violated for P={p_set:?}: observed {observed:.4}, \
             expected {expected:.4} (n={count})"
        );
        checked += 1;
    }
    assert!(
        checked >= 2,
        "need at least two populous buckets, got {checked}"
    );
}
