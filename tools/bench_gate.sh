#!/usr/bin/env bash
# Bench regression gate (ROADMAP item "Bench regressions in CI").
#
# Compares a freshly emitted BENCH_engine.json against the committed
# snapshot and fails when
#   - the dense/BTree speedup of any graph size drops below 1x, or
#   - the dense per-update latency regresses by more than
#     BENCH_GATE_MAX_RATIO (default 2.0) vs the committed number.
#
# Usage: tools/bench_gate.sh <fresh.json> <committed.json>
#
# The JSON format is the one write_snapshot() in
# crates/bench/benches/engine_updates.rs emits: one object per line in
# the "results" array, which keeps this parser to grep/awk.
set -euo pipefail

fresh="${1:?usage: bench_gate.sh <fresh.json> <committed.json>}"
committed="${2:?usage: bench_gate.sh <fresh.json> <committed.json>}"
max_ratio="${BENCH_GATE_MAX_RATIO:-2.0}"

# field <file> <n> <key>: value of <key> in the results entry for n=<n>.
# Empty output (not a nonzero exit, which set -e would turn into a
# silent abort) signals a missing entry; the caller reports it.
field() {
  { grep -o "{\"n\": $2,[^}]*}" "$1" | grep "\"$3\":" | head -n 1 \
    | grep -o "\"$3\": [0-9.]*" | awk '{print $2}'; } || true
}

status=0
for n in 100 1000; do
  speedup="$(field "$fresh" "$n" speedup)"
  dense_new="$(field "$fresh" "$n" dense_ns_per_toggle)"
  dense_old="$(field "$committed" "$n" dense_ns_per_toggle)"
  if [ -z "$speedup" ] || [ -z "$dense_new" ] || [ -z "$dense_old" ]; then
    echo "bench gate: missing entry for n=$n (fresh=$fresh committed=$committed)" >&2
    status=1
    continue
  fi
  if ! awk -v s="$speedup" 'BEGIN { exit !(s >= 1.0) }'; then
    echo "bench gate FAIL: dense/BTree speedup ${speedup}x < 1x at n=$n" >&2
    status=1
  fi
  if ! awk -v new="$dense_new" -v old="$dense_old" -v r="$max_ratio" \
      'BEGIN { exit !(new <= r * old) }'; then
    echo "bench gate FAIL: dense ${dense_new}ns/update > ${max_ratio}x committed ${dense_old}ns at n=$n" >&2
    status=1
  fi
  echo "bench gate: n=$n speedup=${speedup}x dense=${dense_new}ns (committed ${dense_old}ns)"
done

if [ "$status" -eq 0 ]; then
  echo "bench gate OK"
fi
exit "$status"
