#!/usr/bin/env bash
# Bench regression gate (ROADMAP item "Bench regressions in CI").
#
# Compares a freshly emitted BENCH_engine.json against the committed
# snapshot and fails when
#   - the dense/BTree speedup of any graph size drops below 1x, or
#   - the dense per-update latency regresses by more than
#     BENCH_GATE_MAX_RATIO (default 2.0) vs the committed number, or
#   - in the fresh "front" section, the rank-bitset settle front's
#     speedup over the retained BinaryHeap drain drops below
#     BENCH_GATE_FRONT_MIN_SPEEDUP (default 1.0) at any size — i.e. CI
#     fails if the front is ever slower than the heap it replaced. Both
#     rows come from the same fresh run (fresh-vs-fresh, like the
#     parallel gate), so the check is fidelity-independent, or
#   - in the fresh "ingest" section, the deep-queue (queue_depth=64)
#     coalesce fraction drops below BENCH_GATE_INGEST_MIN_COALESCE
#     (default 0.25): on the flapping workload the coalescing queue must
#     keep eliminating a healthy share of the pushed changes before any
#     settle work — a fraction collapsing toward zero means the
#     ingestion layer stopped cancelling opposing churn. Fresh-run-only,
#     so fidelity-independent, or
#   - in the fresh "parallel" section, the thread-executed engine at
#     K=4/threads=4 is slower than the sequential K=1/threads=1 row by
#     more than BENCH_GATE_PAR_MAX_RATIO (default 3.0). Both rows come
#     from the same fresh run, so the check is fidelity-independent and
#     BENCH_SNAPSHOT_FULL semantics are preserved: CI forces full
#     iteration counts for the committed-snapshot comparisons, and the
#     parallel ratio is meaningful either way. The default tolerance is
#     deliberately loose: the compared rows differ by sharding overhead
#     and single-run noise (the snapshot's same-code-path replicate rows
#     have been observed ~1.4x apart on busy runners), while the
#     regression this gate exists to catch — thread spawns leaking into
#     the tiny-cascade fast path — costs 10-100x and clears any sane cap.
#   - in the fresh "front" section's sharded row (n=1000, shards=4), the
#     front/heap speedup drops below BENCH_GATE_SHARDED_FRONT_MIN
#     (default 0.95). Parity is the *expected* result here — the
#     per-shard heap was already persistent, so the front only trades
#     rank indirection against cheaper u32 compares on the tiny-cascade
#     fast path — and 0.95 encodes that floor explicitly: the gate
#     exists to catch the front becoming materially slower than the
#     heap it replaced, not to demand a win single-toggle noise cannot
#     certify. Fresh-vs-fresh, so fidelity-independent.
#   - in the fresh "scale" section (sustained churn on pre-sized
#     engines; ER and Chung–Lu), for the largest size present per
#     family (n=10^5 required, the full-mode 10^6 rows checked when
#     present): ns_per_change exceeds BENCH_GATE_SCALE_MAX_RATIO
#     (default 8.0) times the same family's n=4096 figure — per-change
#     cost must stay flat in n up to cache effects, so a blown ratio
#     means an O(n) scan crept back into the update path; or
#     bytes_per_node (peak-RSS delta over the whole graph+engine
#     working set) exceeds BENCH_GATE_SCALE_MAX_BYTES_PER_NODE
#     (default 600); or churn_regrows is nonzero — the pre-sized arenas
#     must absorb steady-state churn without a single reallocation.
#     All fresh-run-only, so fidelity-independent.
#   - in the fresh "ingest_policy" section (FlushPolicy sweep on a
#     deterministic ManualClock, one 1ms tick per push, so every figure
#     is a pure function of the seeded streams — identical on every
#     host): on the flapping stream, the Adaptive policy must recover at
#     least BENCH_GATE_INGEST_ADAPTIVE_MIN_RATIO (default 0.8) of the
#     best fixed watermark's coalesce fraction — the smoother may not
#     give away the batching win fixed depths get for free; and on the
#     trickle stream (fresh pairs, nothing ever coalesces), Adaptive's
#     p99 queue delay must beat Depth(64)'s AND stay at or below
#     BENCH_GATE_INGEST_P99_MAX_DELAY ticks (default 32) — the smoother
#     must walk the depth down instead of parking changes behind a
#     64-deep window that never fills. Fresh-run-only and clock-free,
#     so fidelity- and machine-independent.
#   - in the fresh "serve" section (the concurrent snapshot read path):
#     publish_overhead on the n=4096 batched-toggle row — published
#     engine over plain engine, interleaved minima from the same fresh
#     run — exceeds BENCH_GATE_SERVE_MAX_OVERHEAD (default 1.10), i.e.
#     attaching a reader must cost the writer at most 10%; or the
#     ServeRun row reports zero reads (the reader threads never
#     sampled), a nonzero epoch_regressions count (a reader observed
#     time going backwards — the snapshot channel's one impossible
#     event), or staleness_max above BENCH_GATE_SERVE_MAX_STALENESS
#     (default 64 epochs — generous; a just-acquired snapshot is
#     normally 0-1 epochs behind the writer). Fresh-run-only, so
#     fidelity-independent.
#   - in the fresh "recovery" section (the durability layer: live
#     log-then-publish ingest vs checkpoint restore + WAL replay of the
#     same history): replay_ratio (replayed ns/change over live
#     ns/change, same fresh run so machine speed cancels) exceeds
#     BENCH_GATE_RECOVERY_MAX_REPLAY_RATIO (default 2.0) — replay
#     re-executes exactly the logged coalesced windows, so it must stay
#     within a small constant of live ingest or recovery time stops
#     being proportional to the replayed suffix; or the checkpoint
#     image's bytes_per_node exceeds
#     BENCH_GATE_RECOVERY_MAX_BYTES_PER_NODE (default 256) — the frame
#     format is adjacency + priorities + witness, all O(n + m), and a
#     blown ceiling means something unbounded leaked into the image.
#     Fresh-run-only, so fidelity-independent.
#
# Usage: tools/bench_gate.sh <fresh.json> <committed.json>
#
# The JSON format is the one write_snapshot() in
# crates/bench/benches/engine_updates.rs emits: one object per line in
# the "results"/"sharding"/"parallel" arrays, which keeps this parser to
# grep/awk.
set -euo pipefail

fresh="${1:?usage: bench_gate.sh <fresh.json> <committed.json>}"
committed="${2:?usage: bench_gate.sh <fresh.json> <committed.json>}"

# Doc-drift gate: every BENCH_GATE_* knob this script reads must appear
# in README.md's gate-knob table, and every BENCH_GATE_* knob the README
# documents must still exist here — renaming or removing a knob without
# updating the docs (or vice versa) fails before any numbers are read.
repo_root="$(cd "$(dirname "$0")/.." && pwd)"
readme="$repo_root/README.md"
script_vars="$(grep -oE 'BENCH_GATE_[A-Z0-9]+[A-Z0-9_]*' "$0" | sort -u)"
readme_vars="$(grep -oE 'BENCH_GATE_[A-Z0-9]+[A-Z0-9_]*' "$readme" | sort -u)"
undocumented="$(comm -23 <(echo "$script_vars") <(echo "$readme_vars"))"
stale="$(comm -13 <(echo "$script_vars") <(echo "$readme_vars"))"
if [ -n "$undocumented" ]; then
  echo "bench gate FAIL: knobs used here but missing from README.md's gate table:" >&2
  echo "$undocumented" >&2
  exit 1
fi
if [ -n "$stale" ]; then
  echo "bench gate FAIL: knobs documented in README.md but unknown to this script:" >&2
  echo "$stale" >&2
  exit 1
fi
max_ratio="${BENCH_GATE_MAX_RATIO:-2.0}"
par_max_ratio="${BENCH_GATE_PAR_MAX_RATIO:-3.0}"
front_min_speedup="${BENCH_GATE_FRONT_MIN_SPEEDUP:-1.0}"
ingest_min_coalesce="${BENCH_GATE_INGEST_MIN_COALESCE:-0.25}"
sharded_front_min="${BENCH_GATE_SHARDED_FRONT_MIN:-0.95}"
scale_max_ratio="${BENCH_GATE_SCALE_MAX_RATIO:-8.0}"
scale_max_bytes="${BENCH_GATE_SCALE_MAX_BYTES_PER_NODE:-600}"
serve_max_overhead="${BENCH_GATE_SERVE_MAX_OVERHEAD:-1.10}"
serve_max_staleness="${BENCH_GATE_SERVE_MAX_STALENESS:-64}"
ingest_adaptive_min_ratio="${BENCH_GATE_INGEST_ADAPTIVE_MIN_RATIO:-0.8}"
ingest_p99_max_delay="${BENCH_GATE_INGEST_P99_MAX_DELAY:-32}"
recovery_max_replay_ratio="${BENCH_GATE_RECOVERY_MAX_REPLAY_RATIO:-2.0}"
recovery_max_bytes="${BENCH_GATE_RECOVERY_MAX_BYTES_PER_NODE:-256}"

# field <file> <n> <key>: value of <key> in the results entry for n=<n>.
# Empty output (not a nonzero exit, which set -e would turn into a
# silent abort) signals a missing entry; the caller reports it.
field() {
  { grep -o "{\"n\": $2,[^}]*}" "$1" | grep "\"$3\":" | head -n 1 \
    | grep -o "\"$3\": [0-9.]*" | awk '{print $2}'; } || true
}

# pfield <file> <n> <shards> <threads> <key>: value of <key> in the
# "parallel" entry for that (n, K, T) triple. The leading key sequence
# "n", "shards", "threads" is unique to that section.
pfield() {
  { grep -o "{\"n\": $2, \"shards\": $3, \"threads\": $4,[^}]*}" "$1" \
    | head -n 1 | grep -o "\"$5\": [0-9.]*" | awk '{print $2}'; } || true
}

# ffield <file> <n> <key>: value of <key> in the "front" entry for n=<n>.
# The leading key sequence "n", "front_ns_per_change" is unique to that
# section, so "results" rows with the same n cannot shadow it.
ffield() {
  { grep -o "{\"n\": $2, \"front_ns_per_change\"[^}]*}" "$1" \
    | head -n 1 | grep -o "\"$3\": [0-9.]*" | awk '{print $2}'; } || true
}

status=0
for n in 100 1000; do
  speedup="$(field "$fresh" "$n" speedup)"
  dense_new="$(field "$fresh" "$n" dense_ns_per_toggle)"
  dense_old="$(field "$committed" "$n" dense_ns_per_toggle)"
  if [ -z "$speedup" ] || [ -z "$dense_new" ] || [ -z "$dense_old" ]; then
    echo "bench gate: missing entry for n=$n (fresh=$fresh committed=$committed)" >&2
    status=1
    continue
  fi
  if ! awk -v s="$speedup" 'BEGIN { exit !(s >= 1.0) }'; then
    echo "bench gate FAIL: dense/BTree speedup ${speedup}x < 1x at n=$n" >&2
    status=1
  fi
  if ! awk -v new="$dense_new" -v old="$dense_old" -v r="$max_ratio" \
      'BEGIN { exit !(new <= r * old) }'; then
    echo "bench gate FAIL: dense ${dense_new}ns/update > ${max_ratio}x committed ${dense_old}ns at n=$n" >&2
    status=1
  fi
  echo "bench gate: n=$n speedup=${speedup}x dense=${dense_new}ns (committed ${dense_old}ns)"
done

# Settle-front gate: the rank-bitset front must never be slower than the
# BinaryHeap drain it replaced. Fresh-vs-fresh on the same run, so
# machine speed and iteration counts cancel out.
for n in 1000 4096; do
  fspeed="$(ffield "$fresh" "$n" speedup)"
  fns="$(ffield "$fresh" "$n" front_ns_per_change)"
  hns="$(ffield "$fresh" "$n" heap_ns_per_change)"
  if [ -z "$fspeed" ] || [ -z "$fns" ] || [ -z "$hns" ]; then
    echo "bench gate: missing \"front\" entry for n=$n in $fresh" >&2
    status=1
    continue
  fi
  if ! awk -v s="$fspeed" -v m="$front_min_speedup" 'BEGIN { exit !(s >= m) }'; then
    echo "bench gate FAIL: front/heap speedup ${fspeed}x < ${front_min_speedup}x at n=$n (front ${fns}ns, heap ${hns}ns per change)" >&2
    status=1
  fi
  echo "bench gate: front n=$n speedup=${fspeed}x (front ${fns}ns vs heap ${hns}ns per change)"
done

# ifield <file> <depth> <key>: value of <key> in the "ingest" entry for
# queue_depth=<depth>. The leading key sequence "n", "queue_depth" is
# unique to that section.
ifield() {
  { grep -o "{\"n\": 1000, \"queue_depth\": $2,[^}]*}" "$1" \
    | head -n 1 | grep -o "\"$3\": [0-9.]*" | awk '{print $2}'; } || true
}

# Ingestion gate: the deep queue must keep coalescing a healthy share of
# the flapping stream. Fresh-run-only, so fidelity-independent.
ing_frac="$(ifield "$fresh" 64 coalesce_fraction)"
ing_ns="$(ifield "$fresh" 64 ns_per_change)"
ing_ns1="$(ifield "$fresh" 1 ns_per_change)"
if [ -z "$ing_frac" ] || [ -z "$ing_ns" ] || [ -z "$ing_ns1" ]; then
  echo "bench gate: missing \"ingest\" entries (queue_depth 1/64) in $fresh" >&2
  status=1
else
  if ! awk -v f="$ing_frac" -v m="$ingest_min_coalesce" 'BEGIN { exit !(f >= m) }'; then
    echo "bench gate FAIL: ingest coalesce fraction ${ing_frac} < ${ingest_min_coalesce} at queue_depth=64" >&2
    status=1
  fi
  echo "bench gate: ingest Q=64 coalesce=${ing_frac} (${ing_ns}ns/change vs ${ing_ns1}ns unbatched)"
fi

# sffield <file> <key>: value of <key> in the "front" section's sharded
# single-toggle row. The leading key sequence "n", "shards",
# "front_ns_per_toggle" is unique to that row ("sharding" rows go
# straight to "ns_per_toggle", "parallel" rows interpose "threads").
sffield() {
  { grep -o "{\"n\": 1000, \"shards\": 4, \"front_ns_per_toggle\"[^}]*}" "$1" \
    | head -n 1 | grep -o "\"$2\": [0-9.]*" | awk '{print $2}'; } || true
}

# Sharded-front gate: parity with the persistent per-shard heap is the
# expected floor; fail only if the front drops materially below it.
sf_speed="$(sffield "$fresh" speedup)"
if [ -z "$sf_speed" ]; then
  echo "bench gate: missing sharded \"front\" row (n=1000, shards=4) in $fresh" >&2
  status=1
else
  if ! awk -v s="$sf_speed" -v m="$sharded_front_min" 'BEGIN { exit !(s >= m) }'; then
    echo "bench gate FAIL: sharded front/heap speedup ${sf_speed}x < ${sharded_front_min}x (parity floor)" >&2
    status=1
  fi
  echo "bench gate: sharded front speedup=${sf_speed}x (floor ${sharded_front_min}x)"
fi

# scfield <file> <n> <family> <key>: value of <key> in the "scale" entry
# for that (n, family) cell. The leading key sequence "n", "family" is
# unique to that section.
scfield() {
  { grep -o "{\"n\": $2, \"family\": \"$3\",[^}]*}" "$1" \
    | head -n 1 | grep -o "\"$4\": [0-9.]*" | awk '{print $2}'; } || true
}

# Scale gate: per-change cost flat in n (up to the cache-effect
# allowance), bounded bytes/node, and zero steady-state reallocations.
# The 10^5 rows are mandatory; 10^6 rows are checked when present (the
# committed full-mode snapshot carries them, smoke runs stop at 10^5).
for fam in er chung_lu; do
  base="$(scfield "$fresh" 4096 "$fam" ns_per_change)"
  if [ -z "$base" ]; then
    echo "bench gate: missing \"scale\" entry (n=4096, $fam) in $fresh" >&2
    status=1
    continue
  fi
  for n in 100000 1000000; do
    ns="$(scfield "$fresh" "$n" "$fam" ns_per_change)"
    bpn="$(scfield "$fresh" "$n" "$fam" bytes_per_node)"
    regrows="$(scfield "$fresh" "$n" "$fam" churn_regrows)"
    if [ -z "$ns" ] || [ -z "$bpn" ] || [ -z "$regrows" ]; then
      if [ "$n" -eq 100000 ]; then
        echo "bench gate: missing \"scale\" entry (n=$n, $fam) in $fresh" >&2
        status=1
      fi
      continue
    fi
    if ! awk -v ns="$ns" -v b="$base" -v r="$scale_max_ratio" \
        'BEGIN { exit !(ns <= r * b) }'; then
      echo "bench gate FAIL: scale $fam n=$n ${ns}ns/change > ${scale_max_ratio}x the n=4096 figure (${base}ns)" >&2
      status=1
    fi
    if ! awk -v v="$bpn" -v m="$scale_max_bytes" 'BEGIN { exit !(v <= m) }'; then
      echo "bench gate FAIL: scale $fam n=$n ${bpn} bytes/node > ${scale_max_bytes}" >&2
      status=1
    fi
    if [ "$regrows" != "0" ]; then
      echo "bench gate FAIL: scale $fam n=$n churn_regrows=${regrows} (pre-sized arenas must not reallocate)" >&2
      status=1
    fi
    echo "bench gate: scale $fam n=$n ${ns}ns/change (base ${base}ns), ${bpn} bytes/node, regrows=${regrows}"
  done
done

# ipfield <file> <stream> <policy> <key>: value of <key> in the
# "ingest_policy" entry for that (stream, policy) cell. The leading key
# sequence "n", "stream", "policy" is unique to that section.
ipfield() {
  { grep -o "{\"n\": 1000, \"stream\": \"$2\", \"policy\": \"$3\",[^}]*}" "$1" \
    | head -n 1 | grep -o "\"$4\": [0-9.]*" | awk '{print $2}'; } || true
}

# Flush-policy gate: the Adaptive smoother must keep most of the
# batching win on coalescing-friendly churn AND shed the queue-delay
# cost on anti-coalescing trickle. Every cell is metered on a
# deterministic ManualClock (one 1ms tick per push), so these figures
# are pure functions of the seeded streams — fresh-run-only AND
# machine-independent.
best_fixed=""
for p in depth:1 depth:16 depth:64; do
  frac="$(ipfield "$fresh" flapping "$p" coalesce_fraction)"
  if [ -z "$frac" ]; then
    echo "bench gate: missing \"ingest_policy\" entry (flapping, $p) in $fresh" >&2
    status=1
    continue
  fi
  if [ -z "$best_fixed" ] || awk -v f="$frac" -v b="$best_fixed" 'BEGIN { exit !(f > b) }'; then
    best_fixed="$frac"
  fi
done
ad_frac="$(ipfield "$fresh" flapping adaptive coalesce_fraction)"
if [ -z "$ad_frac" ] || [ -z "$best_fixed" ]; then
  echo "bench gate: missing \"ingest_policy\" adaptive/fixed flapping rows in $fresh" >&2
  status=1
else
  if ! awk -v a="$ad_frac" -v b="$best_fixed" -v r="$ingest_adaptive_min_ratio" \
      'BEGIN { exit !(a >= r * b) }'; then
    echo "bench gate FAIL: adaptive coalesce ${ad_frac} < ${ingest_adaptive_min_ratio}x the best fixed watermark's ${best_fixed} on flapping" >&2
    status=1
  fi
  echo "bench gate: ingest_policy flapping adaptive coalesce=${ad_frac} (best fixed ${best_fixed}, floor ${ingest_adaptive_min_ratio}x)"
fi
ad_p99="$(ipfield "$fresh" trickle adaptive delay_p99_ticks)"
deep_p99="$(ipfield "$fresh" trickle depth:64 delay_p99_ticks)"
if [ -z "$ad_p99" ] || [ -z "$deep_p99" ]; then
  echo "bench gate: missing \"ingest_policy\" trickle rows (adaptive, depth:64) in $fresh" >&2
  status=1
else
  if ! awk -v a="$ad_p99" -v d="$deep_p99" 'BEGIN { exit !(a < d) }'; then
    echo "bench gate FAIL: adaptive trickle p99 queue delay ${ad_p99} ticks >= depth:64's ${deep_p99} — the smoother never walked the depth down" >&2
    status=1
  fi
  if ! awk -v a="$ad_p99" -v m="$ingest_p99_max_delay" 'BEGIN { exit !(a <= m) }'; then
    echo "bench gate FAIL: adaptive trickle p99 queue delay ${ad_p99} ticks > ${ingest_p99_max_delay} (BENCH_GATE_INGEST_P99_MAX_DELAY)" >&2
    status=1
  fi
  echo "bench gate: ingest_policy trickle adaptive p99=${ad_p99} ticks (depth:64 ${deep_p99}, cap ${ingest_p99_max_delay})"
fi

# svfield <file> <key>: value of <key> in the "serve" section's
# publication-overhead row. The leading key sequence "n",
# "plain_ns_per_change" is unique to that row.
svfield() {
  { grep -o "{\"n\": 4096, \"plain_ns_per_change\"[^}]*}" "$1" \
    | head -n 1 | grep -o "\"$2\": [0-9.]*" | awk '{print $2}'; } || true
}

# srfield <file> <key>: value of <key> in the "serve" section's ServeRun
# row. The leading key sequence "n", "readers" is unique to that row.
srfield() {
  { grep -o "{\"n\": 1000, \"readers\": 2,[^}]*}" "$1" \
    | head -n 1 | grep -o "\"$2\": [0-9.]*" | awk '{print $2}'; } || true
}

# Serve gate: the snapshot read path must stay nearly free for the
# writer, and the reader side must be live and monotone. Fresh-run-only,
# so fidelity-independent.
sv_over="$(svfield "$fresh" publish_overhead)"
sv_plain="$(svfield "$fresh" plain_ns_per_change)"
sv_pub="$(svfield "$fresh" published_ns_per_change)"
if [ -z "$sv_over" ] || [ -z "$sv_plain" ] || [ -z "$sv_pub" ]; then
  echo "bench gate: missing \"serve\" publication-overhead row (n=4096) in $fresh" >&2
  status=1
else
  if ! awk -v o="$sv_over" -v m="$serve_max_overhead" 'BEGIN { exit !(o <= m) }'; then
    echo "bench gate FAIL: serve publish overhead ${sv_over}x > ${serve_max_overhead}x (plain ${sv_plain}ns, published ${sv_pub}ns per change)" >&2
    status=1
  fi
  echo "bench gate: serve publish overhead ${sv_over}x (plain ${sv_plain}ns vs published ${sv_pub}ns per change)"
fi
sr_rps="$(srfield "$fresh" reads_per_sec)"
sr_reg="$(srfield "$fresh" epoch_regressions)"
sr_stale="$(srfield "$fresh" staleness_max)"
if [ -z "$sr_rps" ] || [ -z "$sr_reg" ] || [ -z "$sr_stale" ]; then
  echo "bench gate: missing \"serve\" ServeRun row (n=1000, readers=2) in $fresh" >&2
  status=1
else
  if ! awk -v r="$sr_rps" 'BEGIN { exit !(r > 0) }'; then
    echo "bench gate FAIL: serve reads_per_sec=${sr_rps} — reader threads never sampled" >&2
    status=1
  fi
  if [ "$sr_reg" != "0" ]; then
    echo "bench gate FAIL: serve epoch_regressions=${sr_reg} (readers must never observe epochs going backwards)" >&2
    status=1
  fi
  if ! awk -v s="$sr_stale" -v m="$serve_max_staleness" 'BEGIN { exit !(s <= m) }'; then
    echo "bench gate FAIL: serve staleness_max=${sr_stale} epochs > ${serve_max_staleness}" >&2
    status=1
  fi
  echo "bench gate: serve R=2 reads/s=${sr_rps}, staleness_max=${sr_stale}, regressions=${sr_reg}"
fi

# rcfield <file> <key>: value of <key> in the "recovery" section's row.
# The leading key sequence "n", "changes" is unique to that section.
rcfield() {
  { grep -o "{\"n\": 4096, \"changes\": [0-9]*,[^}]*}" "$1" \
    | head -n 1 | grep -o "\"$2\": [0-9.]*" | awk '{print $2}'; } || true
}

# Recovery gate: WAL replay must stay within a small constant of live
# ingest, and the checkpoint image must stay O(n + m)-sized. Both
# figures come from the same fresh run, so the checks are
# fidelity-independent.
rc_ratio="$(rcfield "$fresh" replay_ratio)"
rc_live="$(rcfield "$fresh" live_ns_per_change)"
rc_replay="$(rcfield "$fresh" replay_ns_per_change)"
rc_bpn="$(rcfield "$fresh" bytes_per_node)"
if [ -z "$rc_ratio" ] || [ -z "$rc_live" ] || [ -z "$rc_replay" ] || [ -z "$rc_bpn" ]; then
  echo "bench gate: missing \"recovery\" row (n=4096) in $fresh" >&2
  status=1
else
  if ! awk -v r="$rc_ratio" -v m="$recovery_max_replay_ratio" 'BEGIN { exit !(r <= m) }'; then
    echo "bench gate FAIL: recovery replay ratio ${rc_ratio}x > ${recovery_max_replay_ratio}x (live ${rc_live}ns, replay ${rc_replay}ns per change)" >&2
    status=1
  fi
  if ! awk -v b="$rc_bpn" -v m="$recovery_max_bytes" 'BEGIN { exit !(b <= m) }'; then
    echo "bench gate FAIL: recovery checkpoint ${rc_bpn} bytes/node > ${recovery_max_bytes}" >&2
    status=1
  fi
  echo "bench gate: recovery replay ratio ${rc_ratio}x (live ${rc_live}ns vs replay ${rc_replay}ns per change), checkpoint ${rc_bpn} bytes/node"
fi

# Parallel-execution gate: the worker-thread plumbing must not tax the
# paper's tiny-cascade common case. Compares two rows of the same fresh
# run, so machine speed and iteration counts cancel out.
par44="$(pfield "$fresh" 1000 4 4 ns_per_toggle)"
par11="$(pfield "$fresh" 1000 1 1 ns_per_toggle)"
if [ -z "$par44" ] || [ -z "$par11" ]; then
  echo "bench gate: missing \"parallel\" entries for n=1000 (K,T)=(4,4)/(1,1) in $fresh" >&2
  status=1
else
  if ! awk -v p="$par44" -v s="$par11" -v r="$par_max_ratio" \
      'BEGIN { exit !(p <= r * s) }'; then
    echo "bench gate FAIL: parallel K=4/T=4 ${par44}ns/toggle > ${par_max_ratio}x sequential K=1/T=1 ${par11}ns" >&2
    status=1
  fi
  echo "bench gate: parallel K=4/T=4 ${par44}ns vs sequential K=1/T=1 ${par11}ns (cap ${par_max_ratio}x)"
fi

if [ "$status" -eq 0 ]; then
  echo "bench gate OK"
fi
exit "$status"
