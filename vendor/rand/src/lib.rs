//! Offline stand-in for the `rand` crate (0.9-style API).
//!
//! Implements exactly the surface this workspace consumes: the [`Rng`]
//! extension trait (`random`, `random_range`, `random_bool`),
//! [`SeedableRng::seed_from_u64`], [`rngs::StdRng`] (xoshiro256++ seeded
//! through SplitMix64), and [`seq::{SliceRandom, IndexedRandom}`](seq).
//!
//! The generator is deterministic per seed and statistically strong enough
//! for the reproduction's needs (uniform priorities, Erdős–Rényi sampling,
//! Fisher–Yates shuffles). It is **not** cryptographically secure and does
//! not promise value-compatibility with the real `rand` crate.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// Low-level source of 64 random bits.
pub trait RngCore {
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types that can be sampled uniformly from an [`RngCore`] — the stand-in
/// for `rand`'s `StandardUniform` distribution.
pub trait FromRng {
    /// Draws a uniform value.
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_from_rng_int {
    ($($t:ty),*) => {$(
        impl FromRng for $t {
            fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_from_rng_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl FromRng for u128 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (u128::from(rng.next_u64()) << 64) | u128::from(rng.next_u64())
    }
}

impl FromRng for i128 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        u128::from_rng(rng) as i128
    }
}

impl FromRng for bool {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() >> 63 != 0
    }
}

impl FromRng for f64 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl FromRng for f32 {
    fn from_rng<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

/// Ranges that [`Rng::random_range`] accepts.
pub trait SampleRange<T> {
    /// Samples a value uniformly from `self`.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform `[0, span)` for `span ≥ 1` via the widening-multiply method
/// (bias ≤ 2⁻⁶⁴, irrelevant at the workspace's scales).
fn sample_below<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(sample_below(rng, span) as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128) as u128 + 1;
                if span > u128::from(u64::MAX) {
                    return <$t as FromRng>::from_rng(rng);
                }
                lo.wrapping_add(sample_below(rng, span as u64) as $t)
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let f = <$t as FromRng>::from_rng(rng);
                self.start + f * (self.end - self.start)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let f = <$t as FromRng>::from_rng(rng);
                lo + f * (hi - lo)
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// User-facing random-value methods, mirroring `rand` 0.9.
pub trait Rng: RngCore {
    /// Samples a uniform value of type `T`.
    fn random<T: FromRng>(&mut self) -> T {
        T::from_rng(self)
    }

    /// Samples uniformly from `range`.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn random_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn random_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability {p} outside [0, 1]");
        f64::from_rng(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Seedable generators, mirroring the part of `rand::SeedableRng` the
/// workspace uses.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is a deterministic function of
    /// `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Concrete generator types.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard generator: xoshiro256++ with SplitMix64
    /// state expansion. Deterministic per seed, `Clone`-able so that an
    /// engine snapshot replays identically.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    fn splitmix64(state: &mut u64) -> u64 {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            let mut sm = seed;
            let s = [
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
                splitmix64(&mut sm),
            ];
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let [s0, s1, s2, s3] = self.s;
            let result = s0.wrapping_add(s3).rotate_left(23).wrapping_add(s0);
            let t = s1 << 17;
            let mut s2 = s2 ^ s0;
            let s3 = s3 ^ s1;
            let s1 = s1 ^ s2;
            let s0 = s0 ^ s3;
            s2 ^= t;
            self.s = [s0, s1, s2, s3.rotate_left(45)];
            result
        }
    }
}

/// Sequence-related helpers (`shuffle`, `choose`).
pub mod seq {
    use super::{RngCore, SampleRange};

    /// Shuffling of mutable slices.
    pub trait SliceRandom {
        /// Uniform Fisher–Yates shuffle.
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = SampleRange::sample_from(0..=i, rng);
                self.swap(i, j);
            }
        }
    }

    /// Uniform element selection from indexable sequences.
    pub trait IndexedRandom {
        /// The element type.
        type Output;

        /// Returns a uniformly chosen element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Output>;
    }

    impl<T> IndexedRandom for [T] {
        type Output = T;

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                let i = SampleRange::sample_from(0..self.len(), rng);
                Some(&self[i])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::{IndexedRandom, SliceRandom};
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        let mut c = StdRng::seed_from_u64(8);
        let xs: Vec<u64> = (0..8).map(|_| a.random()).collect();
        let ys: Vec<u64> = (0..8).map(|_| b.random()).collect();
        let zs: Vec<u64> = (0..8).map(|_| c.random()).collect();
        assert_eq!(xs, ys);
        assert_ne!(xs, zs);
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: usize = rng.random_range(0..10);
            assert!(x < 10);
            let y: u64 = rng.random_range(1..=5);
            assert!((1..=5).contains(&y));
            let f: f64 = rng.random_range(0.25..0.75);
            assert!((0.25..0.75).contains(&f));
            let unit: f64 = rng.random();
            assert!((0.0..1.0).contains(&unit));
        }
    }

    #[test]
    fn random_bool_is_calibrated() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "p=0.25 gave {hits}/10000");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn empty_range_panics() {
        let mut rng = StdRng::seed_from_u64(3);
        let _: usize = rng.random_range(5..5);
    }

    #[test]
    fn shuffle_and_choose() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut v: Vec<u32> = (0..32).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..32).collect::<Vec<_>>());
        assert!(v.choose(&mut rng).is_some());
        let empty: Vec<u32> = Vec::new();
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn mean_of_unit_uniform_is_half() {
        let mut rng = StdRng::seed_from_u64(5);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| rng.random::<f64>()).sum();
        let mean = sum / f64::from(n);
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }
}
