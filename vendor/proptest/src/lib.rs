//! Offline stand-in for the `proptest` crate.
//!
//! Supports the workspace's property tests: the [`proptest!`] macro with an
//! optional `#![proptest_config(...)]` header, strategies built from
//! `any::<T>()` and integer/float ranges, and the `prop_assert*` macros.
//!
//! No shrinking is performed; a failing case panics with the sampled inputs
//! so it can be reproduced by hand. Sampling is deterministic per test
//! function (seeded from the function name), so failures are stable across
//! runs.

#![forbid(unsafe_code)]

use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Per-test configuration.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of sampled cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig { cases: 256 }
    }
}

impl ProptestConfig {
    /// Builds a configuration running `cases` sampled cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig { cases }
    }
}

/// Error raised by `prop_assert*` macros inside a property body.
#[derive(Debug, Clone)]
pub struct TestCaseError {
    message: String,
}

impl TestCaseError {
    /// Creates a failure with the given message.
    #[must_use]
    pub fn fail(message: String) -> Self {
        TestCaseError { message }
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

/// The sampling source handed to strategies: SplitMix64.
#[derive(Debug, Clone)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator from a seed.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        TestRng { state: seed }
    }

    /// Returns 64 uniform bits.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, span: u64) -> u64 {
        ((u128::from(self.next_u64()) * u128::from(span)) >> 64) as u64
    }

    fn unit_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

/// A source of values of type `Value`.
pub trait Strategy {
    /// The sampled type.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;
}

/// Full-domain strategy returned by [`any`].
#[derive(Debug, Clone, Copy)]
pub struct Any<T> {
    _marker: std::marker::PhantomData<T>,
}

/// Returns the strategy sampling the whole domain of `T`.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any {
        _marker: std::marker::PhantomData,
    }
}

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() >> 63 != 0
    }
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_strategy_int_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                let span = (self.end as i128 - self.start as i128) as u64;
                self.start.wrapping_add(rng.below(span) as $t)
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "empty strategy range");
                let span = (hi as i128 - lo as i128) as u64;
                lo.wrapping_add(rng.below(span.wrapping_add(1).max(1)) as $t)
            }
        }
    )*};
}
impl_strategy_int_range!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_strategy_float_range {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty strategy range");
                self.start + (rng.unit_f64() as $t) * (self.end - self.start)
            }
        }
    )*};
}
impl_strategy_float_range!(f32, f64);

/// Everything a property-test module needs in scope.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, proptest, Arbitrary, ProptestConfig,
        Strategy, TestCaseError,
    };
}

/// Stable tiny hash used to derive a per-test seed from its name.
#[must_use]
pub fn fnv1a(s: &str) -> u64 {
    let mut h: u64 = 0xCBF2_9CE4_8422_2325;
    for b in s.bytes() {
        h ^= u64::from(b);
        h = h.wrapping_mul(0x0000_0100_0000_01B3);
    }
    h
}

/// Declares property tests. Mirrors proptest's macro shape:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn prop(x in any::<u64>(), n in 1usize..10) { prop_assert!(n > 0); }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ $cfg; $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ $crate::ProptestConfig::default(); $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]. Not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $( $(#[$meta:meta])* fn $name:ident( $($arg:ident in $strat:expr),* $(,)? ) $body:block )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::ProptestConfig = $cfg;
                let mut rng = $crate::TestRng::new($crate::fnv1a(concat!(module_path!(), "::", stringify!($name))));
                for case in 0..config.cases {
                    $( let $arg = $crate::Strategy::sample(&($strat), &mut rng); )*
                    let inputs = || {
                        let mut s = String::new();
                        $(
                            s.push_str(&format!("  {} = {:?}\n", stringify!($arg), $arg));
                        )*
                        s
                    };
                    let outcome: ::std::result::Result<(), $crate::TestCaseError> =
                        (|| { $body ::std::result::Result::Ok(()) })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!(
                            "property {} failed at case {}/{}:\n{}\ninputs:\n{}",
                            stringify!($name), case + 1, config.cases, e, inputs()
                        );
                    }
                }
            }
        )*
    };
}

/// Asserts a condition inside a property body, failing the case (not the
/// whole process) on violation.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(
                format!("assertion failed: {}", stringify!($cond)),
            ));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)+)));
        }
    };
}

/// Asserts equality inside a property body.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if !(*l == *r) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} == {}\n  left: {:?}\n right: {:?}",
                stringify!($left),
                stringify!($right),
                l,
                r
            )));
        }
    }};
}

/// Asserts inequality inside a property body.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr $(,)?) => {{
        let (l, r) = (&$left, &$right);
        if *l == *r {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!(
                "assertion failed: {} != {}\n  both: {:?}",
                stringify!($left),
                stringify!($right),
                l
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respected(x in any::<u64>(), n in 1usize..10, p in 0.1f64..0.9) {
            let _ = x;
            prop_assert!((1..10).contains(&n));
            prop_assert!((0.1..0.9).contains(&p), "p = {} escaped", p);
        }

        #[test]
        fn early_return_ok(n in 0usize..4) {
            if n == 0 { return Ok(()); }
            prop_assert_ne!(n, 0);
            prop_assert_eq!(n * 2 / 2, n);
        }
    }

    #[test]
    fn failing_property_panics_with_inputs() {
        let result = std::panic::catch_unwind(|| {
            let config = ProptestConfig::with_cases(4);
            let mut rng = crate::TestRng::new(1);
            for _case in 0..config.cases {
                let n = crate::Strategy::sample(&(5usize..6), &mut rng);
                let outcome: Result<(), TestCaseError> = (|| {
                    prop_assert!(n < 5, "n was {}", n);
                    Ok(())
                })();
                if let Err(e) = outcome {
                    panic!("{e}");
                }
            }
        });
        let err = result.expect_err("property must fail");
        let msg = err.downcast_ref::<String>().expect("string panic");
        assert!(msg.contains("n was 5"));
    }
}
