//! Offline stand-in for the `criterion` benchmarking crate.
//!
//! Supports the API surface the workspace's benches use —
//! [`criterion_group!`]/[`criterion_main!`], [`Criterion`] configuration,
//! [`BenchmarkGroup::bench_with_input`], [`Bencher::iter`] — with plain-text
//! timing output instead of criterion's statistical reports.
//!
//! Passing `--test` (as `cargo bench --bench <name> -- --test` does) runs
//! every benchmark body exactly once, making the benches usable as smoke
//! tests in CI. The harness also honours a `BENCH_JSON` environment
//! variable naming a file to which all measurements are appended as JSON
//! lines, which the repository uses for snapshot artifacts.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::io::Write as _;
use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// One recorded measurement.
#[derive(Debug, Clone)]
pub struct Measurement {
    /// `group/function/parameter` path of the benchmark.
    pub id: String,
    /// Mean wall-clock nanoseconds per iteration.
    pub ns_per_iter: f64,
    /// Iterations measured.
    pub iters: u64,
}

/// Top-level benchmark driver and configuration.
#[derive(Debug)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    test_mode: bool,
    measurements: Vec<Measurement>,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_millis(500),
            warm_up_time: Duration::from_millis(100),
            test_mode: false,
            measurements: Vec::new(),
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    /// Sets the total measurement budget per benchmark.
    #[must_use]
    pub fn measurement_time(mut self, d: Duration) -> Self {
        self.measurement_time = d;
        self
    }

    /// Sets the warm-up budget per benchmark.
    #[must_use]
    pub fn warm_up_time(mut self, d: Duration) -> Self {
        self.warm_up_time = d;
        self
    }

    /// Applies command-line arguments (`--test` → single-pass smoke mode).
    #[must_use]
    pub fn configure_from_args(mut self) -> Self {
        self.test_mode = std::env::args().any(|a| a == "--test");
        self
    }

    /// Opens a named group of benchmarks.
    pub fn benchmark_group<S: Into<String>>(&mut self, name: S) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
        }
    }

    /// Returns all measurements recorded so far.
    #[must_use]
    pub fn measurements(&self) -> &[Measurement] {
        &self.measurements
    }

    /// Prints the closing summary and flushes the optional JSON sink.
    pub fn final_summary(&self) {
        if let Ok(path) = std::env::var("BENCH_JSON") {
            if let Err(e) = self.write_json(&path) {
                eprintln!("warning: failed to write {path}: {e}");
            }
        }
        eprintln!(
            "finished {} benchmark{}{}",
            self.measurements.len(),
            if self.measurements.len() == 1 {
                ""
            } else {
                "s"
            },
            if self.test_mode { " (test mode)" } else { "" },
        );
    }

    fn write_json(&self, path: &str) -> std::io::Result<()> {
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(path)?;
        for m in &self.measurements {
            writeln!(
                f,
                "{{\"id\":\"{}\",\"ns_per_iter\":{:.1},\"iters\":{}}}",
                m.id, m.ns_per_iter, m.iters
            )?;
        }
        Ok(())
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, id: String, mut f: F) {
        let mut bencher = Bencher {
            test_mode: self.test_mode,
            sample_size: self.sample_size,
            measurement_time: self.measurement_time,
            warm_up_time: self.warm_up_time,
            result: None,
        };
        f(&mut bencher);
        match bencher.result {
            Some((ns, iters)) if !self.test_mode => {
                eprintln!("{id:<56} {:>12.1} ns/iter ({iters} iters)", ns);
                self.measurements.push(Measurement {
                    id,
                    ns_per_iter: ns,
                    iters,
                });
            }
            _ => {
                eprintln!("{id:<56} ok (test mode)");
            }
        }
    }
}

/// A named collection of related benchmarks.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Benchmarks `f` with `input`, labelling it with `id`.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let full = format!("{}/{}", self.name, id.label);
        self.criterion.run_one(full, |b| f(b, input));
        self
    }

    /// Benchmarks a nullary closure.
    pub fn bench_function<S: Display, F>(&mut self, id: S, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let full = format!("{}/{}", self.name, id);
        self.criterion.run_one(full, |b| f(b));
        self
    }

    /// Closes the group.
    pub fn finish(self) {}
}

/// Identifier of one benchmark within a group.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    label: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a parameter value.
    pub fn new<S: Into<String>, P: Display>(function: S, parameter: P) -> Self {
        BenchmarkId {
            label: format!("{}/{}", function.into(), parameter),
        }
    }

    /// Creates an id from just a parameter value.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId {
            label: parameter.to_string(),
        }
    }
}

/// Timer handed to each benchmark body.
pub struct Bencher {
    test_mode: bool,
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
    result: Option<(f64, u64)>,
}

impl Bencher {
    /// Calls `f` repeatedly and records the mean time per call.
    ///
    /// In `--test` mode, calls `f` exactly once.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        if self.test_mode {
            black_box(f());
            return;
        }
        // Warm-up: run until the warm-up budget is spent, tracking the
        // rate so the measurement batches are sized sensibly.
        let warm_start = Instant::now();
        let mut warm_iters: u64 = 0;
        while warm_start.elapsed() < self.warm_up_time {
            black_box(f());
            warm_iters += 1;
        }
        let per_iter = warm_start.elapsed().as_nanos() as f64 / warm_iters.max(1) as f64;
        let budget_ns = self.measurement_time.as_nanos() as f64;
        let per_sample = ((budget_ns / self.sample_size as f64 / per_iter.max(1.0)) as u64).max(1);

        let mut total_ns = 0f64;
        let mut total_iters = 0u64;
        for _ in 0..self.sample_size {
            let start = Instant::now();
            for _ in 0..per_sample {
                black_box(f());
            }
            total_ns += start.elapsed().as_nanos() as f64;
            total_iters += per_sample;
        }
        self.result = Some((total_ns / total_iters as f64, total_iters));
    }
}

/// Declares a benchmark group, mirroring criterion's macro forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $cfg.configure_from_args();
            $( $target(&mut criterion); )+
            criterion.final_summary();
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Declares the bench entry point.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(20))
            .warm_up_time(Duration::from_millis(5));
        let mut group = c.benchmark_group("g");
        group.bench_with_input(BenchmarkId::new("f", 1), &1u32, |b, &x| {
            b.iter(|| x + 1);
        });
        group.finish();
        assert_eq!(c.measurements().len(), 1);
        assert!(c.measurements()[0].ns_per_iter > 0.0);
        assert!(c.measurements()[0].id.contains("g/f/1"));
    }
}
