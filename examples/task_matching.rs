//! Dynamic task–worker matching via the line-graph reduction.
//!
//! ```text
//! cargo run --example task_matching
//! ```
//!
//! Scenario: a dispatch system where edges are *compatible (worker, task)
//! pairs* and we continuously maintain a **maximal matching** — no
//! compatible pair is left idle while both sides are free. Section 5 of
//! the paper: simulate the dynamic MIS on the line graph. The result is
//! history independent, so the matching quality cannot be degraded by the
//! order in which compatibilities appear; on the paper's 3-path workload
//! the expected matching is 5n/12, beating the n/4 worst case.

use dynamic_mis::derived::{verify, DynamicMatching};
use dynamic_mis::graph::{generators, DynGraph, NodeId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    let mut rng = StdRng::seed_from_u64(99);
    // A bipartite compatibility graph: 30 workers × 30 tasks.
    let (graph, workers, tasks) = generators::random_bipartite(30, 30, 0.12, &mut rng);
    let mut dm = DynamicMatching::new(graph, 5);
    println!(
        "dispatch: {} workers, {} tasks, {} compatible pairs, {} matched",
        workers.len(),
        tasks.len(),
        dm.base_graph().edge_count(),
        dm.matching().len()
    );

    // Live updates: compatibilities appear and expire; workers churn.
    let mut matched_deltas = 0usize;
    let events = 200;
    for _ in 0..events {
        let roll: f64 = rng.random();
        let before = dm.matching().len();
        if roll < 0.4 {
            // New compatibility discovered.
            if let Some((u, v)) = random_cross_pair(dm.base_graph(), &workers, &tasks, &mut rng) {
                if !dm.base_graph().has_edge(u, v) {
                    dm.insert_edge(u, v).expect("valid");
                }
            }
        } else if roll < 0.8 {
            // A compatibility expires.
            if let Some((u, v)) = generators::random_edge(dm.base_graph(), &mut rng) {
                dm.remove_edge(u, v).expect("valid");
            }
        } else {
            // A worker disconnects and reconnects with fresh compatibilities.
            if let Some(&w) = workers.get(rng.random_range(0..workers.len())) {
                if dm.base_graph().has_node(w) {
                    dm.remove_node(w).expect("valid");
                    let nbrs: Vec<NodeId> = tasks
                        .iter()
                        .copied()
                        .filter(|_| rng.random_bool(0.1))
                        .collect();
                    dm.insert_node(nbrs).expect("valid");
                }
            }
        }
        matched_deltas += dm.matching().len().abs_diff(before);
    }
    assert!(verify::is_maximal_matching(dm.base_graph(), &dm.matching()));
    println!(
        "after {events} events: {} matched pairs (maximality verified ✓), \
         mean |matching| change per event: {:.2}",
        dm.matching().len(),
        matched_deltas as f64 / f64::from(events)
    );

    // The paper's worked example: expected matching on disjoint 3-paths.
    let k = 25;
    let trials = 400;
    let mut total = 0usize;
    for t in 0..trials {
        let (g, _) = generators::disjoint_three_paths(k);
        total += DynamicMatching::new(g, t).matching().len();
    }
    let n = 4 * k;
    println!(
        "\n3-path benchmark (n = {n}): mean matching {:.2}, paper expectation 5n/12 = {:.2}, worst case n/4 = {}",
        total as f64 / f64::from(trials as u32),
        5.0 * n as f64 / 12.0,
        n / 4
    );
}

fn random_cross_pair(
    g: &DynGraph,
    workers: &[NodeId],
    tasks: &[NodeId],
    rng: &mut StdRng,
) -> Option<(NodeId, NodeId)> {
    for _ in 0..64 {
        let w = workers[rng.random_range(0..workers.len())];
        let t = tasks[rng.random_range(0..tasks.len())];
        if g.has_node(w) && g.has_node(t) && !g.has_edge(w, t) {
            return Some((w, t));
        }
    }
    None
}
