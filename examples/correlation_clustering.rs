//! Streaming correlation clustering of a similarity graph.
//!
//! ```text
//! cargo run --example correlation_clustering
//! ```
//!
//! Scenario: records arrive with noisy pairwise "same entity" signals
//! (edges). We maintain the paper's pivot clustering — each MIS node of the
//! random-greedy order opens a cluster; everyone else joins their
//! smallest-order MIS neighbor. By Ailon-Charikar-Newman this is a
//! 3-approximation of the optimal correlation clustering *in expectation*,
//! and the dynamic MIS engine keeps it current at unit expected cost per
//! signal. On a small instance we compare against the exact optimum.

use dynamic_mis::cluster::{exact, DynamicClustering};
use dynamic_mis::graph::stream::{self, ChurnConfig};
use dynamic_mis::graph::{generators, DynGraph};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    // Phase 1: streaming maintenance on a mid-size similarity graph.
    let mut rng = StdRng::seed_from_u64(7);
    let (graph, _) = generators::erdos_renyi(80, 0.08, &mut rng);
    let mut dc = DynamicClustering::new(graph, 3);
    println!(
        "streaming phase: {} records, {} similarity edges, {} clusters, cost {}",
        dc.graph().node_count(),
        dc.graph().edge_count(),
        dc.clustering().clusters().len(),
        dc.cost()
    );
    let mut relabels = 0usize;
    let events = 300;
    for _ in 0..events {
        let Some(change) = stream::random_change(dc.graph(), &ChurnConfig::edges_only(), &mut rng)
        else {
            continue;
        };
        let (_, relabelled) = dc.apply(&change).expect("valid change");
        relabels += relabelled.len();
    }
    dc.assert_consistent();
    println!(
        "after {events} signal updates: {} clusters, cost {}, {:.2} relabels per update",
        dc.clustering().clusters().len(),
        dc.cost(),
        relabels as f64 / f64::from(events)
    );

    // Phase 2: quality check against the exact optimum (small instance).
    println!("\nquality phase: expected cost vs exact optimum on ER(9, 0.4)");
    let mut ratio_sum = 0.0;
    let instances = 5;
    for inst in 0..instances {
        let mut grng = StdRng::seed_from_u64(100 + inst);
        let (g, _): (DynGraph, _) = generators::erdos_renyi(9, 0.4, &mut grng);
        let (_, opt) = exact::optimal(&g);
        let trials = 400;
        let mut cost_sum = 0usize;
        for t in 0..trials {
            let dc = DynamicClustering::new(g.clone(), 10_000 + inst * 1000 + t);
            cost_sum += dc.cost();
        }
        let mean = cost_sum as f64 / f64::from(trials as u32);
        let ratio = if opt == 0 { 1.0 } else { mean / opt as f64 };
        ratio_sum += ratio;
        println!(
            "  instance {inst}: OPT = {opt}, E[cost] ≈ {mean:.2}, ratio {ratio:.2} (bound: 3)"
        );
    }
    println!(
        "mean expected-cost ratio: {:.2} ≤ 3 ✓",
        ratio_sum / f64::from(instances as u32)
    );
}
