//! A peer-to-peer overlay electing a backbone of super-peers.
//!
//! ```text
//! cargo run --example p2p_overlay
//! ```
//!
//! Scenario: an overlay network where MIS nodes act as *super-peers* (every
//! ordinary peer has a super-peer neighbor; no two super-peers are
//! adjacent). Peers churn constantly — some leave gracefully, some crash —
//! and links appear and disappear. The paper's Algorithm 2 keeps the
//! super-peer set maximal-independent at an expected cost of **one peer
//! changing role, O(1) rounds and O(1) broadcasts per event**, instead of
//! re-electing from scratch.

use dynamic_mis::graph::stream::{self, ChurnConfig};
use dynamic_mis::graph::{generators, DistributedChange};
use dynamic_mis::protocol::ConstantBroadcast;
use dynamic_mis::sim::SyncNetwork;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(2026);
    let (graph, _) = generators::barabasi_albert(120, 3, &mut rng);
    let mut net = SyncNetwork::bootstrap(ConstantBroadcast, graph, 7);
    println!(
        "overlay: {} peers, {} links, {} super-peers elected",
        net.graph().node_count(),
        net.graph().edge_count(),
        net.mis().len()
    );

    let events = 200;
    let mut total_adjustments = 0usize;
    let mut worst = (0usize, String::new());
    for step in 0..events {
        let Some(change) =
            stream::random_change(&net.logical_graph(), &ChurnConfig::default(), &mut rng)
        else {
            continue;
        };
        // Crashes and polite departures both happen in the wild.
        let change = stream::randomize_distributed(&change, &mut rng);
        let outcome = net.apply_change(&change).expect("valid change");
        total_adjustments += outcome.adjustments();
        if outcome.adjustments() > worst.0 {
            worst = (outcome.adjustments(), change.label().to_string());
        }
        if step % 50 == 0 {
            net.assert_greedy_invariant();
        }
    }
    net.assert_greedy_invariant();

    let m = net.lifetime_metrics();
    println!("after {events} churn events:");
    println!(
        "  super-peers: {} of {} peers",
        net.mis().len(),
        net.graph().node_count()
    );
    println!(
        "  role changes: {total_adjustments} total ({:.3} per event; worst single event: {} on a {})",
        total_adjustments as f64 / f64::from(events),
        worst.0,
        worst.1
    );
    println!(
        "  communication: {:.2} rounds and {:.2} broadcasts per event ({} bits total)",
        m.rounds as f64 / f64::from(events),
        m.broadcasts as f64 / f64::from(events),
        m.bits
    );
    println!("  backbone validity re-verified after every phase ✓");

    // Show one explicit crash in detail.
    let victim = net.mis().into_iter().next().expect("backbone non-empty");
    let outcome = net
        .apply_change(&DistributedChange::AbruptDeleteNode(victim))
        .expect("valid change");
    println!(
        "crash of super-peer {victim}: {} peers changed role, {} rounds, {} broadcasts",
        outcome.adjustments(),
        outcome.metrics.rounds,
        outcome.metrics.broadcasts
    );
}
