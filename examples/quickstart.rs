//! Quickstart: maintain a maximal independent set under topology changes.
//!
//! ```text
//! cargo run --example quickstart
//! ```
//!
//! The engine realizes the paper's template: it simulates sequential greedy
//! over a uniformly random node order, and after every change restores the
//! MIS with (in expectation) a **single** output adjustment.

use dynamic_mis::core::DynamicMis;
use dynamic_mis::graph::generators;

fn main() {
    // A 12-node cycle as the starting network.
    let (graph, ids) = generators::cycle(12);
    let mut engine = dynamic_mis::core::Engine::builder()
        .graph(graph)
        .seed(42)
        .build_unsharded();
    println!("initial MIS: {:?}", engine.mis());

    // Insert an edge across the cycle: at most a local ripple.
    let receipt = engine
        .insert_edge(ids[0], ids[6])
        .expect("both endpoints exist");
    println!(
        "insert chord {}-{}: {} adjustment(s): {:?}",
        ids[0],
        ids[6],
        receipt.adjustments(),
        receipt.flips()
    );

    // A node joins with three links.
    let (newcomer, receipt) = engine
        .insert_node(&[ids[2], ids[5], ids[9]])
        .expect("neighbors exist");
    println!(
        "node {newcomer} joined (deg 3): {} adjustment(s)",
        receipt.adjustments()
    );

    // A node leaves.
    let receipt = engine.remove_node(ids[0]).expect("node exists");
    println!(
        "node {} left: {} adjustment(s)",
        ids[0],
        receipt.adjustments()
    );

    // The invariant pins the output to the greedy MIS of the current
    // graph + order — machine-checkable at any time.
    engine.check_invariant().expect("MIS invariant holds");
    println!("final MIS: {:?}", engine.mis());
    println!("invariant verified: output = greedy MIS of (G, π)");
}
