//! Dynamic frequency assignment (graph coloring) in a radio network.
//!
//! ```text
//! cargo run --example frequency_coloring
//! ```
//!
//! Scenario: access points that interfere must use different frequencies.
//! We maintain the random greedy coloring of Section 5, Example 3: each AP
//! holds the smallest frequency unused by its lower-order interferers — at
//! most Δ+1 frequencies, history independent, and near-optimal in
//! expectation on structured interference graphs. The run also shows the
//! cost asymmetry the paper highlights: recoloring can touch O(Δ) nodes
//! per change, while the MIS underneath adjusts only ~1.

use dynamic_mis::core::DynamicMis;
use dynamic_mis::derived::{verify, ColoringEngine};
use dynamic_mis::graph::generators;
use dynamic_mis::graph::stream::{self, ChurnConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(31);
    let (graph, _) = generators::grid(10, 10); // a city block of APs
    let mut ce = ColoringEngine::from_graph(graph.clone(), 1);
    let mut mis = dynamic_mis::core::Engine::builder()
        .graph(graph)
        .seed(1)
        .build_unsharded();
    println!(
        "radio net: {} APs, Δ = {}, frequencies in use: {}",
        ce.graph().node_count(),
        ce.graph().max_degree(),
        ce.palette_size()
    );

    let events = 150;
    let mut recolors = 0usize;
    let mut adjustments = 0usize;
    for _ in 0..events {
        let Some(change) = stream::random_change(ce.graph(), &ChurnConfig::edges_only(), &mut rng)
        else {
            continue;
        };
        recolors += ce.apply(&change).expect("valid").adjustments();
        adjustments += mis.apply(&change).expect("valid").adjustments();
    }
    assert!(verify::is_proper_coloring(ce.graph(), &ce.colors()));
    println!(
        "after {events} interference changes: {} frequencies (proper ✓)",
        ce.palette_size()
    );
    println!(
        "cost per change: {:.2} re-assignments for coloring vs {:.2} for the MIS \
         — the O(Δ) vs O(1) gap the paper discusses (open: can coloring do O(1)?)",
        recolors as f64 / f64::from(events),
        adjustments as f64 / f64::from(events)
    );

    // The paper's Example 3: near-2-coloring of K(k,k) minus a matching.
    let k = 16;
    let trials = 500;
    let mut two = 0usize;
    for t in 0..trials {
        let (g, _, _) = generators::bipartite_minus_matching(k);
        if ColoringEngine::from_graph(g, t).palette_size() == 2 {
            two += 1;
        }
    }
    println!(
        "\nK({k},{k}) minus a perfect matching: optimal 2-coloring in {:.1}% of runs \
         (paper: 1 - 1/n = {:.1}%)",
        100.0 * two as f64 / f64::from(trials as u32),
        100.0 * (1.0 - 1.0 / (2.0 * k as f64))
    );
}
