use std::collections::BTreeMap;

use dmis_core::PriorityMap;
use dmis_graph::{DynGraph, NodeId, NodeMap, NodeSet};

/// A partition of a graph's nodes into clusters, each named by a *center*
/// node.
///
/// The correlation-clustering objective ([`Clustering::cost`]) counts
/// "contradicting" pairs: missing edges inside clusters plus present edges
/// across clusters (Section 2 of the paper).
///
/// # Example
///
/// ```
/// use dmis_cluster::Clustering;
/// use dmis_graph::generators;
///
/// let (g, ids) = generators::path(3);
/// let mut c = Clustering::new();
/// c.assign(ids[0], ids[0]);
/// c.assign(ids[1], ids[0]);
/// c.assign(ids[2], ids[2]);
/// // Cluster {p0, p1} has its edge; edge {p1, p2} crosses: cost 1.
/// assert_eq!(c.cost(&g), 1);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Clustering {
    /// Dense node → cluster-center table.
    center_of: NodeMap<NodeId>,
}

impl Clustering {
    /// Creates an empty clustering.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Assigns `node` to the cluster centered at `center`.
    pub fn assign(&mut self, node: NodeId, center: NodeId) {
        self.center_of.insert(node, center);
    }

    /// Removes a node from the clustering, returning its former center.
    pub fn remove(&mut self, node: NodeId) -> Option<NodeId> {
        self.center_of.remove(node)
    }

    /// Returns the center of `node`'s cluster.
    #[must_use]
    pub fn center_of(&self, node: NodeId) -> Option<NodeId> {
        self.center_of.get(node).copied()
    }

    /// Returns `true` if `u` and `v` share a cluster.
    #[must_use]
    pub fn same_cluster(&self, u: NodeId, v: NodeId) -> bool {
        match (self.center_of(u), self.center_of(v)) {
            (Some(a), Some(b)) => a == b,
            _ => false,
        }
    }

    /// Number of clustered nodes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.center_of.len()
    }

    /// Returns `true` if no node is clustered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.center_of.is_empty()
    }

    /// The clusters, as center → sorted members.
    #[must_use]
    pub fn clusters(&self) -> BTreeMap<NodeId, Vec<NodeId>> {
        let mut out: BTreeMap<NodeId, Vec<NodeId>> = BTreeMap::new();
        for (v, &c) in self.center_of.iter() {
            out.entry(c).or_default().push(v);
        }
        out
    }

    /// Iterates over `(node, center)` pairs in node order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, NodeId)> + '_ {
        self.center_of.iter().map(|(v, &c)| (v, c))
    }

    /// The correlation-clustering cost on `g`:
    /// `Σ_C Σ_{u,v ∈ C} 1[{u,v} ∉ E] + Σ_{C₁≠C₂} Σ_{u∈C₁,v∈C₂} 1[{u,v} ∈ E]`.
    ///
    /// # Panics
    ///
    /// Panics if the clustering does not cover exactly the nodes of `g`.
    #[must_use]
    pub fn cost(&self, g: &DynGraph) -> usize {
        assert_eq!(self.center_of.len(), g.node_count(), "cover mismatch");
        for v in g.nodes() {
            assert!(self.center_of.contains(v), "node {v} unclustered");
        }
        let mut cost = 0usize;
        // Cross-cluster present edges.
        for key in g.edges() {
            let (u, v) = key.endpoints();
            if !self.same_cluster(u, v) {
                cost += 1;
            }
        }
        // Intra-cluster missing edges.
        for members in self.clusters().values() {
            for (i, &u) in members.iter().enumerate() {
                for &v in &members[i + 1..] {
                    if !g.has_edge(u, v) {
                        cost += 1;
                    }
                }
            }
        }
        cost
    }

    /// Converts to the canonical partition form: sorted blocks, sorted by
    /// smallest member — for equality comparisons modulo center naming.
    #[must_use]
    pub fn canonical_blocks(&self) -> Vec<Vec<NodeId>> {
        let mut blocks: Vec<Vec<NodeId>> = self.clusters().into_values().collect();
        for b in &mut blocks {
            b.sort_unstable();
        }
        blocks.sort();
        blocks
    }
}

impl FromIterator<(NodeId, NodeId)> for Clustering {
    fn from_iter<T: IntoIterator<Item = (NodeId, NodeId)>>(iter: T) -> Self {
        let mut c = Clustering::new();
        for (v, center) in iter {
            c.assign(v, center);
        }
        c
    }
}

/// Builds the pivot clustering from a greedy MIS: each MIS node opens a
/// cluster; every non-MIS node joins the cluster of its *smallest-order*
/// MIS neighbor (by the random order π — "the smallest random ID among its
/// MIS neighbors").
///
/// # Panics
///
/// Panics if `mis` is not maximal in `g` (a non-member without member
/// neighbors) or priorities are missing.
#[must_use]
pub fn from_mis(g: &DynGraph, priorities: &PriorityMap, mis: &NodeSet) -> Clustering {
    let mut clustering = Clustering::new();
    for v in g.nodes() {
        if mis.contains(v) {
            clustering.assign(v, v);
        } else {
            let center = g
                .neighbors(v)
                .expect("live node")
                .filter(|&u| mis.contains(u))
                .min_by_key(|&u| priorities.of(u))
                .unwrap_or_else(|| panic!("{v} has no MIS neighbor: set not maximal"));
            clustering.assign(v, center);
        }
    }
    clustering
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmis_core::static_greedy;
    use dmis_graph::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn cost_of_perfect_clusters_is_zero() {
        // Two disjoint triangles, each a cluster.
        let (mut g, ids) = DynGraph::with_nodes(6);
        for t in [&ids[0..3], &ids[3..6]] {
            g.insert_edge(t[0], t[1]).unwrap();
            g.insert_edge(t[1], t[2]).unwrap();
            g.insert_edge(t[2], t[0]).unwrap();
        }
        let c: Clustering = ids
            .iter()
            .enumerate()
            .map(|(i, &v)| (v, if i < 3 { ids[0] } else { ids[3] }))
            .collect();
        assert_eq!(c.cost(&g), 0);
    }

    #[test]
    fn singleton_clustering_cost_is_edge_count() {
        let (g, ids) = generators::cycle(5);
        let c: Clustering = ids.iter().map(|&v| (v, v)).collect();
        assert_eq!(c.cost(&g), 5);
    }

    #[test]
    fn one_big_cluster_cost_is_missing_edges() {
        let (g, ids) = generators::cycle(5);
        let c: Clustering = ids.iter().map(|&v| (v, ids[0])).collect();
        assert_eq!(c.cost(&g), 10 - 5);
    }

    #[test]
    fn from_mis_attaches_to_smallest_order_neighbor() {
        // Path p1 - p0 - p2 (star with center p0): order p1 < p2 < p0.
        let (g, ids) = generators::star(3);
        let pm = dmis_core::PriorityMap::from_order(&[ids[1], ids[2], ids[0]]);
        let mis = static_greedy::greedy_mis_dense(&g, &pm);
        assert_eq!(
            mis.iter().collect::<Vec<_>>(),
            vec![ids[1], ids[2]],
            "leaves are the MIS"
        );
        let c = from_mis(&g, &pm, &mis);
        assert_eq!(c.center_of(ids[0]), Some(ids[1]), "smallest-order MIS nbr");
        assert_eq!(c.center_of(ids[1]), Some(ids[1]));
    }

    #[test]
    fn from_mis_covers_random_graphs() {
        let mut rng = StdRng::seed_from_u64(2);
        for seed in 0..10u64 {
            let (g, _) = generators::erdos_renyi(15, 0.3, &mut rng);
            let mut pm = dmis_core::PriorityMap::new();
            let mut prio_rng = StdRng::seed_from_u64(seed);
            for v in g.nodes() {
                pm.assign(v, &mut prio_rng);
            }
            let mis = static_greedy::greedy_mis_dense(&g, &pm);
            let c = from_mis(&g, &pm, &mis);
            assert_eq!(c.len(), g.node_count());
            // Every center is an MIS node and its own center.
            for (v, center) in c.iter() {
                assert!(mis.contains(center));
                if mis.contains(v) {
                    assert_eq!(center, v);
                }
            }
            let _ = c.cost(&g); // must not panic
        }
    }

    #[test]
    fn canonical_blocks_ignore_center_names() {
        let a: Clustering = [(NodeId(1), NodeId(1)), (NodeId(2), NodeId(1))]
            .into_iter()
            .collect();
        let b: Clustering = [(NodeId(1), NodeId(2)), (NodeId(2), NodeId(2))]
            .into_iter()
            .collect();
        assert_eq!(a.canonical_blocks(), b.canonical_blocks());
    }

    #[test]
    #[should_panic(expected = "cover mismatch")]
    fn cost_requires_full_cover() {
        let (g, _) = generators::path(3);
        let c = Clustering::new();
        let _ = c.cost(&g);
    }

    #[test]
    fn removal_and_queries() {
        let mut c = Clustering::new();
        c.assign(NodeId(1), NodeId(2));
        assert!(c.same_cluster(NodeId(1), NodeId(1)));
        assert!(!c.same_cluster(NodeId(1), NodeId(9)));
        assert_eq!(c.remove(NodeId(1)), Some(NodeId(2)));
        assert!(c.is_empty());
    }
}
