use std::collections::BTreeSet;

use dmis_core::{DynamicMis, MisEngine, UpdateReceipt};
use dmis_graph::{DynGraph, GraphError, NodeId, NodeSet, TopologyChange};

use crate::{from_mis, Clustering};

/// Dynamically maintained correlation clustering: the pivot clustering of
/// the random-greedy MIS, updated incrementally as the topology changes.
///
/// The paper (Section 1.1): "This directly translates to our model, by
/// having the nodes know that random ID of their neighbors." After each MIS
/// update, only nodes adjacent to the adjusted MIS nodes — plus the nodes
/// touched by the change itself — can need re-attachment, so the
/// re-clustering cost is `O(Δ · |S|)` assignments.
///
/// # Example
///
/// ```
/// use dmis_cluster::DynamicClustering;
/// use dmis_graph::generators;
///
/// let (g, ids) = generators::cycle(6);
/// let mut dc = DynamicClustering::new(g, 3);
/// let before = dc.clustering().clone();
/// dc.apply(&dmis_graph::TopologyChange::DeleteEdge(ids[0], ids[1]))?;
/// // The clustering stays a valid cover with MIS centers.
/// assert_eq!(dc.clustering().len(), dc.graph().node_count());
/// # let _ = before;
/// # Ok::<(), dmis_graph::GraphError>(())
/// ```
#[derive(Debug, Clone)]
pub struct DynamicClustering {
    engine: MisEngine,
    clustering: Clustering,
}

impl DynamicClustering {
    /// Creates the structure over `graph` with engine seed `seed`.
    #[must_use]
    pub fn new(graph: DynGraph, seed: u64) -> Self {
        let engine = dmis_core::Engine::builder()
            .graph(graph)
            .seed(seed)
            .build_unsharded();
        let clustering = from_mis(
            engine.graph(),
            engine.priorities(),
            &engine.mis_iter().collect(),
        );
        DynamicClustering { engine, clustering }
    }

    /// The underlying MIS engine.
    #[must_use]
    pub fn engine(&self) -> &MisEngine {
        &self.engine
    }

    /// The current graph.
    #[must_use]
    pub fn graph(&self) -> &DynGraph {
        self.engine.graph()
    }

    /// The maintained clustering.
    #[must_use]
    pub fn clustering(&self) -> &Clustering {
        &self.clustering
    }

    /// Current correlation cost.
    #[must_use]
    pub fn cost(&self) -> usize {
        self.clustering.cost(self.engine.graph())
    }

    /// Applies a topology change, updating the MIS and re-attaching only the
    /// affected nodes. Returns the engine receipt and the set of nodes whose
    /// cluster label changed.
    ///
    /// # Errors
    ///
    /// Propagates [`GraphError`] if the change is invalid.
    pub fn apply(
        &mut self,
        change: &TopologyChange,
    ) -> Result<(UpdateReceipt, BTreeSet<NodeId>), GraphError> {
        let receipt = self.engine.apply(change)?;
        // Nodes whose attachment may change: the ones touched by the change
        // itself, every flipped node, and all their neighbors.
        let g = self.engine.graph();
        let mut dirty = NodeSet::new();
        let touch = |set: &mut NodeSet, v: NodeId| {
            if g.has_node(v) {
                set.insert(v);
                set.extend(g.neighbors(v).expect("live node"));
            }
        };
        match change {
            TopologyChange::InsertEdge(u, v) | TopologyChange::DeleteEdge(u, v) => {
                touch(&mut dirty, *u);
                touch(&mut dirty, *v);
            }
            TopologyChange::InsertNode { id, .. } => touch(&mut dirty, *id),
            TopologyChange::DeleteNode(v) => {
                // The victim's former neighbors may lose their center; we
                // cannot query them post-deletion, so fall back to all nodes
                // formerly adjacent — conservatively, nodes that currently
                // point at the deleted center, plus flipped regions below.
                let victim = *v;
                self.clustering.remove(victim);
                let orphans: Vec<NodeId> = self
                    .clustering
                    .iter()
                    .filter(|&(_, c)| c == victim)
                    .map(|(n, _)| n)
                    .collect();
                for o in orphans {
                    touch(&mut dirty, o);
                }
            }
        }
        for &(v, _) in receipt.flips() {
            touch(&mut dirty, v);
        }
        let mut relabelled = BTreeSet::new();
        for v in dirty.iter() {
            let new_center = self.attach(v);
            let old = self.clustering.center_of(v);
            if old != Some(new_center) {
                self.clustering.assign(v, new_center);
                relabelled.insert(v);
            }
        }
        Ok((receipt, relabelled))
    }

    fn attach(&self, v: NodeId) -> NodeId {
        let g = self.engine.graph();
        if self.engine.is_in_mis(v).expect("live node") {
            v
        } else {
            g.neighbors(v)
                .expect("live node")
                .filter(|&u| self.engine.is_in_mis(u).unwrap_or(false))
                .min_by_key(|&u| self.engine.priorities().of(u))
                .expect("maximality guarantees an MIS neighbor")
        }
    }

    /// Verifies the incremental clustering against a full recomputation.
    ///
    /// # Panics
    ///
    /// Panics if the incremental state diverged.
    pub fn assert_consistent(&self) {
        let fresh = from_mis(
            self.engine.graph(),
            self.engine.priorities(),
            &self.engine.mis_iter().collect(),
        );
        assert_eq!(
            self.clustering, fresh,
            "incremental clustering diverged from recomputation"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmis_graph::generators;
    use dmis_graph::stream::{self, ChurnConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn initial_state_is_consistent() {
        let mut rng = StdRng::seed_from_u64(1);
        let (g, _) = generators::erdos_renyi(20, 0.2, &mut rng);
        let dc = DynamicClustering::new(g, 5);
        dc.assert_consistent();
    }

    #[test]
    fn churn_keeps_clustering_consistent() {
        let mut rng = StdRng::seed_from_u64(2);
        let (g, _) = generators::erdos_renyi(16, 0.25, &mut rng);
        let mut dc = DynamicClustering::new(g, 7);
        for _ in 0..300 {
            let Some(change) = stream::random_change(dc.graph(), &ChurnConfig::default(), &mut rng)
            else {
                continue;
            };
            dc.apply(&change).unwrap();
            dc.assert_consistent();
        }
    }

    #[test]
    fn relabel_set_is_reported() {
        // Path with known order: delete the leading edge to cascade.
        let (g, ids) = generators::path(4);
        let pm = dmis_core::PriorityMap::from_order(&ids);
        let engine = dmis_core::Engine::builder()
            .graph(g)
            .priorities(pm)
            .seed(0)
            .build_unsharded();
        let clustering = from_mis(
            engine.graph(),
            engine.priorities(),
            &engine.mis_iter().collect(),
        );
        let mut dc = DynamicClustering { engine, clustering };
        let (receipt, relabelled) = dc
            .apply(&TopologyChange::DeleteEdge(ids[0], ids[1]))
            .unwrap();
        assert!(receipt.adjustments() > 0);
        assert!(!relabelled.is_empty());
        dc.assert_consistent();
    }

    #[test]
    fn node_deletion_reattaches_orphans() {
        let (g, ids) = generators::star(6);
        let pm = dmis_core::PriorityMap::from_order(&ids); // center first
        let engine = dmis_core::Engine::builder()
            .graph(g)
            .priorities(pm)
            .seed(0)
            .build_unsharded();
        let clustering = from_mis(
            engine.graph(),
            engine.priorities(),
            &engine.mis_iter().collect(),
        );
        let mut dc = DynamicClustering { engine, clustering };
        // All leaves belong to the center's cluster; delete the center.
        dc.apply(&TopologyChange::DeleteNode(ids[0])).unwrap();
        dc.assert_consistent();
        for &leaf in &ids[1..] {
            assert_eq!(dc.clustering().center_of(leaf), Some(leaf));
        }
    }

    #[test]
    fn cost_is_tracked() {
        let (g, _) = generators::cycle(6);
        let dc = DynamicClustering::new(g, 3);
        let cost = dc.cost();
        // A 6-cycle clustering by pivots costs at least 2.
        assert!(cost >= 2);
    }
}
