//! Exact correlation clustering by exhaustive search over set partitions.
//!
//! Used as the ground truth for approximation-ratio measurements
//! (experiment E5). Enumeration follows restricted-growth strings with
//! branch-and-bound on the partial cost, practical up to `n ≈ 11`
//! (Bell(11) = 678570 partitions before pruning).

use dmis_graph::{DynGraph, NodeId};

use crate::Clustering;

/// Upper bound on instance size accepted by [`optimal`].
pub const MAX_NODES: usize = 12;

/// Computes an optimal correlation clustering of `g` and its cost.
///
/// # Panics
///
/// Panics if `g` has more than [`MAX_NODES`] nodes.
#[must_use]
pub fn optimal(g: &DynGraph) -> (Clustering, usize) {
    let nodes: Vec<NodeId> = g.nodes().collect();
    let n = nodes.len();
    assert!(
        n <= MAX_NODES,
        "exhaustive search limited to {MAX_NODES} nodes, got {n}"
    );
    if n == 0 {
        return (Clustering::new(), 0);
    }
    // adjacency matrix for O(1) membership
    let mut adj = vec![vec![false; n]; n];
    for (i, &u) in nodes.iter().enumerate() {
        for (j, &v) in nodes.iter().enumerate() {
            if i != j {
                adj[i][j] = g.has_edge(u, v);
            }
        }
    }
    let mut assignment = vec![0usize; n]; // block index per node
    let mut best_assignment = vec![0usize; n];
    let mut best_cost = usize::MAX;
    search(
        1,
        1,
        0,
        &adj,
        &mut assignment,
        &mut best_assignment,
        &mut best_cost,
    );
    let mut clustering = Clustering::new();
    // Name each block by its smallest member.
    for (i, &v) in nodes.iter().enumerate() {
        let block = best_assignment[i];
        let center = nodes[best_assignment
            .iter()
            .position(|&b| b == block)
            .expect("block has a first member")];
        clustering.assign(v, center);
    }
    (clustering, best_cost)
}

/// Recursive enumeration: node `i` joins one of the `used` existing blocks
/// or opens block `used`. `cost` is the exact cost among nodes `0..i`.
fn search(
    i: usize,
    used: usize,
    cost: usize,
    adj: &[Vec<bool>],
    assignment: &mut [usize],
    best_assignment: &mut [usize],
    best_cost: &mut usize,
) {
    let n = adj.len();
    if cost >= *best_cost {
        return; // branch and bound
    }
    if i == n {
        *best_cost = cost;
        best_assignment.copy_from_slice(assignment);
        return;
    }
    for block in 0..=used.min(n - 1) {
        // Incremental cost of placing node i into `block`: disagreements
        // with all previously placed nodes.
        let mut delta = 0usize;
        for j in 0..i {
            let same = assignment[j] == block;
            if same != adj[i][j] {
                delta += 1;
            }
        }
        assignment[i] = block;
        let next_used = if block == used { used + 1 } else { used };
        search(
            i + 1,
            next_used,
            cost + delta,
            adj,
            assignment,
            best_assignment,
            best_cost,
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmis_graph::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn empty_and_single() {
        let (c, cost) = optimal(&DynGraph::new());
        assert_eq!(cost, 0);
        assert!(c.is_empty());
        let (g, _) = DynGraph::with_nodes(1);
        let (c, cost) = optimal(&g);
        assert_eq!(cost, 0);
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn clique_is_one_cluster() {
        let (g, _) = generators::complete(6);
        let (c, cost) = optimal(&g);
        assert_eq!(cost, 0);
        assert_eq!(c.clusters().len(), 1);
    }

    #[test]
    fn independent_set_is_singletons() {
        let (g, _) = DynGraph::with_nodes(6);
        let (c, cost) = optimal(&g);
        assert_eq!(cost, 0);
        assert_eq!(c.clusters().len(), 6);
    }

    #[test]
    fn path_of_three_costs_one() {
        // p0-p1-p2: best is {p0,p1},{p2} (or symmetric), cost 1.
        let (g, ids) = generators::path(3);
        let (c, cost) = optimal(&g);
        assert_eq!(cost, 1);
        assert_eq!(c.cost(&g), 1);
        let _ = ids;
    }

    #[test]
    fn five_cycle_costs_three() {
        // C5: e.g. {0,1},{2,3},{4} pays the 3 cut edges; no partition does
        // better (singletons and the big cluster both pay 5).
        let (g, _) = generators::cycle(5);
        let (c, cost) = optimal(&g);
        assert_eq!(cost, 3);
        assert_eq!(c.cost(&g), cost);
    }

    #[test]
    fn optimum_cost_matches_reported_clustering() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10 {
            let (g, _) = generators::erdos_renyi(7, 0.4, &mut rng);
            let (c, cost) = optimal(&g);
            assert_eq!(c.cost(&g), cost);
        }
    }

    #[test]
    fn optimum_is_at_most_any_candidate() {
        let mut rng = StdRng::seed_from_u64(8);
        for seed in 0..8u64 {
            let (g, ids) = generators::erdos_renyi(7, 0.5, &mut rng);
            let (_, opt) = optimal(&g);
            // Candidates: singletons and one-big-cluster.
            let singletons: Clustering = ids.iter().map(|&v| (v, v)).collect();
            let big: Clustering = ids.iter().map(|&v| (v, ids[0])).collect();
            assert!(opt <= singletons.cost(&g));
            assert!(opt <= big.cost(&g));
            let _ = seed;
        }
    }

    #[test]
    #[should_panic(expected = "exhaustive search limited")]
    fn size_guard() {
        let (g, _) = DynGraph::with_nodes(MAX_NODES + 1);
        let _ = optimal(&g);
    }
}
