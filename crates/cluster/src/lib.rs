//! # dmis-cluster
//!
//! Correlation clustering on top of the dynamic random-greedy MIS.
//!
//! Ailon, Charikar and Newman showed that *random greedy* — pick a uniformly
//! random pivot order, let each MIS node open a cluster, and attach every
//! other node to its smallest-order MIS neighbor — is a **3-approximation**
//! for correlation clustering (minimizing missing edges inside clusters plus
//! present edges across clusters). The paper (Section 1.1) observes that its
//! dynamic MIS algorithm maintains exactly this clustering under topology
//! changes, at the same single-adjustment cost, "by having the nodes know
//! the random ID of their neighbors".
//!
//! This crate provides:
//!
//! - [`Clustering`]: a partition of the node set with the correlation
//!   [`Clustering::cost`] objective;
//! - [`from_mis`]: the pivot attachment rule;
//! - [`DynamicClustering`]: incremental maintenance driven by
//!   [`dmis_core::MisEngine`] receipts;
//! - [`exact`]: an exact optimum by exhaustive partition search (small
//!   instances), used by experiment E5 to measure approximation ratios.

#![forbid(unsafe_code)]
#![deny(deprecated)]
#![warn(missing_docs)]

mod clustering;
mod dynamic;

pub mod exact;

pub use clustering::{from_mis, Clustering};
pub use dynamic::DynamicClustering;
