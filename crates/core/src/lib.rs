//! # dmis-core
//!
//! The primary contribution of *Optimal Dynamic Distributed MIS*
//! (Censor-Hillel, Haramaty, Karnin, PODC 2016): maintaining a maximal
//! independent set under fully dynamic topology changes by simulating the
//! greedy sequential MIS algorithm over a uniformly random node order π.
//!
//! The paper's central guarantee (Theorem 1) is that the *influenced set*
//! `S` — the nodes that change output as a consequence of a single topology
//! change — has expected size at most 1, over the randomness of π. This
//! crate provides:
//!
//! - [`Priority`] / [`PriorityMap`]: the random order π, realized as a
//!   uniformly random 64-bit key per node with identifier tie-break, and
//!   [`RankIndex`]: its dense `u32` rank compression, which lets every
//!   settle loop run on a word-parallel bitset front
//!   ([`dmis_graph::RankFront`]) instead of a per-update heap — the heap
//!   drain is retained behind [`SettleStrategy`] as the bitwise
//!   reference;
//! - [`MisEngine`]: an efficient incremental maintainer of the random-greedy
//!   MIS (the "sequential dynamic" realization of the paper's template,
//!   Algorithm 1), reporting per-update [`UpdateReceipt`]s with the
//!   adjustment set and work counters;
//! - [`ShardedMisEngine`]: the same engine partitioned into K shards by
//!   `NodeId` range ([`dmis_graph::ShardLayout`]), settling each shard
//!   locally in barrier-synchronized epochs and exchanging cross-shard
//!   cascades as handoffs — bit-identical output, with the coordination
//!   traffic audited on every receipt;
//! - [`ParallelShardedMisEngine`]: the sharded engine with each epoch's
//!   independent shard runs executed on worker threads — deterministically
//!   bit-identical to the sequential coordinator for every layout and
//!   thread count;
//! - [`MisReader`] / [`MisSnapshot`] ([`snapshot`]): the epoch-versioned
//!   concurrent read path — every settle publishes the quiesced membership
//!   at its flush boundary, and cheaply-cloneable `Send + Sync` reader
//!   handles observe exactly those published states from other threads;
//! - [`durability`]: checkpoint/WAL persistence over an injectable
//!   storage trait, crash recovery that replays the log suffix to a
//!   bit-identical engine, and the in-memory
//!   [`verify_and_repair`](DynamicMis::verify_and_repair) healing tier;
//! - [`template`]: a faithful round-by-round simulation of the template,
//!   which records the full influenced set `S` including nodes that flip and
//!   flip back (the `u₂` example of Section 3), the number of parallel
//!   rounds, and the total number of state changes;
//! - [`static_greedy`]: the from-scratch greedy oracle used for
//!   history-independence checks;
//! - [`invariant`]: verifiers for the MIS invariant;
//! - [`theory`]: the `S'` construction of Section 3 (v* forced minimal),
//!   enabling machine-checking of Lemma 2 on random instances.
//!
//! # The MIS invariant
//!
//! A node `v` is in the MIS **iff** none of its neighbors `u` with
//! `π(u) < π(v)` is in the MIS. The unique assignment satisfying this is the
//! output of sequential greedy on π, which makes the algorithm *history
//! independent* (Section 5): the output distribution on a graph `G` depends
//! only on `G`, never on the change sequence that produced it.
//!
//! # Example
//!
//! ```
//! use dmis_core::Engine;
//! use dmis_graph::generators;
//!
//! let (g, ids) = generators::path(5);
//! let mut engine = Engine::builder().graph(g).seed(42).build_unsharded();
//! assert!(engine.check_invariant().is_ok());
//!
//! // A single change adjusts, in expectation, a single node.
//! let receipt = engine.remove_edge(ids[1], ids[2])?;
//! assert!(engine.check_invariant().is_ok());
//! println!("adjustments: {}", receipt.adjustments());
//! # Ok::<(), dmis_graph::GraphError>(())
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod engine;
mod priority;
mod receipt;
mod state;

pub mod api;
pub mod durability;
pub mod invariant;
pub mod parallel;
pub mod policy;
pub mod rank;
pub mod sharding;
pub mod snapshot;
pub mod static_greedy;
pub mod template;
pub mod theory;

pub use api::{ChangeCoalescer, DynamicMis, Engine, EngineBuilder, IngestReceipt, IngestSession};
pub use engine::{MisEngine, SettleStrategy};
pub use parallel::ParallelShardedMisEngine;
pub use policy::{AdaptiveConfig, Clock, FlushPolicy, ManualClock, MonotonicClock, QueueDelay};
pub use priority::{Priority, PriorityMap};
pub use rank::RankIndex;
pub use receipt::{BatchReceipt, UpdateReceipt};
pub use sharding::ShardedMisEngine;
pub use snapshot::{MisReader, MisSnapshot, SnapshotIter};
pub use state::MisState;
