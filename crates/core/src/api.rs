//! The unified engine API: one trait, one builder, one ingestion queue.
//!
//! Before this layer existed, the paper's update/query surface was
//! hand-copied three times — once per engine — and every consumer (the
//! equivalence suites, the bench harnesses, the simulator runners) was
//! monomorphized against one concrete engine by copy-paste. This module
//! collapses that:
//!
//! - [`DynamicMis`] is the object-safe trait capturing the full
//!   update/receipt/query surface shared by [`crate::MisEngine`],
//!   [`crate::ShardedMisEngine`], and
//!   [`crate::ParallelShardedMisEngine`]. The convenience layer that used
//!   to be triplicated (`apply` dispatch, `insert_node` key draws,
//!   [`DynamicMis::mis`]'s ordered-set materialization, `state`) lives
//!   here once, as provided methods over the engines' primitives.
//! - [`Engine`] / [`EngineBuilder`] replace the three divergent
//!   `new`/`from_graph`/`from_parts` constructor families with one
//!   axis-based builder: every engine flavor is a point in
//!   (seed, graph, π, sharding, threads, spawn threshold, settle
//!   strategy) space, and [`EngineBuilder::build`] picks the cheapest
//!   engine that realizes the configured axes behind a
//!   `Box<dyn DynamicMis>`.
//! - [`IngestSession`] is the change-ingestion queue the ROADMAP's
//!   async-batching item asked for: [`IngestSession::push`] coalesces the
//!   adversary's stream (opposing changes on the same edge cancel,
//!   duplicate changes collapse last-writer-wins), and
//!   [`IngestSession::flush`] settles one merged batch, returning a
//!   [`BatchReceipt`] extended with the number of coalesced-away changes
//!   and the window's queue-delay accounting ([`IngestReceipt`]). *When*
//!   a session auto-flushes is a pluggable [`FlushPolicy`] — depth
//!   watermark, deadline, either, or the adaptive smoother — evaluated
//!   against an injectable [`crate::policy::Clock`]; see [`crate::policy`]
//!   for the decision semantics and determinism story. The queue-depth
//!   axis is what experiment E12 sweeps.
//!
//! # Why receipts stay comparable
//!
//! Coalescing never changes the net topology of a flush: an
//! insert+delete pair on the same edge is a topological no-op, and the
//! maintained MIS is *history independent* (Section 5 of the paper), so
//! the settled output — and hence the receipt's flip log, which reports
//! net first-touch-vs-final flips — depends only on the net topology.
//! What coalescing does change is the *work counters* (fewer settle pops,
//! fewer counter updates): that delta is exactly the measurement the
//! ingestion queue exists to expose, and the property suite
//! (`crates/core/tests/ingest_session.rs`) pins both halves — flips
//! identical to the raw stream, work identical to `apply_batch` of the
//! coalesced stream — for K ∈ {1, 2, 4} shards × {1, 2} threads.

use std::collections::BTreeMap;
use std::collections::BTreeSet;
use std::sync::Arc;
use std::time::Duration;

use dmis_graph::{DynGraph, EdgeKey, GraphError, NodeId, ShardLayout, TopologyChange};

use crate::invariant::InvariantViolation;
use crate::policy::{Clock, FlushController, FlushPolicy, MonotonicClock, QueueDelay};
use crate::{
    BatchReceipt, MisEngine, MisState, ParallelShardedMisEngine, PriorityMap, SettleStrategy,
    ShardedMisEngine, UpdateReceipt,
};

/// The full surface of a dynamic-MIS maintainer: topology updates that
/// return auditable [`UpdateReceipt`]s, batched updates, and the query
/// side (membership, iteration, invariant checks).
///
/// The trait is **object safe** — `Box<dyn DynamicMis>` is a first-class
/// engine, which is what lets one equivalence suite, one bench harness,
/// and one simulator runner drive all three engines through a single code
/// path. Iterator-returning queries box their iterators for that reason;
/// [`DynamicMis::mis`]'s `BTreeSet` materialization is a convenience
/// built on [`DynamicMis::mis_iter`] (metering loops should prefer
/// `mis_iter`/[`DynamicMis::mis_len`], which never allocate).
///
/// All three engines are implementations; they are observationally
/// equivalent on every change stream (same seed ⇒ same MIS, same
/// adjustment sets), which the trait-conformance suite
/// (`crates/core/tests/trait_conformance.rs`) pins through `dyn
/// DynamicMis` alone.
///
/// # Example
///
/// ```
/// use dmis_core::{DynamicMis, Engine};
/// use dmis_graph::{generators, ShardLayout};
///
/// let (g, ids) = generators::cycle(8);
/// let mut engine = Engine::builder().graph(g).seed(7).sharding(ShardLayout::striped(2)).build();
/// let receipt = engine.insert_edge(ids[0], ids[2])?;
/// assert!(engine.check_invariant().is_ok());
/// assert_eq!(engine.mis().len(), engine.mis_len());
/// println!("adjustments: {}", receipt.adjustments());
/// # Ok::<(), dmis_graph::GraphError>(())
/// ```
pub trait DynamicMis: std::fmt::Debug {
    /// Inserts the edge `{u, v}` and restores the MIS invariant.
    ///
    /// # Errors
    ///
    /// Propagates [`GraphError`] from the underlying graph operation; on
    /// error the engine is unchanged.
    fn insert_edge(&mut self, u: NodeId, v: NodeId) -> Result<UpdateReceipt, GraphError>;

    /// Removes the edge `{u, v}` and restores the MIS invariant.
    ///
    /// # Errors
    ///
    /// Propagates [`GraphError`] from the underlying graph operation; on
    /// error the engine is unchanged.
    fn remove_edge(&mut self, u: NodeId, v: NodeId) -> Result<UpdateReceipt, GraphError>;

    /// Inserts a new node wired to `neighbors` with a *prescribed* random
    /// key (derandomized baselines and adversarial tests); see
    /// [`DynamicMis::insert_node`] for the drawing entry point.
    ///
    /// # Errors
    ///
    /// Propagates [`GraphError`] if a neighbor is missing or repeated; on
    /// error the engine is unchanged.
    fn insert_node_with_key(
        &mut self,
        neighbors: &[NodeId],
        key: u64,
    ) -> Result<(NodeId, UpdateReceipt), GraphError>;

    /// Removes node `v` and restores the MIS invariant. The receipt's
    /// flips cover the *remaining* nodes; the departure of `v` itself is
    /// implied by the change.
    ///
    /// # Errors
    ///
    /// Propagates [`GraphError`] if `v` does not exist.
    fn remove_node(&mut self, v: NodeId) -> Result<UpdateReceipt, GraphError>;

    /// Applies a **batch** of topology changes atomically: all graph
    /// mutations land first, then a single propagation pass restores the
    /// MIS invariant (see [`crate::MisEngine::apply_batch`] for the full
    /// contract).
    ///
    /// # Errors
    ///
    /// Returns the first [`GraphError`] encountered. Changes before the
    /// failing one remain applied and the invariant is restored for
    /// them; the failing and subsequent changes are not applied.
    fn apply_batch(&mut self, changes: &[TopologyChange]) -> Result<BatchReceipt, GraphError>;

    /// Draws the next random priority key from the engine's seeded
    /// stream — the draw [`DynamicMis::insert_node`] consumes. Exposed so
    /// the key-drawing convenience can live on the trait once instead of
    /// being copied into every implementation; same seed ⇒ same draw
    /// sequence across all engines, which is what keeps them
    /// step-for-step comparable. Hidden from the documented surface:
    /// calling it directly consumes a draw and desynchronizes the engine
    /// from any same-seed twin — it exists only to feed
    /// [`DynamicMis::insert_node`].
    #[doc(hidden)]
    fn draw_key(&mut self) -> u64;

    /// Returns the current graph.
    fn graph(&self) -> &DynGraph;

    /// Returns the priority assignment π.
    fn priorities(&self) -> &PriorityMap;

    /// Iterates over the current MIS in identifier order without
    /// allocating a set.
    fn mis_iter(&self) -> Box<dyn Iterator<Item = NodeId> + '_>;

    /// Size of the current MIS without materializing it.
    fn mis_len(&self) -> usize;

    /// Returns whether `v` is in the MIS, or `None` if `v` does not
    /// exist.
    fn is_in_mis(&self, v: NodeId) -> Option<bool>;

    /// Which dirty-queue realization the settle loop drains.
    fn settle_strategy(&self) -> SettleStrategy;

    /// Selects the dirty-queue realization. Purely a
    /// performance/verification knob: outputs and receipts are
    /// bit-identical for both settings.
    fn set_settle_strategy(&mut self, strategy: SettleStrategy);

    /// Returns a cheaply-cloneable, `Send + Sync` concurrent read
    /// handle over the engine's published MIS snapshots, attaching the
    /// epoch-versioned publication layer on first call: the current
    /// membership becomes epoch 0, and every subsequent settle — each
    /// single change, `apply_batch`, or [`IngestSession`] flush —
    /// publishes the next epoch at its quiesced flush boundary. Readers
    /// on other threads observe exactly those published states, never a
    /// half-settled intermediate; see [`crate::snapshot`] for the full
    /// contract. Until first call, the settle path pays nothing.
    fn reader(&mut self) -> crate::MisReader;

    /// Scans every live node for corrupted membership/counter state and
    /// heals what it finds with the template's self-stabilizing local
    /// rule — O(k·Δ) settle work beyond one O(n + m) detection sweep
    /// for k corrupted nodes, instead of a full rebuild, and the healed
    /// state is bit-identical to an engine that was never corrupted.
    /// See [`crate::MisEngine::verify_and_repair`] for the algorithm
    /// and convergence argument; the returned report meters the
    /// repair-vs-rebuild trade that E13's engine tier plots.
    fn verify_and_repair(&mut self) -> crate::durability::RepairReport;

    /// Test-only fault injector behind the repair tier: flips the
    /// membership bit of each live victim *without* touching counters —
    /// the E13 corruption model at the engine tier. Returns how many
    /// victims were live (and therefore flipped). Hidden: corrupting
    /// state is only meaningful to the fault-injection suites.
    #[doc(hidden)]
    fn corrupt_in_mis(&mut self, victims: &[NodeId]) -> usize;

    /// Checkpoint-time metadata — flavor, shard layout, RNG position,
    /// published epoch — that [`crate::durability::Checkpoint`]
    /// serializes. Hidden: only the durability layer consumes it.
    #[doc(hidden)]
    fn durability_meta(&self) -> crate::durability::DurabilityMeta;

    /// Recovery-time re-attach of the snapshot publication channel at a
    /// prescribed epoch (instead of the usual 0), so readers resuming
    /// after a crash never observe a regressed epoch. Hidden: only
    /// [`crate::durability::recover`] calls it, on a freshly built
    /// engine before [`DynamicMis::reader`].
    #[doc(hidden)]
    fn restore_epoch(&mut self, epoch: u64);

    /// Verifies the MIS invariant over the whole graph.
    ///
    /// # Errors
    ///
    /// Returns the first violation found.
    fn check_invariant(&self) -> Result<(), InvariantViolation>;

    /// Verifies every internal bookkeeping structure against a
    /// from-scratch recomputation. Intended for tests.
    ///
    /// # Panics
    ///
    /// Panics if any counter, rank, or state diverged.
    fn assert_internally_consistent(&self);

    /// [`Self::check_invariant`] restricted to a deterministic sample of
    /// roughly `sample` nodes (see [`crate::invariant::sampled_nodes`]) —
    /// O(sample · avg-degree) instead of O(n + m), so a per-update debug
    /// assertion stays affordable at 10^6 nodes. A violation at a
    /// sampled node is a genuine violation; a passing sample is
    /// evidence, not proof — vary `seed` across updates to sweep the
    /// whole graph over time.
    ///
    /// # Errors
    ///
    /// Returns the first violation found among sampled nodes.
    fn check_invariant_sampled(&self, sample: usize, seed: u64) -> Result<(), InvariantViolation> {
        let members: dmis_graph::NodeSet = self.mis_iter().collect();
        crate::invariant::check_mis_invariant_sampled(
            self.graph(),
            self.priorities(),
            &members,
            sample,
            seed,
        )
    }

    /// Sampled counterpart of [`Self::assert_internally_consistent`]:
    /// cheap global facts are checked exactly, expensive per-node
    /// recomputation only for ~`sample` deterministically chosen nodes.
    /// Engines override this with checks against their native
    /// bookkeeping; the default verifies the sampled invariant.
    ///
    /// # Panics
    ///
    /// Panics if a sampled node violates the invariant.
    fn assert_internally_consistent_sampled(&self, sample: usize, seed: u64) {
        if let Err(violation) = self.check_invariant_sampled(sample, seed) {
            panic!("sampled invariant check failed: {violation}");
        }
    }

    /// Inserts a new node wired to `neighbors`, drawing its priority from
    /// the engine's seeded stream, and restores the MIS invariant.
    ///
    /// # Errors
    ///
    /// Propagates [`GraphError`] if a neighbor is missing or repeated; on
    /// error the engine is unchanged (the drawn key is still consumed).
    fn insert_node(&mut self, neighbors: &[NodeId]) -> Result<(NodeId, UpdateReceipt), GraphError> {
        let key = self.draw_key();
        self.insert_node_with_key(neighbors, key)
    }

    /// Applies a described [`TopologyChange`] — the dispatch that used to
    /// be hand-copied into every engine.
    ///
    /// # Errors
    ///
    /// Propagates [`GraphError`]; for [`TopologyChange::InsertNode`] the
    /// pre-assigned identifier must equal [`DynGraph::peek_next_id`],
    /// else [`GraphError::MissingNode`] is returned.
    fn apply(&mut self, change: &TopologyChange) -> Result<UpdateReceipt, GraphError> {
        match change {
            TopologyChange::InsertEdge(u, v) => self.insert_edge(*u, *v),
            TopologyChange::DeleteEdge(u, v) => self.remove_edge(*u, *v),
            TopologyChange::InsertNode { id, edges } => {
                if self.graph().peek_next_id() != *id {
                    return Err(GraphError::MissingNode(*id));
                }
                self.insert_node(edges).map(|(_, r)| r)
            }
            TopologyChange::DeleteNode(v) => self.remove_node(*v),
        }
    }

    /// Returns the current MIS as an ordered set of node identifiers — a
    /// convenience over [`DynamicMis::mis_iter`]. Allocates; metering
    /// loops that only need the members or the cardinality should use
    /// `mis_iter`/[`DynamicMis::mis_len`].
    fn mis(&self) -> BTreeSet<NodeId> {
        self.mis_iter().collect()
    }

    /// Returns the output state of `v`, or `None` if `v` does not exist.
    fn state(&self, v: NodeId) -> Option<MisState> {
        self.is_in_mis(v).map(MisState::from_membership)
    }
}

/// Implements [`DynamicMis`] for an engine by forwarding every required
/// method to a target expression — `self` for the engines that own the
/// primitives, `self.inner` for wrappers. This macro is what keeps the
/// trait's 16-method surface from being hand-copied per engine (the
/// pre-trait state of the codebase).
macro_rules! forward_dynamic_mis {
    ($ty:ty, |$s:ident| $t:expr) => {
        impl crate::DynamicMis for $ty {
            fn insert_edge(
                &mut self,
                u: dmis_graph::NodeId,
                v: dmis_graph::NodeId,
            ) -> Result<crate::UpdateReceipt, dmis_graph::GraphError> {
                let $s = self;
                $t.insert_edge(u, v)
            }
            fn remove_edge(
                &mut self,
                u: dmis_graph::NodeId,
                v: dmis_graph::NodeId,
            ) -> Result<crate::UpdateReceipt, dmis_graph::GraphError> {
                let $s = self;
                $t.remove_edge(u, v)
            }
            fn insert_node_with_key(
                &mut self,
                neighbors: &[dmis_graph::NodeId],
                key: u64,
            ) -> Result<(dmis_graph::NodeId, crate::UpdateReceipt), dmis_graph::GraphError> {
                let $s = self;
                $t.insert_node_with_key(neighbors.iter().copied(), key)
            }
            fn remove_node(
                &mut self,
                v: dmis_graph::NodeId,
            ) -> Result<crate::UpdateReceipt, dmis_graph::GraphError> {
                let $s = self;
                $t.remove_node(v)
            }
            fn apply_batch(
                &mut self,
                changes: &[dmis_graph::TopologyChange],
            ) -> Result<crate::BatchReceipt, dmis_graph::GraphError> {
                let $s = self;
                $t.apply_batch(changes)
            }
            fn draw_key(&mut self) -> u64 {
                let $s = self;
                $t.draw_key()
            }
            fn graph(&self) -> &dmis_graph::DynGraph {
                let $s = self;
                $t.graph()
            }
            fn priorities(&self) -> &crate::PriorityMap {
                let $s = self;
                $t.priorities()
            }
            fn mis_iter(&self) -> Box<dyn Iterator<Item = dmis_graph::NodeId> + '_> {
                let $s = self;
                Box::new($t.mis_iter())
            }
            fn mis_len(&self) -> usize {
                let $s = self;
                $t.mis_len()
            }
            fn is_in_mis(&self, v: dmis_graph::NodeId) -> Option<bool> {
                let $s = self;
                $t.is_in_mis(v)
            }
            fn settle_strategy(&self) -> crate::SettleStrategy {
                let $s = self;
                $t.settle_strategy()
            }
            fn set_settle_strategy(&mut self, strategy: crate::SettleStrategy) {
                let $s = self;
                $t.set_settle_strategy(strategy);
            }
            fn reader(&mut self) -> crate::MisReader {
                let $s = self;
                $t.reader()
            }
            fn verify_and_repair(&mut self) -> crate::durability::RepairReport {
                let $s = self;
                $t.verify_and_repair()
            }
            fn corrupt_in_mis(&mut self, victims: &[dmis_graph::NodeId]) -> usize {
                let $s = self;
                $t.corrupt_in_mis(victims)
            }
            fn durability_meta(&self) -> crate::durability::DurabilityMeta {
                let $s = self;
                $t.durability_meta()
            }
            fn restore_epoch(&mut self, epoch: u64) {
                let $s = self;
                $t.restore_epoch(epoch);
            }
            fn check_invariant(&self) -> Result<(), crate::invariant::InvariantViolation> {
                let $s = self;
                $t.check_invariant()
            }
            fn assert_internally_consistent(&self) {
                let $s = self;
                $t.assert_internally_consistent();
            }
            fn check_invariant_sampled(
                &self,
                sample: usize,
                seed: u64,
            ) -> Result<(), crate::invariant::InvariantViolation> {
                let $s = self;
                $t.check_invariant_sampled(sample, seed)
            }
            fn assert_internally_consistent_sampled(&self, sample: usize, seed: u64) {
                let $s = self;
                $t.assert_internally_consistent_sampled(sample, seed);
            }
        }
    };
}
pub(crate) use forward_dynamic_mis;

/// Forwards [`DynamicMis`] through a smart-pointer-like wrapper (`&mut
/// T`, `Box<T>`): what lets [`IngestSession`] own its engine *or* borrow
/// one, depending on how it was opened, behind a single type parameter.
/// The deref targets may themselves be unsized (`dyn DynamicMis`), so
/// boxed engines from [`EngineBuilder::build`] plug in directly.
macro_rules! forward_dynamic_mis_deref {
    ($(<$generic:ident> $ty:ty),+ $(,)?) => {$(
        impl<$generic: DynamicMis + ?Sized> DynamicMis for $ty {
            fn insert_edge(&mut self, u: NodeId, v: NodeId) -> Result<UpdateReceipt, GraphError> {
                (**self).insert_edge(u, v)
            }
            fn remove_edge(&mut self, u: NodeId, v: NodeId) -> Result<UpdateReceipt, GraphError> {
                (**self).remove_edge(u, v)
            }
            fn insert_node_with_key(
                &mut self,
                neighbors: &[NodeId],
                key: u64,
            ) -> Result<(NodeId, UpdateReceipt), GraphError> {
                (**self).insert_node_with_key(neighbors, key)
            }
            fn remove_node(&mut self, v: NodeId) -> Result<UpdateReceipt, GraphError> {
                (**self).remove_node(v)
            }
            fn apply_batch(
                &mut self,
                changes: &[TopologyChange],
            ) -> Result<BatchReceipt, GraphError> {
                (**self).apply_batch(changes)
            }
            fn draw_key(&mut self) -> u64 {
                (**self).draw_key()
            }
            fn graph(&self) -> &DynGraph {
                (**self).graph()
            }
            fn priorities(&self) -> &PriorityMap {
                (**self).priorities()
            }
            fn mis_iter(&self) -> Box<dyn Iterator<Item = NodeId> + '_> {
                (**self).mis_iter()
            }
            fn mis_len(&self) -> usize {
                (**self).mis_len()
            }
            fn is_in_mis(&self, v: NodeId) -> Option<bool> {
                (**self).is_in_mis(v)
            }
            fn settle_strategy(&self) -> SettleStrategy {
                (**self).settle_strategy()
            }
            fn set_settle_strategy(&mut self, strategy: SettleStrategy) {
                (**self).set_settle_strategy(strategy);
            }
            fn reader(&mut self) -> crate::MisReader {
                (**self).reader()
            }
            fn verify_and_repair(&mut self) -> crate::durability::RepairReport {
                (**self).verify_and_repair()
            }
            fn corrupt_in_mis(&mut self, victims: &[NodeId]) -> usize {
                (**self).corrupt_in_mis(victims)
            }
            fn durability_meta(&self) -> crate::durability::DurabilityMeta {
                (**self).durability_meta()
            }
            fn restore_epoch(&mut self, epoch: u64) {
                (**self).restore_epoch(epoch);
            }
            fn check_invariant(&self) -> Result<(), InvariantViolation> {
                (**self).check_invariant()
            }
            fn assert_internally_consistent(&self) {
                (**self).assert_internally_consistent();
            }
            fn check_invariant_sampled(
                &self,
                sample: usize,
                seed: u64,
            ) -> Result<(), InvariantViolation> {
                (**self).check_invariant_sampled(sample, seed)
            }
            fn assert_internally_consistent_sampled(&self, sample: usize, seed: u64) {
                (**self).assert_internally_consistent_sampled(sample, seed);
            }
        }
    )+};
}

forward_dynamic_mis_deref!(<T> &mut T, <T> Box<T>);

/// Namespace for [`Engine::builder`] — the single entry point that
/// replaces the per-engine `new`/`from_graph`/`from_parts` constructor
/// families (kept as deprecated thin shims; see the README migration
/// table).
#[derive(Debug, Clone, Copy)]
pub struct Engine;

impl Engine {
    /// Starts building an engine; see [`EngineBuilder`].
    #[must_use]
    pub fn builder() -> EngineBuilder {
        EngineBuilder::default()
    }
}

/// Axis-based engine construction.
///
/// Every engine flavor in the workspace is a point in the configuration
/// space (seed, graph, π, sharding, threads, spawn threshold, settle
/// strategy). The builder replaces the three divergent constructor
/// families with one fluent path:
///
/// ```
/// use dmis_core::{DynamicMis, Engine, SettleStrategy};
/// use dmis_graph::{generators, ShardLayout};
///
/// let (g, _) = generators::cycle(12);
/// // Boxed: the builder picks the cheapest engine realizing the axes.
/// let engine = Engine::builder()
///     .graph(g.clone())
///     .seed(9)
///     .sharding(ShardLayout::striped(4))
///     .threads(2)
///     .spawn_threshold(0)
///     .settle_strategy(SettleStrategy::RankFront)
///     .build();
/// assert_eq!(engine.mis_len(), Engine::builder().graph(g).seed(9).build().mis_len());
/// ```
///
/// Typed escape hatches ([`EngineBuilder::build_unsharded`],
/// [`EngineBuilder::build_sharded`], [`EngineBuilder::build_parallel`])
/// return concrete engines when the caller needs engine-specific knobs;
/// they panic on contradictory axes (e.g. `threads` on an unsharded
/// build) instead of silently ignoring them.
#[derive(Debug, Clone, Default)]
pub struct EngineBuilder {
    seed: u64,
    graph: Option<DynGraph>,
    priorities: Option<PriorityMap>,
    sharding: Option<ShardLayout>,
    threads: Option<usize>,
    spawn_threshold: Option<usize>,
    strategy: SettleStrategy,
    capacity: Option<usize>,
}

impl EngineBuilder {
    /// Seed determinizing all priority draws. Same seed ⇒ same draws on
    /// every engine flavor. Defaults to 0.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Initial graph; fresh priorities are drawn for all its nodes
    /// unless [`EngineBuilder::priorities`] prescribes them. Defaults to
    /// the empty graph.
    #[must_use]
    pub fn graph(mut self, graph: DynGraph) -> Self {
        self.graph = Some(graph);
        self
    }

    /// Prescribed priorities for the initial graph (tests and
    /// adversarial constructions). Requires [`EngineBuilder::graph`].
    #[must_use]
    pub fn priorities(mut self, priorities: PriorityMap) -> Self {
        self.priorities = Some(priorities);
        self
    }

    /// Partitions the engine's per-node state into the layout's shards
    /// ([`crate::ShardedMisEngine`]).
    #[must_use]
    pub fn sharding(mut self, layout: ShardLayout) -> Self {
        self.sharding = Some(layout);
        self
    }

    /// Executes settle epochs on up to `threads` worker threads
    /// ([`crate::ParallelShardedMisEngine`]); implies a sharded engine
    /// (defaulting to [`ShardLayout::single`] if no sharding axis is
    /// set).
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = Some(threads);
        self
    }

    /// Pending-work floor below which an epoch drains inline even when
    /// threads are configured; implies a parallel engine. See
    /// [`ParallelShardedMisEngine::set_spawn_threshold`].
    #[must_use]
    pub fn spawn_threshold(mut self, threshold: usize) -> Self {
        self.spawn_threshold = Some(threshold);
        self
    }

    /// Which dirty-queue realization the settle loops drain; see
    /// [`SettleStrategy`]. Defaults to [`SettleStrategy::RankFront`].
    #[must_use]
    pub fn settle_strategy(mut self, strategy: SettleStrategy) -> Self {
        self.strategy = strategy;
        self
    }

    /// Pre-sizes every per-node structure for `n` nodes, so a bootstrap
    /// of up to `n` insertions performs no incremental regrows (verified
    /// by the engines' `storage_regrows()` debug counter). Purely a
    /// performance knob: outputs and receipts are unaffected. Defaults
    /// to no pre-sizing.
    #[must_use]
    pub fn capacity(mut self, n: usize) -> Self {
        self.capacity = Some(n);
        self
    }

    /// Builds the cheapest engine realizing every configured axis, as a
    /// trait object: parallel if `threads`/`spawn_threshold` was set,
    /// sharded if `sharding` was, unsharded otherwise. The box is `Send`,
    /// so built engines can migrate across threads.
    #[must_use]
    pub fn build(self) -> Box<dyn DynamicMis + Send> {
        if self.threads.is_some() || self.spawn_threshold.is_some() {
            Box::new(self.build_parallel())
        } else if self.sharding.is_some() {
            Box::new(self.build_sharded())
        } else {
            Box::new(self.build_unsharded())
        }
    }

    /// [`EngineBuilder::build`] plus an attached [`crate::MisReader`]:
    /// the boxed engine with its snapshot publication layer already
    /// live (the initial state published as epoch 0) and one read
    /// handle onto it. Clone the handle for additional reader threads;
    /// `engine.reader()` hands out more at any time.
    #[must_use]
    pub fn build_with_reader(self) -> (Box<dyn DynamicMis + Send>, crate::MisReader) {
        let mut engine = self.build();
        let reader = engine.reader();
        (engine, reader)
    }

    /// [`EngineBuilder::build`] wrapped in a configured
    /// [`IngestSession`]: the boxed engine and its change-ingestion
    /// queue come from one call (mirroring
    /// [`EngineBuilder::build_with_reader`]), with `policy` deciding
    /// when windows flush. The session **owns** the engine; reach it
    /// through [`IngestSession::engine`] / [`IngestSession::engine_mut`]
    /// (e.g. to attach a [`crate::MisReader`]) or reclaim it with
    /// [`IngestSession::into_engine`].
    #[must_use]
    pub fn build_with_session(
        self,
        policy: FlushPolicy,
    ) -> IngestSession<Box<dyn DynamicMis + Send>> {
        IngestSession::with_policy(self.build(), policy)
    }

    /// Builds the unsharded [`MisEngine`].
    ///
    /// # Panics
    ///
    /// Panics if a sharding, thread, or spawn-threshold axis was set
    /// (those require [`EngineBuilder::build_sharded`] /
    /// [`EngineBuilder::build_parallel`]), or if priorities were given
    /// without a graph.
    #[must_use]
    pub fn build_unsharded(self) -> MisEngine {
        assert!(
            self.sharding.is_none() && self.threads.is_none() && self.spawn_threshold.is_none(),
            "sharding/thread axes set: build_sharded()/build_parallel() realize them"
        );
        let mut engine = match (self.graph, self.priorities) {
            (None, None) => MisEngine::new_impl(self.seed),
            (Some(g), None) => MisEngine::from_graph_impl(g, self.seed),
            (Some(g), Some(p)) => MisEngine::from_parts_impl(g, p, self.seed),
            (None, Some(_)) => panic!("priorities prescribed without a graph"),
        };
        if let Some(n) = self.capacity {
            engine.reserve_nodes(n);
        }
        engine.set_settle_strategy(self.strategy);
        engine
    }

    /// Builds the sequentially-executed [`ShardedMisEngine`] (layout
    /// defaults to [`ShardLayout::single`]).
    ///
    /// # Panics
    ///
    /// Panics if a thread or spawn-threshold axis was set (use
    /// [`EngineBuilder::build_parallel`]), or if priorities were given
    /// without a graph.
    #[must_use]
    pub fn build_sharded(self) -> ShardedMisEngine {
        assert!(
            self.threads.is_none() && self.spawn_threshold.is_none(),
            "thread axes set: build_parallel() realizes them"
        );
        let layout = self.sharding.unwrap_or_else(ShardLayout::single);
        let mut engine = match (self.graph, self.priorities) {
            (None, None) => ShardedMisEngine::new_impl(layout, self.seed),
            (Some(g), None) => ShardedMisEngine::from_graph_impl(g, layout, self.seed),
            (Some(g), Some(p)) => ShardedMisEngine::from_parts_impl(g, p, layout, self.seed),
            (None, Some(_)) => panic!("priorities prescribed without a graph"),
        };
        if let Some(n) = self.capacity {
            engine.reserve_nodes(n);
        }
        engine.set_settle_strategy(self.strategy);
        engine
    }

    /// Builds the thread-executed [`ParallelShardedMisEngine`] (layout
    /// defaults to [`ShardLayout::single`], threads to 1).
    ///
    /// # Panics
    ///
    /// Panics if priorities were given without a graph.
    #[must_use]
    pub fn build_parallel(self) -> ParallelShardedMisEngine {
        let threads = self.threads.unwrap_or(1);
        let threshold = self.spawn_threshold;
        let sharded = EngineBuilder {
            threads: None,
            spawn_threshold: None,
            ..self
        }
        .build_sharded();
        let mut engine = ParallelShardedMisEngine::from_engine(sharded, threads);
        if let Some(t) = threshold {
            engine.set_spawn_threshold(t);
        }
        engine
    }
}

/// The pure coalescing queue behind [`IngestSession`]: an order-preserving
/// buffer of [`TopologyChange`]s that merges redundant edge changes as
/// they arrive.
///
/// Rules (the "coalescing rules" of DESIGN.md's unified-API section):
///
/// - **Opposing edge changes cancel.** An insert and a delete of the same
///   edge queued since the last barrier annihilate: both leave the queue,
///   because their net topological effect is nil and the maintained
///   structures are history independent.
/// - **Same-direction edge changes collapse, last writer wins.** Pushing
///   the same edge change twice keeps one copy (at the first push's queue
///   position — edge changes on distinct edges commute, so position
///   within a barrier-free run is immaterial).
/// - **Node changes are barriers.** `InsertNode`/`DeleteNode` entries are
///   kept verbatim and stop edge coalescing across them: a node deletion
///   implicitly removes incident edges, so edge changes must not be
///   merged across it.
///
/// The queue never consults an engine, and it is deliberately
/// *forgiving*: cancelled pairs and collapsed duplicates are never
/// validated, so a raw sequence that `apply_batch` would reject (e.g. a
/// delete of a missing edge followed by its insert, or a duplicate
/// insert) can coalesce into a sequence that applies cleanly. Only the
/// *surviving* changes are judged — by `apply_batch`, at flush time. A
/// caller that needs malformed adversary streams rejected must validate
/// before pushing.
#[derive(Debug, Clone, Default)]
pub struct ChangeCoalescer {
    /// Queued changes in arrival order; cancelled entries become `None`
    /// tombstones so positions stay stable for the edge index.
    pending: Vec<Option<TopologyChange>>,
    /// Live queue position per edge, for the current barrier-free run
    /// only (cleared by node changes).
    edge_slot: BTreeMap<EdgeKey, usize>,
    /// Live (non-tombstoned) entries — the queue depth watermarks meter.
    live: usize,
    /// Changes pushed since the last drain, including coalesced-away
    /// ones.
    pushed: usize,
}

impl ChangeCoalescer {
    /// Creates an empty queue.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of changes currently queued (after coalescing).
    #[must_use]
    pub fn depth(&self) -> usize {
        self.live
    }

    /// Number of changes pushed since the last [`Self::drain`],
    /// including ones coalescing has already eliminated.
    #[must_use]
    pub fn pushed(&self) -> usize {
        self.pushed
    }

    /// Returns `true` if no change is queued.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Queues one change, applying the coalescing rules.
    pub fn push(&mut self, change: TopologyChange) {
        self.pushed += 1;
        let key = match &change {
            TopologyChange::InsertEdge(u, v) | TopologyChange::DeleteEdge(u, v) => {
                Some(EdgeKey::new(*u, *v))
            }
            TopologyChange::InsertNode { .. } | TopologyChange::DeleteNode(_) => None,
        };
        let Some(key) = key else {
            // Node change: a coalescing barrier. Later edge changes must
            // not merge with anything queued before it.
            self.edge_slot.clear();
            self.pending.push(Some(change));
            self.live += 1;
            return;
        };
        if let Some(&slot) = self.edge_slot.get(&key) {
            let prev = self.pending[slot].as_ref().expect("indexed slot is live");
            if prev.kind() == change.kind() {
                // Last writer wins (the entries are equal up to endpoint
                // order); keep the original queue position.
                self.pending[slot] = Some(change);
            } else {
                // Opposing pair: net topological no-op — cancel both.
                self.pending[slot] = None;
                self.edge_slot.remove(&key);
                self.live -= 1;
            }
        } else {
            self.edge_slot.insert(key, self.pending.len());
            self.pending.push(Some(change));
            self.live += 1;
        }
    }

    /// Takes the coalesced sequence (arrival order, tombstones dropped)
    /// and the total push count it absorbed, resetting the queue.
    pub fn drain(&mut self) -> (Vec<TopologyChange>, usize) {
        let batch: Vec<TopologyChange> = self.pending.drain(..).flatten().collect();
        self.edge_slot.clear();
        self.live = 0;
        (batch, std::mem::take(&mut self.pushed))
    }
}

/// Outcome of one [`IngestSession::flush`]: the merged batch's
/// [`BatchReceipt`] extended with the ingestion-side accounting — how
/// many changes were pushed into the window, how many coalescing
/// eliminated before any settle work was done, and how long the
/// window's pushes waited between arrival and flush ([`QueueDelay`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IngestReceipt {
    pushed: usize,
    coalesced_changes: usize,
    batch: BatchReceipt,
    delay: QueueDelay,
}

impl IngestReceipt {
    /// Changes pushed into the flushed window (before coalescing).
    #[must_use]
    pub fn pushed(&self) -> usize {
        self.pushed
    }

    /// The window's queue-delay accounting: per-push arrival→flush
    /// waits (sorted; p50/p99/max/mean accessors) and the flush's settle
    /// duration, all measured on the session's [`Clock`].
    #[must_use]
    pub fn queue_delay(&self) -> &QueueDelay {
        &self.delay
    }

    /// The most *pushes* any change of this window waited before its
    /// flush: the window's first arrival sat behind `pushed − 1` later
    /// pushes. A clock-free latency measure (exact, not sampled) that
    /// stays meaningful under a never-advanced manual clock.
    #[must_use]
    pub fn max_pushes_waited(&self) -> usize {
        self.pushed.saturating_sub(1)
    }

    /// Mean pushes-waited over the window's changes: the i-th of `p`
    /// arrivals waits `p − 1 − i` later pushes, so the mean is
    /// `(p − 1)/2`.
    #[must_use]
    pub fn mean_pushes_waited(&self) -> f64 {
        self.pushed.saturating_sub(1) as f64 / 2.0
    }

    /// Changes coalescing eliminated: `pushed() - applied-or-attempted`.
    /// Every one of these is a settle pass the engine never paid for.
    #[must_use]
    pub fn coalesced_changes(&self) -> usize {
        self.coalesced_changes
    }

    /// The merged batch's receipt.
    #[must_use]
    pub fn batch(&self) -> &BatchReceipt {
        &self.batch
    }

    /// Consumes the receipt, returning the inner [`BatchReceipt`].
    #[must_use]
    pub fn into_batch(self) -> BatchReceipt {
        self.batch
    }

    /// Changes successfully applied by the flush.
    #[must_use]
    pub fn applied(&self) -> usize {
        self.batch.applied()
    }

    /// Nodes whose output changed across the flush.
    #[must_use]
    pub fn adjustments(&self) -> usize {
        self.batch.adjustments()
    }
}

/// A change-ingestion session over any [`DynamicMis`] engine: the
/// async-batching layer of the ROADMAP.
///
/// Pushes are queued and coalesced ([`ChangeCoalescer`] documents the
/// rules); [`IngestSession::flush`] applies the surviving changes as one
/// merged `apply_batch` — one settle pass for the whole window — and
/// reports the coalescing win plus the window's queue-delay accounting
/// on the [`IngestReceipt`]. *When* a window auto-flushes is a
/// [`FlushPolicy`]: a depth watermark (the latency-vs-work axis
/// experiment E12 sweeps), a deadline on the oldest queued change, both,
/// or the adaptive smoother of [`crate::policy`]. All timing is read
/// from an injectable [`Clock`], so policies are deterministic under a
/// [`crate::ManualClock`].
///
/// The engine parameter `E` is anything that [`DynamicMis`] forwards
/// through: a mutable borrow (`IngestSession::new(&mut engine)` — the
/// session releases the engine when dropped) or an owned box
/// ([`EngineBuilder::build_with_session`], which hands the whole
/// deployment over as one value).
///
/// # Example
///
/// ```
/// use dmis_core::{Engine, IngestSession};
/// use dmis_graph::{generators, TopologyChange};
///
/// let (g, ids) = generators::cycle(8);
/// let mut engine = Engine::builder().graph(g).seed(3).build_unsharded();
/// let mut session = IngestSession::new(&mut engine);
/// // An opposing pair cancels before any settle work happens…
/// session.push(TopologyChange::DeleteEdge(ids[0], ids[1]))?;
/// session.push(TopologyChange::InsertEdge(ids[0], ids[1]))?;
/// let receipt = session.flush()?;
/// assert_eq!(receipt.coalesced_changes(), 2);
/// assert_eq!(receipt.batch().heap_pops(), 0, "zero settle work");
/// # Ok::<(), dmis_graph::GraphError>(())
/// ```
///
/// Deadline-driven flushing under a deterministic clock:
///
/// ```
/// use std::sync::Arc;
/// use std::time::Duration;
/// use dmis_core::{Engine, FlushPolicy, IngestSession, ManualClock};
/// use dmis_graph::{generators, TopologyChange};
///
/// let (g, ids) = generators::cycle(8);
/// let clock = ManualClock::new();
/// let mut session = IngestSession::with_policy_and_clock(
///     Engine::builder().graph(g).seed(3).build(),
///     FlushPolicy::Deadline(Duration::from_millis(5)),
///     Arc::new(clock.clone()),
/// );
/// session.push(TopologyChange::DeleteEdge(ids[0], ids[1]))?;
/// clock.advance(Duration::from_millis(4));
/// assert!(session.poll()?.is_none(), "deadline not reached");
/// clock.advance(Duration::from_millis(1));
/// let receipt = session.poll()?.expect("deadline fires exactly at the boundary");
/// assert_eq!(receipt.queue_delay().max_delay(), Duration::from_millis(5));
/// # Ok::<(), dmis_graph::GraphError>(())
/// ```
#[derive(Debug)]
pub struct IngestSession<E: DynamicMis> {
    engine: E,
    queue: ChangeCoalescer,
    controller: FlushController,
    clock: Arc<dyn Clock>,
    /// Session-clock arrival stamp of every push in the open window
    /// (coalesced-away pushes included: their latency was still paid).
    arrivals: Vec<Duration>,
    /// Optional write-ahead sink: when set, every flush persists its
    /// coalesced window *before* applying it (log-then-publish) — see
    /// [`Self::set_wal_sink`].
    wal: Option<Box<dyn crate::durability::WalSink>>,
}

impl<E: DynamicMis> IngestSession<E> {
    /// Opens a session that never auto-flushes
    /// ([`FlushPolicy::Manual`]): changes queue until an explicit
    /// [`Self::flush`].
    pub fn new(engine: E) -> Self {
        Self::with_policy(engine, FlushPolicy::Manual)
    }

    /// Opens a session that auto-flushes whenever `watermark` changes
    /// have been pushed since the last flush — a thin shim for
    /// [`Self::with_policy`] with [`FlushPolicy::Depth`]`(watermark)`,
    /// kept for the PR-5 call sites. Counting *pushes* — not the
    /// coalesced depth — bounds both the pending buffer and the time a
    /// change waits before its window settles, even on cancel-heavy
    /// streams where the coalesced depth hovers near zero; a window
    /// therefore holds at most `watermark` pushes, and a change waits at
    /// most `watermark − 1` arrivals. A watermark of 1 degenerates to
    /// unbatched per-change application.
    pub fn with_watermark(engine: E, watermark: usize) -> Self {
        Self::with_policy(engine, FlushPolicy::Depth(watermark))
    }

    /// Opens a session flushing per `policy`, timed by the default
    /// [`MonotonicClock`]. Tests that need deterministic deadlines or
    /// adaptive observations should inject a [`crate::ManualClock`] via
    /// [`Self::with_policy_and_clock`].
    pub fn with_policy(engine: E, policy: FlushPolicy) -> Self {
        Self::with_policy_and_clock(engine, policy, Arc::new(MonotonicClock::new()))
    }

    /// Opens a session flushing per `policy`, reading all arrival
    /// stamps, deadline checks, and settle-cost observations from
    /// `clock`.
    pub fn with_policy_and_clock(engine: E, policy: FlushPolicy, clock: Arc<dyn Clock>) -> Self {
        IngestSession {
            engine,
            queue: ChangeCoalescer::new(),
            controller: FlushController::new(policy),
            clock,
            arrivals: Vec::new(),
            wal: None,
        }
    }

    /// Installs a write-ahead sink: from now on every flush **persists
    /// its coalesced window before applying it**. This is the
    /// log-then-publish ordering durability requires — a window's
    /// effects (the settled MIS, and through it any published snapshot
    /// epoch) can reach an observer only after the window is on stable
    /// storage, so a recovered log always covers every epoch a reader
    /// ever saw. Empty windows are persisted too: one record per flush
    /// keeps the log's record count equal to the number of published
    /// epochs since attach, which is what lets recovery re-attach
    /// readers at exactly the right epoch.
    ///
    /// If the sink fails, the flush returns
    /// [`GraphError::PersistFailed`] and the window is consumed but
    /// **neither logged nor applied** — the engine still matches the
    /// persisted prefix, so a caller can recover from the sink's
    /// storage and resume from the last acked window.
    pub fn set_wal_sink(&mut self, sink: Box<dyn crate::durability::WalSink>) {
        self.wal = Some(sink);
    }

    /// Whether a write-ahead sink is installed.
    #[must_use]
    pub fn has_wal_sink(&self) -> bool {
        self.wal.is_some()
    }

    /// Replaces the flush policy. Takes effect on the next push/poll;
    /// adaptive smoother state restarts from its agnostic initial
    /// point. The open window (queued changes and their arrival stamps)
    /// carries over.
    pub fn set_policy(&mut self, policy: FlushPolicy) {
        self.controller = FlushController::new(policy);
    }

    /// The flush policy in force.
    #[must_use]
    pub fn policy(&self) -> &FlushPolicy {
        self.controller.policy()
    }

    /// Reconfigures (or removes) the auto-flush depth watermark — a
    /// shim for [`Self::set_policy`] mapping `Some(w)` to
    /// [`FlushPolicy::Depth`] and `None` to [`FlushPolicy::Manual`].
    pub fn set_watermark(&mut self, watermark: Option<usize>) {
        self.set_policy(match watermark {
            Some(w) => FlushPolicy::Depth(w),
            None => FlushPolicy::Manual,
        });
    }

    /// The depth watermark currently in force, if the policy has one:
    /// the configured depth for [`FlushPolicy::Depth`]/
    /// [`FlushPolicy::Either`], the smoother's current choice for
    /// [`FlushPolicy::Adaptive`], `None` for the depthless policies.
    #[must_use]
    pub fn watermark(&self) -> Option<usize> {
        self.controller.effective_depth()
    }

    /// Current (coalesced) queue depth.
    #[must_use]
    pub fn queue_depth(&self) -> usize {
        self.queue.depth()
    }

    /// Read access to the engine. Note that queued changes are **not**
    /// visible in the engine until a flush.
    #[must_use]
    pub fn engine(&self) -> &E {
        &self.engine
    }

    /// Mutable access to the engine — e.g. to attach a
    /// [`crate::MisReader`] on an owned session. Changes applied
    /// directly bypass the queue: they settle immediately, *ahead of*
    /// everything still queued in the open window.
    #[must_use]
    pub fn engine_mut(&mut self) -> &mut E {
        &mut self.engine
    }

    /// Consumes the session, returning the engine. Queued (unflushed)
    /// changes are discarded — call [`Self::flush`] first to settle the
    /// open window.
    #[must_use]
    pub fn into_engine(self) -> E {
        self.engine
    }

    /// Queues one change, stamping its arrival on the session clock and
    /// coalescing it against the queue; flushes if the policy trips
    /// (window reached its depth watermark, or the oldest queued change
    /// reached the deadline).
    ///
    /// # Errors
    ///
    /// Propagates [`GraphError`] from an auto-flush (see
    /// [`Self::flush`]); pushes that do not flush cannot fail.
    pub fn push(&mut self, change: TopologyChange) -> Result<Option<IngestReceipt>, GraphError> {
        let now = self.clock.now();
        self.arrivals.push(now);
        self.queue.push(change);
        if self
            .controller
            .should_flush(self.queue.pushed(), self.oldest_age(now))
        {
            self.flush().map(Some)
        } else {
            Ok(None)
        }
    }

    /// Re-evaluates the policy against the session clock *without*
    /// pushing: how deadline-bearing policies fire between pushes. A
    /// driver loop calls this on its idle ticks; flushes (returning the
    /// receipt) iff the window is non-empty and the oldest queued change
    /// has reached the deadline.
    ///
    /// # Errors
    ///
    /// Propagates [`GraphError`] exactly as [`Self::flush`] does.
    pub fn poll(&mut self) -> Result<Option<IngestReceipt>, GraphError> {
        let now = self.clock.now();
        if self
            .controller
            .should_flush(self.queue.pushed(), self.oldest_age(now))
        {
            self.flush().map(Some)
        } else {
            Ok(None)
        }
    }

    /// Age of the open window's oldest push at `now`.
    fn oldest_age(&self, now: Duration) -> Option<Duration> {
        self.arrivals.first().map(|&t| now.saturating_sub(t))
    }

    /// Settles the queued window as **one merged batch** and returns the
    /// extended receipt, feeding the flush's coalesce fraction and
    /// clocked settle cost to the policy (the adaptive smoother's
    /// observation). Flushing an empty queue applies an empty batch
    /// (all receipt counters zero).
    ///
    /// # Errors
    ///
    /// Propagates the first [`GraphError`] from the underlying
    /// `apply_batch`. The queue is consumed either way — the window's
    /// push/coalesce/delay accounting is dropped with the error and the
    /// policy observes nothing — and the engine is left with the valid
    /// prefix applied exactly as `apply_batch` documents.
    ///
    /// With a [`Self::set_wal_sink`] installed, the window is persisted
    /// **before** `apply_batch` runs (log-then-publish); a sink failure
    /// returns [`GraphError::PersistFailed`] with the window consumed
    /// but neither logged nor applied.
    pub fn flush(&mut self) -> Result<IngestReceipt, GraphError> {
        let (batch, pushed) = self.queue.drain();
        if let Some(wal) = self.wal.as_mut() {
            if wal.persist(&batch).is_err() {
                // The engine (and every published epoch) still matches
                // the persisted prefix; only the unlogged window is
                // lost, which is exactly what recovery can replay
                // around.
                self.arrivals.clear();
                return Err(GraphError::PersistFailed);
            }
        }
        let flushed_at = self.clock.now();
        let delays: Vec<Duration> = self
            .arrivals
            .drain(..)
            .map(|t| flushed_at.saturating_sub(t))
            .collect();
        let receipt = self.engine.apply_batch(&batch)?;
        let settle = self.clock.now().saturating_sub(flushed_at);
        self.controller.observe_flush(pushed, batch.len(), settle);
        Ok(IngestReceipt {
            pushed,
            coalesced_changes: pushed - batch.len(),
            batch: receipt,
            delay: QueueDelay::new(delays, settle),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmis_graph::generators;

    #[test]
    fn coalescer_cancels_opposing_pairs() {
        let (_, ids) = DynGraphFixture::path3();
        let mut q = ChangeCoalescer::new();
        q.push(TopologyChange::InsertEdge(ids[0], ids[2]));
        q.push(TopologyChange::DeleteEdge(ids[2], ids[0])); // endpoint order irrelevant
        assert!(q.is_empty());
        assert_eq!(q.pushed(), 2);
        let (batch, pushed) = q.drain();
        assert!(batch.is_empty());
        assert_eq!(pushed, 2);
        assert_eq!(q.pushed(), 0, "drain resets the push counter");
    }

    #[test]
    fn coalescer_last_writer_wins_on_duplicates() {
        let (_, ids) = DynGraphFixture::path3();
        let mut q = ChangeCoalescer::new();
        q.push(TopologyChange::DeleteEdge(ids[0], ids[1]));
        q.push(TopologyChange::DeleteEdge(ids[1], ids[0]));
        assert_eq!(q.depth(), 1);
        let (batch, pushed) = q.drain();
        assert_eq!(pushed, 2);
        assert_eq!(batch, vec![TopologyChange::DeleteEdge(ids[1], ids[0])]);
    }

    #[test]
    fn coalescer_cancel_then_repush_survives() {
        let (_, ids) = DynGraphFixture::path3();
        let mut q = ChangeCoalescer::new();
        q.push(TopologyChange::InsertEdge(ids[0], ids[2]));
        q.push(TopologyChange::DeleteEdge(ids[0], ids[2])); // cancels
        q.push(TopologyChange::InsertEdge(ids[0], ids[2])); // fresh entry
        assert_eq!(q.depth(), 1);
        let (batch, _) = q.drain();
        assert_eq!(batch, vec![TopologyChange::InsertEdge(ids[0], ids[2])]);
    }

    #[test]
    fn node_changes_are_coalescing_barriers() {
        let (g, ids) = DynGraphFixture::path3();
        let mut q = ChangeCoalescer::new();
        q.push(TopologyChange::DeleteEdge(ids[0], ids[1]));
        q.push(TopologyChange::InsertNode {
            id: g.peek_next_id(),
            edges: vec![ids[0]],
        });
        // Same edge after the barrier: must NOT cancel the pre-barrier
        // delete.
        q.push(TopologyChange::InsertEdge(ids[0], ids[1]));
        assert_eq!(q.depth(), 3);
        let (batch, _) = q.drain();
        assert_eq!(batch.len(), 3);
    }

    #[test]
    fn capacity_axis_makes_bootstrap_regrow_free() {
        // A pre-sized engine bootstraps thousands of nodes — a
        // scaled-down image of the 10^6 load the scale tier benches —
        // without a single table reallocation; the identical unsized
        // bootstrap regrows (the counter actually counts). The bench's
        // scale rows repeat this check at n = 10^5/10^6 in release mode.
        let n = 6_000usize;
        let bootstrap = |mut engine: MisEngine| {
            let mut last: Option<dmis_graph::NodeId> = None;
            for i in 0..n {
                let nbrs: Vec<dmis_graph::NodeId> = match last {
                    Some(p) if i % 3 == 0 => vec![p],
                    _ => Vec::new(),
                };
                let (v, _) = engine.insert_node(&nbrs).unwrap();
                last = Some(v);
            }
            engine
        };
        let sized = bootstrap(Engine::builder().capacity(n).build_unsharded());
        assert_eq!(sized.storage_regrows(), 0, "pre-sized bootstrap regrew");
        let unsized_ = bootstrap(Engine::builder().build_unsharded());
        assert!(unsized_.storage_regrows() > 0, "regrow counter is live");
        assert_eq!(sized.mis_len(), unsized_.mis_len(), "sizing is inert");

        let mut sharded = Engine::builder()
            .capacity(n)
            .sharding(ShardLayout::striped(4))
            .build_sharded();
        let mut last = None;
        for i in 0..n {
            let nbrs: Vec<dmis_graph::NodeId> = match last {
                Some(p) if i % 3 == 0 => vec![p],
                _ => Vec::new(),
            };
            let (v, _) = sharded.insert_node(&nbrs).unwrap();
            last = Some(v);
        }
        assert_eq!(sharded.storage_regrows(), 0, "sharded bootstrap regrew");
        assert_eq!(sharded.mis_len(), sized.mis_len());
    }

    #[test]
    fn builder_flavors_agree_on_outputs() {
        let mut rng = <rand::rngs::StdRng as rand::SeedableRng>::seed_from_u64(5);
        let (g, _) = generators::erdos_renyi(24, 0.2, &mut rng);
        let unsharded = Engine::builder()
            .graph(g.clone())
            .seed(11)
            .build_unsharded();
        let sharded = Engine::builder()
            .graph(g.clone())
            .seed(11)
            .sharding(ShardLayout::striped(3))
            .build_sharded();
        let parallel = Engine::builder()
            .graph(g.clone())
            .seed(11)
            .sharding(ShardLayout::striped(3))
            .threads(2)
            .spawn_threshold(0)
            .build_parallel();
        assert_eq!(unsharded.mis(), sharded.mis());
        assert_eq!(sharded.mis(), parallel.mis());
        assert_eq!(parallel.threads(), 2);
        assert_eq!(parallel.spawn_threshold(), 0);
        // The boxed path picks the parallel flavor when a thread axis is
        // set.
        let boxed = Engine::builder().graph(g).seed(11).threads(2).build();
        assert_eq!(boxed.mis(), unsharded.mis());
    }

    #[test]
    #[should_panic(expected = "build_sharded()/build_parallel()")]
    fn unsharded_build_rejects_thread_axis() {
        let _ = Engine::builder().threads(4).build_unsharded();
    }

    #[test]
    #[should_panic(expected = "build_parallel()")]
    fn sharded_build_rejects_spawn_threshold() {
        let _ = Engine::builder().spawn_threshold(0).build_sharded();
    }

    #[test]
    fn session_watermark_auto_flushes() {
        let (g, ids) = generators::cycle(8);
        let mut engine = Engine::builder().graph(g).seed(3).build_unsharded();
        let mut session = IngestSession::with_watermark(&mut engine, 2);
        assert_eq!(session.watermark(), Some(2));
        assert!(session
            .push(TopologyChange::DeleteEdge(ids[0], ids[1]))
            .unwrap()
            .is_none());
        let receipt = session
            .push(TopologyChange::DeleteEdge(ids[2], ids[3]))
            .unwrap()
            .expect("watermark reached");
        assert_eq!(receipt.applied(), 2);
        assert_eq!(receipt.coalesced_changes(), 0);
        assert_eq!(session.queue_depth(), 0);
        assert!(!session.engine().graph().has_edge(ids[0], ids[1]));
    }

    /// Tiny fixture helper so coalescer tests do not need an engine.
    struct DynGraphFixture;
    impl DynGraphFixture {
        fn path3() -> (DynGraph, Vec<NodeId>) {
            generators::path(3)
        }
    }
}
