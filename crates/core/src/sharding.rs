//! Sharded settle: the MIS engine partitioned into K independent shards.
//!
//! PR 1 made [`NodeId`] a dense slot index; this module exploits that to
//! partition *all* per-node state — membership bits, lower-MIS counters,
//! dirty sets — by index range ([`ShardLayout`]) into `K` shards. Each
//! shard runs the exact settle loop of [`crate::MisEngine`] over its own
//! dense [`NodeMap`]/[`NodeSet`] tables (keyed by shard-*local* slots, so
//! per-shard memory is proportional to the nodes it owns). The graph and
//! the priority order π are shared read-only, mirroring the paper's model
//! where every node knows the random IDs of its neighbors.
//!
//! # Handoff protocol
//!
//! Settling a node is a purely local decision (`lower_mis_count == 0`),
//! but a *flip* must notify every higher-π neighbor. Neighbors in the same
//! shard are updated in place, exactly as in the unsharded engine;
//! neighbors owned by another shard receive a **cross-shard handoff** — a
//! message carrying the counter delta plus a dirty mark — which the shard
//! appends to its **outbox** instead of touching foreign state. The
//! [`UpdateReceipt::cross_shard_handoffs`] counter audits this traffic;
//! the paper's bounded-adjustment guarantee (Theorem 1: expected ≤ 1 flip
//! per change) is what makes it rare, so almost all work stays
//! shard-local.
//!
//! # The epoch barrier
//!
//! Recovery proceeds in **epochs**. In each epoch every shard with a
//! non-empty dirty heap drains it to completion against a *frozen* view
//! of the other shards — it reads only the shared graph and π, mutates
//! only its own tables, and buffers every outbound handoff. At the
//! barrier closing the epoch the coordinator merges all outboxes in
//! shard-index order (and, within a shard, emission order), applying
//! counter deltas and re-seeding target heaps; the next epoch runs the
//! shards that became dirty. The loop ends when every heap and outbox is
//! empty.
//!
//! Because shard runs within an epoch share no mutable state, the epoch's
//! outcome is independent of *how* the runs execute — one thread, many
//! threads, any interleaving. That is what makes
//! [`crate::ParallelShardedMisEngine`] bit-identical to this sequential
//! engine by construction: same flip log, same receipts, same MIS, for
//! every [`ShardLayout`] and thread count.
//!
//! # Quiescence and correctness
//!
//! Termination and correctness follow from π being a strict total order:
//! a flip at priority `p` only ever dirties strictly higher priorities,
//! so influence flows one way and, by induction along π, every node's
//! state converges to the unique fixed point of the MIS invariant — the
//! same greedy MIS the unsharded engine maintains. Within one epoch a
//! shard's drain settles each node at most once (pops are non-decreasing
//! in π, pushes strictly increasing), but across epochs a node *can*
//! settle twice — a shard may settle a node against a stale counter and
//! be overturned when a lower-π delta lands at the barrier — so receipts
//! report **net** flips: first-touch state vs final state. The final
//! output is bit-identical to [`crate::MisEngine`] for every layout,
//! which `crates/core/tests/sharded_equivalence.rs` pins over thousands
//! of random sequences.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use dmis_graph::{
    ChangeKind, DynGraph, GraphError, NodeId, NodeMap, NodeSet, RankFront, ShardLayout,
    TopologyChange,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::invariant::{self, InvariantViolation};
use crate::snapshot::{MisPublisher, MisReader, PublishSlot};
use crate::{
    BatchReceipt, MisState, Priority, PriorityMap, RankIndex, SettleStrategy, UpdateReceipt,
};

/// One shard's slice of the per-node state, keyed by shard-local slots.
///
/// The dirty set has two realizations, selected by the engine's
/// [`SettleStrategy`]: the word-parallel `front` of global ranks (the
/// default; seeded via `seeds`/`stale` at settle start) or the legacy
/// `heap` (seeded directly at route time). Exactly one is in use at any
/// time; both drain in the identical global-π order.
#[derive(Debug, Clone, Default)]
pub(crate) struct Shard {
    /// Membership bits of the nodes this shard owns.
    pub(crate) in_mis: NodeSet,
    /// Lower-π MIS neighbor counters of the nodes this shard owns.
    pub(crate) lower_mis_count: NodeMap<usize>,
    /// Heap realization of the dirty set, ordered by global priority
    /// ([`SettleStrategy::BinaryHeap`] only).
    pub(crate) heap: BinaryHeap<Reverse<(Priority, NodeId)>>,
    /// Word-parallel realization of the dirty set: pending **global
    /// ranks** ([`SettleStrategy::RankFront`] only). Persistent — empty
    /// between updates, never reallocated per update.
    pub(crate) front: RankFront,
    /// Front-mode staging area: nodes routed dirty while an update's
    /// mutations are still landing. Converted to ranks at settle start,
    /// *after* all mutations, so batch re-ranks cannot invalidate a
    /// parked rank.
    pub(crate) seeds: Vec<NodeId>,
    /// Front-mode seeds whose node a later batch change deleted before
    /// the settle began. They carry no state but are accounted exactly
    /// like the stale heap entries the heap path pops and skips, keeping
    /// receipts bit-identical across strategies.
    pub(crate) stale: Vec<NodeId>,
    /// Dedup bitset for the dirty set (local slots), empty between
    /// updates.
    pub(crate) enqueued: NodeSet,
    /// Outbound handoffs buffered during the current epoch: counter
    /// deltas for remote nodes, drained at the barrier. Emission order is
    /// preserved, which keeps per-neighbor delta streams in order.
    pub(crate) outbox: Vec<(NodeId, isize)>,
    /// First-touch dedup for `log` (local slots), empty between updates.
    pub(crate) touched: NodeSet,
    /// First-touch flip log: `(node, membership before its first flip)`,
    /// drained when the receipt is built.
    pub(crate) log: Vec<(NodeId, bool)>,
}

impl Shard {
    /// Pending dirty entries across whichever realizations hold any —
    /// the epoch scheduler's and spawn threshold's unit of work. Stale
    /// front seeds count: the heap path carries them as heap entries.
    pub(crate) fn pending(&self) -> usize {
        self.heap.len() + self.front.len() + self.stale.len()
    }
}

/// Work/traffic counters accumulated over one recovery.
///
/// Every field is a sum (or, for `epochs`, a loop count), so merging
/// per-worker instances is order-independent — a prerequisite for the
/// parallel executor reporting bit-identical receipts.
#[derive(Debug, Default, Clone, Copy)]
pub(crate) struct SettleStats {
    pub(crate) pops: usize,
    pub(crate) counter_updates: usize,
    pub(crate) handoffs: usize,
    pub(crate) shard_runs: usize,
    pub(crate) epochs: usize,
}

impl SettleStats {
    /// Folds another worker's counters into this one.
    pub(crate) fn absorb(&mut self, other: SettleStats) {
        self.pops += other.pops;
        self.counter_updates += other.counter_updates;
        self.handoffs += other.handoffs;
        self.shard_runs += other.shard_runs;
        self.epochs += other.epochs;
    }
}

/// Pending-work floor below which an epoch is drained inline even when
/// worker threads are configured: spawning threads for a handful of heap
/// pops costs orders of magnitude more than the pops themselves. Purely a
/// performance knob — the epoch outcome is executor-independent, so any
/// threshold yields bit-identical results (see
/// [`crate::ParallelShardedMisEngine::set_spawn_threshold`]).
pub(crate) const DEFAULT_SPAWN_THRESHOLD: usize = 256;

/// The shared read-only inputs of every shard drain in one settle: the
/// frozen view worker threads read concurrently.
#[derive(Clone, Copy)]
pub(crate) struct SettleCtx<'a> {
    pub(crate) graph: &'a DynGraph,
    pub(crate) priorities: &'a PriorityMap,
    pub(crate) ranks: &'a RankIndex,
    pub(crate) strategy: SettleStrategy,
    pub(crate) layout: ShardLayout,
}

/// Drains shard `s`'s dirty set to completion against the shared
/// read-only graph/π — the unsharded settle loop confined to one shard.
/// Same-shard neighbors of a flip are updated in place; remote neighbors'
/// deltas are buffered in the shard's outbox for the epoch barrier.
/// Dispatches on the engine's [`SettleStrategy`]; both drains pop the
/// identical sequence and accumulate identical [`SettleStats`].
pub(crate) fn run_shard_epoch(
    ctx: SettleCtx<'_>,
    s: usize,
    shard: &mut Shard,
    stats: &mut SettleStats,
) {
    match ctx.strategy {
        SettleStrategy::RankFront => {
            run_shard_epoch_front(ctx.graph, ctx.ranks, ctx.layout, s, shard, stats)
        }
        SettleStrategy::BinaryHeap => {
            run_shard_epoch_heap(ctx.graph, ctx.priorities, ctx.layout, s, shard, stats);
        }
    }
}

/// Front-mode drain: pops are whole-word scans over pending global
/// ranks; the neighbor filter compares dense `u32` ranks.
fn run_shard_epoch_front(
    graph: &DynGraph,
    ranks: &RankIndex,
    layout: ShardLayout,
    s: usize,
    shard: &mut Shard,
    stats: &mut SettleStats,
) {
    stats.shard_runs += 1;
    // Stale seeds first: the heap path pops and skips deleted nodes
    // mid-drain; popping them up front is observationally identical (a
    // stale pop touches no state) and keeps every counter in lockstep.
    for v in shard.stale.drain(..) {
        stats.pops += 1;
        shard.enqueued.remove(layout.local_slot(v));
    }
    while let Some(rank) = shard.front.pop_min() {
        stats.pops += 1;
        let v = ranks.node_at(rank);
        debug_assert!(graph.has_node(v), "front ranks are always live");
        let local = layout.local_slot(v);
        shard.enqueued.remove(local);
        let desired = shard.lower_mis_count[local] == 0;
        let current = shard.in_mis.contains(local);
        if desired == current {
            continue;
        }
        if shard.touched.insert(local) {
            shard.log.push((v, current));
        }
        if desired {
            shard.in_mis.insert(local);
        } else {
            shard.in_mis.remove(local);
        }
        let delta: isize = if desired { 1 } else { -1 };
        for chunk in graph.neighbor_chunks(v).expect("live node") {
            for &w in chunk {
                let rw = ranks.rank_of(w);
                if rw > rank {
                    if layout.shard_of(w) == s {
                        let lw = layout.local_slot(w);
                        let c = shard.lower_mis_count.get_mut(lw).expect("live node");
                        *c = c.checked_add_signed(delta).expect("counter in range");
                        stats.counter_updates += 1;
                        if shard.enqueued.insert(lw) {
                            shard.front.insert(rw);
                        }
                    } else {
                        shard.outbox.push((w, delta));
                    }
                }
            }
        }
    }
}

/// Heap-mode drain — the pre-front settle loop, byte for byte.
fn run_shard_epoch_heap(
    graph: &DynGraph,
    priorities: &PriorityMap,
    layout: ShardLayout,
    s: usize,
    shard: &mut Shard,
    stats: &mut SettleStats,
) {
    stats.shard_runs += 1;
    while let Some(Reverse((prio, v))) = shard.heap.pop() {
        stats.pops += 1;
        let local = layout.local_slot(v);
        shard.enqueued.remove(local);
        // A batch may have deleted the node after it was seeded.
        if !graph.has_node(v) {
            continue;
        }
        let desired = shard.lower_mis_count[local] == 0;
        let current = shard.in_mis.contains(local);
        if desired == current {
            continue;
        }
        if shard.touched.insert(local) {
            shard.log.push((v, current));
        }
        if desired {
            shard.in_mis.insert(local);
        } else {
            shard.in_mis.remove(local);
        }
        let delta: isize = if desired { 1 } else { -1 };
        for chunk in graph.neighbor_chunks(v).expect("live node") {
            for &w in chunk {
                if priorities.of(w) > prio {
                    if layout.shard_of(w) == s {
                        let lw = layout.local_slot(w);
                        let c = shard.lower_mis_count.get_mut(lw).expect("live node");
                        *c = c.checked_add_signed(delta).expect("counter in range");
                        stats.counter_updates += 1;
                        if shard.enqueued.insert(lw) {
                            shard.heap.push(Reverse((priorities.of(w), w)));
                        }
                    } else {
                        shard.outbox.push((w, delta));
                    }
                }
            }
        }
    }
}

/// [`crate::MisEngine`] partitioned into K shards by `NodeId` range.
///
/// Observationally equivalent to the unsharded engine — same seed, same
/// change sequence, bit-identical MIS — while keeping every per-node table
/// shard-local and auditing the coordination cost through
/// [`UpdateReceipt::cross_shard_handoffs`] / [`UpdateReceipt::shard_runs`].
/// See the [module docs](self) for the handoff protocol and the quiescence
/// argument.
///
/// # Example
///
/// ```
/// use dmis_core::{DynamicMis, Engine};
/// use dmis_graph::{generators, ShardLayout};
///
/// let (g, ids) = generators::cycle(12);
/// let mut sharded = Engine::builder().graph(g.clone()).sharding(ShardLayout::striped(4)).seed(9).build_sharded();
/// let mut plain = Engine::builder().graph(g).seed(9).build_unsharded();
/// assert_eq!(sharded.mis(), plain.mis());
///
/// // The same change lands on the same output, and the receipt reports
/// // how much of the cascade crossed shard boundaries.
/// let receipt = sharded.remove_edge(ids[0], ids[1])?;
/// plain.remove_edge(ids[0], ids[1])?;
/// assert_eq!(sharded.mis(), plain.mis());
/// println!("handoffs: {}", receipt.cross_shard_handoffs());
/// # Ok::<(), dmis_graph::GraphError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ShardedMisEngine {
    graph: DynGraph,
    priorities: PriorityMap,
    /// Dense rank realization of π, shared read-only across shards like
    /// the priorities themselves.
    ranks: RankIndex,
    layout: ShardLayout,
    shards: Vec<Shard>,
    rng: StdRng,
    /// The value that seeded `rng` — checkpointed by the durability
    /// layer so recovery can rebuild the identical priority stream.
    seed: u64,
    /// Priority keys drawn from `rng` since construction; a restored
    /// engine replays exactly this many draws to park the stream.
    draws: u64,
    /// Worker threads per epoch; 1 = drain epochs inline (sequential).
    /// Exposed publicly through [`crate::ParallelShardedMisEngine`].
    threads: usize,
    /// Minimum pending dirty entries before an epoch pays for thread
    /// spawns; see [`DEFAULT_SPAWN_THRESHOLD`].
    spawn_threshold: usize,
    /// Which dirty-queue realization every shard drains.
    strategy: SettleStrategy,
    /// Snapshot publication slot: empty (and free on the settle path)
    /// until [`Self::reader`] attaches a read path. Cloning detaches —
    /// see [`crate::snapshot`].
    publisher: PublishSlot,
    /// Global-id membership mirror maintained only while a read path is
    /// attached: shard membership lives in per-shard *local-slot*
    /// bitsets, so publication needs a global [`NodeSet`] — rebuilt once
    /// at attach, then patched from each settle's net flip log in
    /// O(flips) instead of an O(n) rescan per publish.
    mirror: NodeSet,
}

impl ShardedMisEngine {
    /// Creates an engine over an empty graph. `seed` determinizes all
    /// priority draws exactly as in the unsharded [`crate::MisEngine`].
    #[deprecated(
        note = "PR-1-era constructor shim: use `Engine::builder().sharding(layout).seed(seed).build_sharded()`"
    )]
    #[must_use]
    pub fn new(layout: ShardLayout, seed: u64) -> Self {
        Self::new_impl(layout, seed)
    }

    pub(crate) fn new_impl(layout: ShardLayout, seed: u64) -> Self {
        ShardedMisEngine {
            graph: DynGraph::new(),
            priorities: PriorityMap::new(),
            ranks: RankIndex::new(),
            layout,
            shards: vec![Shard::default(); layout.shards()],
            rng: StdRng::seed_from_u64(seed),
            seed,
            draws: 0,
            threads: 1,
            spawn_threshold: DEFAULT_SPAWN_THRESHOLD,
            strategy: SettleStrategy::default(),
            publisher: PublishSlot::default(),
            mirror: NodeSet::new(),
        }
    }

    /// Creates an engine over an existing graph, drawing fresh random
    /// priorities for all its nodes — the same draws, in the same order,
    /// as the unsharded [`crate::MisEngine`] with the same seed, so the
    /// two engines stay step-for-step comparable.
    #[deprecated(
        note = "PR-1-era constructor shim: use `Engine::builder().graph(g).sharding(layout).seed(seed).build_sharded()`"
    )]
    #[must_use]
    pub fn from_graph(graph: DynGraph, layout: ShardLayout, seed: u64) -> Self {
        Self::from_graph_impl(graph, layout, seed)
    }

    pub(crate) fn from_graph_impl(graph: DynGraph, layout: ShardLayout, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut priorities = PriorityMap::new();
        let mut draws = 0u64;
        for v in graph.nodes() {
            priorities.assign(v, &mut rng);
            draws += 1;
        }
        Self::with_priorities(graph, priorities, layout, rng, seed, draws)
    }

    /// Creates an engine over an existing graph with prescribed priorities
    /// (tests and adversarial constructions).
    ///
    /// # Panics
    ///
    /// Panics if some node of the graph has no priority.
    #[deprecated(
        note = "PR-1-era constructor shim: use `Engine::builder().graph(g).priorities(p).sharding(layout).seed(seed).build_sharded()`"
    )]
    #[must_use]
    pub fn from_parts(
        graph: DynGraph,
        priorities: PriorityMap,
        layout: ShardLayout,
        seed: u64,
    ) -> Self {
        Self::from_parts_impl(graph, priorities, layout, seed)
    }

    pub(crate) fn from_parts_impl(
        graph: DynGraph,
        priorities: PriorityMap,
        layout: ShardLayout,
        seed: u64,
    ) -> Self {
        Self::with_priorities(
            graph,
            priorities,
            layout,
            StdRng::seed_from_u64(seed),
            seed,
            0,
        )
    }

    fn with_priorities(
        graph: DynGraph,
        priorities: PriorityMap,
        layout: ShardLayout,
        rng: StdRng,
        seed: u64,
        draws: u64,
    ) -> Self {
        let mis = crate::static_greedy::greedy_mis_dense(&graph, &priorities);
        let ranks = RankIndex::from_priorities(&priorities);
        let mut engine = ShardedMisEngine {
            graph,
            priorities,
            ranks,
            layout,
            shards: vec![Shard::default(); layout.shards()],
            rng,
            seed,
            draws,
            threads: 1,
            spawn_threshold: DEFAULT_SPAWN_THRESHOLD,
            strategy: SettleStrategy::default(),
            publisher: PublishSlot::default(),
            mirror: NodeSet::new(),
        };
        for v in engine.graph.nodes() {
            if mis.contains(v) {
                engine.shards[layout.shard_of(v)]
                    .in_mis
                    .insert(layout.local_slot(v));
            }
        }
        for v in engine.graph.nodes() {
            let count = engine.count_lower_mis(v);
            engine.shards[layout.shard_of(v)]
                .lower_mis_count
                .insert(layout.local_slot(v), count);
        }
        engine
    }

    /// Returns the current graph.
    #[must_use]
    pub fn graph(&self) -> &DynGraph {
        &self.graph
    }

    /// Returns the priority assignment π.
    #[must_use]
    pub fn priorities(&self) -> &PriorityMap {
        &self.priorities
    }

    /// Returns the dense rank realization of π (see [`RankIndex`]).
    #[must_use]
    pub fn ranks(&self) -> &RankIndex {
        &self.ranks
    }

    /// Which dirty-queue realization the shards drain.
    #[must_use]
    pub fn settle_strategy(&self) -> SettleStrategy {
        self.strategy
    }

    /// Selects the dirty-queue realization. Purely a
    /// performance/verification knob — outputs and receipts are
    /// bit-identical for both settings, which the heap-vs-front property
    /// suite pins across every layout and thread count.
    pub fn set_settle_strategy(&mut self, strategy: SettleStrategy) {
        self.strategy = strategy;
    }

    /// Returns the shard layout.
    #[must_use]
    pub fn layout(&self) -> ShardLayout {
        self.layout
    }

    /// Number of shards K.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.layout.shards()
    }

    /// Iterates over the current MIS in identifier order without
    /// allocating a set.
    pub fn mis_iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.graph.nodes().filter(|&v| self.output(v))
    }

    /// Size of the current MIS, summed over the shards' membership bits
    /// in O(K) — no per-call allocation, unlike [`crate::DynamicMis::mis`].
    #[must_use]
    pub fn mis_len(&self) -> usize {
        self.shards.iter().map(|s| s.in_mis.len()).sum()
    }

    /// Execution configuration `(threads, spawn_threshold)` — see
    /// [`crate::ParallelShardedMisEngine`], which owns the public knobs.
    pub(crate) fn execution(&self) -> (usize, usize) {
        (self.threads, self.spawn_threshold)
    }

    /// Reconfigures epoch execution. Purely a performance knob: the epoch
    /// schedule never depends on it, so outputs and receipts are
    /// unchanged for any setting.
    pub(crate) fn set_execution(&mut self, threads: usize, spawn_threshold: usize) {
        self.threads = threads.max(1);
        self.spawn_threshold = spawn_threshold;
    }

    /// Returns whether `v` is in the MIS, or `None` if `v` does not exist.
    #[must_use]
    pub fn is_in_mis(&self, v: NodeId) -> Option<bool> {
        self.graph.has_node(v).then(|| self.output(v))
    }

    /// Returns a concurrent read handle over the engine's published
    /// snapshots, attaching the publication layer on first call — the
    /// same contract as [`crate::MisEngine::reader`]. Attach pays one
    /// O(n) scan to materialize the global membership mirror (shard
    /// membership is stored per-shard in local slots); each settle then
    /// patches the mirror from its net flip log in O(flips) and
    /// publishes it.
    pub fn reader(&mut self) -> MisReader {
        if !self.publisher.is_attached() {
            self.mirror = self.mis_iter().collect();
            self.publisher
                .set(MisPublisher::attach(&self.mirror, self.ranks.compactions()));
        }
        self.publisher.get().expect("just attached").reader()
    }

    /// Draws the next priority key from the engine's seeded stream (the
    /// draw behind [`crate::DynamicMis::insert_node`]); same seed ⇒ same
    /// draws as [`crate::MisEngine`].
    pub(crate) fn draw_key(&mut self) -> u64 {
        self.draws += 1;
        self.rng.random()
    }

    /// Membership bit of `v`, read from its owning shard.
    fn output(&self, v: NodeId) -> bool {
        self.shards[self.layout.shard_of(v)]
            .in_mis
            .contains(self.layout.local_slot(v))
    }

    fn count_lower_mis(&self, v: NodeId) -> usize {
        self.graph
            .neighbors(v)
            .expect("live node")
            .filter(|&u| self.output(u) && self.priorities.before(u, v))
            .count()
    }

    fn order_pair(&self, u: NodeId, v: NodeId) -> (NodeId, NodeId) {
        if self.priorities.before(u, v) {
            (u, v)
        } else {
            (v, u)
        }
    }

    /// Routes a counter delta plus a dirty mark to `v`'s owning shard.
    /// One delta-carrying call is one message: a real delta leaving the
    /// `origin` shard counts as one cross-shard handoff. Delta-free calls
    /// (`delta == 0`) are conservative dirty marks the batch path seeds
    /// for parity with [`crate::MisEngine::apply_batch`]; they carry no
    /// state and are not counted, keeping handoff metrics identical
    /// between the single-change and batch APIs.
    ///
    /// `direct` says no further mutation can precede the settle — true
    /// for the single-change entry points, whose routes are their last
    /// mutating act. A direct front-mode route parks the *rank* in the
    /// shard's front immediately (the rank cannot be invalidated: only a
    /// later node insertion of the same update could force a re-rank,
    /// and only a later deletion could kill the node). Batch routes pass
    /// `direct = false` and stage the node id instead, converted at
    /// settle start once all mutations have landed.
    fn route(
        &mut self,
        v: NodeId,
        delta: isize,
        origin: usize,
        stats: &mut SettleStats,
        direct: bool,
    ) {
        let target = self.layout.shard_of(v);
        let local = self.layout.local_slot(v);
        let shard = &mut self.shards[target];
        if delta != 0 {
            if target != origin {
                stats.handoffs += 1;
            }
            let c = shard.lower_mis_count.get_mut(local).expect("live node");
            *c = c.checked_add_signed(delta).expect("counter in range");
            stats.counter_updates += 1;
        }
        if shard.enqueued.insert(local) {
            match self.strategy {
                SettleStrategy::RankFront if direct => {
                    shard.front.insert(self.ranks.rank_of(v));
                }
                SettleStrategy::RankFront => shard.seeds.push(v),
                SettleStrategy::BinaryHeap => {
                    shard.heap.push(Reverse((self.priorities.of(v), v)));
                }
            }
        }
    }

    /// Inserts the edge `{u, v}` and restores the MIS invariant.
    ///
    /// # Errors
    ///
    /// Propagates [`GraphError`] from the underlying graph operation; on
    /// error the engine is unchanged.
    pub fn insert_edge(&mut self, u: NodeId, v: NodeId) -> Result<UpdateReceipt, GraphError> {
        self.graph.insert_edge(u, v)?;
        let (lo, hi) = self.order_pair(u, v);
        let mut stats = SettleStats::default();
        if self.output(lo) {
            self.route(hi, 1, self.layout.shard_of(lo), &mut stats, true);
        }
        Ok(self.settle(ChangeKind::EdgeInsert, stats))
    }

    /// Removes the edge `{u, v}` and restores the MIS invariant.
    ///
    /// # Errors
    ///
    /// Propagates [`GraphError`] from the underlying graph operation; on
    /// error the engine is unchanged.
    pub fn remove_edge(&mut self, u: NodeId, v: NodeId) -> Result<UpdateReceipt, GraphError> {
        self.graph.remove_edge(u, v)?;
        let (lo, hi) = self.order_pair(u, v);
        let mut stats = SettleStats::default();
        if self.output(lo) {
            self.route(hi, -1, self.layout.shard_of(lo), &mut stats, true);
        }
        Ok(self.settle(ChangeKind::EdgeDelete, stats))
    }

    /// Inserts a new node with a *prescribed* random key (baselines and
    /// adversarial tests; see
    /// [`crate::MisEngine::insert_node_with_key`]).
    ///
    /// # Errors
    ///
    /// Propagates [`GraphError`] if a neighbor is missing or repeated; on
    /// error the engine is unchanged.
    pub fn insert_node_with_key<I>(
        &mut self,
        neighbors: I,
        key: u64,
    ) -> Result<(NodeId, UpdateReceipt), GraphError>
    where
        I: IntoIterator<Item = NodeId>,
    {
        let v = self.graph.add_node_with_edges(neighbors)?;
        self.priorities.insert(v, Priority::new(key, v));
        self.ranks.insert(v, &self.priorities);
        let origin = self.layout.shard_of(v);
        let count = self.count_lower_mis(v);
        self.shards[origin]
            .lower_mis_count
            .insert(self.layout.local_slot(v), count);
        // The newcomer starts in the temporary state M̄ (§4.1): membership
        // bit unset, no neighbor counter perturbed by its arrival.
        let mut stats = SettleStats::default();
        self.route(v, 0, origin, &mut stats, false);
        let receipt = self.settle(ChangeKind::NodeInsert, stats);
        Ok((v, receipt))
    }

    /// Removes node `v` and restores the MIS invariant. As in the
    /// unsharded engine, the receipt covers the *remaining* nodes.
    ///
    /// # Errors
    ///
    /// Propagates [`GraphError`] if `v` does not exist.
    pub fn remove_node(&mut self, v: NodeId) -> Result<UpdateReceipt, GraphError> {
        if !self.graph.has_node(v) {
            return Err(GraphError::MissingNode(v));
        }
        let was_in = self.output(v);
        let prio_v = self.priorities.of(v);
        let origin = self.layout.shard_of(v);
        let nbrs = self.graph.remove_node(v)?;
        self.priorities.remove(v);
        self.ranks.remove(v);
        let local = self.layout.local_slot(v);
        self.shards[origin].in_mis.remove(local);
        self.shards[origin].lower_mis_count.remove(local);
        if was_in && self.publisher.is_attached() {
            // Departures never appear in the flip log (receipts cover
            // the *remaining* nodes), so the mirror is patched here.
            self.mirror.remove(v);
        }
        let mut stats = SettleStats::default();
        if was_in {
            for w in nbrs {
                if self.priorities.of(w) > prio_v {
                    self.route(w, -1, origin, &mut stats, true);
                }
            }
        }
        Ok(self.settle(ChangeKind::NodeDelete, stats))
    }

    /// Applies a **batch** of topology changes atomically, with the same
    /// semantics as [`crate::MisEngine::apply_batch`]: all graph mutations
    /// land first (seeding every shard's dirty set), then one coordinated
    /// settle restores the invariant across all shards.
    ///
    /// # Errors
    ///
    /// Returns the first [`GraphError`] encountered. Changes before the
    /// failing one remain applied and the invariant is restored for them;
    /// the failing and subsequent changes are not applied.
    pub fn apply_batch(&mut self, changes: &[TopologyChange]) -> Result<BatchReceipt, GraphError> {
        let mut stats = SettleStats::default();
        let mut applied = 0usize;
        let mut failure: Option<GraphError> = None;
        for change in changes {
            match self.mutate_only(change, &mut stats) {
                Ok(()) => applied += 1,
                Err(e) => {
                    failure = Some(e);
                    break;
                }
            }
        }
        let receipt = self.settle(
            changes
                .first()
                .map_or(ChangeKind::EdgeInsert, TopologyChange::kind),
            stats,
        );
        match failure {
            Some(e) => Err(e),
            None => Ok(BatchReceipt::new(applied, receipt)),
        }
    }

    /// Applies one change's graph mutation and counter fix-ups against the
    /// *frozen* outputs, seeding dirty sets but deferring the settle.
    fn mutate_only(
        &mut self,
        change: &TopologyChange,
        stats: &mut SettleStats,
    ) -> Result<(), GraphError> {
        match change {
            TopologyChange::InsertEdge(u, v) => {
                self.graph.insert_edge(*u, *v)?;
                let (lo, hi) = self.order_pair(*u, *v);
                let delta = isize::from(self.output(lo));
                self.route(hi, delta, self.layout.shard_of(lo), stats, false);
            }
            TopologyChange::DeleteEdge(u, v) => {
                self.graph.remove_edge(*u, *v)?;
                let (lo, hi) = self.order_pair(*u, *v);
                let delta = -isize::from(self.output(lo));
                self.route(hi, delta, self.layout.shard_of(lo), stats, false);
            }
            TopologyChange::InsertNode { id, edges } => {
                if self.graph.peek_next_id() != *id {
                    return Err(GraphError::MissingNode(*id));
                }
                let v = self.graph.add_node_with_edges(edges.iter().copied())?;
                self.priorities.assign(v, &mut self.rng);
                self.draws += 1;
                // Re-ranking is legal mid-batch: dirty marks are still
                // node ids; ranks enter the fronts only at settle start.
                self.ranks.insert(v, &self.priorities);
                let origin = self.layout.shard_of(v);
                let count = self.count_lower_mis(v);
                self.shards[origin]
                    .lower_mis_count
                    .insert(self.layout.local_slot(v), count);
                self.route(v, 0, origin, stats, false);
            }
            TopologyChange::DeleteNode(v) => {
                if !self.graph.has_node(*v) {
                    return Err(GraphError::MissingNode(*v));
                }
                let was_in = self.output(*v);
                let prio_v = self.priorities.of(*v);
                let origin = self.layout.shard_of(*v);
                let nbrs = self.graph.remove_node(*v)?;
                self.priorities.remove(*v);
                self.ranks.remove(*v);
                let local = self.layout.local_slot(*v);
                self.shards[origin].in_mis.remove(local);
                self.shards[origin].lower_mis_count.remove(local);
                if was_in && self.publisher.is_attached() {
                    // As in `remove_node`: departures are not flips.
                    self.mirror.remove(*v);
                }
                for w in nbrs {
                    if self.priorities.of(w) > prio_v {
                        self.route(w, -isize::from(was_in), origin, stats, false);
                    }
                }
            }
        }
        Ok(())
    }

    /// Runs the epoch coordinator to global quiescence and builds the
    /// receipt.
    ///
    /// Each epoch drains every dirty shard to local completion against a
    /// frozen view of the others (see the [module docs](self)); the
    /// barrier then merges all buffered handoffs in shard-index order,
    /// seeding the next epoch. Shard runs within an epoch share no
    /// mutable state, so the executor — inline or the worker threads of
    /// [`crate::ParallelShardedMisEngine`] — cannot change the outcome.
    fn settle(&mut self, kind: ChangeKind, mut stats: SettleStats) -> UpdateReceipt {
        // All of this update's mutations have landed: one coalesced
        // re-rank covers every node the update inserted out of π order.
        // Unconditional on purpose — the heap drain never reads ranks,
        // but flushing both strategies keeps the pending list bounded by
        // a single update's inserts (so `RankIndex::remove` stays
        // O(batch)) and keeps every live node ranked between updates,
        // which is what lets [`Self::route`] park ranks directly for
        // single-change updates without a strategy-switch guard.
        self.ranks.flush(&self.priorities);
        if self.strategy == SettleStrategy::RankFront {
            self.convert_seeds();
        }
        while self.shards.iter().any(|sh| sh.pending() > 0) {
            stats.epochs += 1;
            {
                let ShardedMisEngine {
                    graph,
                    priorities,
                    ranks,
                    layout,
                    shards,
                    threads,
                    spawn_threshold,
                    strategy,
                    ..
                } = self;
                let ctx = SettleCtx {
                    graph,
                    priorities,
                    ranks,
                    strategy: *strategy,
                    layout: *layout,
                };
                crate::parallel::execute_epoch(ctx, shards, *threads, *spawn_threshold, &mut stats);
            }
            self.merge_outboxes(&mut stats);
        }
        // Global quiescence: every shard front has drained, so no rank
        // is parked anywhere and compaction is legal. Keeps the rank
        // span within 2× the live count under deletion-heavy churn.
        self.ranks.maybe_compact();
        // Net flips: nodes whose final state differs from their state at
        // first touch. Collection order across shards is irrelevant —
        // the report is sorted by π (the unsharded settle order).
        let mut flips: Vec<(NodeId, MisState)> = Vec::new();
        for s in 0..self.shards.len() {
            let log = std::mem::take(&mut self.shards[s].log);
            for &(v, before) in &log {
                self.shards[s].touched.remove(self.layout.local_slot(v));
                let now = self.output(v);
                if now != before {
                    flips.push((v, MisState::from_membership(now)));
                }
            }
        }
        flips.sort_by_key(|&(v, _)| self.priorities.of(v));
        // Publication comes strictly after compaction (the snapshot's
        // compaction stamp is the witness): patch the global mirror from
        // the net flips, then publish this flush boundary.
        if self.publisher.is_attached() {
            for &(v, state) in &flips {
                if state.is_in() {
                    self.mirror.insert(v);
                } else {
                    self.mirror.remove(v);
                }
            }
            debug_assert!(self.ranks.is_flushed(), "publishing before rank quiescence");
            let p = self.publisher.get_mut().expect("attached");
            p.publish(&self.mirror, self.ranks.compactions());
        }
        UpdateReceipt::new(kind, flips, stats.pops, stats.counter_updates).with_shard_stats(
            stats.handoffs,
            stats.shard_runs,
            stats.epochs,
        )
    }

    /// Converts every shard's staged dirty marks (node ids, buffered by
    /// [`Self::route`] while the update's mutations were landing) into
    /// pending front ranks. Runs once, at settle start, when the node set
    /// — and hence the rank assignment — is final for this update. Seeds
    /// whose node a later change deleted become `stale` entries, which
    /// the drain accounts exactly like the heap path's popped-and-skipped
    /// stale heap entries.
    fn convert_seeds(&mut self) {
        debug_assert!(self.ranks.is_flushed(), "settle() flushes first");
        let ShardedMisEngine {
            graph,
            ranks,
            shards,
            ..
        } = self;
        for shard in shards.iter_mut() {
            if shard.seeds.is_empty() {
                continue;
            }
            // Take the buffer so its capacity survives the drain.
            let mut seeds = std::mem::take(&mut shard.seeds);
            for v in seeds.drain(..) {
                if graph.has_node(v) {
                    shard.front.insert(ranks.rank_of(v));
                } else {
                    shard.stale.push(v);
                }
            }
            shard.seeds = seeds;
        }
    }

    /// The epoch barrier: applies every shard's buffered handoffs —
    /// counter deltas plus dirty marks — in shard-index order, then
    /// emission order, re-seeding target heaps for the next epoch. Each
    /// outbox entry is one cross-shard message: one handoff, one counter
    /// update.
    fn merge_outboxes(&mut self, stats: &mut SettleStats) {
        for s in 0..self.shards.len() {
            if self.shards[s].outbox.is_empty() {
                continue;
            }
            let mut outbox = std::mem::take(&mut self.shards[s].outbox);
            for &(w, delta) in &outbox {
                stats.handoffs += 1;
                let target = self.layout.shard_of(w);
                let lw = self.layout.local_slot(w);
                let shard = &mut self.shards[target];
                let c = shard.lower_mis_count.get_mut(lw).expect("live node");
                *c = c.checked_add_signed(delta).expect("counter in range");
                stats.counter_updates += 1;
                if shard.enqueued.insert(lw) {
                    match self.strategy {
                        // Handoff targets are always live, and no re-rank
                        // can happen mid-settle: insert the rank directly.
                        SettleStrategy::RankFront => {
                            shard.front.insert(self.ranks.rank_of(w));
                        }
                        SettleStrategy::BinaryHeap => {
                            shard.heap.push(Reverse((self.priorities.of(w), w)));
                        }
                    }
                }
            }
            // Hand the (cleared) buffer back so its capacity is reused.
            outbox.clear();
            self.shards[s].outbox = outbox;
        }
    }

    /// Scans every live node for corrupted membership/counter state and
    /// heals what it finds — the sharded realization of
    /// [`crate::MisEngine::verify_and_repair`], with the identical
    /// detection rule and the identical convergence argument: fixed
    /// counters plus a priority-ordered drain of the violated set land
    /// on the unique greedy fixed point for (graph, π). Healing runs
    /// through the ordinary epoch coordinator, so cross-shard cascades,
    /// receipts, and (if a read path is attached) the published epoch
    /// all behave exactly like a settle; the global membership mirror
    /// stays consistent because only net-flipped nodes patch it.
    pub fn verify_and_repair(&mut self) -> crate::durability::RepairReport {
        let nodes: Vec<NodeId> = self.graph.nodes().collect();
        let scanned = nodes.len();
        let mut counters_fixed = 0usize;
        let mut memberships_violated = 0usize;
        let mut violated = Vec::new();
        for v in nodes {
            let truth = self.count_lower_mis(v);
            let (s, local) = (self.layout.shard_of(v), self.layout.local_slot(v));
            let mut bad = false;
            if self.shards[s].lower_mis_count[local] != truth {
                *self.shards[s]
                    .lower_mis_count
                    .get_mut(local)
                    .expect("live node") = truth;
                counters_fixed += 1;
                bad = true;
            }
            if self.shards[s].in_mis.contains(local) != (truth == 0) {
                memberships_violated += 1;
                bad = true;
            }
            if bad {
                violated.push(v);
            }
        }
        if violated.is_empty() {
            return crate::durability::RepairReport::clean(scanned);
        }
        let mut stats = SettleStats::default();
        stats.counter_updates += counters_fixed;
        for v in violated {
            // Delta-free dirty marks: the counters are already truthful,
            // the drain only needs to re-finalize the violated nodes.
            self.route(v, 0, self.layout.shard_of(v), &mut stats, false);
        }
        let receipt = self.settle(ChangeKind::EdgeInsert, stats);
        crate::durability::RepairReport::new(
            scanned,
            counters_fixed,
            memberships_violated,
            &receipt,
        )
    }

    /// Test-only fault injector: flips the membership bit of each live
    /// victim in its owning shard's local table, leaving counters and
    /// the publication mirror untouched — the E13 corruption model at
    /// the sharded tier. Returns how many victims were live.
    #[doc(hidden)]
    pub fn corrupt_in_mis(&mut self, victims: &[NodeId]) -> usize {
        let mut flipped = 0;
        for &v in victims {
            if !self.graph.has_node(v) {
                continue;
            }
            let (s, local) = (self.layout.shard_of(v), self.layout.local_slot(v));
            if self.shards[s].in_mis.contains(local) {
                self.shards[s].in_mis.remove(local);
            } else {
                self.shards[s].in_mis.insert(local);
            }
            flipped += 1;
        }
        flipped
    }

    /// Checkpoint-time metadata: flavor, layout, RNG position, epoch.
    #[doc(hidden)]
    #[must_use]
    pub fn durability_meta(&self) -> crate::durability::DurabilityMeta {
        crate::durability::DurabilityMeta {
            flavor: crate::durability::EngineFlavor::Sharded,
            shards: self.layout.shards(),
            block: self.layout.block(),
            threads: self.threads,
            seed: self.seed,
            draws: self.draws,
            epoch: self.publisher.get().map(MisPublisher::epoch),
        }
    }

    /// Recovery-time re-attach at a prescribed epoch; see
    /// [`crate::MisEngine::restore_epoch`]. Must be called on a freshly
    /// built engine, before [`Self::reader`].
    #[doc(hidden)]
    pub fn restore_epoch(&mut self, epoch: u64) {
        self.mirror = self.mis_iter().collect();
        self.publisher.set(MisPublisher::attach_at(
            &self.mirror,
            self.ranks.compactions(),
            epoch,
        ));
    }

    /// Verifies the MIS invariant over the whole graph.
    ///
    /// # Errors
    ///
    /// Returns the first violation found.
    pub fn check_invariant(&self) -> Result<(), InvariantViolation> {
        // Dense path: merge the shards' bits once instead of building an
        // ordered set.
        let members: NodeSet = self.mis_iter().collect();
        invariant::check_mis_invariant_dense(&self.graph, &self.priorities, &members)
    }

    /// Verifies every shard's bookkeeping against a from-scratch
    /// recomputation. Intended for tests.
    ///
    /// # Panics
    ///
    /// Panics if any counter, bit, or shard assignment diverged.
    pub fn assert_internally_consistent(&self) {
        self.graph.assert_consistent();
        assert_eq!(self.priorities.len(), self.graph.node_count());
        self.ranks.assert_consistent(&self.priorities);
        let total_counters: usize = self.shards.iter().map(|s| s.lower_mis_count.len()).sum();
        assert_eq!(total_counters, self.graph.node_count());
        for shard in &self.shards {
            assert!(shard.heap.is_empty(), "dirty set leaked between updates");
            assert!(shard.front.is_empty(), "settle front leaked ranks");
            assert!(shard.seeds.is_empty(), "staged seeds leaked entries");
            assert!(shard.stale.is_empty(), "stale seeds leaked entries");
            assert!(shard.enqueued.is_empty(), "enqueue scratch leaked bits");
            assert!(shard.outbox.is_empty(), "outbox leaked past the barrier");
            assert!(shard.touched.is_empty(), "flip log leaked touch bits");
            assert!(shard.log.is_empty(), "flip log leaked entries");
        }
        for shard in &self.shards {
            assert_eq!(
                shard.in_mis.len(),
                shard.in_mis.popcount(),
                "cached shard mis_len diverged from its membership words"
            );
        }
        let ground_truth = crate::static_greedy::greedy_mis_dense(&self.graph, &self.priorities);
        let total_bits: usize = self.shards.iter().map(|s| s.in_mis.len()).sum();
        assert_eq!(total_bits, ground_truth.len(), "stale membership bits");
        for v in self.graph.nodes() {
            assert_eq!(
                self.output(v),
                ground_truth.contains(v),
                "state of {v} diverged from static greedy"
            );
            assert_eq!(
                self.shards[self.layout.shard_of(v)].lower_mis_count[self.layout.local_slot(v)],
                self.count_lower_mis(v),
                "counter of {v} diverged"
            );
        }
    }

    /// Pre-sizes every per-node structure for `n` nodes: global tables
    /// (adjacency, priorities, ranks) get `n` slots, each shard's local
    /// tables get its [`ShardLayout::local_span`] share, and each
    /// shard's front gets the full rank span (fronts hold **global**
    /// ranks). A bootstrap of up to `n` insertions then performs no
    /// incremental regrows.
    pub fn reserve_nodes(&mut self, n: usize) {
        self.graph.reserve_nodes(n);
        self.priorities.reserve_nodes(n);
        self.ranks.reserve(n);
        let local = self.layout.local_span(n);
        for shard in &mut self.shards {
            shard.in_mis.reserve_nodes(local);
            shard.lower_mis_count.reserve_slots(local);
            shard.enqueued.reserve_nodes(local);
            shard.touched.reserve_nodes(local);
            shard.front.reserve(n);
        }
    }

    /// Total times any per-node structure grew past its capacity
    /// (reallocated) since construction. 0 after an adequate
    /// [`Self::reserve_nodes`] — the debug counter behind the no-regrow
    /// bootstrap guarantee.
    #[must_use]
    pub fn storage_regrows(&self) -> u64 {
        let shards: u64 = self
            .shards
            .iter()
            .map(|s| {
                s.in_mis.regrows()
                    + s.lower_mis_count.regrows()
                    + s.enqueued.regrows()
                    + s.touched.regrows()
                    + s.front.regrows()
            })
            .sum();
        self.graph.regrows() + self.priorities.regrows() + self.ranks.regrows() + shards
    }

    /// [`Self::check_invariant`] restricted to ~`sample` deterministically
    /// chosen nodes. Merging the shard membership bits costs O(n/64)
    /// words; the expensive neighbor scans run only for sampled nodes.
    ///
    /// # Errors
    ///
    /// Returns the first violation found among sampled nodes.
    pub fn check_invariant_sampled(
        &self,
        sample: usize,
        seed: u64,
    ) -> Result<(), InvariantViolation> {
        let members: NodeSet = self.mis_iter().collect();
        invariant::check_mis_invariant_sampled(
            &self.graph,
            &self.priorities,
            &members,
            sample,
            seed,
        )
    }

    /// Sampled counterpart of [`Self::assert_internally_consistent`]:
    /// per-shard facts stay exact (cached membership counts against
    /// popcounts, drained settle scratch), while per-node counters and
    /// membership are recomputed only for ~`sample` deterministically
    /// chosen nodes.
    ///
    /// # Panics
    ///
    /// Panics if any checked structure diverged.
    pub fn assert_internally_consistent_sampled(&self, sample: usize, seed: u64) {
        assert_eq!(self.priorities.len(), self.graph.node_count());
        let total_counters: usize = self.shards.iter().map(|s| s.lower_mis_count.len()).sum();
        assert_eq!(total_counters, self.graph.node_count());
        for shard in &self.shards {
            assert_eq!(
                shard.in_mis.len(),
                shard.in_mis.popcount(),
                "cached shard mis_len diverged from its membership words"
            );
            assert!(shard.heap.is_empty(), "dirty set leaked between updates");
            assert!(shard.front.is_empty(), "settle front leaked ranks");
            assert!(shard.enqueued.is_empty(), "enqueue scratch leaked bits");
            assert!(shard.outbox.is_empty(), "outbox leaked past the barrier");
        }
        for v in invariant::sampled_nodes(&self.graph, sample, seed) {
            let (s, local) = (self.layout.shard_of(v), self.layout.local_slot(v));
            assert_eq!(
                self.shards[s].lower_mis_count[local],
                self.count_lower_mis(v),
                "counter of {v} diverged"
            );
            assert_eq!(
                self.shards[s].in_mis.contains(local),
                self.shards[s].lower_mis_count[local] == 0,
                "membership of {v} contradicts its counter"
            );
        }
    }
}

// The shared convenience layer (`apply` dispatch, `insert_node` key
// draws, `mis`, `state`) is provided once by `DynamicMis`; the macro
// forwards the trait's required primitives to the methods above.
crate::api::forward_dynamic_mis!(ShardedMisEngine, |s| s);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DynamicMis;
    use dmis_graph::generators;
    use dmis_graph::stream::{self, ChurnConfig};

    fn layouts() -> Vec<ShardLayout> {
        vec![
            ShardLayout::single(),
            ShardLayout::striped(2),
            ShardLayout::striped(4),
            ShardLayout::blocked(3, 4),
        ]
    }

    #[test]
    fn empty_engine() {
        let engine = crate::Engine::builder()
            .sharding(ShardLayout::striped(4))
            .seed(0)
            .build_sharded();
        assert!(engine.mis().is_empty());
        assert!(engine.check_invariant().is_ok());
        assert_eq!(engine.shard_count(), 4);
    }

    #[test]
    fn from_graph_matches_unsharded_initialization() {
        let mut rng = StdRng::seed_from_u64(1);
        let (g, _) = generators::erdos_renyi(40, 0.15, &mut rng);
        let plain = crate::Engine::builder()
            .graph(g.clone())
            .seed(99)
            .build_unsharded();
        for layout in layouts() {
            let engine = crate::Engine::builder()
                .graph(g.clone())
                .sharding(layout)
                .seed(99)
                .build_sharded();
            engine.assert_internally_consistent();
            assert_eq!(engine.mis(), plain.mis(), "{layout:?}");
        }
    }

    #[test]
    fn sampled_checks_pass_on_every_layout_under_churn() {
        let mut rng = StdRng::seed_from_u64(23);
        let (g, _) = generators::erdos_renyi(60, 0.1, &mut rng);
        for layout in layouts() {
            let mut engine = crate::Engine::builder()
                .graph(g.clone())
                .sharding(layout)
                .seed(3)
                .build_sharded();
            for step in 0..60u64 {
                let Some(change) =
                    stream::random_change(engine.graph(), &ChurnConfig::default(), &mut rng)
                else {
                    continue;
                };
                engine.apply(&change).unwrap();
                engine.assert_internally_consistent_sampled(8, step);
                assert!(
                    engine.check_invariant_sampled(8, step).is_ok(),
                    "{layout:?}"
                );
            }
        }
    }

    #[test]
    fn single_shard_has_no_handoffs() {
        let mut rng = StdRng::seed_from_u64(5);
        let (g, _) = generators::erdos_renyi(30, 0.2, &mut rng);
        let mut engine = crate::Engine::builder()
            .graph(g)
            .sharding(ShardLayout::single())
            .seed(7)
            .build_sharded();
        for _ in 0..100 {
            let Some(change) =
                stream::random_change(engine.graph(), &ChurnConfig::default(), &mut rng)
            else {
                continue;
            };
            let receipt = engine.apply(&change).unwrap();
            assert_eq!(receipt.cross_shard_handoffs(), 0);
        }
        engine.assert_internally_consistent();
    }

    #[test]
    fn cross_shard_cascade_is_counted_and_correct() {
        // Path 0-1-2-3 striped over 2 shards: every edge crosses the
        // boundary, so the 3-flip cascade of deleting {0,1} is all
        // handoffs.
        let (mut g, ids) = DynGraph::with_nodes(4);
        for w in ids.windows(2) {
            g.insert_edge(w[0], w[1]).unwrap();
        }
        let pm = PriorityMap::from_order(&ids);
        let mut engine = crate::Engine::builder()
            .graph(g)
            .priorities(pm)
            .sharding(ShardLayout::striped(2))
            .seed(0)
            .build_sharded();
        assert_eq!(engine.mis(), [ids[0], ids[2]].into_iter().collect());
        let receipt = engine.remove_edge(ids[0], ids[1]).unwrap();
        assert_eq!(
            receipt.flips(),
            &[
                (ids[1], MisState::In),
                (ids[2], MisState::Out),
                (ids[3], MisState::In)
            ]
        );
        assert!(receipt.cross_shard_handoffs() >= 2, "cascade crossed twice");
        assert!(receipt.shard_runs() >= 2, "both shards were activated");
        engine.assert_internally_consistent();
    }

    #[test]
    fn node_churn_round_trip_on_all_layouts() {
        for layout in layouts() {
            let mut rng = StdRng::seed_from_u64(2);
            let (g, ids) = generators::erdos_renyi(10, 0.3, &mut rng);
            let mut engine = crate::Engine::builder()
                .graph(g)
                .sharding(layout)
                .seed(3)
                .build_sharded();
            let (v, _) = engine.insert_node(&[ids[0], ids[1], ids[2]]).unwrap();
            engine.assert_internally_consistent();
            engine.remove_node(v).unwrap();
            assert!(!engine.graph().has_node(v));
            engine.assert_internally_consistent();
        }
    }

    #[test]
    fn errors_leave_engine_untouched() {
        let (g, ids) = generators::path(3);
        let mut engine = crate::Engine::builder()
            .graph(g)
            .sharding(ShardLayout::striped(2))
            .seed(0)
            .build_sharded();
        let snapshot = engine.mis();
        assert!(engine.insert_edge(ids[0], ids[1]).is_err());
        assert!(engine.remove_edge(ids[0], ids[2]).is_err());
        assert!(engine.remove_node(NodeId(50)).is_err());
        assert!(engine.insert_node(&[NodeId(50)]).is_err());
        assert_eq!(engine.mis(), snapshot);
        engine.assert_internally_consistent();
    }

    #[test]
    fn batch_matches_unsharded_batch() {
        for seed in 0..10u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let (g, _) = generators::erdos_renyi(20, 0.25, &mut rng);
            let mut shadow = g.clone();
            let mut batch = Vec::new();
            for _ in 0..6 {
                if let Some(change) =
                    stream::random_change(&shadow, &ChurnConfig::edges_only(), &mut rng)
                {
                    change.apply(&mut shadow).unwrap();
                    batch.push(change);
                }
            }
            let mut plain = crate::Engine::builder()
                .graph(g.clone())
                .seed(99 + seed)
                .build_unsharded();
            plain.apply_batch(&batch).unwrap();
            for layout in layouts() {
                let mut sharded = crate::Engine::builder()
                    .graph(g.clone())
                    .sharding(layout)
                    .seed(99 + seed)
                    .build_sharded();
                sharded.apply_batch(&batch).unwrap();
                assert_eq!(sharded.mis(), plain.mis(), "{layout:?}");
                sharded.assert_internally_consistent();
            }
        }
    }

    #[test]
    fn batch_and_single_change_agree_on_handoff_counts() {
        // Boundary edge whose lower endpoint is OUT of the MIS: no state
        // crosses the shards, so both APIs must report zero handoffs.
        let (mut g, ids) = DynGraph::with_nodes(4);
        g.insert_edge(ids[0], ids[1]).unwrap();
        let pm = PriorityMap::from_order(&ids);
        let layout = ShardLayout::striped(2);
        // ids[1] is dominated by ids[0]; edge {ids[1], ids[3]} crosses
        // shards (1 and 1... use ids[1]-ids[2]: shards 1 and 0).
        let mut single = crate::Engine::builder()
            .graph(g.clone())
            .priorities(pm.clone())
            .sharding(layout)
            .seed(0)
            .build_sharded();
        let r1 = single.insert_edge(ids[1], ids[2]).unwrap();
        let mut batched = crate::Engine::builder()
            .graph(g)
            .priorities(pm)
            .sharding(layout)
            .seed(0)
            .build_sharded();
        let r2 = batched
            .apply_batch(&[TopologyChange::InsertEdge(ids[1], ids[2])])
            .unwrap();
        assert_eq!(r1.cross_shard_handoffs(), 0, "no MIS state crossed");
        assert_eq!(
            r2.cross_shard_handoffs(),
            r1.cross_shard_handoffs(),
            "batch metering must match the single-change path"
        );
        assert_eq!(single.mis(), batched.mis());
    }

    #[test]
    fn batch_can_insert_wire_and_delete_nodes() {
        let (g, ids) = generators::path(3);
        let mut engine = crate::Engine::builder()
            .graph(g)
            .sharding(ShardLayout::striped(2))
            .seed(4)
            .build_sharded();
        let fresh = engine.graph().peek_next_id();
        let receipt = engine
            .apply_batch(&[
                TopologyChange::InsertNode {
                    id: fresh,
                    edges: vec![ids[0]],
                },
                TopologyChange::InsertEdge(fresh, ids[2]),
                TopologyChange::DeleteNode(fresh),
            ])
            .unwrap();
        assert_eq!(receipt.applied(), 3);
        assert!(!engine.graph().has_node(fresh));
        engine.assert_internally_consistent();
    }

    #[test]
    fn batch_failure_keeps_engine_consistent() {
        let (g, ids) = generators::path(4);
        let mut engine = crate::Engine::builder()
            .graph(g)
            .sharding(ShardLayout::striped(3))
            .seed(4)
            .build_sharded();
        let err = engine
            .apply_batch(&[
                TopologyChange::DeleteEdge(ids[0], ids[1]),
                TopologyChange::DeleteEdge(ids[0], ids[3]), // not an edge
                TopologyChange::DeleteEdge(ids[2], ids[3]),
            ])
            .unwrap_err();
        assert_eq!(err, GraphError::MissingEdge(ids[0], ids[3]));
        assert!(!engine.graph().has_edge(ids[0], ids[1]));
        assert!(engine.graph().has_edge(ids[2], ids[3]));
        engine.assert_internally_consistent();
    }

    #[test]
    fn long_churn_tracks_unsharded_engine_exactly() {
        let mut rng = StdRng::seed_from_u64(12);
        let (g, _) = generators::erdos_renyi(25, 0.2, &mut rng);
        let mut plain = crate::Engine::builder()
            .graph(g.clone())
            .seed(100)
            .build_unsharded();
        let mut sharded = crate::Engine::builder()
            .graph(g)
            .sharding(ShardLayout::striped(4))
            .seed(100)
            .build_sharded();
        let cfg = ChurnConfig::default();
        for step in 0..400 {
            let Some(change) = stream::random_change(plain.graph(), &cfg, &mut rng) else {
                continue;
            };
            let r1 = plain.apply(&change).unwrap();
            let r2 = sharded.apply(&change).unwrap();
            assert_eq!(plain.mis(), sharded.mis(), "step {step}");
            assert_eq!(r1.adjusted_nodes(), r2.adjusted_nodes(), "step {step}");
            if step % 50 == 0 {
                sharded.assert_internally_consistent();
            }
        }
        sharded.assert_internally_consistent();
    }

    #[test]
    fn verify_and_repair_heals_every_layout() {
        let mut rng = StdRng::seed_from_u64(41);
        let (g, ids) = generators::erdos_renyi(40, 0.15, &mut rng);
        for layout in layouts() {
            let mut engine = crate::Engine::builder()
                .graph(g.clone())
                .sharding(layout)
                .seed(13)
                .build_sharded();
            let reader = engine.reader();
            let twin = engine.clone();
            let before = reader.epoch();
            assert_eq!(engine.corrupt_in_mis(&[ids[0], ids[7], ids[13]]), 3);
            assert_ne!(engine.mis(), twin.mis(), "{layout:?}");
            let report = engine.verify_and_repair();
            assert!(report.memberships_violated() >= 3, "{layout:?}");
            assert_eq!(engine.mis(), twin.mis(), "{layout:?}");
            engine.assert_internally_consistent();
            assert!(reader.epoch() > before, "heal publishes a new epoch");
            let snap = reader.snapshot();
            let published: Vec<NodeId> = snap.iter().collect();
            let live: Vec<NodeId> = engine.mis_iter().collect();
            assert_eq!(published, live, "mirror stayed consistent: {layout:?}");
            assert!(engine.verify_and_repair().is_clean(), "{layout:?}");
        }
    }

    #[test]
    fn seeded_runs_are_reproducible() {
        let build = || {
            let mut rng = StdRng::seed_from_u64(4);
            let (g, _) = generators::erdos_renyi(15, 0.3, &mut rng);
            let mut engine = crate::Engine::builder()
                .graph(g)
                .sharding(ShardLayout::striped(3))
                .seed(5)
                .build_sharded();
            let mut outputs = Vec::new();
            for _ in 0..30 {
                if let Some(change) =
                    stream::random_change(engine.graph(), &ChurnConfig::default(), &mut rng)
                {
                    let receipt = engine.apply(&change).unwrap();
                    outputs.push((engine.mis(), receipt.cross_shard_handoffs()));
                }
            }
            outputs
        };
        assert_eq!(build(), build());
    }
}
