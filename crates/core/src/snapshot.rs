//! Epoch-versioned snapshot publication: the concurrent read path.
//!
//! The paper's synchronous broadcast-round model hands every node a
//! consistent view of the MIS at each round boundary. This module gives
//! the *engines* the same guarantee for concurrent readers: the writer
//! publishes the settled membership bitset (the `NodeSet` words plus the
//! cached `mis_len`) at every flush boundary — the end of each settle
//! pass, i.e. each `insert_edge`/`apply_batch`/`IngestSession::flush`
//! quiescence point — and readers on other threads observe exactly those
//! published states, never a half-settled intermediate.
//!
//! # Shape
//!
//! - [`MisSnapshot`] — one immutable published state: membership words,
//!   cached cardinality, and the epoch counter stamped at publication.
//! - [`MisReader`] — a cheaply-cloneable `Send + Sync` handle. Each
//!   [`MisReader::snapshot`] call acquires the current [`MisSnapshot`]
//!   behind an `Arc`; every query on the acquired snapshot is then a
//!   pure read with no synchronization at all, so a reader holding a
//!   snapshot is wait-free no matter what the writer does.
//! - `MisPublisher` (crate-private) — the writer side, owned by an
//!   engine. `publish` builds the next `Arc<MisSnapshot>` *outside* the
//!   swap lock and installs it with an O(1) pointer store, so the
//!   reader-visible critical section never scales with the graph.
//!
//! # Epoch semantics
//!
//! Epoch 0 is the state at attach time ([`DynamicMis::reader`]'s first
//! call); every subsequent settle publishes epoch `e + 1`. Epochs are
//! monotone: [`MisReader::epoch`] (a lock-free atomic load) never
//! decreases, and a snapshot's own epoch never exceeds what `epoch()`
//! returned before it was acquired. The concurrency tier
//! (`crates/core/tests/snapshot_consistency.rs`) pins both properties,
//! plus the bit-match guarantee: every observed snapshot equals the
//! writer's quiesced membership at *some* flush boundary.
//!
//! # Ordering against rank compaction
//!
//! Engines publish strictly **after** [`crate::rank::RankIndex`]'s
//! settle-end `maybe_compact`, so a snapshot can never be built while a
//! tombstoned `NodeId::MAX` slot is being dropped from the rank table.
//! Each snapshot records the rank-table compaction count current at its
//! publication ([`MisSnapshot::rank_compactions`]); the ordering test
//! asserts it always equals the engine's live counter at quiescence.
//!
//! [`DynamicMis::reader`]: crate::DynamicMis::reader

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use dmis_graph::{NodeId, NodeSet};

/// One immutable published MIS state: the membership bitset, its
/// cardinality, and the epoch stamped by the writer at publication.
///
/// Snapshots are acquired from a [`MisReader`] and shared via `Arc`;
/// every query is a pure read on frozen data, so holding a snapshot
/// never blocks — and never observes — the writer.
#[derive(Debug, Clone)]
pub struct MisSnapshot {
    /// Membership at the publishing flush boundary.
    members: NodeSet,
    /// Publication counter: 0 at attach, +1 per settle.
    epoch: u64,
    /// The writer's rank-table compaction count at publication — the
    /// witness that publication ran strictly after settle-end
    /// compaction (see the module docs).
    rank_compactions: u64,
}

impl MisSnapshot {
    /// The epoch this snapshot was published at (0 = attach state).
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Size of the published MIS — O(1), cached at publication.
    #[must_use]
    pub fn mis_len(&self) -> usize {
        self.members.len()
    }

    /// Returns whether `v` was in the MIS at this snapshot's flush
    /// boundary. Total: unknown identifiers are simply not members.
    #[must_use]
    pub fn contains(&self, v: NodeId) -> bool {
        self.members.contains(v)
    }

    /// Iterates over the published MIS in identifier order.
    pub fn iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.members.iter()
    }

    /// The published membership bitset.
    #[must_use]
    pub fn members(&self) -> &NodeSet {
        &self.members
    }

    /// Raw membership words (bit `i % 64` of word `i / 64` ⟺
    /// `NodeId(i)` published as a member) — what the consistency tier
    /// bit-matches against its per-epoch oracle.
    #[must_use]
    pub fn words(&self) -> &[u64] {
        self.members.words()
    }

    /// The writer's rank-table compaction count
    /// ([`crate::rank::RankIndex::compactions`]) at publication.
    #[must_use]
    pub fn rank_compactions(&self) -> u64 {
        self.rank_compactions
    }
}

/// The shared cell between one publisher and its readers.
#[derive(Debug)]
struct SnapshotCell {
    /// Latest published epoch, readable without the swap lock.
    epoch: AtomicU64,
    /// Swap point. Held only for an O(1) `Arc` store (writer) or
    /// clone (reader) — never while a snapshot is being built.
    current: Mutex<Arc<MisSnapshot>>,
}

impl SnapshotCell {
    /// Clones out the current snapshot. Recovers from poisoning: the
    /// guarded value is always a fully-built `Arc`, installed by a
    /// single pointer store, so a writer panicking elsewhere cannot
    /// leave it torn.
    fn load(&self) -> Arc<MisSnapshot> {
        match self.current.lock() {
            Ok(guard) => Arc::clone(&guard),
            Err(poisoned) => Arc::clone(&poisoned.into_inner()),
        }
    }

    fn store(&self, snap: Arc<MisSnapshot>) {
        let epoch = snap.epoch;
        match self.current.lock() {
            Ok(mut guard) => *guard = snap,
            Err(poisoned) => *poisoned.into_inner() = snap,
        }
        // Readers may learn the new epoch only after the snapshot
        // carrying it is reachable.
        self.epoch.store(epoch, Ordering::Release);
    }
}

/// Writer side of the snapshot channel; owned by an engine, one per
/// attached read path. Publishes at every settle-end quiescence point.
#[derive(Debug)]
pub(crate) struct MisPublisher {
    cell: Arc<SnapshotCell>,
}

impl MisPublisher {
    /// Creates the channel and publishes the attach-time state as
    /// epoch 0.
    pub(crate) fn attach(members: &NodeSet, rank_compactions: u64) -> Self {
        let snap = Arc::new(MisSnapshot {
            members: members.clone(),
            epoch: 0,
            rank_compactions,
        });
        MisPublisher {
            cell: Arc::new(SnapshotCell {
                epoch: AtomicU64::new(0),
                current: Mutex::new(snap),
            }),
        }
    }

    /// Creates the channel at a prescribed epoch instead of 0: the
    /// recovery path re-attaches a restored engine's read channel at
    /// the epoch its checkpoint + replayed WAL suffix reconstructed, so
    /// readers resuming after a crash never observe a regressed epoch.
    pub(crate) fn attach_at(members: &NodeSet, rank_compactions: u64, epoch: u64) -> Self {
        let snap = Arc::new(MisSnapshot {
            members: members.clone(),
            epoch,
            rank_compactions,
        });
        MisPublisher {
            cell: Arc::new(SnapshotCell {
                epoch: AtomicU64::new(epoch),
                current: Mutex::new(snap),
            }),
        }
    }

    /// Latest published epoch (the writer's own last store).
    pub(crate) fn epoch(&self) -> u64 {
        self.cell.epoch.load(Ordering::Relaxed)
    }

    /// Publishes the next flush boundary: a fresh snapshot of `members`
    /// at epoch `latest + 1`. The snapshot is built before the swap
    /// lock is taken, so readers only ever wait for a pointer store.
    pub(crate) fn publish(&mut self, members: &NodeSet, rank_compactions: u64) {
        // Single-writer: the publisher is reached through `&mut` on the
        // engine, so the relaxed read of our own last store is exact.
        let epoch = self.cell.epoch.load(Ordering::Relaxed) + 1;
        let snap = Arc::new(MisSnapshot {
            members: members.clone(),
            epoch,
            rank_compactions,
        });
        self.cell.store(snap);
    }

    /// Hands out a read handle onto this publisher's channel.
    pub(crate) fn reader(&self) -> MisReader {
        MisReader {
            cell: Arc::clone(&self.cell),
        }
    }
}

/// A concurrent read handle over an engine's published MIS snapshots.
///
/// Obtained from [`crate::DynamicMis::reader`] (or
/// [`crate::EngineBuilder::build_with_reader`]); cheap to clone — one
/// `Arc` bump — and `Send + Sync`, so one handle per reader thread is
/// the intended shape. See the [module docs](self) for the epoch and
/// consistency guarantees.
///
/// The convenience queries ([`MisReader::is_in_mis`],
/// [`MisReader::mis_len`], [`MisReader::mis_iter`]) each acquire the
/// *current* snapshot; correlated multi-query reads (e.g. a membership
/// probe plus the cardinality it should be consistent with) should
/// acquire one [`MisReader::snapshot`] and query that.
#[derive(Debug, Clone)]
pub struct MisReader {
    cell: Arc<SnapshotCell>,
}

impl MisReader {
    /// Latest published epoch — a lock-free atomic load. Monotone.
    #[must_use]
    pub fn epoch(&self) -> u64 {
        self.cell.epoch.load(Ordering::Acquire)
    }

    /// Acquires the current snapshot: an O(1) `Arc` clone under the
    /// swap mutex (held by the writer only for a pointer store, never
    /// while building a snapshot). All queries on the returned
    /// [`MisSnapshot`] are synchronization-free.
    #[must_use]
    pub fn snapshot(&self) -> Arc<MisSnapshot> {
        self.cell.load()
    }

    /// Whether `v` is a member of the *current* snapshot's MIS.
    #[must_use]
    pub fn is_in_mis(&self, v: NodeId) -> bool {
        self.snapshot().contains(v)
    }

    /// Size of the *current* snapshot's MIS.
    #[must_use]
    pub fn mis_len(&self) -> usize {
        self.snapshot().mis_len()
    }

    /// Iterates the *current* snapshot's MIS in identifier order. The
    /// iterator owns its snapshot, so it stays internally consistent
    /// even while the writer keeps publishing.
    #[must_use]
    pub fn mis_iter(&self) -> SnapshotIter {
        SnapshotIter::new(self.snapshot())
    }
}

/// Identifier-order iterator over one owned [`MisSnapshot`] — see
/// [`MisReader::mis_iter`].
#[derive(Debug)]
pub struct SnapshotIter {
    snap: Arc<MisSnapshot>,
    /// Next word index to refill from.
    word: usize,
    /// Unconsumed bits of the current word (bit k ⟺ id `base + k`).
    bits: u64,
    /// Node-id base of the current word.
    base: u64,
}

impl SnapshotIter {
    fn new(snap: Arc<MisSnapshot>) -> Self {
        SnapshotIter {
            snap,
            word: 0,
            bits: 0,
            base: 0,
        }
    }
}

impl Iterator for SnapshotIter {
    type Item = NodeId;

    fn next(&mut self) -> Option<NodeId> {
        while self.bits == 0 {
            let words = self.snap.words();
            if self.word >= words.len() {
                return None;
            }
            self.bits = words[self.word];
            self.base = 64 * self.word as u64;
            self.word += 1;
        }
        let k = self.bits.trailing_zeros() as u64;
        self.bits &= self.bits - 1;
        Some(NodeId(self.base + k))
    }
}

/// Engine-side slot for an optional publisher.
///
/// `Clone` **detaches**: a cloned engine starts with no publisher, so
/// existing readers keep following the engine they were created from
/// and the clone's settles publish nowhere until `reader()` is called
/// on the clone itself. (Anything else would mean two writers racing
/// one epoch counter.)
#[derive(Debug, Default)]
pub(crate) struct PublishSlot {
    publisher: Option<MisPublisher>,
}

impl Clone for PublishSlot {
    fn clone(&self) -> Self {
        PublishSlot::default()
    }
}

impl PublishSlot {
    /// Whether a read path is attached (i.e. settles must publish).
    pub(crate) fn is_attached(&self) -> bool {
        self.publisher.is_some()
    }

    /// Installs the publisher; at most once per slot.
    pub(crate) fn set(&mut self, publisher: MisPublisher) {
        debug_assert!(self.publisher.is_none(), "publisher attached twice");
        self.publisher = Some(publisher);
    }

    /// The attached publisher, if any.
    pub(crate) fn get(&self) -> Option<&MisPublisher> {
        self.publisher.as_ref()
    }

    /// Mutable access to the attached publisher, if any.
    pub(crate) fn get_mut(&mut self) -> Option<&mut MisPublisher> {
        self.publisher.as_mut()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn set_of(ids: &[u64]) -> NodeSet {
        ids.iter().map(|&i| NodeId(i)).collect()
    }

    #[test]
    fn reader_handles_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MisReader>();
        assert_send_sync::<Arc<MisSnapshot>>();
        assert_send_sync::<SnapshotIter>();
    }

    #[test]
    fn attach_publishes_epoch_zero() {
        let publisher = MisPublisher::attach(&set_of(&[1, 5, 64]), 0);
        let reader = publisher.reader();
        assert_eq!(reader.epoch(), 0);
        let snap = reader.snapshot();
        assert_eq!(snap.epoch(), 0);
        assert_eq!(snap.mis_len(), 3);
        assert!(snap.contains(NodeId(64)));
        assert!(!snap.contains(NodeId(2)));
        assert!(!snap.contains(NodeId(1_000_000)), "total on unknown ids");
    }

    #[test]
    fn publish_bumps_the_epoch_and_swaps_the_members() {
        let mut publisher = MisPublisher::attach(&set_of(&[0]), 0);
        let reader = publisher.reader();
        let held = reader.snapshot();
        publisher.publish(&set_of(&[2, 3]), 1);
        assert_eq!(reader.epoch(), 1);
        let now = reader.snapshot();
        assert_eq!(now.epoch(), 1);
        assert_eq!(now.mis_len(), 2);
        assert_eq!(now.rank_compactions(), 1);
        // The previously-acquired snapshot is frozen, not retracted.
        assert_eq!(held.epoch(), 0);
        assert!(held.contains(NodeId(0)));
    }

    #[test]
    fn snapshot_iter_matches_identifier_order() {
        let mut publisher = MisPublisher::attach(&NodeSet::new(), 0);
        publisher.publish(&set_of(&[190, 0, 63, 64, 7]), 0);
        let reader = publisher.reader();
        let ids: Vec<u64> = reader.mis_iter().map(NodeId::index).collect();
        assert_eq!(ids, vec![0, 7, 63, 64, 190]);
        assert_eq!(reader.mis_len(), 5);
        assert!(reader.is_in_mis(NodeId(63)));
        assert!(!reader.is_in_mis(NodeId(62)));
    }

    #[test]
    fn clones_share_the_channel() {
        let mut publisher = MisPublisher::attach(&NodeSet::new(), 0);
        let a = publisher.reader();
        let b = a.clone();
        publisher.publish(&set_of(&[9]), 0);
        assert_eq!(a.epoch(), 1);
        assert_eq!(b.epoch(), 1);
        assert!(b.snapshot().contains(NodeId(9)));
    }

    #[test]
    fn attach_at_resumes_from_a_prescribed_epoch() {
        let mut publisher = MisPublisher::attach_at(&set_of(&[3]), 2, 41);
        assert_eq!(publisher.epoch(), 41);
        let reader = publisher.reader();
        assert_eq!(reader.epoch(), 41);
        assert_eq!(reader.snapshot().rank_compactions(), 2);
        publisher.publish(&set_of(&[3, 5]), 2);
        assert_eq!(reader.epoch(), 42);
        assert_eq!(publisher.epoch(), 42);
    }

    #[test]
    fn publish_slot_clone_detaches() {
        let mut slot = PublishSlot::default();
        slot.set(MisPublisher::attach(&NodeSet::new(), 0));
        assert!(slot.is_attached());
        assert!(!slot.clone().is_attached());
    }
}
