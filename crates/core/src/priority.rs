use std::fmt;

use dmis_graph::{NodeId, NodeMap};
use rand::Rng;

/// A node's position in the random order π.
///
/// The paper assumes "each node v ∈ V has a uniformly random and independent
/// ID ℓ_v ∈ [0, 1]" (Section 4). We realize ℓ as a uniform `u64` key; ties
/// (probability ≈ 2⁻⁶⁴ per pair) are broken by node identifier, so priorities
/// always form a strict total order — a uniformly random permutation of the
/// nodes.
///
/// Lower priority = earlier in π = inspected earlier by sequential greedy.
///
/// # Example
///
/// ```
/// use dmis_core::Priority;
/// use dmis_graph::NodeId;
///
/// let a = Priority::new(10, NodeId(0));
/// let b = Priority::new(20, NodeId(1));
/// assert!(a < b);
/// let tie = Priority::new(10, NodeId(1));
/// assert!(a < tie, "ties break by node identifier");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Priority {
    key: u64,
    id: NodeId,
}

impl Priority {
    /// Creates a priority with an explicit key (mainly for tests that need
    /// a prescribed order).
    #[must_use]
    pub const fn new(key: u64, id: NodeId) -> Self {
        Priority { key, id }
    }

    /// Draws a uniformly random priority for node `id`.
    pub fn random<R: Rng + ?Sized>(id: NodeId, rng: &mut R) -> Self {
        Priority {
            key: rng.random(),
            id,
        }
    }

    /// Returns the random key (the paper's ℓ value).
    #[must_use]
    pub const fn key(self) -> u64 {
        self.key
    }

    /// Returns the node this priority belongs to.
    #[must_use]
    pub const fn id(self) -> NodeId {
        self.id
    }
}

impl fmt::Debug for Priority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "π({}, {:#x})", self.id, self.key)
    }
}

/// Assignment of priorities to the live nodes: the random order π.
///
/// History independence requires that a node's priority is drawn exactly
/// once, at insertion, and never redrawn; `PriorityMap` enforces this by
/// refusing to overwrite an existing assignment.
///
/// Backed by a dense [`NodeMap`], so the `of`/`before` lookups on the
/// engine's settle loop are direct slot accesses.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PriorityMap {
    map: NodeMap<Priority>,
}

impl PriorityMap {
    /// Creates an empty assignment.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Pre-sizes the backing table for `n` nodes, so a bootstrap of up
    /// to `n` assignments performs no incremental regrows.
    pub fn reserve_nodes(&mut self, n: usize) {
        self.map.reserve_slots(n);
    }

    /// Times the backing table grew past its capacity (reallocated)
    /// since construction. 0 after an adequate [`Self::reserve_nodes`].
    #[must_use]
    pub fn regrows(&self) -> u64 {
        self.map.regrows()
    }

    /// Draws and records a fresh random priority for `id`.
    ///
    /// # Panics
    ///
    /// Panics if `id` already has a priority — redrawing would break history
    /// independence.
    pub fn assign<R: Rng + ?Sized>(&mut self, id: NodeId, rng: &mut R) -> Priority {
        let p = Priority::random(id, rng);
        self.insert(id, p);
        p
    }

    /// Records an explicit priority (for tests constructing prescribed
    /// orders).
    ///
    /// # Panics
    ///
    /// Panics if `id` already has a priority, or if the priority was built
    /// for a different node.
    pub fn insert(&mut self, id: NodeId, p: Priority) {
        assert_eq!(p.id(), id, "priority belongs to a different node");
        let prev = self.map.insert(id, p);
        assert!(prev.is_none(), "priority of {id} must not be redrawn");
    }

    /// Removes the priority of a deleted node, returning it if present.
    pub fn remove(&mut self, id: NodeId) -> Option<Priority> {
        self.map.remove(id)
    }

    /// Returns the priority of `id`, if assigned.
    #[must_use]
    pub fn get(&self, id: NodeId) -> Option<Priority> {
        self.map.get(id).copied()
    }

    /// Returns `true` if `a` is ordered before `b` in π.
    ///
    /// # Panics
    ///
    /// Panics if either node has no priority.
    #[must_use]
    pub fn before(&self, a: NodeId, b: NodeId) -> bool {
        self.of(a) < self.of(b)
    }

    /// Returns the priority of `id`.
    ///
    /// # Panics
    ///
    /// Panics if the node has no priority.
    #[must_use]
    pub fn of(&self, id: NodeId) -> Priority {
        self.get(id)
            .unwrap_or_else(|| panic!("node {id} has no priority"))
    }

    /// Number of assigned priorities.
    #[must_use]
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// Returns `true` if no priority is assigned.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Iterates over `(node, priority)` pairs in node order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, Priority)> + '_ {
        self.map.iter().map(|(id, &p)| (id, p))
    }

    /// Returns the live nodes sorted by increasing priority — the order in
    /// which sequential greedy inspects them.
    #[must_use]
    pub fn nodes_by_priority(&self) -> Vec<NodeId> {
        let mut v: Vec<(Priority, NodeId)> = self.map.iter().map(|(id, &p)| (p, id)).collect();
        v.sort_unstable();
        v.into_iter().map(|(_, id)| id).collect()
    }

    /// Builds a map that realizes the given explicit order: `order[0]` gets
    /// the smallest priority, and so on. For tests and adversarial
    /// constructions.
    #[must_use]
    pub fn from_order(order: &[NodeId]) -> Self {
        let mut map = PriorityMap::new();
        for (rank, &id) in order.iter().enumerate() {
            map.insert(id, Priority::new(rank as u64, id));
        }
        map
    }
}

impl FromIterator<(NodeId, Priority)> for PriorityMap {
    fn from_iter<T: IntoIterator<Item = (NodeId, Priority)>>(iter: T) -> Self {
        let mut map = PriorityMap::new();
        for (id, p) in iter {
            map.insert(id, p);
        }
        map
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn ordering_is_strict_and_key_major() {
        let a = Priority::new(5, NodeId(9));
        let b = Priority::new(6, NodeId(0));
        assert!(a < b);
        assert!(Priority::new(5, NodeId(1)) < Priority::new(5, NodeId(2)));
    }

    #[test]
    fn assign_and_query() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut pm = PriorityMap::new();
        let p = pm.assign(NodeId(3), &mut rng);
        assert_eq!(pm.get(NodeId(3)), Some(p));
        assert_eq!(pm.of(NodeId(3)), p);
        assert_eq!(pm.len(), 1);
        assert!(!pm.is_empty());
        assert_eq!(pm.remove(NodeId(3)), Some(p));
        assert!(pm.is_empty());
        assert_eq!(pm.remove(NodeId(3)), None);
    }

    #[test]
    #[should_panic(expected = "must not be redrawn")]
    fn redraw_panics() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut pm = PriorityMap::new();
        pm.assign(NodeId(1), &mut rng);
        pm.assign(NodeId(1), &mut rng);
    }

    #[test]
    #[should_panic(expected = "different node")]
    fn mismatched_insert_panics() {
        let mut pm = PriorityMap::new();
        pm.insert(NodeId(1), Priority::new(0, NodeId(2)));
    }

    #[test]
    #[should_panic(expected = "no priority")]
    fn missing_of_panics() {
        let pm = PriorityMap::new();
        let _ = pm.of(NodeId(0));
    }

    #[test]
    fn from_order_realizes_order() {
        let order = [NodeId(5), NodeId(2), NodeId(9)];
        let pm = PriorityMap::from_order(&order);
        assert!(pm.before(NodeId(5), NodeId(2)));
        assert!(pm.before(NodeId(2), NodeId(9)));
        assert_eq!(pm.nodes_by_priority(), order.to_vec());
    }

    #[test]
    fn random_assignment_is_seed_deterministic() {
        let draw = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            let mut pm = PriorityMap::new();
            for i in 0..10 {
                pm.assign(NodeId(i), &mut rng);
            }
            pm.nodes_by_priority()
        };
        assert_eq!(draw(7), draw(7));
        assert_ne!(draw(7), draw(8), "different seeds give different orders");
    }

    #[test]
    fn collect_from_iterator() {
        let pm: PriorityMap = (0..3)
            .map(|i| (NodeId(i), Priority::new(100 - i, NodeId(i))))
            .collect();
        assert_eq!(
            pm.nodes_by_priority(),
            vec![NodeId(2), NodeId(1), NodeId(0)]
        );
    }

    #[test]
    fn debug_formats() {
        let p = Priority::new(255, NodeId(1));
        assert_eq!(format!("{p:?}"), "π(n1, 0xff)");
    }
}
