//! Dense ranks over the random order π — the bridge between
//! [`PriorityMap`] and the word-parallel [`dmis_graph::RankFront`].
//!
//! Priorities are 128-bit-wide `(key, id)` pairs drawn once per node
//! lifetime; what the settle loop actually needs from them is only their
//! *relative order*. [`RankIndex`] compresses that order into a dense
//! `u32` rank per live node (`rank_of`) plus the inverse table
//! (`node_at_rank`), so the settle front can be a plain bitset over ranks
//! and the hot neighbor filter `π(w) > π(v)` becomes a single `u32`
//! compare against an 8-byte-per-slot table instead of a 24-byte
//! `Option<Priority>` load.
//!
//! # Rank maintenance under churn
//!
//! A node's priority never changes while it lives, so its rank can only
//! be invalidated by *other* nodes arriving or departing:
//!
//! - **Deletion** never re-ranks. The departed node's slot in
//!   `node_at_rank` becomes a tombstone (blanked to a sentinel id, so a
//!   tombstone stays distinguishable from a live entry even for callers
//!   that *recycle* identifiers, like the matching engine's line-id
//!   arena) and the relative order of the survivors is untouched.
//! - **Insertion** appends in O(1) when the newcomer's priority exceeds
//!   every ranked priority; otherwise the newcomer is parked as
//!   *pending* and the index **re-ranks** at the next [`RankIndex::flush`]:
//!   ranked slots are already in rank order, so one merge with the
//!   priority-sorted pending list rewrites the dense tables in
//!   O(live + k log k) for k insertions — compacting accumulated
//!   tombstones on the way. Re-ranking is only legal while no rank is
//!   parked in a settle front, which the engines guarantee by seeding
//!   fronts with node ids and flushing + converting to ranks at settle
//!   start (after all of a batch's mutations).
//!
//! Pop order is unaffected either way: for live nodes,
//! `rank(u) < rank(v) ⟺ π(u) < π(v)` is an invariant, so draining a
//! rank front is bit-identical to draining a `(Priority, NodeId)` min-heap.

use dmis_graph::{NodeId, NodeMap};

use crate::{Priority, PriorityMap};

/// Sentinel id marking a deleted rank slot. Real identifiers are
/// allocator-sequential and can never reach it.
const TOMBSTONE: NodeId = NodeId(u64::MAX);

/// Dense rank assignment realizing the order of a [`PriorityMap`].
///
/// See the [module docs](self) for the maintenance rules. The engines
/// keep one `RankIndex` alongside their `PriorityMap` and update both at
/// every node insertion/deletion; ranks are what the settle loop and the
/// [`dmis_graph::RankFront`] consume.
///
/// # Example
///
/// ```
/// use dmis_core::{PriorityMap, RankIndex};
/// use dmis_graph::NodeId;
///
/// let pm = PriorityMap::from_order(&[NodeId(4), NodeId(0), NodeId(2)]);
/// let ranks = RankIndex::from_priorities(&pm);
/// assert_eq!(ranks.rank_of(NodeId(4)), 0);
/// assert_eq!(ranks.rank_of(NodeId(2)), 2);
/// assert_eq!(ranks.node_at(1), NodeId(0));
/// ```
#[derive(Debug, Clone, Default)]
pub struct RankIndex {
    /// Rank of every live node; absent for departed nodes.
    rank_of: NodeMap<u32>,
    /// Inverse table. A deleted node's slot is blanked to [`TOMBSTONE`]
    /// — kept until the next re-rank compacts the table. Blanking (not
    /// merely orphaning) is what makes identifier recycling safe: a
    /// recycled id re-entering the index can never be confused with its
    /// previous life's slot.
    node_at_rank: Vec<NodeId>,
    /// Highest live rank, if any node is live. Appends compare against
    /// it; deletions walk it down past tombstones (amortized O(1): every
    /// tombstone is stepped over at most once).
    max_rank: Option<u32>,
    /// Live nodes inserted *out of π order* since the last [`Self::flush`]:
    /// they hold no rank yet. Coalescing them makes a batch of k node
    /// insertions cost one O(live + k log k) re-rank at the next flush
    /// instead of k O(live) rewrites — and a heap-strategy engine, which
    /// never reads ranks, never pays for re-ranking at all.
    pending: Vec<NodeId>,
    /// Re-rank scratch (persistent capacity).
    scratch: Vec<NodeId>,
    /// Tombstoned slots currently in `node_at_rank`. When they outnumber
    /// the live ranks, the next [`Self::flush`] compacts the whole table
    /// (so the span stays within 2× the live count under churn).
    tombstones: u32,
    /// Times `node_at_rank` grew past its capacity (reallocation); 0
    /// after [`Self::reserve`] with an adequate bound.
    table_regrows: u64,
    /// Settle-end compactions performed by [`Self::maybe_compact`] —
    /// the ordering witness the snapshot read path records: engines
    /// publish strictly *after* compaction, so every published
    /// [`crate::MisSnapshot`] carries the compaction count current at
    /// its flush boundary (pinned by the snapshot-consistency tier).
    compactions: u64,
}

impl RankIndex {
    /// Creates an empty index.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds the dense ranks of every node in `priorities`.
    #[must_use]
    pub fn from_priorities(priorities: &PriorityMap) -> Self {
        let mut index = RankIndex::new();
        let mut order: Vec<(Priority, NodeId)> = priorities.iter().map(|(id, p)| (p, id)).collect();
        order.sort_unstable();
        index.scratch.extend(order.into_iter().map(|(_, id)| id));
        index.rewrite_from_scratch();
        index
    }

    /// Number of live nodes tracked (ranked plus pending).
    #[must_use]
    pub fn len(&self) -> usize {
        self.rank_of.len() + self.pending.len()
    }

    /// Returns `true` if no node is tracked.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rank_of.is_empty() && self.pending.is_empty()
    }

    /// Returns `true` if every tracked node holds a rank — i.e. rank
    /// queries currently reflect the full live set. The engines
    /// [`Self::flush`] at settle start, so their settle loops always
    /// read a flushed index.
    #[must_use]
    pub fn is_flushed(&self) -> bool {
        self.pending.is_empty()
    }

    /// Number of settle-end compactions [`Self::maybe_compact`] has
    /// performed (no-op calls not counted). Monotone. The snapshot
    /// read path stamps this onto every published
    /// [`crate::MisSnapshot`], which is how the concurrency tier
    /// proves publication happens strictly after compaction — a
    /// reader can never observe a state containing a tombstoned
    /// `NodeId::MAX` slot mid-drop.
    #[must_use]
    pub fn compactions(&self) -> u64 {
        self.compactions
    }

    /// Size of the rank space (live ranks plus trailing/interior
    /// tombstones) — the span a [`dmis_graph::RankFront`] must cover.
    #[must_use]
    pub fn span(&self) -> usize {
        self.node_at_rank.len()
    }

    /// Pre-sizes both dense tables for `n` nodes, so a bootstrap of up
    /// to `n` insertions performs no incremental regrows.
    pub fn reserve(&mut self, n: usize) {
        self.rank_of.reserve_slots(n);
        if n > self.node_at_rank.capacity() {
            self.node_at_rank.reserve(n - self.node_at_rank.len());
        }
    }

    /// Times a dense table grew past its capacity (reallocated) since
    /// construction. 0 after an adequate [`Self::reserve`].
    #[must_use]
    pub fn regrows(&self) -> u64 {
        self.rank_of.regrows() + self.table_regrows
    }

    /// Appends `v` as the next rank slot, counting capacity overruns.
    fn push_slot(&mut self, v: NodeId) {
        self.table_regrows += u64::from(self.node_at_rank.len() + 1 > self.node_at_rank.capacity());
        self.node_at_rank.push(v);
    }

    /// Rank of `v`, if live.
    #[must_use]
    pub fn get(&self, v: NodeId) -> Option<usize> {
        self.rank_of.get(v).map(|&r| r as usize)
    }

    /// Rank of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` has no rank (departed or never inserted).
    #[must_use]
    pub fn rank_of(&self, v: NodeId) -> usize {
        self.rank_of[v] as usize
    }

    /// The live node holding `rank`.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if `rank` is a tombstone; out-of-span
    /// ranks panic always.
    #[must_use]
    pub fn node_at(&self, rank: usize) -> NodeId {
        let v = self.node_at_rank[rank];
        debug_assert_eq!(self.get(v), Some(rank), "rank {rank} is a tombstone");
        v
    }

    /// Tracks `v`, which must already hold a priority in `priorities`.
    ///
    /// O(1) either way: when π(v) exceeds every *ranked* priority `v` is
    /// appended with the next rank (the common stream-ordered case and
    /// the only case a rank-reading settle can produce mid-update);
    /// otherwise `v` is parked as *pending* and ranked by the next
    /// [`Self::flush`], so a batch of k out-of-order insertions costs
    /// one coalesced re-rank, not k.
    ///
    /// # Panics
    ///
    /// Panics if `v` is already tracked or has no priority.
    pub fn insert(&mut self, v: NodeId, priorities: &PriorityMap) {
        assert!(self.rank_of.get(v).is_none(), "{v} is already ranked");
        debug_assert!(!self.pending.contains(&v), "{v} is already pending");
        // Appending only has to preserve π order among *ranked* nodes
        // (pending ones are merged in at flush), so with no ranked node
        // live any append is trivially in order.
        let appends = match self.max_rank {
            None => true,
            Some(mr) => priorities.of(v) > priorities.of(self.node_at_rank[mr as usize]),
        };
        if appends {
            let rank = u32::try_from(self.node_at_rank.len()).expect("rank fits in u32");
            self.push_slot(v);
            self.rank_of.insert(v, rank);
            self.max_rank = Some(rank);
        } else {
            self.pending.push(v);
        }
    }

    /// Untracks a departed node. Never re-ranks the survivors: a ranked
    /// slot becomes a tombstone, compacted by the next re-rank.
    pub fn remove(&mut self, v: NodeId) {
        let Some(rank) = self.rank_of.remove(v) else {
            self.pending.retain(|&w| w != v);
            return;
        };
        self.node_at_rank[rank as usize] = TOMBSTONE;
        self.tombstones += 1;
        if self.max_rank == Some(rank) {
            let mut r = rank;
            self.max_rank = loop {
                if r == 0 {
                    break None;
                }
                r -= 1;
                if self.node_at_rank[r as usize] != TOMBSTONE {
                    break Some(r);
                }
            };
        }
    }

    /// Ranks every pending node: the coalesced **re-rank**. Ranked slots
    /// are already in π order, so one merge with the priority-sorted
    /// pending list rewrites the dense tables — but only from the
    /// *lowest insertion point* down: ranks below the smallest pending
    /// priority are provably unchanged by the merge and are left in
    /// place, so a flush costs O(suffix + k log k) for k pending nodes,
    /// where `suffix` is the number of slots at or above where the
    /// lowest newcomer lands (found by binary search), not the full live
    /// count. Suffix tombstones are compacted on the way; prefix
    /// tombstones survive until they outnumber the live ranks, at which
    /// point the flush compacts the whole table — keeping the rank span
    /// (what a [`dmis_graph::RankFront`] must cover) within 2× the live
    /// count under sustained churn (deletion-only churn, which never
    /// pends, is compacted by [`Self::maybe_compact`] instead). A no-op
    /// when nothing is pending — engines park ranks directly in their
    /// fronts for single-change updates *because* an empty-pending flush
    /// is guaranteed not to move ranks. The engines call this at settle
    /// start, after all of an update's mutations, which is the one point
    /// where re-ranking is legal (no rank is parked in a settle front).
    ///
    /// # Panics
    ///
    /// Panics if a pending node lost its priority (the engines remove
    /// deleted nodes from the index, so this indicates a bookkeeping
    /// bug).
    pub fn flush(&mut self, priorities: &PriorityMap) {
        if self.pending.is_empty() {
            return;
        }
        let mut pending = std::mem::take(&mut self.pending);
        pending.sort_unstable_by_key(|&v| priorities.of(v));
        let cut = if self.tombstones as usize > self.rank_of.len() {
            0
        } else {
            self.suffix_cut(priorities.of(pending[0]), priorities)
        };
        let suffix_len = self.node_at_rank.len() - cut;
        self.scratch.clear();
        let mut scratch = std::mem::take(&mut self.scratch);
        let mut next = pending.iter().copied().peekable();
        for &w in &self.node_at_rank[cut..] {
            if w != TOMBSTONE {
                let pw = priorities.of(w);
                while next.peek().is_some_and(|&p| priorities.of(p) < pw) {
                    scratch.push(next.next().expect("peeked"));
                }
                scratch.push(w);
            }
        }
        scratch.extend(next);
        let suffix_live = scratch.len() - pending.len();
        self.tombstones -= u32::try_from(suffix_len - suffix_live).expect("count fits");
        self.node_at_rank.truncate(cut);
        for &v in &scratch {
            let rank = u32::try_from(self.node_at_rank.len()).expect("rank fits in u32");
            self.push_slot(v);
            self.rank_of.insert(v, rank);
        }
        self.max_rank = match self.node_at_rank.len() {
            0 => None,
            n => Some((n - 1) as u32),
        };
        debug_assert!(
            self.max_rank
                .is_none_or(|mr| self.node_at_rank[mr as usize] != TOMBSTONE),
            "rewrite left a trailing tombstone"
        );
        scratch.clear();
        self.scratch = scratch;
        pending.clear();
        self.pending = pending; // keep the capacity
    }

    /// Compacts the rank table if tombstones outnumber the live ranks,
    /// keeping the span (what a [`dmis_graph::RankFront`] must cover)
    /// within 2× the live count under deletion-heavy churn — which never
    /// pends and so is never compacted by [`Self::flush`]. Compaction
    /// drops tombstoned slots without reordering the survivors, so it
    /// needs no priorities; it *does* re-rank, so it is only legal while
    /// no rank is parked in a settle front — the engines call it at
    /// settle **end**, after every front has drained to quiescence.
    /// A no-op below the threshold or while insertions are pending
    /// (the next flush compacts those for free).
    pub fn maybe_compact(&mut self) {
        if self.tombstones as usize <= self.rank_of.len() || !self.pending.is_empty() {
            return;
        }
        self.compactions += 1;
        self.scratch.clear();
        let mut scratch = std::mem::take(&mut self.scratch);
        scratch.extend(
            self.node_at_rank
                .iter()
                .copied()
                .filter(|&w| w != TOMBSTONE),
        );
        self.scratch = scratch;
        self.rewrite_from_scratch();
    }

    /// Smallest slot index `c` such that every live entry below `c` has
    /// priority below `p_min` — the prefix a suffix rewrite may keep.
    /// Binary search over the rank table; a probe landing on a tombstone
    /// run scans forward to the nearest live entry, which stays cheap
    /// because compaction keeps tombstones from outnumbering live ranks.
    fn suffix_cut(&self, p_min: Priority, priorities: &PriorityMap) -> usize {
        let (mut lo, mut hi) = (0usize, self.node_at_rank.len());
        while lo < hi {
            let mid = lo + (hi - lo) / 2;
            let live = self.node_at_rank[mid..]
                .iter()
                .position(|&w| w != TOMBSTONE);
            match live {
                Some(off) if priorities.of(self.node_at_rank[mid + off]) < p_min => {
                    lo = mid + off + 1;
                }
                _ => hi = mid,
            }
        }
        lo
    }

    /// Rebuilds both tables from the rank-ordered node list in `scratch`,
    /// consuming it (its capacity is kept for the next re-rank).
    fn rewrite_from_scratch(&mut self) {
        self.node_at_rank.clear();
        self.rank_of.clear();
        let scratch = std::mem::take(&mut self.scratch);
        for (rank, &v) in scratch.iter().enumerate() {
            self.table_regrows +=
                u64::from(self.node_at_rank.len() + 1 > self.node_at_rank.capacity());
            self.node_at_rank.push(v);
            self.rank_of
                .insert(v, u32::try_from(rank).expect("rank fits in u32"));
        }
        self.scratch = scratch;
        self.scratch.clear();
        self.tombstones = 0;
        self.max_rank = match self.node_at_rank.len() {
            0 => None,
            n => Some((n - 1) as u32),
        };
    }

    /// Verifies both tables against `priorities`. Intended for tests.
    ///
    /// # Panics
    ///
    /// Panics if a rank is missing, duplicated, or out of order.
    pub fn assert_consistent(&self, priorities: &PriorityMap) {
        assert_eq!(self.len(), priorities.len(), "rank count diverged from π");
        let mut last: Option<(u32, Priority)> = None;
        for (rank, &v) in self.node_at_rank.iter().enumerate() {
            let rank = rank as u32;
            if v == TOMBSTONE {
                continue;
            }
            match self.rank_of.get(v) {
                Some(&r) if r == rank => {
                    let p = priorities.of(v);
                    if let Some((lr, lp)) = last {
                        assert!(lp < p, "ranks {lr} and {rank} out of π order");
                    }
                    last = Some((rank, p));
                }
                Some(&r) => panic!("slot {rank} holds {v}, which is live at rank {r}"),
                None => panic!("slot {rank} holds dead id {v} instead of a tombstone"),
            }
        }
        assert_eq!(
            self.max_rank,
            last.map(|(r, _)| r),
            "max_rank diverged from the highest live slot"
        );
        let blanks = self
            .node_at_rank
            .iter()
            .filter(|&&v| v == TOMBSTONE)
            .count();
        assert_eq!(
            self.tombstones as usize, blanks,
            "tombstone counter diverged from the table"
        );
        for (v, &r) in self.rank_of.iter() {
            assert_eq!(
                self.node_at_rank.get(r as usize),
                Some(&v),
                "rank_of({v}) = {r} does not point back"
            );
        }
        for (i, &v) in self.pending.iter().enumerate() {
            assert!(self.rank_of.get(v).is_none(), "{v} pending AND ranked");
            assert!(priorities.get(v).is_some(), "pending {v} has no priority");
            assert!(
                !self.pending[..i].contains(&v),
                "{v} pending more than once"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    #[test]
    fn from_priorities_realizes_pi_order() {
        let pm = PriorityMap::from_order(&[NodeId(9), NodeId(3), NodeId(7)]);
        let ranks = RankIndex::from_priorities(&pm);
        assert_eq!(ranks.len(), 3);
        assert_eq!(ranks.span(), 3);
        assert_eq!(ranks.rank_of(NodeId(9)), 0);
        assert_eq!(ranks.rank_of(NodeId(3)), 1);
        assert_eq!(ranks.rank_of(NodeId(7)), 2);
        assert_eq!(ranks.node_at(0), NodeId(9));
        ranks.assert_consistent(&pm);
    }

    #[test]
    fn append_fast_path_keeps_order_without_rewrite() {
        let mut pm = PriorityMap::from_order(&[NodeId(0), NodeId(1)]);
        let mut ranks = RankIndex::from_priorities(&pm);
        // Key 2 exceeds keys 0 and 1: pure append.
        pm.insert(NodeId(2), Priority::new(2, NodeId(2)));
        ranks.insert(NodeId(2), &pm);
        assert_eq!(ranks.rank_of(NodeId(2)), 2);
        assert_eq!(ranks.span(), 3);
        ranks.assert_consistent(&pm);
    }

    #[test]
    fn out_of_order_insert_is_pending_until_flush_compacts() {
        let mut pm = PriorityMap::from_order(&[NodeId(0), NodeId(1), NodeId(2)]);
        let mut ranks = RankIndex::from_priorities(&pm);
        pm.remove(NodeId(1));
        ranks.remove(NodeId(1));
        assert_eq!(ranks.span(), 3, "tombstone keeps the span");
        // Key between 0's and 2's: parks as pending until the flush.
        pm.insert(NodeId(5), Priority::new(1, NodeId(5)));
        ranks.insert(NodeId(5), &pm);
        assert!(!ranks.is_flushed());
        assert_eq!(ranks.len(), 3, "pending nodes are tracked");
        ranks.assert_consistent(&pm);
        ranks.flush(&pm);
        assert!(ranks.is_flushed());
        assert_eq!(ranks.span(), 3, "compacted: 3 live, no tombstones");
        assert_eq!(ranks.rank_of(NodeId(0)), 0);
        assert_eq!(ranks.rank_of(NodeId(5)), 1);
        assert_eq!(ranks.rank_of(NodeId(2)), 2);
        ranks.assert_consistent(&pm);
    }

    #[test]
    fn flush_coalesces_a_batch_of_out_of_order_inserts() {
        // 4 ranked nodes with even keys; insert 3 odd-keyed nodes plus a
        // past-the-max one, remove one pending again, then flush once.
        let mut pm = PriorityMap::new();
        for (key, id) in [(0u64, 0u64), (2, 1), (4, 2), (6, 3)] {
            pm.insert(NodeId(id), Priority::new(key, NodeId(id)));
        }
        let mut ranks = RankIndex::from_priorities(&pm);
        for (key, id) in [(3u64, 10u64), (1, 11), (5, 12), (9, 13)] {
            pm.insert(NodeId(id), Priority::new(key, NodeId(id)));
            ranks.insert(NodeId(id), &pm);
        }
        assert_eq!(ranks.rank_of(NodeId(13)), 4, "past-the-max appends");
        pm.remove(NodeId(12));
        ranks.remove(NodeId(12));
        ranks.assert_consistent(&pm);
        ranks.flush(&pm);
        let by_rank: Vec<NodeId> = (0..ranks.len()).map(|r| ranks.node_at(r)).collect();
        assert_eq!(
            by_rank,
            [0u64, 11, 1, 10, 2, 3, 13].map(NodeId).to_vec(),
            "merge realizes key order 0,1,2,3,4,6,9"
        );
        ranks.assert_consistent(&pm);
    }

    #[test]
    fn flush_is_a_suffix_rewrite_below_the_lowest_newcomer() {
        // 100 ranked nodes keyed 0,10,20,…; a newcomer keyed 955 lands
        // between ranks 95 and 96, so ranks 0..=95 must survive the
        // flush untouched (same slot, same table entry — not merely the
        // same order).
        let mut pm = PriorityMap::new();
        for id in 0..100u64 {
            pm.insert(NodeId(id), Priority::new(id * 10, NodeId(id)));
        }
        let mut ranks = RankIndex::from_priorities(&pm);
        pm.insert(NodeId(500), Priority::new(955, NodeId(500)));
        ranks.insert(NodeId(500), &pm);
        assert!(!ranks.is_flushed());
        ranks.flush(&pm);
        for id in 0..=95u64 {
            assert_eq!(ranks.rank_of(NodeId(id)), id as usize, "prefix rank moved");
        }
        assert_eq!(ranks.rank_of(NodeId(500)), 96);
        assert_eq!(ranks.rank_of(NodeId(99)), 100);
        ranks.assert_consistent(&pm);
    }

    #[test]
    fn maybe_compact_bounds_the_span_under_deletion_churn() {
        // 100 appends then 80 removals: the span stays at 100 (deletion
        // never re-ranks, and deletion-only churn never pends so flush
        // is a no-op) until `maybe_compact` notices tombstones > live.
        let mut pm = PriorityMap::new();
        let mut ranks = RankIndex::new();
        for id in 0..100u64 {
            pm.insert(NodeId(id), Priority::new(id, NodeId(id)));
            ranks.insert(NodeId(id), &pm);
        }
        for id in 0..80u64 {
            pm.remove(NodeId(id));
            ranks.remove(NodeId(id));
        }
        assert_eq!(ranks.span(), 100, "deletion keeps the span");
        ranks.flush(&pm);
        assert_eq!(ranks.span(), 100, "empty-pending flush must not move ranks");
        ranks.maybe_compact();
        assert_eq!(ranks.span(), 20, "compaction drops every tombstone");
        assert_eq!(ranks.rank_of(NodeId(80)), 0);
        assert_eq!(ranks.rank_of(NodeId(99)), 19);
        ranks.assert_consistent(&pm);
        // Below the threshold compaction stays a no-op.
        pm.remove(NodeId(80));
        ranks.remove(NodeId(80));
        ranks.maybe_compact();
        assert_eq!(ranks.span(), 20, "one tombstone in twenty stays put");
        ranks.assert_consistent(&pm);
    }

    #[test]
    fn flush_with_pending_compacts_when_tombstones_dominate() {
        // Heavy deletion plus one out-of-order insert: the flush that
        // ranks the newcomer rewrites from rank 0 and compacts, because
        // a suffix rewrite above the tombstone mass would keep the span
        // bloated.
        let mut pm = PriorityMap::new();
        let mut ranks = RankIndex::new();
        for id in 0..100u64 {
            pm.insert(NodeId(id), Priority::new(10 * id, NodeId(id)));
            ranks.insert(NodeId(id), &pm);
        }
        for id in 0..80u64 {
            pm.remove(NodeId(id));
            ranks.remove(NodeId(id));
        }
        pm.insert(NodeId(200), Priority::new(805, NodeId(200)));
        ranks.insert(NodeId(200), &pm);
        ranks.flush(&pm);
        assert_eq!(ranks.span(), 21, "full rewrite: 20 survivors + newcomer");
        assert_eq!(ranks.rank_of(NodeId(80)), 0);
        assert_eq!(ranks.rank_of(NodeId(200)), 1);
        ranks.assert_consistent(&pm);
    }

    #[test]
    fn reserved_index_never_regrows_during_bootstrap() {
        let mut pm = PriorityMap::new();
        let mut ranks = RankIndex::new();
        ranks.reserve(512);
        for id in 0..512u64 {
            pm.insert(NodeId(id), Priority::new(id, NodeId(id)));
            ranks.insert(NodeId(id), &pm);
        }
        assert_eq!(ranks.regrows(), 0, "pre-sized tables must not regrow");
        let mut cold = RankIndex::new();
        for id in 0..512u64 {
            cold.insert(NodeId(id), &pm);
        }
        assert!(cold.regrows() > 0, "unsized tables regrow (sanity)");
    }

    #[test]
    fn removing_the_maximum_walks_down_past_tombstones() {
        let pm = PriorityMap::from_order(&[NodeId(0), NodeId(1), NodeId(2), NodeId(3)]);
        let mut ranks = RankIndex::from_priorities(&pm);
        ranks.remove(NodeId(2));
        ranks.remove(NodeId(3)); // max: walk down over n2's tombstone
        let mut pm2 = pm.clone();
        pm2.remove(NodeId(2));
        pm2.remove(NodeId(3));
        ranks.assert_consistent(&pm2);
        // An append now compares against n1, the surviving maximum.
        let mut pm3 = pm2.clone();
        pm3.insert(NodeId(4), Priority::new(100, NodeId(4)));
        ranks.insert(NodeId(4), &pm3);
        assert_eq!(ranks.rank_of(NodeId(4)), 4, "appended past the span");
        ranks.assert_consistent(&pm3);
        // Draining everything resets max_rank.
        ranks.remove(NodeId(4));
        ranks.remove(NodeId(1));
        ranks.remove(NodeId(0));
        assert!(ranks.is_empty());
        let pm4 = PriorityMap::new();
        ranks.assert_consistent(&pm4);
    }

    #[test]
    fn remove_of_unranked_node_is_a_no_op() {
        let pm = PriorityMap::from_order(&[NodeId(0)]);
        let mut ranks = RankIndex::from_priorities(&pm);
        ranks.remove(NodeId(50));
        assert_eq!(ranks.len(), 1);
        ranks.assert_consistent(&pm);
    }

    #[test]
    #[should_panic(expected = "already ranked")]
    fn double_insert_panics() {
        let pm = PriorityMap::from_order(&[NodeId(0)]);
        let mut ranks = RankIndex::from_priorities(&pm);
        ranks.insert(NodeId(0), &pm);
    }

    #[test]
    fn random_churn_always_matches_pi_order() {
        let mut rng = StdRng::seed_from_u64(42);
        let mut pm = PriorityMap::new();
        let mut ranks = RankIndex::new();
        let mut live: Vec<NodeId> = Vec::new();
        let mut next_id = 0u64;
        for step in 0..600 {
            if live.is_empty() || rng.random_bool(0.6) {
                let v = NodeId(next_id);
                next_id += 1;
                pm.assign(v, &mut rng);
                ranks.insert(v, &pm);
                live.push(v);
            } else {
                let i = rng.random_range(0..live.len() as u64) as usize;
                let v = live.swap_remove(i);
                pm.remove(v);
                ranks.remove(v);
            }
            if step % 7 == 0 {
                ranks.assert_consistent(&pm);
            }
            if step % 11 == 0 {
                // Engine cadence: a flush at every settle boundary.
                ranks.flush(&pm);
                ranks.assert_consistent(&pm);
            }
        }
        ranks.flush(&pm);
        ranks.assert_consistent(&pm);
        // Rank order equals priority order on the live set.
        let mut by_rank = live.clone();
        by_rank.sort_unstable_by_key(|&v| ranks.rank_of(v));
        assert_eq!(by_rank, pm.nodes_by_priority());
    }
}
