//! Receipts: the auditable outcome of every engine update.
//!
//! Each mutating call on [`crate::MisEngine`] or
//! [`crate::ShardedMisEngine`] returns an [`UpdateReceipt`] (batches wrap
//! it in a [`BatchReceipt`]) recording *what the recovery did*: the
//! adjustment set (the paper's central complexity measure), the settle
//! work performed (heap pops, neighbor-counter updates), and — for the
//! sharded engine — how much of the cascade crossed shard boundaries
//! ([`UpdateReceipt::cross_shard_handoffs`]), how many shard activations
//! the coordinator scheduled ([`UpdateReceipt::shard_runs`]), and how
//! many barrier-synchronized epochs the recovery took
//! ([`UpdateReceipt::settle_epochs`] — the parallel-time depth of the
//! cascade). Receipts are how experiments and benches observe the
//! engines without reaching into their internals.

use std::collections::BTreeSet;

use dmis_graph::{ChangeKind, NodeId};

use crate::MisState;

/// Outcome of applying one topology change to a [`crate::MisEngine`].
///
/// The *adjustment set* is the set of nodes whose final output differs from
/// their output before the change — the quantity the paper calls the
/// adjustment complexity and bounds by 1 in expectation (Theorem 1; note the
/// influenced set `S` of the template may be a superset, because a node can
/// flip and flip back — use [`crate::template`] to observe that).
///
/// Work counters expose the sequential cost discussed in Section 6 of the
/// paper: a direct sequential implementation pays O(Δ) per adjusted node to
/// update neighbor bookkeeping.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UpdateReceipt {
    kind: ChangeKind,
    flips: Vec<(NodeId, MisState)>,
    heap_pops: usize,
    counter_updates: usize,
    cross_shard_handoffs: usize,
    shard_runs: usize,
    settle_epochs: usize,
}

impl UpdateReceipt {
    pub(crate) fn new(
        kind: ChangeKind,
        flips: Vec<(NodeId, MisState)>,
        heap_pops: usize,
        counter_updates: usize,
    ) -> Self {
        UpdateReceipt {
            kind,
            flips,
            heap_pops,
            counter_updates,
            cross_shard_handoffs: 0,
            shard_runs: 0,
            settle_epochs: 0,
        }
    }

    /// Attaches sharding statistics (set by [`crate::ShardedMisEngine`];
    /// the unsharded engine reports zeros).
    pub(crate) fn with_shard_stats(
        mut self,
        handoffs: usize,
        shard_runs: usize,
        epochs: usize,
    ) -> Self {
        self.cross_shard_handoffs = handoffs;
        self.shard_runs = shard_runs;
        self.settle_epochs = epochs;
        self
    }

    /// The kind of change this receipt describes.
    #[must_use]
    pub fn kind(&self) -> ChangeKind {
        self.kind
    }

    /// The nodes whose output changed, with their new state, in the order
    /// they were settled (increasing priority).
    #[must_use]
    pub fn flips(&self) -> &[(NodeId, MisState)] {
        &self.flips
    }

    /// The adjustment set as a set of node identifiers.
    #[must_use]
    pub fn adjusted_nodes(&self) -> BTreeSet<NodeId> {
        self.flips.iter().map(|&(v, _)| v).collect()
    }

    /// Number of nodes whose output changed (the paper's adjustment
    /// complexity for this change).
    #[must_use]
    pub fn adjustments(&self) -> usize {
        self.flips.len()
    }

    /// Number of priority-queue settlements performed (≥ adjustments).
    #[must_use]
    pub fn heap_pops(&self) -> usize {
        self.heap_pops
    }

    /// Number of neighbor-counter updates performed — the O(Δ·|S|)
    /// sequential work term of Section 6.
    #[must_use]
    pub fn counter_updates(&self) -> usize {
        self.counter_updates
    }

    /// Number of counter updates that crossed a shard boundary — the
    /// coordination cost of a sharded recovery. Always zero for the
    /// unsharded [`crate::MisEngine`], and for any cascade fully contained
    /// in one shard; the paper's bounded-adjustment guarantee is what
    /// keeps this small on random inputs.
    #[must_use]
    pub fn cross_shard_handoffs(&self) -> usize {
        self.cross_shard_handoffs
    }

    /// Number of shard settle-runs the coordinator scheduled before
    /// global quiescence (zero for the unsharded engine; at least one per
    /// sharded recovery that had any dirty node).
    #[must_use]
    pub fn shard_runs(&self) -> usize {
        self.shard_runs
    }

    /// Number of barrier-synchronized settle epochs the coordinator ran
    /// before global quiescence — the parallel-time depth of the
    /// recovery: shard runs within one epoch are independent and may
    /// execute on worker threads ([`crate::ParallelShardedMisEngine`]),
    /// so wall-clock scales with epochs, not shard runs. Zero for the
    /// unsharded engine and for recoveries with no dirty node.
    #[must_use]
    pub fn settle_epochs(&self) -> usize {
        self.settle_epochs
    }
}

/// Outcome of applying a **batch** of topology changes via
/// [`crate::MisEngine::apply_batch`]: how many changes landed, plus the
/// combined propagation receipt.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BatchReceipt {
    applied: usize,
    receipt: UpdateReceipt,
}

impl BatchReceipt {
    pub(crate) fn new(applied: usize, receipt: UpdateReceipt) -> Self {
        BatchReceipt { applied, receipt }
    }

    /// Number of changes successfully applied.
    #[must_use]
    pub fn applied(&self) -> usize {
        self.applied
    }

    /// Nodes whose output changed across the whole batch, with their new
    /// state.
    #[must_use]
    pub fn flips(&self) -> &[(NodeId, MisState)] {
        self.receipt.flips()
    }

    /// The batch's adjustment set.
    #[must_use]
    pub fn adjusted_nodes(&self) -> BTreeSet<NodeId> {
        self.receipt.adjusted_nodes()
    }

    /// Number of nodes whose output changed.
    #[must_use]
    pub fn adjustments(&self) -> usize {
        self.receipt.adjustments()
    }

    /// Heap settlements performed by the combined propagation.
    #[must_use]
    pub fn heap_pops(&self) -> usize {
        self.receipt.heap_pops()
    }

    /// Neighbor-counter updates performed.
    #[must_use]
    pub fn counter_updates(&self) -> usize {
        self.receipt.counter_updates()
    }

    /// Counter updates that crossed a shard boundary (zero unless the
    /// batch ran on a [`crate::ShardedMisEngine`]).
    #[must_use]
    pub fn cross_shard_handoffs(&self) -> usize {
        self.receipt.cross_shard_handoffs()
    }

    /// Shard settle-runs scheduled by the coordinator for this batch.
    #[must_use]
    pub fn shard_runs(&self) -> usize {
        self.receipt.shard_runs()
    }

    /// Barrier-synchronized settle epochs of the batch recovery (zero
    /// unless the batch ran on a sharded engine).
    #[must_use]
    pub fn settle_epochs(&self) -> usize {
        self.receipt.settle_epochs()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn batch_receipt_delegates() {
        let inner = UpdateReceipt::new(
            ChangeKind::EdgeDelete,
            vec![(NodeId(1), MisState::In)],
            3,
            5,
        );
        let b = BatchReceipt::new(4, inner);
        assert_eq!(b.applied(), 4);
        assert_eq!(b.adjustments(), 1);
        assert_eq!(b.heap_pops(), 3);
        assert_eq!(b.counter_updates(), 5);
        assert!(b.adjusted_nodes().contains(&NodeId(1)));
        assert_eq!(b.flips().len(), 1);
    }

    #[test]
    fn accessors() {
        let r = UpdateReceipt::new(
            ChangeKind::EdgeInsert,
            vec![(NodeId(3), MisState::Out), (NodeId(5), MisState::In)],
            4,
            7,
        );
        assert_eq!(r.kind(), ChangeKind::EdgeInsert);
        assert_eq!(r.adjustments(), 2);
        assert_eq!(r.heap_pops(), 4);
        assert_eq!(r.counter_updates(), 7);
        assert!(r.adjusted_nodes().contains(&NodeId(5)));
        assert_eq!(r.flips()[0], (NodeId(3), MisState::Out));
    }

    #[test]
    fn shard_stats_default_to_zero_and_attach() {
        let r = UpdateReceipt::new(ChangeKind::EdgeInsert, vec![], 0, 0);
        assert_eq!(r.cross_shard_handoffs(), 0);
        assert_eq!(r.shard_runs(), 0);
        assert_eq!(r.settle_epochs(), 0);
        let r = r.with_shard_stats(6, 3, 2);
        assert_eq!(r.cross_shard_handoffs(), 6);
        assert_eq!(r.shard_runs(), 3);
        assert_eq!(r.settle_epochs(), 2);
        let b = BatchReceipt::new(1, r);
        assert_eq!(b.cross_shard_handoffs(), 6);
        assert_eq!(b.shard_runs(), 3);
        assert_eq!(b.settle_epochs(), 2);
    }
}
