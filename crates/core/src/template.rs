//! Faithful simulation of the paper's template (Algorithm 1).
//!
//! The template is a model-free process: after a topology change, nodes
//! repeatedly restore the local MIS invariant ("v ∈ M iff no lower-order
//! neighbor is in M") until it holds everywhere. Unlike the efficient
//! [`crate::MisEngine`] — which settles each node once, in priority order —
//! the template lets a node change state *several times* (the paper's `u₂`
//! example in Section 3 flips twice and lands back where it started).
//!
//! This module exists to measure exactly the quantities the paper reasons
//! about:
//!
//! - the **influenced set** `S` — every node that changes state at least
//!   once (Theorem 1: `E[|S|] ≤ 1`);
//! - the number of parallel **rounds** a direct distributed implementation
//!   takes (Corollary 6: 1 in expectation);
//! - the **total number of state changes**, counting multiplicity — the
//!   broadcast cost of the *direct* implementation, which Section 4 notes
//!   can reach `|S|²`, motivating Algorithm 2.
//!
//! The simulation is a synchronous relaxation: in each round every node
//! whose invariant is violated w.r.t. the current states flips, all
//! simultaneously. Convergence is guaranteed in at most `n + 1` rounds: the
//! node of rank `k` in π among ever-affected nodes stops changing after all
//! lower-ranked ones do.

use std::collections::{BTreeMap, BTreeSet};

use dmis_graph::{DynGraph, NodeId, NodeMap, NodeSet, TopologyChange};

use crate::{static_greedy, PriorityMap};

/// Everything observed while running the template to quiescence.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TemplateTrace {
    /// The influenced set `S`: nodes that changed state at least once
    /// (including a deleted `v*` that had to leave the MIS).
    pub influenced: BTreeSet<NodeId>,
    /// Parallel rounds until no node was violated.
    pub rounds: usize,
    /// State changes counted with multiplicity (≥ `influenced.len()`).
    pub total_state_changes: usize,
    /// Per-node state-change multiplicities.
    pub changes_per_node: BTreeMap<NodeId, usize>,
    /// The stabilized MIS.
    pub final_mis: BTreeSet<NodeId>,
}

impl TemplateTrace {
    /// Size of the influenced set (the paper's `|S|`).
    #[must_use]
    pub fn s_size(&self) -> usize {
        self.influenced.len()
    }
}

/// Runs the synchronous relaxation on `g` starting from `initial_mis` until
/// the MIS invariant holds everywhere.
///
/// `initial_mis` entries for nodes not in `g` are ignored; nodes of `g`
/// absent from `initial_mis` start in state `M̄`.
///
/// # Panics
///
/// Panics if some node of `g` has no priority, or if the relaxation fails to
/// converge within `n + 2` rounds (impossible unless the invariant machinery
/// is broken — treated as a bug).
#[must_use]
pub fn relax(
    g: &DynGraph,
    priorities: &PriorityMap,
    initial_mis: &BTreeSet<NodeId>,
) -> TemplateTrace {
    // The whole relaxation runs on dense bitsets; the BTree-backed trace
    // is materialized once at the end for the stable public type.
    let mut current: NodeSet = initial_mis
        .iter()
        .copied()
        .filter(|&v| g.has_node(v))
        .collect();
    let mut influenced = NodeSet::new();
    let mut changes_per_node: NodeMap<usize> = NodeMap::new();
    let mut rounds = 0usize;
    let mut total = 0usize;
    let mut candidates: NodeSet = g.nodes().collect();
    loop {
        let mut to_flip = Vec::new();
        for v in candidates.iter() {
            let dominated = g
                .neighbors(v)
                .expect("candidates are live nodes")
                .any(|u| current.contains(u) && priorities.before(u, v));
            let desired = !dominated;
            if desired != current.contains(v) {
                to_flip.push(v);
            }
        }
        if to_flip.is_empty() {
            break;
        }
        rounds += 1;
        assert!(
            rounds <= g.node_count() + 2,
            "template relaxation failed to converge"
        );
        total += to_flip.len();
        // The next candidate front is the union of the flipped nodes'
        // (closed) neighborhoods. Neighbor slices are sorted, so each one
        // is OR-ed in as whole 64-bit mask words — for a high-degree
        // flip (the star promotions of E7, the Δ-regular rounds of E9)
        // this replaces deg per-bit inserts with one read-modify-write
        // per occupied word.
        candidates.clear();
        for v in to_flip {
            if !current.remove(v) {
                current.insert(v);
            }
            influenced.insert(v);
            if let Some(c) = changes_per_node.get_mut(v) {
                *c += 1;
            } else {
                changes_per_node.insert(v, 1);
            }
            candidates.insert(v);
            for chunk in g.neighbor_chunks(v).expect("live node") {
                candidates.insert_sorted_slice(chunk);
            }
        }
    }
    TemplateTrace {
        influenced: influenced.iter().collect(),
        rounds,
        total_state_changes: total,
        changes_per_node: changes_per_node.iter().map(|(id, &c)| (id, c)).collect(),
        final_mis: current.iter().collect(),
    }
}

/// Simulates the template's reaction to a single topology change.
///
/// `g_old` is the graph before the change, `g_new` after; `priorities` must
/// cover the nodes of both (in particular, an inserted node must already
/// have its priority drawn). The pre-change states are the greedy MIS of
/// `(g_old, π)` — the unique configuration satisfying the MIS invariant.
///
/// For a node deletion whose victim was an MIS node, the victim is counted
/// in the influenced set (the template's step 1 updates `v*` itself,
/// footnote 7 of the paper).
///
/// # Panics
///
/// Panics if priorities are missing, or if `(g_old, g_new)` do not differ by
/// exactly the given change (debug assertion via state reachability is not
/// performed; garbage in, garbage out).
#[must_use]
pub fn simulate_change(
    g_old: &DynGraph,
    g_new: &DynGraph,
    priorities: &PriorityMap,
    change: &TopologyChange,
) -> TemplateTrace {
    let old_mis = static_greedy::greedy_mis(g_old, priorities);
    let mut trace = relax(g_new, priorities, &old_mis);
    if let TopologyChange::DeleteNode(v) = change {
        if old_mis.contains(v) {
            trace.influenced.insert(*v);
            *trace.changes_per_node.entry(*v).or_insert(0) += 1;
            trace.total_state_changes += 1;
        }
    }
    trace
}

/// Simulates the template's reaction to a **batch** of simultaneous
/// topology changes — the paper's first open question ("whether our
/// analysis can be extended to cope with more than a single failure at a
/// time").
///
/// Semantics: all changes land at once; the template then relaxes from the
/// old states on the new graph. Every deleted node that was in the old MIS
/// is counted in the influenced set (footnote 7 generalized). `priorities`
/// must already cover inserted nodes.
///
/// # Panics
///
/// Panics if priorities are missing or the batch is invalid for `g_old`.
#[must_use]
pub fn simulate_batch(
    g_old: &DynGraph,
    priorities: &PriorityMap,
    batch: &[TopologyChange],
) -> TemplateTrace {
    let mut g_new = g_old.clone();
    for change in batch {
        change.apply(&mut g_new).expect("valid batch");
    }
    let old_mis = static_greedy::greedy_mis(g_old, priorities);
    let mut trace = relax(&g_new, priorities, &old_mis);
    for change in batch {
        if let TopologyChange::DeleteNode(v) = change {
            if old_mis.contains(v) && !g_new.has_node(*v) {
                trace.influenced.insert(*v);
                *trace.changes_per_node.entry(*v).or_insert(0) += 1;
                trace.total_state_changes += 1;
            }
        }
    }
    trace
}

/// Simulates recovery from **state corruption**: `corrupted` nodes have
/// their output flipped arbitrarily (here: inverted) while the topology is
/// unchanged, and the template relaxes back to the unique valid
/// configuration.
///
/// This bridges to the self-stabilization literature the paper relates to
/// (super-stabilization): recovery from k corrupted outputs is *local* —
/// the relaxation only ever touches nodes whose invariant is disturbed,
/// and it provably converges because the greedy configuration is the
/// unique fixed point. Experiment E13 measures locality empirically.
///
/// # Panics
///
/// Panics if priorities are missing or a corrupted node is not in `g`.
#[must_use]
pub fn simulate_corruption(
    g: &DynGraph,
    priorities: &PriorityMap,
    corrupted: &[NodeId],
) -> TemplateTrace {
    let valid = static_greedy::greedy_mis(g, priorities);
    let mut state = valid.clone();
    for &v in corrupted {
        assert!(g.has_node(v), "corrupted node {v} must exist");
        if !state.remove(&v) {
            state.insert(v);
        }
    }
    let trace = relax(g, priorities, &state);
    debug_assert_eq!(trace.final_mis, valid, "relaxation restores the MIS");
    trace
}

/// Builds the paper's Section 3 gadget: `v*` in the MIS, two higher-order
/// neighbors `u₁, u₂` (dominated by `v*`), and a path `u₁ – w₁ – w₂ – u₂`
/// with `π(v*) < π(u₁) < π(w₁) < π(w₂) < π(u₂)`. Inserting the edge
/// `{anchor, v*}` — where `anchor` is a lower-order MIS node — evicts `v*`
/// and makes `u₂` change state **twice**: first into the MIS (its lower
/// neighbors `v*` and `w₂` are momentarily both out), then back out once the
/// cascade reaches `w₂`.
///
/// Returns `(graph, priorities, [v*, u₁, w₁, w₂, u₂, anchor])`; the
/// triggering change is `TopologyChange::InsertEdge(anchor, v*)`.
#[must_use]
pub fn u2_gadget() -> (DynGraph, PriorityMap, [NodeId; 6]) {
    let (mut g, ids) = DynGraph::with_nodes(6);
    let (anchor, v_star, u1, w1, w2, u2) = (ids[0], ids[1], ids[2], ids[3], ids[4], ids[5]);
    g.insert_edge(v_star, u1).expect("fresh edges");
    g.insert_edge(v_star, u2).expect("fresh edges");
    g.insert_edge(u1, w1).expect("fresh edges");
    g.insert_edge(w1, w2).expect("fresh edges");
    g.insert_edge(w2, u2).expect("fresh edges");
    let priorities = PriorityMap::from_order(&[anchor, v_star, u1, w1, w2, u2]);
    (g, priorities, [v_star, u1, w1, w2, u2, anchor])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::invariant;
    use crate::DynamicMis;
    use dmis_graph::generators;
    use dmis_graph::stream::{self, ChurnConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn random_priorities(g: &DynGraph, seed: u64) -> PriorityMap {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut pm = PriorityMap::new();
        for v in g.nodes() {
            pm.assign(v, &mut rng);
        }
        pm
    }

    #[test]
    fn relax_from_valid_state_does_nothing() {
        let mut rng = StdRng::seed_from_u64(0);
        let (g, _) = generators::erdos_renyi(20, 0.2, &mut rng);
        let pm = random_priorities(&g, 1);
        let mis = static_greedy::greedy_mis(&g, &pm);
        let trace = relax(&g, &pm, &mis);
        assert_eq!(trace.rounds, 0);
        assert!(trace.influenced.is_empty());
        assert_eq!(trace.final_mis, mis);
    }

    #[test]
    fn relax_from_empty_state_converges_to_greedy() {
        let mut rng = StdRng::seed_from_u64(2);
        let (g, _) = generators::erdos_renyi(25, 0.2, &mut rng);
        let pm = random_priorities(&g, 3);
        let trace = relax(&g, &pm, &BTreeSet::new());
        assert_eq!(trace.final_mis, static_greedy::greedy_mis(&g, &pm));
        assert!(invariant::check_mis_invariant(&g, &pm, &trace.final_mis).is_ok());
    }

    #[test]
    fn u2_gadget_flips_twice() {
        let (g, pm, [v_star, u1, w1, w2, u2, anchor]) = u2_gadget();
        let old_mis = static_greedy::greedy_mis(&g, &pm);
        // Initial configuration of the paper's example: v* in, u₁/u₂ out,
        // w₁ in, w₂ out; the isolated anchor is in.
        assert!(old_mis.contains(&anchor));
        assert!(old_mis.contains(&v_star));
        assert!(!old_mis.contains(&u1) && !old_mis.contains(&u2));
        assert!(old_mis.contains(&w1));
        assert!(!old_mis.contains(&w2));
        // Insert {anchor, v*}: the lower-order MIS node evicts v*.
        let mut g_new = g.clone();
        g_new.insert_edge(anchor, v_star).unwrap();
        let change = TopologyChange::InsertEdge(anchor, v_star);
        let trace = simulate_change(&g, &g_new, &pm, &change);
        assert_eq!(
            trace.influenced,
            [v_star, u1, w1, w2, u2].into_iter().collect(),
            "S = {{v*, u₁, w₁, w₂, u₂}}"
        );
        assert_eq!(
            trace.changes_per_node.get(&u2),
            Some(&2),
            "u₂ flips in and back out (the paper's double-change example)"
        );
        assert!(trace.total_state_changes > trace.s_size());
        assert!(!trace.final_mis.contains(&u2), "u₂ lands where it started");
        assert_eq!(
            trace.final_mis,
            static_greedy::greedy_mis(&g_new, &pm),
            "template lands on the greedy MIS of the new graph"
        );
    }

    #[test]
    fn simulate_change_counts_deleted_mis_node() {
        let (g, ids) = generators::star(4);
        let pm = PriorityMap::from_order(&ids); // center is the MIS
        let mut g_new = g.clone();
        g_new.remove_node(ids[0]).unwrap();
        let trace = simulate_change(&g, &g_new, &pm, &TopologyChange::DeleteNode(ids[0]));
        assert!(trace.influenced.contains(&ids[0]));
        assert_eq!(trace.s_size(), 4, "center plus all three leaves");
    }

    #[test]
    fn simulate_change_ignores_deleted_non_mis_node() {
        let (g, ids) = generators::star(4);
        let pm = PriorityMap::from_order(&ids);
        let mut g_new = g.clone();
        g_new.remove_node(ids[3]).unwrap();
        let trace = simulate_change(&g, &g_new, &pm, &TopologyChange::DeleteNode(ids[3]));
        assert!(trace.influenced.is_empty());
        assert_eq!(trace.rounds, 0);
    }

    #[test]
    fn template_agrees_with_engine_across_churn() {
        let mut rng = StdRng::seed_from_u64(9);
        let (g, _) = generators::erdos_renyi(18, 0.25, &mut rng);
        let mut engine = crate::Engine::builder().graph(g).seed(5).build_unsharded();
        for _ in 0..150 {
            let Some(change) =
                stream::random_change(engine.graph(), &ChurnConfig::default(), &mut rng)
            else {
                continue;
            };
            let g_old = engine.graph().clone();
            // Capture π before applying: a node deletion drops the victim's
            // priority from the engine, but the template still needs it for
            // the old graph. For insertions, merge in the fresh draw after.
            let mut pm = engine.priorities().clone();
            engine.apply(&change).unwrap();
            if let TopologyChange::InsertNode { id, .. } = &change {
                pm.insert(*id, engine.priorities().of(*id));
            }
            let g_new = engine.graph().clone();
            let trace = simulate_change(&g_old, &g_new, &pm, &change);
            assert_eq!(trace.final_mis, engine.mis());
            // Engine adjustments (final-state diffs on surviving nodes) are
            // a subset of the influenced set.
            let influenced = &trace.influenced;
            let adjusted: BTreeSet<NodeId> = engine
                .mis()
                .symmetric_difference(&static_greedy::greedy_mis(&g_old, &pm))
                .copied()
                .filter(|v| g_new.has_node(*v))
                .collect();
            assert!(
                adjusted.is_subset(influenced),
                "adjusted {adjusted:?} ⊄ influenced {influenced:?}"
            );
        }
    }

    #[test]
    fn batch_trace_matches_engine_batch() {
        for seed in 0..8u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let (g, _) = generators::erdos_renyi(16, 0.25, &mut rng);
            let mut shadow = g.clone();
            let mut batch = Vec::new();
            for _ in 0..4 {
                if let Some(c) =
                    stream::random_change(&shadow, &ChurnConfig::edges_only(), &mut rng)
                {
                    c.apply(&mut shadow).unwrap();
                    batch.push(c);
                }
            }
            let engine = crate::Engine::builder()
                .graph(g.clone())
                .seed(seed + 50)
                .build_unsharded();
            let pm = engine.priorities().clone();
            let trace = simulate_batch(&g, &pm, &batch);
            let mut engine = engine;
            engine.apply_batch(&batch).unwrap();
            assert_eq!(trace.final_mis, engine.mis());
        }
    }

    #[test]
    fn corruption_recovery_is_local() {
        let mut rng = StdRng::seed_from_u64(12);
        let (g, ids) = generators::erdos_renyi(30, 0.15, &mut rng);
        let pm = random_priorities(&g, 3);
        // Corrupt one node: the recovery touches at most its 2-hop
        // influence region, and the final state is the valid MIS again.
        let trace = simulate_corruption(&g, &pm, &ids[..1]);
        assert_eq!(trace.final_mis, static_greedy::greedy_mis(&g, &pm));
        // Corrupting zero nodes is a no-op.
        let trace = simulate_corruption(&g, &pm, &[]);
        assert_eq!(trace.rounds, 0);
        assert!(trace.influenced.is_empty());
    }

    #[test]
    fn corruption_of_all_nodes_still_recovers() {
        let mut rng = StdRng::seed_from_u64(13);
        let (g, ids) = generators::erdos_renyi(20, 0.3, &mut rng);
        let pm = random_priorities(&g, 5);
        let trace = simulate_corruption(&g, &pm, &ids);
        assert_eq!(trace.final_mis, static_greedy::greedy_mis(&g, &pm));
    }

    #[test]
    fn rounds_bounded_by_influenced_size() {
        // The level argument of Lemma 11: rounds are at most the length of a
        // strictly priority-increasing path of influenced nodes, hence ≤ |S|.
        let mut rng = StdRng::seed_from_u64(31);
        for seed in 0..20 {
            let (g, _) = generators::erdos_renyi(20, 0.3, &mut rng);
            let pm = random_priorities(&g, seed);
            let mut g_new = g.clone();
            let Some((u, v)) = generators::random_edge(&g, &mut rng) else {
                continue;
            };
            g_new.remove_edge(u, v).unwrap();
            let trace = simulate_change(&g, &g_new, &pm, &TopologyChange::DeleteEdge(u, v));
            assert!(trace.rounds <= trace.s_size().max(1));
        }
    }
}
