//! The sequential greedy MIS oracle.
//!
//! "The greedy sequential algorithm orders the nodes and then inspects them
//! by increasing order. A node is added to the MIS if and only if it does
//! not have a lower-order neighbor already in the MIS." (Section 1.1.)
//!
//! Given a fixed order this output is unique; with a uniformly random order
//! it is the *random greedy* MIS whose dynamic maintenance is the paper's
//! subject. The from-scratch computation here is the ground truth against
//! which every incremental structure in this workspace is verified — the
//! equality `dynamic output ≡ static greedy output` at equal priorities *is*
//! the history-independence property of Section 5.

use std::collections::BTreeSet;

use dmis_graph::{DynGraph, NodeId, NodeMap, NodeSet};

use crate::PriorityMap;

/// Computes the greedy MIS of `g` under the order given by `priorities`.
///
/// Runs in `O(n log n + m)` time.
///
/// # Panics
///
/// Panics if some node of `g` has no priority.
///
/// # Example
///
/// ```
/// use dmis_core::{static_greedy, PriorityMap};
/// use dmis_graph::generators;
///
/// let (g, ids) = generators::path(3);
/// // Order: middle node first — it alone forms the MIS core.
/// let pm = PriorityMap::from_order(&[ids[1], ids[0], ids[2]]);
/// let mis = static_greedy::greedy_mis(&g, &pm);
/// assert!(mis.contains(&ids[1]));
/// assert!(!mis.contains(&ids[0]));
/// ```
#[must_use]
pub fn greedy_mis(g: &DynGraph, priorities: &PriorityMap) -> BTreeSet<NodeId> {
    greedy_mis_dense(g, priorities).iter().collect()
}

/// [`greedy_mis`] returning the dense membership bitset directly — what
/// the engines seed their state from, with no ordered-set detour.
///
/// # Panics
///
/// Panics if some node of `g` has no priority.
#[must_use]
pub fn greedy_mis_dense(g: &DynGraph, priorities: &PriorityMap) -> NodeSet {
    let mut mis = NodeSet::new();
    for v in priorities_order(g, priorities) {
        let dominated = g
            .neighbors(v)
            .expect("ordered nodes exist")
            .any(|u| mis.contains(u) && priorities.before(u, v));
        if !dominated {
            mis.insert(v);
        }
    }
    mis
}

/// Computes the greedy (first-fit) coloring of `g` under the order given by
/// `priorities`: each node receives the smallest color not used by a
/// lower-order neighbor.
///
/// This is the random greedy coloring discussed in Section 5, Example 3.
/// Uses at most `Δ + 1` colors. Colors are `0`-based.
///
/// # Panics
///
/// Panics if some node of `g` has no priority.
#[must_use]
pub fn greedy_coloring(g: &DynGraph, priorities: &PriorityMap) -> Vec<(NodeId, usize)> {
    let mut colors: NodeMap<usize> = NodeMap::new();
    // Reusable first-fit scratch: used[c] marks colors taken by lower
    // neighbors. A node of degree d needs at most color d, so marks are
    // capped at d and unmarked after each node — O(deg) per node.
    let mut used: Vec<bool> = Vec::new();
    for v in priorities_order(g, priorities) {
        let deg = g.degree(v).expect("ordered nodes exist");
        if used.len() < deg + 1 {
            used.resize(deg + 1, false);
        }
        let lower = |u: &NodeId| priorities.before(*u, v);
        for u in g.neighbors(v).expect("ordered nodes exist").filter(lower) {
            if let Some(&c) = colors.get(u) {
                if c <= deg {
                    used[c] = true;
                }
            }
        }
        let color = (0..=deg).find(|&c| !used[c]).expect("d+1 colors suffice");
        colors.insert(v, color);
        for u in g.neighbors(v).expect("ordered nodes exist").filter(lower) {
            if let Some(&c) = colors.get(u) {
                if c <= deg {
                    used[c] = false;
                }
            }
        }
    }
    colors.iter().map(|(id, &c)| (id, c)).collect()
}

/// Returns the nodes of `g` in increasing priority order.
///
/// # Panics
///
/// Panics if some node of `g` has no priority.
#[must_use]
pub fn priorities_order(g: &DynGraph, priorities: &PriorityMap) -> Vec<NodeId> {
    let mut nodes: Vec<NodeId> = g.nodes().collect();
    nodes.sort_unstable_by_key(|&v| priorities.of(v));
    nodes
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::invariant;
    use dmis_graph::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn random_priorities(g: &DynGraph, seed: u64) -> PriorityMap {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut pm = PriorityMap::new();
        for v in g.nodes() {
            pm.assign(v, &mut rng);
        }
        pm
    }

    #[test]
    fn greedy_on_triangle_picks_min() {
        let (g, ids) = generators::cycle(3);
        let pm = PriorityMap::from_order(&[ids[2], ids[0], ids[1]]);
        let mis = greedy_mis(&g, &pm);
        assert_eq!(mis.into_iter().collect::<Vec<_>>(), vec![ids[2]]);
    }

    #[test]
    fn greedy_is_mis_on_random_graphs() {
        let mut rng = StdRng::seed_from_u64(77);
        for n in [1usize, 2, 5, 20, 60] {
            let (g, _) = generators::erdos_renyi(n, 0.25, &mut rng);
            let pm = random_priorities(&g, n as u64);
            let mis = greedy_mis(&g, &pm);
            assert!(invariant::is_maximal_independent_set(&g, &mis));
            assert!(invariant::check_mis_invariant(&g, &pm, &mis).is_ok());
        }
    }

    #[test]
    fn star_mis_depends_on_center_rank() {
        let (g, ids) = generators::star(5);
        // Center first → MIS = {center}.
        let order_center_first: Vec<_> = std::iter::once(ids[0])
            .chain(ids[1..].iter().copied())
            .collect();
        let mis = greedy_mis(&g, &PriorityMap::from_order(&order_center_first));
        assert_eq!(mis.len(), 1);
        // A leaf first → MIS = all leaves.
        let order_leaf_first: Vec<_> = ids[1..].iter().copied().chain([ids[0]]).collect();
        let mis = greedy_mis(&g, &PriorityMap::from_order(&order_leaf_first));
        assert_eq!(mis.len(), 4);
    }

    #[test]
    fn coloring_is_proper_and_compact() {
        let mut rng = StdRng::seed_from_u64(5);
        let (g, _) = generators::erdos_renyi(30, 0.2, &mut rng);
        let pm = random_priorities(&g, 9);
        let coloring = greedy_coloring(&g, &pm);
        let map: std::collections::BTreeMap<_, _> = coloring.iter().copied().collect();
        for key in g.edges() {
            let (u, v) = key.endpoints();
            assert_ne!(map[&u], map[&v], "proper coloring");
        }
        let max_color = coloring.iter().map(|&(_, c)| c).max().unwrap_or(0);
        assert!(max_color <= g.max_degree(), "at most Δ+1 colors");
    }

    #[test]
    fn empty_graph() {
        let g = DynGraph::new();
        let pm = PriorityMap::new();
        assert!(greedy_mis(&g, &pm).is_empty());
        assert!(greedy_coloring(&g, &pm).is_empty());
    }
}
