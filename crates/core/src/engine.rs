//! The sequential engine: one settle loop over the whole graph.
//!
//! [`MisEngine`] is the repo's reference realization of the paper's
//! template (Algorithm 1): it owns the graph, the random order π, and one
//! dense counter per node, and restores the MIS invariant after every
//! topology change by settling dirty nodes in increasing π order. Every
//! other maintainer in the workspace is defined against it — the BTree
//! baseline mirrors its behavior on the old storage layout, and the
//! sharded engine ([`crate::ShardedMisEngine`]) must reproduce its output
//! bit for bit while partitioning this module's state across shards.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use dmis_graph::{
    ChangeKind, DynGraph, GraphError, NodeId, NodeMap, NodeSet, RankFront, TopologyChange,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::invariant::{self, InvariantViolation};
use crate::snapshot::{MisPublisher, MisReader, PublishSlot};
use crate::{BatchReceipt, MisState, Priority, PriorityMap, RankIndex, UpdateReceipt};

/// Which realization of the priority-ordered dirty queue a settle loop
/// drains. Both produce bit-identical receipts — pops come out in
/// increasing π either way — so this is purely a performance/verification
/// knob.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SettleStrategy {
    /// The word-parallel rank-bitset front ([`dmis_graph::RankFront`]
    /// over [`crate::RankIndex`] ranks): no per-update allocation,
    /// whole-word scans, `u32` rank compares on the neighbor filter.
    /// The default.
    #[default]
    RankFront,
    /// The per-update `BinaryHeap<Reverse<(Priority, NodeId)>>` the front
    /// replaced — retained as the bitwise reference for the
    /// heap-vs-front equivalence suite (`crates/core/tests/`) and the
    /// `engine_front` bench ablation.
    BinaryHeap,
}

/// Incremental maintainer of the random-greedy MIS — the paper's template
/// (Algorithm 1) realized as an efficient sequential data structure.
///
/// The engine owns the graph, the random order π (drawn lazily, one priority
/// per node at insertion time, which keeps the algorithm history
/// independent), and for every node `v` a counter of its *lower-order MIS
/// neighbors*. The MIS invariant is then simply
/// `v ∈ M ⟺ lower_mis_count(v) == 0`.
///
/// A topology change perturbs the counters of at most the changed node(s)
/// and their neighbors; the engine restores the invariant by settling dirty
/// nodes in increasing π order (a min-priority heap), so each node's final
/// state is decided exactly once. The set of nodes whose output flips is the
/// paper's adjustment set: by Theorem 1 its expected size is at most 1 for
/// any single change, under the oblivious-adversary assumption.
///
/// The per-update sequential cost is `O((1 + Σ_{v flipped} deg(v)) · log n)`
/// — the O(Δ) factor per adjusted node the paper's Section 6 predicts for
/// sequential implementations.
///
/// # Example
///
/// ```
/// use dmis_core::{DynamicMis, Engine};
/// use dmis_graph::generators;
///
/// let (g, ids) = generators::star(6);
/// let mut engine = Engine::builder().graph(g).seed(7).build_unsharded();
/// let before = engine.mis();
/// let receipt = engine.insert_edge(ids[1], ids[2])?;
/// assert!(engine.check_invariant().is_ok());
/// // The adjustment set is exactly the symmetric difference of outputs.
/// let after = engine.mis();
/// let diff: Vec<_> = before.symmetric_difference(&after).collect();
/// assert_eq!(diff.len(), receipt.adjustments());
/// # Ok::<(), dmis_graph::GraphError>(())
/// ```
#[derive(Debug, Clone)]
pub struct MisEngine {
    graph: DynGraph,
    priorities: PriorityMap,
    /// Dense membership bitset: `v ∈ M ⟺ in_mis.contains(v)`.
    in_mis: NodeSet,
    /// Dense counter table: number of lower-π MIS neighbors per node.
    lower_mis_count: NodeMap<usize>,
    rng: StdRng,
    /// The value that seeded `rng` — checkpointed by the durability
    /// layer so recovery can rebuild the identical priority stream.
    seed: u64,
    /// Priority keys drawn from `rng` since construction. A restored
    /// engine replays exactly this many draws on a fresh `seed`-ed RNG
    /// to park the stream at the checkpointed position.
    draws: u64,
    /// Scratch bitset marking nodes currently enqueued in the settle
    /// front; deduplicates pushes so each node is popped at most once per
    /// update.
    enqueued: NodeSet,
    /// Dense ranks realizing π — maintained at node insert/delete, read
    /// on every settle pop and neighbor filter.
    ranks: RankIndex,
    /// Persistent word-parallel dirty queue: empty between updates, like
    /// `enqueued`, so no settle ever allocates.
    front: RankFront,
    /// Which dirty-queue realization [`Self::propagate`] drains.
    strategy: SettleStrategy,
    /// Snapshot publication slot: empty (and free on the settle path)
    /// until [`Self::reader`] attaches a read path; then every settle
    /// publishes the quiesced membership. Cloning an engine detaches —
    /// see [`crate::snapshot`].
    publisher: PublishSlot,
}

impl MisEngine {
    /// Creates an engine over an empty graph. `seed` determinizes all
    /// priority draws.
    #[deprecated(
        note = "PR-1-era constructor shim: use `Engine::builder().seed(seed).build_unsharded()`"
    )]
    #[must_use]
    pub fn new(seed: u64) -> Self {
        Self::new_impl(seed)
    }

    pub(crate) fn new_impl(seed: u64) -> Self {
        MisEngine {
            graph: DynGraph::new(),
            priorities: PriorityMap::new(),
            in_mis: NodeSet::new(),
            lower_mis_count: NodeMap::new(),
            rng: StdRng::seed_from_u64(seed),
            seed,
            draws: 0,
            enqueued: NodeSet::new(),
            ranks: RankIndex::new(),
            front: RankFront::new(),
            strategy: SettleStrategy::default(),
            publisher: PublishSlot::default(),
        }
    }

    /// Creates an engine over an existing graph, drawing fresh random
    /// priorities for all its nodes and computing the initial greedy MIS.
    #[deprecated(
        note = "PR-1-era constructor shim: use `Engine::builder().graph(g).seed(seed).build_unsharded()`"
    )]
    #[must_use]
    pub fn from_graph(graph: DynGraph, seed: u64) -> Self {
        Self::from_graph_impl(graph, seed)
    }

    pub(crate) fn from_graph_impl(graph: DynGraph, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut priorities = PriorityMap::new();
        let mut draws = 0u64;
        for v in graph.nodes() {
            priorities.assign(v, &mut rng);
            draws += 1;
        }
        Self::with_priorities(graph, priorities, rng, seed, draws)
    }

    /// Creates an engine over an existing graph with prescribed priorities
    /// (used by tests and by the theory checks, which need a fixed π).
    ///
    /// # Panics
    ///
    /// Panics if some node of the graph has no priority.
    #[deprecated(
        note = "PR-1-era constructor shim: use `Engine::builder().graph(g).priorities(p).seed(seed).build_unsharded()`"
    )]
    #[must_use]
    pub fn from_parts(graph: DynGraph, priorities: PriorityMap, seed: u64) -> Self {
        Self::from_parts_impl(graph, priorities, seed)
    }

    pub(crate) fn from_parts_impl(graph: DynGraph, priorities: PriorityMap, seed: u64) -> Self {
        Self::with_priorities(graph, priorities, StdRng::seed_from_u64(seed), seed, 0)
    }

    fn with_priorities(
        graph: DynGraph,
        priorities: PriorityMap,
        rng: StdRng,
        seed: u64,
        draws: u64,
    ) -> Self {
        let mis = crate::static_greedy::greedy_mis_dense(&graph, &priorities);
        let ranks = RankIndex::from_priorities(&priorities);
        let front = RankFront::with_capacity(ranks.span());
        let mut engine = MisEngine {
            graph,
            priorities,
            in_mis: mis,
            lower_mis_count: NodeMap::new(),
            rng,
            seed,
            draws,
            enqueued: NodeSet::new(),
            ranks,
            front,
            strategy: SettleStrategy::default(),
            publisher: PublishSlot::default(),
        };
        for v in engine.graph.nodes() {
            let count = engine.count_lower_mis(v);
            engine.lower_mis_count.insert(v, count);
        }
        engine
    }

    fn count_lower_mis(&self, v: NodeId) -> usize {
        self.graph
            .neighbors(v)
            .expect("live node")
            .filter(|&u| self.in_mis.contains(u) && self.priorities.before(u, v))
            .count()
    }

    /// Sets the output bit of `v`.
    fn set_in_mis(&mut self, v: NodeId, member: bool) {
        if member {
            self.in_mis.insert(v);
        } else {
            self.in_mis.remove(v);
        }
    }

    /// Returns the current graph.
    #[must_use]
    pub fn graph(&self) -> &DynGraph {
        &self.graph
    }

    /// Returns the priority assignment π.
    #[must_use]
    pub fn priorities(&self) -> &PriorityMap {
        &self.priorities
    }

    /// Returns the dense rank realization of π (see [`RankIndex`]).
    #[must_use]
    pub fn ranks(&self) -> &RankIndex {
        &self.ranks
    }

    /// Which dirty-queue realization the settle loop drains.
    #[must_use]
    pub fn settle_strategy(&self) -> SettleStrategy {
        self.strategy
    }

    /// Selects the dirty-queue realization. Purely a
    /// performance/verification knob: pops come out in increasing π
    /// either way, so outputs and receipts are bit-identical for both
    /// settings — which the heap-vs-front property suite pins.
    pub fn set_settle_strategy(&mut self, strategy: SettleStrategy) {
        self.strategy = strategy;
    }

    /// Iterates over the current MIS in identifier order without
    /// allocating a set.
    pub fn mis_iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.in_mis.iter()
    }

    /// Size of the current MIS — O(1) on the membership bitset, no
    /// per-call allocation, unlike [`crate::DynamicMis::mis`].
    #[must_use]
    pub fn mis_len(&self) -> usize {
        self.in_mis.len()
    }

    /// Returns whether `v` is in the MIS, or `None` if `v` does not exist.
    #[must_use]
    pub fn is_in_mis(&self, v: NodeId) -> Option<bool> {
        self.graph.has_node(v).then(|| self.in_mis.contains(v))
    }

    /// Returns a concurrent read handle over the engine's published
    /// snapshots, attaching the publication layer on first call: the
    /// current membership is published as epoch 0, and every subsequent
    /// settle publishes the next epoch at its flush boundary. Later
    /// calls hand out additional handles onto the same channel. See
    /// [`crate::snapshot`] for the consistency and epoch guarantees;
    /// until first call, the settle path pays nothing for this feature.
    pub fn reader(&mut self) -> MisReader {
        if !self.publisher.is_attached() {
            self.publisher
                .set(MisPublisher::attach(&self.in_mis, self.ranks.compactions()));
        }
        self.publisher.get().expect("just attached").reader()
    }

    /// Draws the next priority key from the engine's seeded stream (the
    /// draw behind [`crate::DynamicMis::insert_node`]).
    pub(crate) fn draw_key(&mut self) -> u64 {
        self.draws += 1;
        self.rng.random()
    }

    /// Inserts the edge `{u, v}` and restores the MIS invariant.
    ///
    /// # Errors
    ///
    /// Propagates [`GraphError`] from the underlying graph operation; on
    /// error the engine is unchanged.
    pub fn insert_edge(&mut self, u: NodeId, v: NodeId) -> Result<UpdateReceipt, GraphError> {
        self.graph.insert_edge(u, v)?;
        let (lo, hi) = self.order_pair(u, v);
        let mut seeds = Vec::new();
        let mut counter_updates = 0;
        if self.in_mis.contains(lo) {
            *self.lower_mis_count.get_mut(hi).expect("live node") += 1;
            counter_updates += 1;
            seeds.push(hi);
        }
        Ok(self.propagate(ChangeKind::EdgeInsert, seeds, counter_updates))
    }

    /// Removes the edge `{u, v}` and restores the MIS invariant.
    ///
    /// # Errors
    ///
    /// Propagates [`GraphError`] from the underlying graph operation; on
    /// error the engine is unchanged.
    pub fn remove_edge(&mut self, u: NodeId, v: NodeId) -> Result<UpdateReceipt, GraphError> {
        self.graph.remove_edge(u, v)?;
        let (lo, hi) = self.order_pair(u, v);
        let mut seeds = Vec::new();
        let mut counter_updates = 0;
        if self.in_mis.contains(lo) {
            *self.lower_mis_count.get_mut(hi).expect("live node") -= 1;
            counter_updates += 1;
            seeds.push(hi);
        }
        Ok(self.propagate(ChangeKind::EdgeDelete, seeds, counter_updates))
    }

    /// Inserts a new node with a *prescribed* random key instead of drawing
    /// one — used by baselines that derandomize the order (e.g. the
    /// deterministic greedy-by-identifier algorithm of the Section 1.1 lower
    /// bound) and by tests that need adversarial orders.
    ///
    /// # Errors
    ///
    /// Propagates [`GraphError`] if a neighbor is missing or repeated; on
    /// error the engine is unchanged.
    pub fn insert_node_with_key<I>(
        &mut self,
        neighbors: I,
        key: u64,
    ) -> Result<(NodeId, UpdateReceipt), GraphError>
    where
        I: IntoIterator<Item = NodeId>,
    {
        let v = self.graph.add_node_with_edges(neighbors)?;
        self.priorities.insert(v, crate::Priority::new(key, v));
        self.ranks.insert(v, &self.priorities);
        // The newcomer starts with the paper's temporary state M̄ (§4.1), so
        // no neighbor counter is affected by its arrival; its membership
        // bit is simply left unset.
        let count = self.count_lower_mis(v);
        self.lower_mis_count.insert(v, count);
        let receipt = self.propagate(ChangeKind::NodeInsert, vec![v], 0);
        Ok((v, receipt))
    }

    /// Removes node `v` and restores the MIS invariant.
    ///
    /// The receipt's flips cover the *remaining* nodes; the departure of `v`
    /// itself is implied by the change. (The paper's influenced set counts
    /// `v*` too when it was an MIS node; use [`crate::template`] to observe
    /// that accounting.)
    ///
    /// # Errors
    ///
    /// Propagates [`GraphError`] if `v` does not exist.
    pub fn remove_node(&mut self, v: NodeId) -> Result<UpdateReceipt, GraphError> {
        if !self.graph.has_node(v) {
            return Err(GraphError::MissingNode(v));
        }
        let was_in = self.in_mis.contains(v);
        let prio_v = self.priorities.of(v);
        let nbrs = self.graph.remove_node(v)?;
        self.priorities.remove(v);
        self.ranks.remove(v);
        self.in_mis.remove(v);
        self.lower_mis_count.remove(v);
        let mut seeds = Vec::new();
        let mut counter_updates = 0;
        if was_in {
            for w in nbrs {
                if self.priorities.of(w) > prio_v {
                    *self.lower_mis_count.get_mut(w).expect("live node") -= 1;
                    counter_updates += 1;
                    seeds.push(w);
                }
            }
        }
        Ok(self.propagate(ChangeKind::NodeDelete, seeds, counter_updates))
    }

    /// Applies a **batch** of topology changes atomically: all graph
    /// mutations land first, then a single propagation pass restores the
    /// MIS invariant.
    ///
    /// This addresses the paper's first open question ("whether our
    /// analysis can be extended to cope with more than a single failure at
    /// a time"): the template generalizes mechanically — every violated
    /// node seeds the same priority-ordered settlement — and experiment
    /// E12 measures how the influenced set grows with the batch size
    /// (trivially at most the sum of the per-change bounds, i.e. `≤ k` in
    /// expectation for `k` changes, because the batch recovery flips a
    /// subset of the union of the sequential recoveries' flips).
    ///
    /// Changes are interpreted sequentially for *validity* (a batch may
    /// insert a node and immediately connect it), but the invariant is only
    /// restored once.
    ///
    /// # Example
    ///
    /// ```
    /// use dmis_core::{DynamicMis, Engine};
    /// use dmis_graph::{generators, TopologyChange};
    ///
    /// let (g, ids) = generators::cycle(6);
    /// let mut engine = Engine::builder().graph(g).seed(11).build_unsharded();
    /// // Two simultaneous deletions recover through ONE settle pass.
    /// let receipt = engine.apply_batch(&[
    ///     TopologyChange::DeleteEdge(ids[0], ids[1]),
    ///     TopologyChange::DeleteEdge(ids[3], ids[4]),
    /// ])?;
    /// assert_eq!(receipt.applied(), 2);
    /// assert!(engine.check_invariant().is_ok());
    /// # Ok::<(), dmis_graph::GraphError>(())
    /// ```
    ///
    /// # Errors
    ///
    /// Returns the first [`GraphError`] encountered. Changes before the
    /// failing one remain applied and the invariant is restored for them,
    /// so the engine stays consistent; the failing and subsequent changes
    /// are not applied.
    pub fn apply_batch(&mut self, changes: &[TopologyChange]) -> Result<BatchReceipt, GraphError> {
        let mut seeds = Vec::new();
        let mut counter_updates = 0usize;
        let mut applied = 0usize;
        let mut failure: Option<GraphError> = None;
        for change in changes {
            let result = self.mutate_only(change, &mut seeds, &mut counter_updates);
            match result {
                Ok(()) => applied += 1,
                Err(e) => {
                    failure = Some(e);
                    break;
                }
            }
        }
        let receipt = self.propagate(
            changes
                .first()
                .map_or(ChangeKind::EdgeInsert, TopologyChange::kind),
            seeds,
            counter_updates,
        );
        match failure {
            Some(e) => Err(e),
            None => Ok(BatchReceipt::new(applied, receipt)),
        }
    }

    /// Applies one change's graph mutation and counter fix-ups against the
    /// *frozen* output states, deferring propagation.
    fn mutate_only(
        &mut self,
        change: &TopologyChange,
        seeds: &mut Vec<NodeId>,
        counter_updates: &mut usize,
    ) -> Result<(), GraphError> {
        match change {
            TopologyChange::InsertEdge(u, v) => {
                self.graph.insert_edge(*u, *v)?;
                let (lo, hi) = self.order_pair(*u, *v);
                if self.in_mis.contains(lo) {
                    *self.lower_mis_count.get_mut(hi).expect("live node") += 1;
                    *counter_updates += 1;
                }
                seeds.push(hi);
            }
            TopologyChange::DeleteEdge(u, v) => {
                self.graph.remove_edge(*u, *v)?;
                let (lo, hi) = self.order_pair(*u, *v);
                if self.in_mis.contains(lo) {
                    *self.lower_mis_count.get_mut(hi).expect("live node") -= 1;
                    *counter_updates += 1;
                }
                seeds.push(hi);
            }
            TopologyChange::InsertNode { id, edges } => {
                if self.graph.peek_next_id() != *id {
                    return Err(GraphError::MissingNode(*id));
                }
                let v = self.graph.add_node_with_edges(edges.iter().copied())?;
                self.priorities.assign(v, &mut self.rng);
                self.draws += 1;
                // Re-ranking is legal here: the dirty set is still a list
                // of node ids; ranks enter the front only in propagate().
                self.ranks.insert(v, &self.priorities);
                let count = self.count_lower_mis(v);
                self.lower_mis_count.insert(v, count);
                seeds.push(v);
            }
            TopologyChange::DeleteNode(v) => {
                if !self.graph.has_node(*v) {
                    return Err(GraphError::MissingNode(*v));
                }
                let was_in = self.in_mis.contains(*v);
                let prio_v = self.priorities.of(*v);
                let nbrs = self.graph.remove_node(*v)?;
                self.priorities.remove(*v);
                self.ranks.remove(*v);
                self.in_mis.remove(*v);
                self.lower_mis_count.remove(*v);
                for w in nbrs {
                    if self.priorities.of(w) > prio_v {
                        if was_in {
                            *self.lower_mis_count.get_mut(w).expect("live node") -= 1;
                            *counter_updates += 1;
                        }
                        seeds.push(w);
                    }
                }
            }
        }
        Ok(())
    }

    /// Verifies the MIS invariant over the whole graph.
    ///
    /// # Errors
    ///
    /// Returns the first violation found.
    pub fn check_invariant(&self) -> Result<(), InvariantViolation> {
        // Dense path: the membership bitset is checked in place, no
        // ordered-set materialization.
        invariant::check_mis_invariant_dense(&self.graph, &self.priorities, &self.in_mis)
    }

    /// Scans every live node for corrupted membership/counter state and
    /// heals what it finds with the template's self-stabilizing local
    /// rule — the engine-tier realization of the paper's
    /// super-stabilization story (E13) and the RAM-fault half of the
    /// durability layer (see [`crate::durability`]).
    ///
    /// Detection is one O(n + m) sweep: for each node the true
    /// lower-MIS count is recomputed from the *current* (possibly
    /// corrupt) membership; any node whose stored counter or membership
    /// bit contradicts it is a violation. Counters are fixed in place,
    /// and the violated set seeds the standard priority-ordered settle
    /// drain, which converges to the unique greedy fixed point for
    /// (graph, π) — so healing costs O(k·Δ) beyond the scan for k
    /// corrupted nodes, instead of an O(n + m) rebuild, and the result
    /// is bit-identical to an engine that was never corrupted.
    ///
    /// If a read path is attached, a repair that found anything
    /// publishes a **fresh** epoch (never a regressed one), exactly
    /// like a settle.
    pub fn verify_and_repair(&mut self) -> crate::durability::RepairReport {
        let nodes: Vec<NodeId> = self.graph.nodes().collect();
        let scanned = nodes.len();
        let mut seeds = Vec::new();
        let mut counters_fixed = 0usize;
        let mut memberships_violated = 0usize;
        for v in nodes {
            let truth = self.count_lower_mis(v);
            let mut violated = false;
            if self.lower_mis_count[v] != truth {
                *self.lower_mis_count.get_mut(v).expect("live node") = truth;
                counters_fixed += 1;
                violated = true;
            }
            if self.in_mis.contains(v) != (truth == 0) {
                memberships_violated += 1;
                violated = true;
            }
            if violated {
                seeds.push(v);
            }
        }
        if seeds.is_empty() {
            return crate::durability::RepairReport::clean(scanned);
        }
        // The settle drain *is* the local rule: it pops the violated set
        // in increasing π, finalizing each node against its (now
        // truthful) counter. `EdgeInsert` is only the receipt's label —
        // repair is not a topology change.
        let receipt = self.propagate(ChangeKind::EdgeInsert, seeds, counters_fixed);
        crate::durability::RepairReport::new(
            scanned,
            counters_fixed,
            memberships_violated,
            &receipt,
        )
    }

    /// Test-only fault injector: flips the membership bit of each live
    /// victim *without* touching the counters — exactly the corruption
    /// model of E13, now at the engine tier. Returns how many victims
    /// were live (and therefore flipped).
    #[doc(hidden)]
    pub fn corrupt_in_mis(&mut self, victims: &[NodeId]) -> usize {
        let mut flipped = 0;
        for &v in victims {
            if !self.graph.has_node(v) {
                continue;
            }
            if self.in_mis.contains(v) {
                self.in_mis.remove(v);
            } else {
                self.in_mis.insert(v);
            }
            flipped += 1;
        }
        flipped
    }

    /// Checkpoint-time metadata: flavor, layout, RNG position, epoch.
    #[doc(hidden)]
    #[must_use]
    pub fn durability_meta(&self) -> crate::durability::DurabilityMeta {
        crate::durability::DurabilityMeta {
            flavor: crate::durability::EngineFlavor::Unsharded,
            shards: 1,
            block: 1,
            threads: 1,
            seed: self.seed,
            draws: self.draws,
            epoch: self.publisher.get().map(MisPublisher::epoch),
        }
    }

    /// Recovery-time re-attach: installs the publication channel at a
    /// prescribed epoch (instead of the usual 0) so readers resuming
    /// after a crash never observe a regressed epoch. Must be called on
    /// a freshly built engine, before [`Self::reader`].
    #[doc(hidden)]
    pub fn restore_epoch(&mut self, epoch: u64) {
        self.publisher.set(MisPublisher::attach_at(
            &self.in_mis,
            self.ranks.compactions(),
            epoch,
        ));
    }

    /// Verifies every internal bookkeeping structure against a from-scratch
    /// recomputation. Intended for tests.
    ///
    /// # Panics
    ///
    /// Panics if any counter, rank, or state diverged.
    pub fn assert_internally_consistent(&self) {
        self.graph.assert_consistent();
        assert_eq!(self.lower_mis_count.len(), self.graph.node_count());
        assert_eq!(self.priorities.len(), self.graph.node_count());
        self.ranks.assert_consistent(&self.priorities);
        assert!(self.enqueued.is_empty(), "enqueue scratch leaked bits");
        assert!(self.front.is_empty(), "settle front leaked ranks");
        assert_eq!(
            self.in_mis.len(),
            self.in_mis.popcount(),
            "cached mis_len diverged from the membership words"
        );
        let ground_truth = crate::static_greedy::greedy_mis_dense(&self.graph, &self.priorities);
        assert_eq!(
            self.in_mis.len(),
            ground_truth.len(),
            "membership bitset holds stale bits"
        );
        for v in self.graph.nodes() {
            assert_eq!(
                self.in_mis.contains(v),
                ground_truth.contains(v),
                "state of {v} diverged from static greedy"
            );
            assert_eq!(
                self.lower_mis_count[v],
                self.count_lower_mis(v),
                "counter of {v} diverged"
            );
        }
    }

    /// Pre-sizes every per-node structure (adjacency slots, priorities,
    /// membership and scratch bitsets, counters, ranks, settle front)
    /// for `n` nodes, so a bootstrap of up to `n` insertions performs no
    /// incremental regrows — the difference between one upfront
    /// allocation per table and log(n) reallocation-plus-copy cycles
    /// during a 10^6-node load.
    pub fn reserve_nodes(&mut self, n: usize) {
        self.graph.reserve_nodes(n);
        self.priorities.reserve_nodes(n);
        self.in_mis.reserve_nodes(n);
        self.lower_mis_count.reserve_slots(n);
        self.enqueued.reserve_nodes(n);
        self.ranks.reserve(n);
        self.front.reserve(n);
    }

    /// Total times any per-node structure grew past its capacity
    /// (reallocated) since construction. 0 after an adequate
    /// [`Self::reserve_nodes`] — the debug counter behind the no-regrow
    /// bootstrap guarantee.
    #[must_use]
    pub fn storage_regrows(&self) -> u64 {
        self.graph.regrows()
            + self.priorities.regrows()
            + self.in_mis.regrows()
            + self.lower_mis_count.regrows()
            + self.enqueued.regrows()
            + self.ranks.regrows()
            + self.front.regrows()
    }

    /// [`Self::check_invariant`] restricted to ~`sample` deterministically
    /// chosen nodes — O(sample · avg-degree) instead of O(n + m). See
    /// [`invariant::check_mis_invariant_sampled`].
    ///
    /// # Errors
    ///
    /// Returns the first violation found among sampled nodes.
    pub fn check_invariant_sampled(
        &self,
        sample: usize,
        seed: u64,
    ) -> Result<(), InvariantViolation> {
        invariant::check_mis_invariant_sampled(
            &self.graph,
            &self.priorities,
            &self.in_mis,
            sample,
            seed,
        )
    }

    /// Sampled counterpart of [`Self::assert_internally_consistent`]:
    /// global facts stay exact (cached `mis_len` against a membership
    /// popcount, table sizes, drained settle scratch), while per-node
    /// counters and membership are recomputed only for ~`sample`
    /// deterministically chosen nodes — so a per-update assertion on a
    /// 10^6-node test costs O(sample · avg-degree), not O(n + m) greedy
    /// recomputation.
    ///
    /// # Panics
    ///
    /// Panics if any checked structure diverged.
    pub fn assert_internally_consistent_sampled(&self, sample: usize, seed: u64) {
        assert_eq!(self.lower_mis_count.len(), self.graph.node_count());
        assert_eq!(self.priorities.len(), self.graph.node_count());
        assert_eq!(
            self.in_mis.len(),
            self.in_mis.popcount(),
            "cached mis_len diverged from the membership words"
        );
        assert!(self.enqueued.is_empty(), "enqueue scratch leaked bits");
        assert!(self.front.is_empty(), "settle front leaked ranks");
        for v in invariant::sampled_nodes(&self.graph, sample, seed) {
            assert_eq!(
                self.lower_mis_count[v],
                self.count_lower_mis(v),
                "counter of {v} diverged"
            );
            assert_eq!(
                self.in_mis.contains(v),
                self.lower_mis_count[v] == 0,
                "membership of {v} contradicts its counter"
            );
        }
    }

    fn order_pair(&self, u: NodeId, v: NodeId) -> (NodeId, NodeId) {
        if self.priorities.before(u, v) {
            (u, v)
        } else {
            (v, u)
        }
    }

    /// Settles dirty nodes in increasing π order. Every node is finalized
    /// at its first pop because all lower-order dirty nodes settle first,
    /// so each node flips at most once per update.
    ///
    /// The `enqueued` bitset deduplicates the dirty set: a node seeded by
    /// several changes of a batch — or pushed by several flipping
    /// neighbors — enters the queue once. Deduplication is sound because
    /// pops are non-decreasing in π (a flip at priority `p` only ever
    /// pushes strictly-higher neighbors), so a popped node can never need
    /// re-settling within the same propagation.
    ///
    /// Dispatches on [`SettleStrategy`]; both drains pop the identical
    /// sequence, so the receipt is bit-identical either way.
    fn propagate(
        &mut self,
        kind: ChangeKind,
        seeds: Vec<NodeId>,
        counter_updates: usize,
    ) -> UpdateReceipt {
        // All of this update's mutations have landed: rank any node the
        // update inserted out of π order (one coalesced re-rank per
        // update, not one per insertion). Unconditional on purpose — the
        // heap drain never reads ranks, but flushing both strategies
        // keeps the pending list bounded by a single update's inserts,
        // so `RankIndex::remove`'s pending scan stays O(batch), and it
        // makes switching strategies mid-life safe with no extra guard.
        self.ranks.flush(&self.priorities);
        let receipt = match self.strategy {
            SettleStrategy::RankFront => self.propagate_front(kind, seeds, counter_updates),
            SettleStrategy::BinaryHeap => self.propagate_heap(kind, seeds, counter_updates),
        };
        // The drain has quiesced — no rank is parked anywhere — so this
        // is the one safe point to drop tombstone mass. Keeps the rank
        // span (and the front's word array) within 2× the live count
        // under deletion-heavy churn.
        self.ranks.maybe_compact();
        // Publication comes strictly after compaction: the snapshot's
        // compaction stamp is the witness the consistency tier checks.
        if let Some(p) = self.publisher.get_mut() {
            debug_assert!(self.ranks.is_flushed(), "publishing before rank quiescence");
            p.publish(&self.in_mis, self.ranks.compactions());
        }
        receipt
    }

    /// The word-parallel drain: dirty ranks live in the persistent
    /// [`RankFront`], pops are whole-word bit scans, and the neighbor
    /// filter compares dense `u32` ranks instead of 16-byte priorities.
    /// Seeds arrive as node ids and are converted to ranks *here* — after
    /// every mutation of the update — so batch-triggered re-ranks can
    /// never invalidate a parked rank.
    fn propagate_front(
        &mut self,
        kind: ChangeKind,
        seeds: Vec<NodeId>,
        mut counter_updates: usize,
    ) -> UpdateReceipt {
        // Every insert pairs with a bit set and every pop clears it, so
        // both scratch structures are empty between updates without an
        // O(n/64) clear — per-update cost stays bounded by the work done,
        // not by the highest identifier ever allocated.
        debug_assert!(self.enqueued.is_empty(), "settle scratch leaked bits");
        debug_assert!(self.front.is_empty(), "settle front leaked ranks");
        debug_assert!(self.ranks.is_flushed(), "propagate() flushes first");
        for v in seeds {
            // A batch may have deleted a node seeded by an earlier change;
            // the bitset merges duplicate seeds into one dirty entry.
            if self.graph.has_node(v) && self.enqueued.insert(v) {
                self.front.insert(self.ranks.rank_of(v));
            }
        }
        let mut flips = Vec::new();
        let mut pops = 0usize;
        while let Some(rank) = self.front.pop_min() {
            pops += 1;
            let v = self.ranks.node_at(rank);
            // Safe to free the bit: a popped node can never be re-pushed
            // (all later pushes carry strictly higher ranks).
            self.enqueued.remove(v);
            let desired = self.lower_mis_count[v] == 0;
            let current = self.in_mis.contains(v);
            if desired == current {
                continue;
            }
            self.set_in_mis(v, desired);
            flips.push((v, MisState::from_membership(desired)));
            let graph = &self.graph;
            let ranks = &self.ranks;
            let lower = &mut self.lower_mis_count;
            let enqueued = &mut self.enqueued;
            let front = &mut self.front;
            for chunk in graph.neighbor_chunks(v).expect("live node") {
                for &w in chunk {
                    let rw = ranks.rank_of(w);
                    if rw > rank {
                        let c = lower.get_mut(w).expect("live node");
                        if desired {
                            *c += 1;
                        } else {
                            *c -= 1;
                        }
                        counter_updates += 1;
                        if enqueued.insert(w) {
                            front.insert(rw);
                        }
                    }
                }
            }
        }
        UpdateReceipt::new(kind, flips, pops, counter_updates)
    }

    /// The retained heap drain — one `BinaryHeap` allocated per update,
    /// keyed by `(Priority, NodeId)`. This is the pre-front settle loop,
    /// byte for byte; the equivalence suite replays every workload
    /// through both drains and demands identical receipts.
    fn propagate_heap(
        &mut self,
        kind: ChangeKind,
        seeds: Vec<NodeId>,
        mut counter_updates: usize,
    ) -> UpdateReceipt {
        debug_assert!(self.enqueued.is_empty(), "settle scratch leaked bits");
        let mut heap: BinaryHeap<Reverse<(Priority, NodeId)>> =
            BinaryHeap::with_capacity(seeds.len());
        for v in seeds {
            if self.graph.has_node(v) && self.enqueued.insert(v) {
                heap.push(Reverse((self.priorities.of(v), v)));
            }
        }
        let mut flips = Vec::new();
        let mut pops = 0usize;
        while let Some(Reverse((prio, v))) = heap.pop() {
            pops += 1;
            self.enqueued.remove(v);
            let desired = self.lower_mis_count[v] == 0;
            let current = self.in_mis.contains(v);
            if desired == current {
                continue;
            }
            self.set_in_mis(v, desired);
            flips.push((v, MisState::from_membership(desired)));
            let graph = &self.graph;
            let priorities = &self.priorities;
            let lower = &mut self.lower_mis_count;
            let enqueued = &mut self.enqueued;
            for chunk in graph.neighbor_chunks(v).expect("live node") {
                for &w in chunk {
                    if priorities.of(w) > prio {
                        let c = lower.get_mut(w).expect("live node");
                        if desired {
                            *c += 1;
                        } else {
                            *c -= 1;
                        }
                        counter_updates += 1;
                        if enqueued.insert(w) {
                            heap.push(Reverse((priorities.of(w), w)));
                        }
                    }
                }
            }
        }
        UpdateReceipt::new(kind, flips, pops, counter_updates)
    }
}

// The shared convenience layer (`apply` dispatch, `insert_node` key
// draws, `mis`, `state`) is provided once by `DynamicMis`; the macro
// forwards the trait's required primitives to the methods above.
crate::api::forward_dynamic_mis!(MisEngine, |s| s);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DynamicMis;
    use dmis_graph::generators;
    use dmis_graph::stream::{self, ChurnConfig};
    use std::collections::BTreeSet;

    #[test]
    fn empty_engine() {
        let engine = crate::Engine::builder().seed(0).build_unsharded();
        assert!(engine.mis().is_empty());
        assert!(engine.check_invariant().is_ok());
    }

    #[test]
    fn from_graph_matches_static_greedy() {
        let mut rng = StdRng::seed_from_u64(1);
        let (g, _) = generators::erdos_renyi(40, 0.15, &mut rng);
        let engine = crate::Engine::builder().graph(g).seed(99).build_unsharded();
        engine.assert_internally_consistent();
        assert!(engine.check_invariant().is_ok());
    }

    #[test]
    fn edge_insert_between_two_mis_nodes_evicts_higher() {
        let (g, ids) = DynGraph::with_nodes(2);
        let pm = PriorityMap::from_order(&ids);
        let mut engine = crate::Engine::builder()
            .graph(g)
            .priorities(pm)
            .seed(0)
            .build_unsharded();
        assert!(engine.is_in_mis(ids[0]).unwrap());
        assert!(engine.is_in_mis(ids[1]).unwrap());
        let receipt = engine.insert_edge(ids[0], ids[1]).unwrap();
        assert_eq!(receipt.adjustments(), 1);
        assert_eq!(receipt.flips(), &[(ids[1], MisState::Out)]);
        assert!(engine.is_in_mis(ids[0]).unwrap());
        assert!(!engine.is_in_mis(ids[1]).unwrap());
        engine.assert_internally_consistent();
    }

    #[test]
    fn edge_insert_without_conflict_adjusts_nothing() {
        let (mut g, ids) = DynGraph::with_nodes(3);
        g.insert_edge(ids[0], ids[1]).unwrap();
        let pm = PriorityMap::from_order(&ids);
        let mut engine = crate::Engine::builder()
            .graph(g)
            .priorities(pm)
            .seed(0)
            .build_unsharded();
        // ids[1] is out; connecting it to ids[2] (in) — wait, ids[2] is in
        // the MIS and higher, so inserting {1,2} evicts nobody: lower
        // endpoint ids[1] is out.
        let receipt = engine.insert_edge(ids[1], ids[2]).unwrap();
        assert_eq!(receipt.adjustments(), 0);
        engine.assert_internally_consistent();
    }

    #[test]
    fn edge_delete_lets_uncovered_node_in() {
        let (mut g, ids) = DynGraph::with_nodes(2);
        g.insert_edge(ids[0], ids[1]).unwrap();
        let pm = PriorityMap::from_order(&ids);
        let mut engine = crate::Engine::builder()
            .graph(g)
            .priorities(pm)
            .seed(0)
            .build_unsharded();
        assert!(!engine.is_in_mis(ids[1]).unwrap());
        let receipt = engine.remove_edge(ids[0], ids[1]).unwrap();
        assert_eq!(receipt.flips(), &[(ids[1], MisState::In)]);
        engine.assert_internally_consistent();
    }

    #[test]
    fn cascade_propagates_along_priority_path() {
        // Path p0 - p1 - p2 - p3 with increasing priorities: greedy MIS is
        // {p0, p2}. Deleting edge {p0, p1} lets p1 in, which evicts p2,
        // which lets p3 in: a 3-adjustment cascade.
        let (mut g, ids) = DynGraph::with_nodes(4);
        for w in ids.windows(2) {
            g.insert_edge(w[0], w[1]).unwrap();
        }
        let pm = PriorityMap::from_order(&ids);
        let mut engine = crate::Engine::builder()
            .graph(g)
            .priorities(pm)
            .seed(0)
            .build_unsharded();
        assert_eq!(engine.mis(), [ids[0], ids[2]].into_iter().collect());
        let receipt = engine.remove_edge(ids[0], ids[1]).unwrap();
        assert_eq!(
            receipt.flips(),
            &[
                (ids[1], MisState::In),
                (ids[2], MisState::Out),
                (ids[3], MisState::In)
            ]
        );
        engine.assert_internally_consistent();
    }

    #[test]
    fn node_insert_and_remove_round_trip() {
        let mut rng = StdRng::seed_from_u64(2);
        let (g, ids) = generators::erdos_renyi(10, 0.3, &mut rng);
        let mut engine = crate::Engine::builder().graph(g).seed(3).build_unsharded();
        let (v, receipt) = engine.insert_node(&[ids[0], ids[1], ids[2]]).unwrap();
        assert!(engine.graph().has_node(v));
        let _ = receipt;
        engine.assert_internally_consistent();
        engine.remove_node(v).unwrap();
        assert!(!engine.graph().has_node(v));
        engine.assert_internally_consistent();
    }

    #[test]
    fn removing_mis_node_promotes_neighbor() {
        let (g, ids) = generators::star(4);
        // Center first: MIS = {center}.
        let pm = PriorityMap::from_order(&ids);
        let mut engine = crate::Engine::builder()
            .graph(g)
            .priorities(pm)
            .seed(0)
            .build_unsharded();
        assert_eq!(engine.mis(), [ids[0]].into_iter().collect());
        let receipt = engine.remove_node(ids[0]).unwrap();
        assert_eq!(receipt.adjustments(), 3, "all leaves join");
        assert_eq!(engine.mis_len(), 3);
        engine.assert_internally_consistent();
    }

    #[test]
    fn removing_non_mis_node_is_silent() {
        let (g, ids) = generators::star(4);
        let pm = PriorityMap::from_order(&ids);
        let mut engine = crate::Engine::builder()
            .graph(g)
            .priorities(pm)
            .seed(0)
            .build_unsharded();
        let receipt = engine.remove_node(ids[3]).unwrap();
        assert_eq!(receipt.adjustments(), 0);
        engine.assert_internally_consistent();
    }

    #[test]
    fn errors_leave_engine_untouched() {
        let (g, ids) = generators::path(3);
        let mut engine = crate::Engine::builder().graph(g).seed(0).build_unsharded();
        let snapshot = engine.mis();
        assert!(engine.insert_edge(ids[0], ids[1]).is_err());
        assert!(engine.remove_edge(ids[0], ids[2]).is_err());
        assert!(engine.remove_node(NodeId(50)).is_err());
        assert!(engine.insert_node(&[NodeId(50)]).is_err());
        assert_eq!(engine.mis(), snapshot);
        engine.assert_internally_consistent();
    }

    #[test]
    fn apply_dispatches_all_change_kinds() {
        let (g, ids) = generators::path(3);
        let mut engine = crate::Engine::builder().graph(g).seed(1).build_unsharded();
        let fresh = engine.graph().peek_next_id();
        engine
            .apply(&TopologyChange::InsertNode {
                id: fresh,
                edges: vec![ids[0]],
            })
            .unwrap();
        engine
            .apply(&TopologyChange::InsertEdge(fresh, ids[2]))
            .unwrap();
        engine
            .apply(&TopologyChange::DeleteEdge(fresh, ids[2]))
            .unwrap();
        engine.apply(&TopologyChange::DeleteNode(fresh)).unwrap();
        engine.assert_internally_consistent();
        // Stale pre-assigned identifier is rejected.
        let err = engine
            .apply(&TopologyChange::InsertNode {
                id: NodeId(0),
                edges: vec![],
            })
            .unwrap_err();
        assert_eq!(err, GraphError::MissingNode(NodeId(0)));
    }

    #[test]
    fn long_random_churn_stays_equal_to_static_greedy() {
        let mut rng = StdRng::seed_from_u64(12);
        let (g, _) = generators::erdos_renyi(25, 0.2, &mut rng);
        let mut engine = crate::Engine::builder()
            .graph(g)
            .seed(100)
            .build_unsharded();
        let cfg = ChurnConfig::default();
        for step in 0..500 {
            let Some(change) = stream::random_change(engine.graph(), &cfg, &mut rng) else {
                continue;
            };
            engine.apply(&change).unwrap();
            if step % 50 == 0 {
                engine.assert_internally_consistent();
            }
        }
        engine.assert_internally_consistent();
    }

    #[test]
    fn adjustment_set_equals_output_symmetric_difference() {
        let mut rng = StdRng::seed_from_u64(21);
        let (g, _) = generators::erdos_renyi(30, 0.15, &mut rng);
        let mut engine = crate::Engine::builder().graph(g).seed(8).build_unsharded();
        for _ in 0..200 {
            let Some(change) =
                stream::random_change(engine.graph(), &ChurnConfig::default(), &mut rng)
            else {
                continue;
            };
            let before = engine.mis();
            let is_node_delete = matches!(change, TopologyChange::DeleteNode(_));
            let deleted = match change {
                TopologyChange::DeleteNode(v) => Some(v),
                _ => None,
            };
            let receipt = engine.apply(&change).unwrap();
            let after = engine.mis();
            let mut diff: BTreeSet<NodeId> = before.symmetric_difference(&after).copied().collect();
            if is_node_delete {
                // The departed node leaves the output by definition, not by
                // adjustment.
                if let Some(v) = deleted {
                    diff.remove(&v);
                }
            }
            assert_eq!(diff, receipt.adjusted_nodes());
        }
    }

    #[test]
    fn sampled_checks_pass_wherever_full_checks_pass() {
        let mut rng = StdRng::seed_from_u64(17);
        let (g, _) = generators::erdos_renyi(80, 0.08, &mut rng);
        let mut engine = crate::Engine::builder().graph(g).seed(9).build_unsharded();
        for step in 0..120u64 {
            let Some(change) =
                stream::random_change(engine.graph(), &ChurnConfig::default(), &mut rng)
            else {
                continue;
            };
            engine.apply(&change).unwrap();
            // Varying the seed sweeps different residue classes.
            engine.assert_internally_consistent_sampled(8, step);
            assert!(engine.check_invariant_sampled(8, step).is_ok());
        }
        // Sample >= n degenerates to the full per-node sweep.
        engine.assert_internally_consistent_sampled(usize::MAX, 0);
        assert_eq!(
            engine.check_invariant_sampled(usize::MAX, 0),
            engine.check_invariant()
        );
    }

    #[test]
    fn seeded_engines_are_reproducible() {
        let build = |seed| {
            let mut rng = StdRng::seed_from_u64(4);
            let (g, _) = generators::erdos_renyi(15, 0.3, &mut rng);
            let mut engine = crate::Engine::builder()
                .graph(g)
                .seed(seed)
                .build_unsharded();
            let mut outputs = Vec::new();
            for _ in 0..30 {
                if let Some(change) =
                    stream::random_change(engine.graph(), &ChurnConfig::default(), &mut rng)
                {
                    engine.apply(&change).unwrap();
                    outputs.push(engine.mis());
                }
            }
            outputs
        };
        assert_eq!(build(5), build(5));
    }

    #[test]
    fn average_adjustments_are_small() {
        // A smoke-level statistical check of Theorem 1 (the full statistical
        // experiment lives in dmis-bench): mean adjustments over random edge
        // churn should be below 1.5 with ample slack.
        let mut rng = StdRng::seed_from_u64(3);
        let (g, _) = generators::erdos_renyi(60, 0.08, &mut rng);
        let mut engine = crate::Engine::builder().graph(g).seed(10).build_unsharded();
        let mut total = 0usize;
        let trials = 400;
        for _ in 0..trials {
            let change =
                stream::random_change(engine.graph(), &ChurnConfig::edges_only(), &mut rng)
                    .expect("edge churn always possible here");
            total += engine.apply(&change).unwrap().adjustments();
        }
        let mean = total as f64 / f64::from(trials);
        assert!(mean < 1.5, "mean adjustments {mean} suspiciously high");
    }

    #[test]
    fn work_counters_are_reported() {
        let (g, ids) = generators::star(10);
        let pm = PriorityMap::from_order(&ids);
        let mut engine = crate::Engine::builder()
            .graph(g)
            .priorities(pm)
            .seed(0)
            .build_unsharded();
        let receipt = engine.remove_node(ids[0]).unwrap();
        assert!(receipt.heap_pops() >= receipt.adjustments());
        assert!(receipt.counter_updates() >= 9, "all leaves decremented");
    }

    #[test]
    fn batch_equals_sequential_final_state() {
        for seed in 0..10u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let (g, _) = generators::erdos_renyi(20, 0.25, &mut rng);
            // Build a valid batch of edge changes on an evolving shadow.
            let mut shadow = g.clone();
            let mut batch = Vec::new();
            for _ in 0..6 {
                if let Some(change) =
                    stream::random_change(&shadow, &ChurnConfig::edges_only(), &mut rng)
                {
                    change.apply(&mut shadow).unwrap();
                    batch.push(change);
                }
            }
            let mut batched = crate::Engine::builder()
                .graph(g.clone())
                .seed(99 + seed)
                .build_unsharded();
            let mut sequential = batched.clone();
            batched.apply_batch(&batch).unwrap();
            for change in &batch {
                sequential.apply(change).unwrap();
            }
            assert_eq!(batched.mis(), sequential.mis());
            batched.assert_internally_consistent();
        }
    }

    #[test]
    fn batch_can_insert_and_wire_a_node() {
        let (g, ids) = generators::path(3);
        let mut engine = crate::Engine::builder().graph(g).seed(4).build_unsharded();
        let fresh = engine.graph().peek_next_id();
        let receipt = engine
            .apply_batch(&[
                TopologyChange::InsertNode {
                    id: fresh,
                    edges: vec![ids[0]],
                },
                TopologyChange::InsertEdge(fresh, ids[2]),
                TopologyChange::DeleteEdge(ids[0], ids[1]),
            ])
            .unwrap();
        assert_eq!(receipt.applied(), 3);
        engine.assert_internally_consistent();
        assert!(engine.graph().has_edge(fresh, ids[2]));
    }

    #[test]
    fn batch_can_delete_a_just_inserted_node() {
        let (g, ids) = generators::path(3);
        let mut engine = crate::Engine::builder().graph(g).seed(4).build_unsharded();
        let fresh = engine.graph().peek_next_id();
        engine
            .apply_batch(&[
                TopologyChange::InsertNode {
                    id: fresh,
                    edges: vec![ids[0], ids[2]],
                },
                TopologyChange::DeleteNode(fresh),
            ])
            .unwrap();
        assert!(!engine.graph().has_node(fresh));
        engine.assert_internally_consistent();
    }

    #[test]
    fn batch_failure_keeps_engine_consistent() {
        let (g, ids) = generators::path(4);
        let mut engine = crate::Engine::builder().graph(g).seed(4).build_unsharded();
        let err = engine
            .apply_batch(&[
                TopologyChange::DeleteEdge(ids[0], ids[1]),
                TopologyChange::DeleteEdge(ids[0], ids[3]), // not an edge
                TopologyChange::DeleteEdge(ids[2], ids[3]),
            ])
            .unwrap_err();
        assert_eq!(err, GraphError::MissingEdge(ids[0], ids[3]));
        // The applied prefix (first deletion) is in effect and the
        // invariant is restored for it; the tail was not applied.
        assert!(!engine.graph().has_edge(ids[0], ids[1]));
        assert!(engine.graph().has_edge(ids[2], ids[3]));
        engine.assert_internally_consistent();
    }

    #[test]
    fn batch_of_simultaneous_failures_recovers() {
        // The paper's open question: several deletions at once. Delete
        // three MIS nodes of a cycle simultaneously.
        let (g, ids) = generators::cycle(9);
        let pm = PriorityMap::from_order(&ids);
        let mut engine = crate::Engine::builder()
            .graph(g)
            .priorities(pm)
            .seed(0)
            .build_unsharded();
        let mis = engine.mis();
        let victims: Vec<NodeId> = mis.into_iter().take(3).collect();
        let batch: Vec<TopologyChange> = victims
            .iter()
            .map(|&v| TopologyChange::DeleteNode(v))
            .collect();
        engine.apply_batch(&batch).unwrap();
        engine.assert_internally_consistent();
        assert!(engine.check_invariant().is_ok());
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let (g, _) = generators::path(3);
        let mut engine = crate::Engine::builder().graph(g).seed(1).build_unsharded();
        let before = engine.mis();
        let receipt = engine.apply_batch(&[]).unwrap();
        assert_eq!(receipt.applied(), 0);
        assert_eq!(receipt.adjustments(), 0);
        assert_eq!(engine.mis(), before);
    }

    #[test]
    fn verify_and_repair_heals_membership_and_counter_corruption() {
        let mut rng = StdRng::seed_from_u64(31);
        let (g, ids) = generators::erdos_renyi(40, 0.15, &mut rng);
        let mut engine = crate::Engine::builder().graph(g).seed(13).build_unsharded();
        let twin = engine.clone();
        assert_eq!(engine.corrupt_in_mis(&[ids[0], ids[7], ids[13]]), 3);
        *engine.lower_mis_count.get_mut(ids[20]).unwrap() += 5;
        assert_ne!(engine.mis(), twin.mis(), "corruption must be visible");
        let report = engine.verify_and_repair();
        assert!(!report.is_clean());
        assert!(report.memberships_violated() >= 3);
        assert!(report.counters_fixed() >= 1);
        assert_eq!(engine.mis(), twin.mis(), "repair restores the fixed point");
        engine.assert_internally_consistent();
        let second = engine.verify_and_repair();
        assert!(second.is_clean(), "second pass finds nothing: {second:?}");
        assert_eq!(second.scanned(), engine.graph().node_count());
    }

    #[test]
    fn repair_publishes_a_fresh_epoch_never_a_regressed_one() {
        let mut rng = StdRng::seed_from_u64(32);
        let (g, ids) = generators::erdos_renyi(30, 0.2, &mut rng);
        let mut engine = crate::Engine::builder().graph(g).seed(14).build_unsharded();
        let reader = engine.reader();
        engine.insert_node(&[ids[0]]).unwrap();
        let before = reader.epoch();
        engine.corrupt_in_mis(&[ids[2]]);
        engine.verify_and_repair();
        assert!(reader.epoch() > before, "heal publishes a new epoch");
        let snap = reader.snapshot();
        let published: Vec<NodeId> = snap.iter().collect();
        let live: Vec<NodeId> = engine.mis_iter().collect();
        assert_eq!(published, live);
        // A clean pass publishes nothing: the epoch holds still.
        let settled = reader.epoch();
        engine.verify_and_repair();
        assert_eq!(reader.epoch(), settled);
    }

    #[test]
    fn priorities_are_stable_across_unrelated_changes() {
        let mut rng = StdRng::seed_from_u64(6);
        let (g, ids) = generators::erdos_renyi(10, 0.4, &mut rng);
        let mut engine = crate::Engine::builder().graph(g).seed(2).build_unsharded();
        let p_before = engine.priorities().of(ids[3]);
        let _ = engine.insert_node(&[ids[0]]).unwrap();
        let _ = rng.random::<u64>();
        assert_eq!(engine.priorities().of(ids[3]), p_before);
    }
}
