//! Machine-checkable renditions of the paper's analysis objects.
//!
//! The proof of Theorem 1 hinges on the auxiliary set
//! `S' = S'(G_old, G_new, π, v*)`: the influence set recomputed with three
//! modifications (Section 3):
//!
//! 1. the recursion is *always* seeded with `S'₀ = {v*}`;
//! 2. the reference graph is `G_old` for node deletions and edge
//!    insertions, and `G_new` otherwise;
//! 3. the order is `π'`: identical to π except that `v*` is forced to be
//!    minimal.
//!
//! Crucially `S'` does not depend on the true position of `v*` in π, which
//! is what makes the probabilistic argument go through. Lemma 2 then states:
//! if `π(v*)` is not minimal among `S'` then `S = ∅`; otherwise `S ⊆ S'`.
//!
//! This module computes `S'` exactly and exposes [`check_lemma2`], which the
//! test-suite runs over thousands of random instances — a mechanical
//! verification of the combinatorial half of the paper's main theorem. (The
//! probabilistic half, `Pr[π(v*) = min π(S')] = 1/|S'|` given `S' = P`, is
//! Lemma 3 and is exercised statistically by experiment E1.)

use std::collections::BTreeSet;

use dmis_graph::{DynGraph, NodeId, NodeSet, TopologyChange};

use crate::{template, PriorityMap};

/// Identifies `v*`, the single node whose MIS invariant may be violated by
/// the change: the higher-order endpoint for an edge change, the node itself
/// for a node change (Section 3).
///
/// # Panics
///
/// Panics if an endpoint is missing a priority.
#[must_use]
pub fn v_star(change: &TopologyChange, priorities: &PriorityMap) -> NodeId {
    match change {
        TopologyChange::InsertEdge(u, v) | TopologyChange::DeleteEdge(u, v) => {
            if priorities.before(*u, *v) {
                *v
            } else {
                *u
            }
        }
        TopologyChange::InsertNode { id, .. } => *id,
        TopologyChange::DeleteNode(v) => *v,
    }
}

/// Identifies `v**`: the other endpoint for an edge change, `v*` itself for
/// a node change. Always `π(v**) ≤ π(v*)`.
#[must_use]
pub fn v_star_star(change: &TopologyChange, priorities: &PriorityMap) -> NodeId {
    match change {
        TopologyChange::InsertEdge(u, v) | TopologyChange::DeleteEdge(u, v) => {
            if priorities.before(*u, *v) {
                *u
            } else {
                *v
            }
        }
        TopologyChange::InsertNode { id, .. } => *id,
        TopologyChange::DeleteNode(v) => *v,
    }
}

/// Selects the reference graph for the `S'` recursion: `G_old` for node
/// deletions and edge insertions, `G_new` otherwise (modification (2) of
/// Section 3).
#[must_use]
pub fn reference_graph<'a>(
    change: &TopologyChange,
    g_old: &'a DynGraph,
    g_new: &'a DynGraph,
) -> &'a DynGraph {
    match change {
        TopologyChange::DeleteNode(_) | TopologyChange::InsertEdge(..) => g_old,
        TopologyChange::DeleteEdge(..) | TopologyChange::InsertNode { .. } => g_new,
    }
}

/// Rank of a node under `π'` — the order forcing `v*` first (modification
/// (3)).
fn pi_prime_key(v: NodeId, v_star: NodeId, priorities: &PriorityMap) -> (bool, crate::Priority) {
    (v != v_star, priorities.of(v))
}

/// Computes `S'(G_old, G_new, π, v*)` exactly.
///
/// Internally: (a) order the reference graph's nodes by `π'`; (b) compute
/// the greedy MIS under `π'` (the reference states of the recursion, which
/// by construction do not depend on `π(v*)`); (c) take the least fixpoint of
/// Equation (1) seeded with `{v*}` — computable in a single pass in `π'`
/// order because every membership condition only references lower-order
/// nodes.
///
/// # Panics
///
/// Panics if priorities are missing for nodes of the reference graph.
#[must_use]
pub fn s_prime(
    g_old: &DynGraph,
    g_new: &DynGraph,
    priorities: &PriorityMap,
    change: &TopologyChange,
) -> BTreeSet<NodeId> {
    let vs = v_star(change, priorities);
    let g_ref = reference_graph(change, g_old, g_new);
    debug_assert!(g_ref.has_node(vs), "reference graph must contain v*");
    let mut order: Vec<NodeId> = g_ref.nodes().collect();
    order.sort_unstable_by_key(|&v| pi_prime_key(v, vs, priorities));

    // Reference states: greedy MIS under π', tracked on a dense bitset.
    let mut state_in = NodeSet::new();
    for &v in &order {
        let dominated = g_ref.neighbors(v).expect("ordered nodes exist").any(|u| {
            state_in.contains(u)
                && pi_prime_key(u, vs, priorities) < pi_prime_key(v, vs, priorities)
        });
        if !dominated {
            state_in.insert(v);
        }
    }

    // Least fixpoint of Equation (1), single pass in π' order.
    let mut sprime = NodeSet::new();
    sprime.insert(vs);
    for &u in &order {
        if u == vs {
            continue;
        }
        let key_u = pi_prime_key(u, vs, priorities);
        let lower: Vec<NodeId> = g_ref
            .neighbors(u)
            .expect("ordered nodes exist")
            .filter(|&w| pi_prime_key(w, vs, priorities) < key_u)
            .collect();
        let belongs = if state_in.contains(u) {
            lower.iter().any(|&w| sprime.contains(w))
        } else {
            // Every lower-order MIS neighbor must already be influenced.
            // (Non-vacuous: an M̄ node always has one under greedy states.)
            lower
                .iter()
                .filter(|&&w| state_in.contains(w))
                .all(|&w| sprime.contains(w))
        };
        if belongs {
            sprime.insert(u);
        }
    }
    sprime.iter().collect()
}

/// Outcome of checking Lemma 2 on one instance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Lemma2Report {
    /// The actual influenced set `S` (via template simulation under π).
    pub s: BTreeSet<NodeId>,
    /// The analysis set `S'` (under π', `v*` forced minimal).
    pub s_prime: BTreeSet<NodeId>,
    /// Whether `π(v*)` is minimal among `S'` under the *true* order π.
    pub v_star_is_minimal: bool,
    /// `v*` itself.
    pub v_star: NodeId,
}

impl Lemma2Report {
    /// Returns `true` if the instance satisfies Lemma 2:
    /// `¬minimal ⇒ S = ∅`, and `minimal ⇒ S ⊆ S'`.
    #[must_use]
    pub fn holds(&self) -> bool {
        if self.v_star_is_minimal {
            self.s.is_subset(&self.s_prime)
        } else {
            self.s.is_empty()
        }
    }
}

/// Checks Lemma 2 for a single concrete change.
///
/// `priorities` must cover the nodes of both graphs (an inserted node's
/// priority included).
///
/// # Panics
///
/// Panics if priorities are missing.
#[must_use]
pub fn check_lemma2(
    g_old: &DynGraph,
    g_new: &DynGraph,
    priorities: &PriorityMap,
    change: &TopologyChange,
) -> Lemma2Report {
    let vs = v_star(change, priorities);
    let trace = template::simulate_change(g_old, g_new, priorities, change);
    let sp = s_prime(g_old, g_new, priorities, change);
    let min_sp = sp
        .iter()
        .map(|&u| priorities.of(u))
        .min()
        .expect("S' contains v*");
    Lemma2Report {
        s: trace.influenced,
        s_prime: sp,
        v_star_is_minimal: priorities.of(vs) == min_sp,
        v_star: vs,
    }
}

/// Convenience: applies `change` to a copy of `g_old` and checks Lemma 2.
///
/// # Panics
///
/// Panics if the change is invalid for `g_old` or priorities are missing.
#[must_use]
pub fn check_lemma2_on(
    g_old: &DynGraph,
    priorities: &PriorityMap,
    change: &TopologyChange,
) -> Lemma2Report {
    let mut g_new = g_old.clone();
    change.apply(&mut g_new).expect("change must be valid");
    check_lemma2(g_old, &g_new, priorities, change)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmis_graph::generators;
    use dmis_graph::stream::{self, ChurnConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn random_priorities(g: &DynGraph, seed: u64) -> PriorityMap {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut pm = PriorityMap::new();
        for v in g.nodes() {
            pm.assign(v, &mut rng);
        }
        pm
    }

    #[test]
    fn v_star_is_higher_endpoint() {
        let pm = PriorityMap::from_order(&[NodeId(0), NodeId(1)]);
        let c = TopologyChange::InsertEdge(NodeId(1), NodeId(0));
        assert_eq!(v_star(&c, &pm), NodeId(1));
        assert_eq!(v_star_star(&c, &pm), NodeId(0));
        let c = TopologyChange::DeleteNode(NodeId(0));
        assert_eq!(v_star(&c, &pm), NodeId(0));
        assert_eq!(v_star_star(&c, &pm), NodeId(0));
    }

    #[test]
    fn reference_graph_selection() {
        let (g_old, ids) = generators::path(3);
        let mut g_new = g_old.clone();
        g_new.remove_edge(ids[0], ids[1]).unwrap();
        let del = TopologyChange::DeleteEdge(ids[0], ids[1]);
        assert!(std::ptr::eq(reference_graph(&del, &g_old, &g_new), &g_new));
        let ins = TopologyChange::InsertEdge(ids[0], ids[2]);
        assert!(std::ptr::eq(reference_graph(&ins, &g_old, &g_new), &g_old));
    }

    #[test]
    fn s_prime_contains_v_star() {
        let (g, ids) = generators::path(4);
        let pm = PriorityMap::from_order(&ids);
        let change = TopologyChange::DeleteEdge(ids[0], ids[1]);
        let sp = s_prime(
            &g,
            &{
                let mut gn = g.clone();
                gn.remove_edge(ids[0], ids[1]).unwrap();
                gn
            },
            &pm,
            &change,
        );
        assert!(sp.contains(&ids[1]), "v* always seeds S'");
    }

    #[test]
    fn lemma2_on_simple_cascade() {
        // Path with increasing priorities; delete first edge → full cascade.
        let (g, ids) = generators::path(5);
        let pm = PriorityMap::from_order(&ids);
        let report = check_lemma2_on(&g, &pm, &TopologyChange::DeleteEdge(ids[0], ids[1]));
        assert!(report.v_star_is_minimal);
        assert!(report.holds(), "{report:?}");
        assert!(!report.s.is_empty());
    }

    #[test]
    fn lemma2_when_v_star_not_minimal() {
        // Path p0-p1-p2 with order p0 < p2 < p1. MIS = {p0, p2}. Insert edge
        // {p0, p2}? They're not adjacent in a path of 3: p0-p1, p1-p2. Edge
        // {p0,p2}: v* = p2 (higher). p2 ∈ M, p0 ∈ M → p2 must leave: cascade.
        // For a no-op case instead delete edge {p1, p2}: v** = p2? order:
        // p2 < p1 so v* = p1. p1 ∈ M̄ dominated by p0 as well → S = ∅.
        let (g, ids) = generators::path(3);
        let pm = PriorityMap::from_order(&[ids[0], ids[2], ids[1]]);
        let report = check_lemma2_on(&g, &pm, &TopologyChange::DeleteEdge(ids[1], ids[2]));
        assert!(report.holds(), "{report:?}");
        assert!(report.s.is_empty());
    }

    #[test]
    fn lemma2_holds_across_random_changes() {
        let mut rng = StdRng::seed_from_u64(17);
        let mut failures = Vec::new();
        for seed in 0..60u64 {
            let (g, _) = generators::erdos_renyi(14, 0.25, &mut rng);
            let mut pm = random_priorities(&g, seed);
            let Some(change) = stream::random_change(&g, &ChurnConfig::default(), &mut rng) else {
                continue;
            };
            if let TopologyChange::InsertNode { id, .. } = &change {
                pm.assign(*id, &mut rng);
            }
            let report = check_lemma2_on(&g, &pm, &change);
            if !report.holds() {
                failures.push((seed, change.clone(), report));
            }
        }
        assert!(failures.is_empty(), "lemma 2 failures: {failures:?}");
    }

    #[test]
    fn s_prime_is_independent_of_v_star_rank() {
        // Rewriting v*'s priority must not change S' (its defining property).
        let mut rng = StdRng::seed_from_u64(23);
        let (g, ids) = generators::erdos_renyi(12, 0.3, &mut rng);
        let mut g_new = g.clone();
        let (u, v) = generators::random_edge(&g, &mut rng).unwrap();
        g_new.remove_edge(u, v).unwrap();
        let change = TopologyChange::DeleteEdge(u, v);
        let mut ranks: Vec<Vec<NodeId>> = Vec::new();
        for rank in [0usize, 3, 11] {
            // Build π placing v* at the given rank.
            let pm0 = random_priorities(&g, 40);
            let vs = v_star(&change, &pm0);
            let mut order: Vec<NodeId> = ids.iter().copied().filter(|&x| x != vs).collect();
            order.sort_unstable();
            let rank = rank.min(order.len());
            order.insert(rank, vs);
            let pm = PriorityMap::from_order(&order);
            // v* under pm could differ (rank changes which endpoint is
            // higher); force consistency by skipping when it flips.
            if v_star(&change, &pm) != vs {
                continue;
            }
            let sp = s_prime(&g, &g_new, &pm, &change);
            ranks.push(sp.into_iter().collect());
        }
        if ranks.len() >= 2 {
            for w in ranks.windows(2) {
                assert_eq!(w[0], w[1], "S' depends only on π restricted off v*");
            }
        }
    }
}
