//! Parallel settle: the epoch coordinator on worker threads.
//!
//! The sharded engine's recovery is a sequence of **epochs** (see
//! [`crate::sharding`]): every dirty shard drains its heap against a
//! frozen view of the others, then a barrier merges the buffered
//! handoffs. Shard runs within an epoch touch disjoint state — each run
//! mutates only its own `Shard` and reads the shared graph/π — so the
//! epoch is embarrassingly parallel *by construction*, and executing it
//! on 1, 2, or 64 threads cannot change a single bit of the outcome:
//! same flip log, same receipt counters, same MIS.
//!
//! [`ParallelShardedMisEngine`] exposes that freedom as an execution
//! knob. Per epoch, `execute_epoch` partitions the dirty shards over at
//! most `threads` scoped workers ([`std::thread::scope`]) and joins them
//! at the barrier; per-worker `SettleStats` are pure sums, so merging
//! them is order-independent. A **spawn threshold** keeps the paper's
//! common case fast: Theorem 1 makes single-change cascades tiny
//! (expected ≤ 1 flip), and spawning OS threads for three heap pops costs
//! orders of magnitude more than the pops — so epochs whose total pending
//! work is below the threshold drain inline on the calling thread.
//! Threads are harvested where the work actually is: batched recoveries
//! ([`crate::DynamicMis::apply_batch`]) that seed many shards at
//! once.
//!
//! Determinism does **not** rely on the threshold, the thread count, or
//! the scheduler: `crates/core/tests/sharded_equivalence.rs` drives the
//! three-way property suite (unsharded vs sequential-sharded vs parallel)
//! across K × threads with the threshold forced to zero, and the CI
//! `parallel-determinism` matrix re-runs it under `DMIS_PAR_THREADS`
//! ∈ {1, 2, 8}.

use dmis_graph::{DynGraph, ShardLayout};

use crate::sharding::{run_shard_epoch, SettleCtx, SettleStats, Shard};
use crate::{PriorityMap, ShardedMisEngine};

/// Executes one settle epoch over `shards`: every shard with pending
/// dirty work is drained to local completion via
/// [`run_shard_epoch`] (a frozen-view drain of either the word-parallel
/// rank front or the legacy heap, per the context's strategy). With
/// `threads > 1`, enough independent dirty shards, and at least
/// `spawn_threshold` pending dirty entries, the drains run on scoped
/// worker threads; otherwise inline, in shard-index order. Both paths
/// compute the identical result — shard runs share no mutable state and
/// the accumulated [`SettleStats`] are order-free sums.
pub(crate) fn execute_epoch(
    ctx: SettleCtx<'_>,
    shards: &mut [Shard],
    threads: usize,
    spawn_threshold: usize,
    stats: &mut SettleStats,
) {
    let active = shards.iter().filter(|sh| sh.pending() > 0).count();
    let pending: usize = shards.iter().map(Shard::pending).sum();
    if threads <= 1 || active < 2 || pending < spawn_threshold {
        for (s, shard) in shards.iter_mut().enumerate() {
            if shard.pending() > 0 {
                run_shard_epoch(ctx, s, shard, stats);
            }
        }
        return;
    }
    let mut jobs: Vec<(usize, &mut Shard)> = shards
        .iter_mut()
        .enumerate()
        .filter(|(_, sh)| sh.pending() > 0)
        .collect();
    let workers = threads.min(jobs.len());
    let chunk = jobs.len().div_ceil(workers);
    let worker_stats = std::thread::scope(|scope| {
        let handles: Vec<_> = jobs
            .chunks_mut(chunk)
            .map(|batch| {
                scope.spawn(move || {
                    let mut local = SettleStats::default();
                    for (s, shard) in batch.iter_mut() {
                        run_shard_epoch(ctx, *s, shard, &mut local);
                    }
                    local
                })
            })
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("shard worker panicked"))
            .collect::<Vec<_>>()
    });
    for local in worker_stats {
        stats.absorb(local);
    }
}

/// [`ShardedMisEngine`] with the epoch executor running on worker
/// threads — deterministically.
///
/// Construction mirrors the sequential engine with one extra `threads`
/// axis. Every operation delegates to the wrapped [`ShardedMisEngine`];
/// the only difference is *who executes* an epoch's independent shard
/// runs, never *what* they compute, so the MIS, the flip log, and every
/// receipt counter are bit-identical to the sequential engine for every
/// [`ShardLayout`], thread count, and spawn threshold. The type is `Send`
/// (pinned by a compile-time assertion in `crates/core/tests/`), so whole
/// engines can migrate across threads too.
///
/// Single-change cascades are tiny (Theorem 1), so by default threads
/// only engage when an epoch has at least
/// [`Self::spawn_threshold`] pending dirty nodes — batched recoveries,
/// not single toggles. Lower the threshold (tests use 0) to force the
/// threaded path.
///
/// # Example
///
/// ```
/// use dmis_core::{DynamicMis, Engine};
/// use dmis_graph::{generators, ShardLayout};
///
/// let (g, ids) = generators::cycle(12);
/// let layout = ShardLayout::striped(4);
/// let mut sequential = Engine::builder().graph(g.clone()).sharding(layout).seed(9).build_sharded();
/// let mut parallel = Engine::builder().graph(g).sharding(layout).threads(4).seed(9).build_parallel();
/// parallel.set_spawn_threshold(0); // force worker threads even on tiny cascades
///
/// let r_seq = sequential.remove_edge(ids[0], ids[1])?;
/// let r_par = parallel.remove_edge(ids[0], ids[1])?;
/// assert_eq!(r_par, r_seq, "receipts are bit-identical");
/// assert_eq!(parallel.mis(), sequential.mis());
/// # Ok::<(), dmis_graph::GraphError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ParallelShardedMisEngine {
    inner: ShardedMisEngine,
}

impl ParallelShardedMisEngine {
    /// Creates an engine over an empty graph. `threads` is clamped to at
    /// least 1.
    #[deprecated(
        note = "PR-1-era constructor shim: use `Engine::builder().sharding(layout).threads(t).seed(seed).build_parallel()`"
    )]
    #[must_use]
    pub fn new(layout: ShardLayout, threads: usize, seed: u64) -> Self {
        Self::from_engine(ShardedMisEngine::new_impl(layout, seed), threads)
    }

    /// Creates an engine over an existing graph. Same seed ⇒ same
    /// priority draws as the sequential engines, so all three stay
    /// step-for-step comparable.
    #[deprecated(
        note = "PR-1-era constructor shim: use `Engine::builder().graph(g).sharding(layout).threads(t).seed(seed).build_parallel()`"
    )]
    #[must_use]
    pub fn from_graph(graph: DynGraph, layout: ShardLayout, threads: usize, seed: u64) -> Self {
        Self::from_engine(
            ShardedMisEngine::from_graph_impl(graph, layout, seed),
            threads,
        )
    }

    /// Creates an engine with prescribed priorities.
    ///
    /// # Panics
    ///
    /// Panics if some node of the graph has no priority.
    #[deprecated(
        note = "PR-1-era constructor shim: use `Engine::builder().graph(g).priorities(p).sharding(layout).threads(t).seed(seed).build_parallel()`"
    )]
    #[must_use]
    pub fn from_parts(
        graph: DynGraph,
        priorities: PriorityMap,
        layout: ShardLayout,
        threads: usize,
        seed: u64,
    ) -> Self {
        Self::from_engine(
            ShardedMisEngine::from_parts_impl(graph, priorities, layout, seed),
            threads,
        )
    }

    /// Promotes a sequential engine to parallel execution in place — the
    /// state is reused verbatim, so outputs continue bit-for-bit.
    #[must_use]
    pub fn from_engine(mut inner: ShardedMisEngine, threads: usize) -> Self {
        let (_, threshold) = inner.execution();
        inner.set_execution(threads, threshold);
        ParallelShardedMisEngine { inner }
    }

    /// Demotes back to the sequential engine (threads reset to 1).
    #[must_use]
    pub fn into_engine(mut self) -> ShardedMisEngine {
        let (_, threshold) = self.inner.execution();
        self.inner.set_execution(1, threshold);
        self.inner
    }

    /// Worker threads used per epoch (≥ 1; 1 means inline execution).
    #[must_use]
    pub fn threads(&self) -> usize {
        self.inner.execution().0
    }

    /// Reconfigures the worker-thread count. Purely an execution knob:
    /// outputs and receipts are unchanged for any value.
    pub fn set_threads(&mut self, threads: usize) {
        let (_, threshold) = self.inner.execution();
        self.inner.set_execution(threads, threshold);
    }

    /// Pending-work floor (total dirty-heap entries in an epoch) below
    /// which the epoch drains inline even when threads are configured.
    #[must_use]
    pub fn spawn_threshold(&self) -> usize {
        self.inner.execution().1
    }

    /// Reconfigures the spawn threshold. Purely an execution knob: any
    /// value — including 0, which forces threads whenever two shards are
    /// dirty — yields bit-identical outputs and receipts.
    pub fn set_spawn_threshold(&mut self, threshold: usize) {
        let (threads, _) = self.inner.execution();
        self.inner.set_execution(threads, threshold);
    }

    /// The wrapped sequential engine (read-only).
    #[must_use]
    pub fn engine(&self) -> &ShardedMisEngine {
        &self.inner
    }

    /// Pre-sizes every per-node structure for `n` nodes; see
    /// [`ShardedMisEngine::reserve_nodes`].
    pub fn reserve_nodes(&mut self, n: usize) {
        self.inner.reserve_nodes(n);
    }

    /// Total per-node structure reallocations since construction; see
    /// [`ShardedMisEngine::storage_regrows`].
    #[must_use]
    pub fn storage_regrows(&self) -> u64 {
        self.inner.storage_regrows()
    }

    /// Returns the shard layout.
    #[must_use]
    pub fn layout(&self) -> ShardLayout {
        self.inner.layout()
    }

    /// Number of shards K.
    #[must_use]
    pub fn shard_count(&self) -> usize {
        self.inner.shard_count()
    }
}

// The whole update/query surface — formerly ~20 hand-copied delegation
// bodies — forwards to the wrapped sequential engine through the shared
// `DynamicMis` macro; only the execution knobs above are parallel-specific.
crate::api::forward_dynamic_mis!(ParallelShardedMisEngine, |s| s.inner);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BatchReceipt, DynamicMis};
    use dmis_graph::generators;
    use dmis_graph::stream::{self, ChurnConfig};
    use dmis_graph::{NodeId, TopologyChange};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn empty_engine_reports_configuration() {
        let mut engine = crate::Engine::builder()
            .sharding(ShardLayout::striped(4))
            .threads(0)
            .seed(0)
            .build_parallel();
        assert_eq!(engine.threads(), 1, "thread count is clamped to ≥ 1");
        assert_eq!(engine.shard_count(), 4);
        assert!(engine.mis().is_empty());
        assert_eq!(engine.mis_len(), 0);
        engine.set_threads(8);
        assert_eq!(engine.threads(), 8);
        engine.set_spawn_threshold(0);
        assert_eq!(engine.spawn_threshold(), 0);
    }

    #[test]
    fn promote_demote_round_trip_preserves_state() {
        let mut rng = StdRng::seed_from_u64(3);
        let (g, _) = generators::erdos_renyi(30, 0.2, &mut rng);
        let sequential = crate::Engine::builder()
            .graph(g)
            .sharding(ShardLayout::striped(3))
            .seed(5)
            .build_sharded();
        let mis = sequential.mis();
        let parallel = ParallelShardedMisEngine::from_engine(sequential, 4);
        assert_eq!(parallel.mis(), mis);
        let back = parallel.into_engine();
        assert_eq!(back.mis(), mis);
        assert_eq!(back.execution().0, 1, "demotion resets to inline");
    }

    #[test]
    fn threaded_churn_is_bit_identical_to_sequential() {
        let mut rng = StdRng::seed_from_u64(17);
        let (g, _) = generators::erdos_renyi(40, 0.15, &mut rng);
        let mut sequential = crate::Engine::builder()
            .graph(g.clone())
            .sharding(ShardLayout::striped(4))
            .seed(8)
            .build_sharded();
        let mut parallel = crate::Engine::builder()
            .graph(g)
            .sharding(ShardLayout::striped(4))
            .threads(4)
            .seed(8)
            .build_parallel();
        parallel.set_spawn_threshold(0);
        for _ in 0..150 {
            let Some(change) =
                stream::random_change(sequential.graph(), &ChurnConfig::default(), &mut rng)
            else {
                continue;
            };
            let r_seq = sequential.apply(&change).unwrap();
            let r_par = parallel.apply(&change).unwrap();
            assert_eq!(r_par, r_seq, "receipts diverged");
        }
        assert_eq!(parallel.mis(), sequential.mis());
        parallel.assert_internally_consistent();
    }

    #[test]
    fn spawn_threshold_never_changes_outputs() {
        // The same batch on thresholds 0 (always spawn), 4, and usize::MAX
        // (never spawn): bit-identical receipts.
        let (g, ids) = generators::star(13);
        let pm = crate::PriorityMap::from_order(&ids);
        let batch = vec![TopologyChange::DeleteNode(ids[0])];
        let mut receipts = Vec::new();
        for threshold in [0usize, 4, usize::MAX] {
            let mut engine = crate::Engine::builder()
                .graph(g.clone())
                .priorities(pm.clone())
                .sharding(ShardLayout::striped(4))
                .threads(3)
                .seed(0)
                .build_parallel();
            engine.set_spawn_threshold(threshold);
            receipts.push(engine.apply_batch(&batch).unwrap());
            engine.assert_internally_consistent();
        }
        assert_eq!(receipts[0], receipts[1]);
        assert_eq!(receipts[1], receipts[2]);
    }

    #[test]
    fn thread_counts_agree_on_batches() {
        for seed in 0..8u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let (g, _) = generators::erdos_renyi(25, 0.2, &mut rng);
            let mut shadow = g.clone();
            let mut batch = Vec::new();
            for _ in 0..10 {
                if let Some(change) =
                    stream::random_change(&shadow, &ChurnConfig::default(), &mut rng)
                {
                    change.apply(&mut shadow).unwrap();
                    batch.push(change);
                }
            }
            let mut reference: Option<BatchReceipt> = None;
            for threads in [1usize, 2, 4, 7] {
                let mut engine = crate::Engine::builder()
                    .graph(g.clone())
                    .sharding(ShardLayout::striped(4))
                    .threads(threads)
                    .seed(seed)
                    .build_parallel();
                engine.set_spawn_threshold(0);
                let receipt = engine.apply_batch(&batch).unwrap();
                if let Some(expected) = &reference {
                    assert_eq!(&receipt, expected, "threads={threads} seed={seed}");
                } else {
                    reference = Some(receipt);
                }
                engine.assert_internally_consistent();
            }
        }
    }

    #[test]
    fn errors_propagate_and_leave_engine_untouched() {
        let (g, ids) = generators::path(3);
        let mut engine = crate::Engine::builder()
            .graph(g)
            .sharding(ShardLayout::striped(2))
            .threads(2)
            .seed(0)
            .build_parallel();
        let snapshot = engine.mis();
        assert!(engine.insert_edge(ids[0], ids[1]).is_err());
        assert!(engine.remove_edge(ids[0], ids[2]).is_err());
        assert!(engine.remove_node(NodeId(50)).is_err());
        assert_eq!(engine.mis(), snapshot);
        engine.assert_internally_consistent();
    }
}
