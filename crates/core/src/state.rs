use std::fmt;

/// Output state of a node: in the MIS (`M` in the paper) or out (`M̄`).
///
/// The two *transient* protocol states `C` (changing) and `R` (ready) of
/// Algorithm 2 are communication-level details and live in `dmis-protocol`;
/// the template and the engine only ever expose `M`/`M̄`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MisState {
    /// The node is in the maximal independent set (paper state `M`).
    In,
    /// The node is not in the MIS (paper state `M̄`).
    Out,
}

impl MisState {
    /// Returns `true` for [`MisState::In`].
    #[must_use]
    pub const fn is_in(self) -> bool {
        matches!(self, MisState::In)
    }

    /// Returns the opposite state.
    #[must_use]
    pub const fn flipped(self) -> Self {
        match self {
            MisState::In => MisState::Out,
            MisState::Out => MisState::In,
        }
    }

    /// Maps a boolean ("is in the MIS") to a state.
    #[must_use]
    pub const fn from_membership(in_mis: bool) -> Self {
        if in_mis {
            MisState::In
        } else {
            MisState::Out
        }
    }
}

impl fmt::Display for MisState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MisState::In => f.write_str("M"),
            MisState::Out => f.write_str("M̄"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        assert!(MisState::In.is_in());
        assert!(!MisState::Out.is_in());
        assert_eq!(MisState::In.flipped(), MisState::Out);
        assert_eq!(MisState::Out.flipped(), MisState::In);
        assert_eq!(MisState::from_membership(true), MisState::In);
        assert_eq!(MisState::from_membership(false), MisState::Out);
    }

    #[test]
    fn display_matches_paper_notation() {
        assert_eq!(MisState::In.to_string(), "M");
        assert_eq!(MisState::Out.to_string(), "M̄");
    }
}
