//! Verifiers for the structural guarantees the paper's algorithms maintain.
//!
//! These functions are used pervasively in tests, and by the simulator
//! harness to decide when a distributed execution has stabilized to a
//! correct output.

use std::collections::BTreeSet;
use std::error::Error;
use std::fmt;

use dmis_graph::{DynGraph, NodeId, NodeSet};

use crate::PriorityMap;

/// Why a candidate set fails to satisfy the MIS invariant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum InvariantViolation {
    /// Two adjacent nodes are both in the set.
    AdjacentMembers(NodeId, NodeId),
    /// A node is outside the set but has no lower-order member neighbor
    /// (under the π-invariant), or no member neighbor at all (plain
    /// maximality).
    UncoveredNode(NodeId),
    /// A node in the set has a lower-order member neighbor — it should have
    /// been excluded by greedy.
    WronglyIncluded(NodeId, NodeId),
}

impl fmt::Display for InvariantViolation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            InvariantViolation::AdjacentMembers(u, v) => {
                write!(f, "adjacent nodes {u} and {v} are both in the set")
            }
            InvariantViolation::UncoveredNode(v) => {
                write!(f, "node {v} is outside the set but not dominated")
            }
            InvariantViolation::WronglyIncluded(v, u) => {
                write!(f, "node {v} is in the set despite lower-order member {u}")
            }
        }
    }
}

impl Error for InvariantViolation {}

/// Returns `true` if `set` is an independent set of `g` (no two members
/// adjacent).
#[must_use]
pub fn is_independent_set(g: &DynGraph, set: &BTreeSet<NodeId>) -> bool {
    is_independent_set_dense(g, &set.iter().copied().collect())
}

/// [`is_independent_set`] over a dense membership bitset — the engines'
/// native representation (collect [`crate::DynamicMis::mis_iter`] into a
/// [`NodeSet`] instead of materializing an ordered set).
#[must_use]
pub fn is_independent_set_dense(g: &DynGraph, members: &NodeSet) -> bool {
    members.iter().all(|v| {
        g.neighbors(v)
            .map(|mut nbrs| !nbrs.any(|u| members.contains(u)))
            .unwrap_or(false)
    })
}

/// Returns `true` if `set` is a *maximal* independent set of `g`.
#[must_use]
pub fn is_maximal_independent_set(g: &DynGraph, set: &BTreeSet<NodeId>) -> bool {
    is_maximal_independent_set_dense(g, &set.iter().copied().collect())
}

/// [`is_maximal_independent_set`] over a dense membership bitset.
#[must_use]
pub fn is_maximal_independent_set_dense(g: &DynGraph, members: &NodeSet) -> bool {
    if !is_independent_set_dense(g, members) {
        return false;
    }
    g.nodes().all(|v| {
        members.contains(v)
            || g.neighbors(v)
                .expect("iterating live nodes")
                .any(|u| members.contains(u))
    })
}

/// Checks the paper's **MIS invariant**: `v ∈ M` iff no neighbor `u` with
/// `π(u) < π(v)` is in `M`. This is strictly stronger than maximality — it
/// pins `M` to be exactly the greedy MIS of `(g, π)`.
///
/// # Errors
///
/// Returns the first [`InvariantViolation`] found (in node order).
///
/// # Panics
///
/// Panics if some node of `g` has no priority.
pub fn check_mis_invariant(
    g: &DynGraph,
    priorities: &PriorityMap,
    mis: &BTreeSet<NodeId>,
) -> Result<(), InvariantViolation> {
    let members: NodeSet = mis.iter().copied().collect();
    check_mis_invariant_dense(g, priorities, &members)
}

/// [`check_mis_invariant`] over a dense membership bitset — the engines'
/// native representation, so they can verify themselves without
/// materializing an ordered set first.
///
/// # Errors
///
/// Returns the first [`InvariantViolation`] found (in node order).
///
/// # Panics
///
/// Panics if some node of `g` has no priority.
pub fn check_mis_invariant_dense(
    g: &DynGraph,
    priorities: &PriorityMap,
    members: &NodeSet,
) -> Result<(), InvariantViolation> {
    for v in g.nodes() {
        check_node(g, priorities, members, v)?;
    }
    Ok(())
}

/// The per-node body of [`check_mis_invariant_dense`]: verifies the
/// π-invariant at `v` alone.
fn check_node(
    g: &DynGraph,
    priorities: &PriorityMap,
    members: &NodeSet,
    v: NodeId,
) -> Result<(), InvariantViolation> {
    let lower_member = g
        .neighbors(v)
        .expect("iterating live nodes")
        .find(|&u| members.contains(u) && priorities.before(u, v));
    match (members.contains(v), lower_member) {
        (true, Some(u)) => Err(InvariantViolation::WronglyIncluded(v, u)),
        (false, None) => Err(InvariantViolation::UncoveredNode(v)),
        _ => Ok(()),
    }
}

/// A deterministic ~`sample`-node slice of `g`'s live nodes: every
/// `stride`-th node in identifier order, where `stride = n / sample`,
/// phase-shifted by `seed` so repeated checks with varying seeds sweep
/// different residue classes. With `sample >= n` this is every node.
///
/// Shared by the sampled invariant checker and the engines' sampled
/// self-checks, so all of them agree on what "a sample" means.
///
/// # Panics
///
/// Panics if `sample` is zero.
pub fn sampled_nodes(g: &DynGraph, sample: usize, seed: u64) -> impl Iterator<Item = NodeId> + '_ {
    assert!(sample > 0, "sample size must be positive");
    let stride = (g.node_count() / sample).max(1);
    let offset = (seed % stride as u64) as usize;
    g.nodes().skip(offset).step_by(stride)
}

/// [`check_mis_invariant_dense`] restricted to a deterministic sample of
/// roughly `sample` nodes (see [`sampled_nodes`]): O(sample · avg-degree)
/// neighbor scans instead of O(n + m), so a per-update debug assertion
/// stays affordable at 10^6 nodes. The π-invariant is per-node, so a
/// violation at a sampled node is a genuine violation; a passing sample
/// is evidence, not proof — vary `seed` across updates to sweep the
/// whole graph over time.
///
/// # Errors
///
/// Returns the first [`InvariantViolation`] found among sampled nodes.
///
/// # Panics
///
/// Panics if `sample` is zero, or if a sampled node has no priority.
pub fn check_mis_invariant_sampled(
    g: &DynGraph,
    priorities: &PriorityMap,
    members: &NodeSet,
    sample: usize,
    seed: u64,
) -> Result<(), InvariantViolation> {
    for v in sampled_nodes(g, sample, seed) {
        check_node(g, priorities, members, v)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmis_graph::generators;

    #[test]
    fn independence_checks() {
        let (g, ids) = generators::path(4);
        let good: BTreeSet<_> = [ids[0], ids[2]].into_iter().collect();
        assert!(is_independent_set(&g, &good));
        let bad: BTreeSet<_> = [ids[0], ids[1]].into_iter().collect();
        assert!(!is_independent_set(&g, &bad));
        let ghost: BTreeSet<_> = [NodeId(99)].into_iter().collect();
        assert!(!is_independent_set(&g, &ghost), "members must exist");
    }

    #[test]
    fn maximality_checks() {
        let (g, ids) = generators::path(4);
        let maximal: BTreeSet<_> = [ids[0], ids[2]].into_iter().collect();
        assert!(is_maximal_independent_set(&g, &maximal));
        let not_maximal: BTreeSet<_> = [ids[0]].into_iter().collect();
        assert!(!is_maximal_independent_set(&g, &not_maximal));
        let not_independent: BTreeSet<_> = [ids[0], ids[1], ids[3]].into_iter().collect();
        assert!(!is_maximal_independent_set(&g, &not_independent));
    }

    #[test]
    fn pi_invariant_is_stronger_than_maximality() {
        let (g, ids) = generators::path(3);
        let pm = PriorityMap::from_order(&[ids[1], ids[0], ids[2]]);
        // {ids[0], ids[2]} is a perfectly fine MIS…
        let other_mis: BTreeSet<_> = [ids[0], ids[2]].into_iter().collect();
        assert!(is_maximal_independent_set(&g, &other_mis));
        // …but not the greedy one for this π (middle node first).
        assert_eq!(
            check_mis_invariant(&g, &pm, &other_mis),
            Err(InvariantViolation::UncoveredNode(ids[1]))
        );
        let greedy: BTreeSet<_> = [ids[1]].into_iter().collect();
        assert!(check_mis_invariant(&g, &pm, &greedy).is_ok());
    }

    #[test]
    fn wrongly_included_detected() {
        let (g, ids) = generators::path(2);
        let pm = PriorityMap::from_order(&[ids[0], ids[1]]);
        let both: BTreeSet<_> = [ids[0], ids[1]].into_iter().collect();
        assert_eq!(
            check_mis_invariant(&g, &pm, &both),
            Err(InvariantViolation::WronglyIncluded(ids[1], ids[0]))
        );
    }

    #[test]
    fn violation_display() {
        let v = InvariantViolation::AdjacentMembers(NodeId(1), NodeId(2));
        assert!(v.to_string().contains("n1"));
        let v = InvariantViolation::UncoveredNode(NodeId(3)).to_string();
        assert!(v.contains("not dominated"));
        let v = InvariantViolation::WronglyIncluded(NodeId(3), NodeId(1)).to_string();
        assert!(v.contains("lower-order"));
    }

    #[test]
    fn sampled_check_covers_everything_when_sample_exceeds_n() {
        let (g, ids) = generators::path(3);
        let pm = PriorityMap::from_order(&[ids[1], ids[0], ids[2]]);
        let wrong: NodeSet = [ids[0], ids[2]].into_iter().collect();
        assert_eq!(
            check_mis_invariant_sampled(&g, &pm, &wrong, 100, 7),
            Err(InvariantViolation::UncoveredNode(ids[1])),
            "sample >= n degenerates to the full check"
        );
        let greedy: NodeSet = [ids[1]].into_iter().collect();
        assert!(check_mis_invariant_sampled(&g, &pm, &greedy, 100, 7).is_ok());
    }

    #[test]
    fn sampled_nodes_is_deterministic_and_sweeps_with_the_seed() {
        let (g, _) = generators::path(64);
        let a: Vec<NodeId> = sampled_nodes(&g, 8, 3).collect();
        let b: Vec<NodeId> = sampled_nodes(&g, 8, 3).collect();
        assert_eq!(a, b, "same seed, same sample");
        assert!(
            a.len() >= 8 && a.len() <= 9,
            "~sample nodes selected, got {}",
            a.len()
        );
        // Over all stride phases, every node is eventually sampled.
        let mut seen: NodeSet = NodeSet::new();
        for seed in 0..8u64 {
            for v in sampled_nodes(&g, 8, seed) {
                seen.insert(v);
            }
        }
        assert_eq!(seen.len(), 64, "seeds sweep every residue class");
    }

    #[test]
    fn empty_graph_trivially_satisfies_everything() {
        let g = DynGraph::new();
        let pm = PriorityMap::new();
        let empty = BTreeSet::new();
        assert!(is_maximal_independent_set(&g, &empty));
        assert!(check_mis_invariant(&g, &pm, &empty).is_ok());
    }
}
