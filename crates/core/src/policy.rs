//! Flush policies and injectable clocks for the change-ingestion queue.
//!
//! PR 5's [`crate::IngestSession`] had exactly one knob: a depth
//! watermark counting pushes per window. That is the right control on
//! cancel-heavy streams — deep windows amortize settle passes and cancel
//! churn — but it has no notion of *time*: a trickle stream (one change
//! per tick, never coalescing) starves behind a deep watermark, waiting
//! `W − 1` arrivals before anything becomes visible. This module turns
//! the flush decision into a value, [`FlushPolicy`]:
//!
//! - [`FlushPolicy::Manual`] — never auto-flush (the old
//!   `IngestSession::new` behavior);
//! - [`FlushPolicy::Depth`] — flush after `n` pushes (the old
//!   `with_watermark` behavior);
//! - [`FlushPolicy::Deadline`] — flush as soon as the **oldest** queued
//!   change has waited the budget, regardless of depth;
//! - [`FlushPolicy::Either`] — depth *or* deadline, whichever trips
//!   first (the deployment-shaped combination: bounded work per window
//!   *and* bounded worst-case visibility delay);
//! - [`FlushPolicy::Adaptive`] — a depth watermark steered by an
//!   exponential smoother over the observed per-flush coalesce fraction
//!   and settle cost, deepening on cancel-heavy streams and shallowing
//!   when changes don't coalesce, clamped to `[min_depth, max_depth]`.
//!
//! # Time is injected, so every policy is deterministic under test
//!
//! All timing flows through the [`Clock`] trait: sessions stamp arrivals
//! with `clock.now()` and measure settle cost as a difference of two
//! `now()` reads. The default [`MonotonicClock`] reads a monotonic
//! wall clock; the [`ManualClock`] only moves when a test calls
//! [`ManualClock::advance`]. Under a manual clock the entire policy
//! surface — deadline boundaries, queue-delay percentiles, and the
//! adaptive smoother's cost observations — is a pure function of the
//! pushed stream and the test's explicit ticks, which is what lets the
//! property suite (`crates/core/tests/flush_policy.rs`) pin exact flush
//! boundaries and bit-identical receipts.
//!
//! # The adaptive recurrence
//!
//! After every flush of a window with `p` pushes, `s` surviving changes,
//! and settle duration `t`, the policy observes the coalesce fraction
//! `φ = (p − s)/p` and the unit cost `c = t/max(s, 1)`, and updates two
//! exponential smoothers (`α` = [`AdaptiveConfig::alpha`](field@AdaptiveConfig::alpha)):
//!
//! ```text
//! f̂ ← f̂ + α·(φ − f̂)          ĉ ← ĉ + α·(c − ĉ)
//! depth ← clamp(min + round(f̂ · (max − min)), min, max)
//! ```
//!
//! A smoothed coalesce fraction near 1 means windows are mostly churn
//! the queue can cancel, so deeper windows are nearly free; a fraction
//! near 0 means every queued change survives to settle, so depth only
//! buys latency. When one flush's unit cost spikes past
//! [`AdaptiveConfig::brake_ratio`] times the smoothed ĉ, the next
//! window is halved toward `min_depth` — a brake against a stream that
//! suddenly turns expensive mid-window. Under a [`ManualClock`] that a
//! test never advances across a flush, every observed cost is zero, ĉ
//! stays 0, and the brake never fires — adaptivity degenerates to the
//! pure coalesce-fraction recurrence, fully determined by the stream.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// A monotonic time source for ingest sessions. `now()` returns the
/// elapsed time since an arbitrary (per-clock) origin; only differences
/// are ever meaningful. Implementations must be monotone: `now()` never
/// decreases.
pub trait Clock: fmt::Debug + Send + Sync {
    /// Time elapsed since this clock's origin.
    fn now(&self) -> Duration;
}

/// The default [`Clock`]: monotonic wall time from [`Instant`],
/// originating at construction.
#[derive(Debug, Clone)]
pub struct MonotonicClock {
    origin: Instant,
}

impl MonotonicClock {
    /// A clock whose origin is now.
    #[must_use]
    pub fn new() -> Self {
        MonotonicClock {
            origin: Instant::now(),
        }
    }
}

impl Default for MonotonicClock {
    fn default() -> Self {
        Self::new()
    }
}

impl Clock for MonotonicClock {
    fn now(&self) -> Duration {
        self.origin.elapsed()
    }
}

/// A manually-ticked [`Clock`] for deterministic tests: time stands
/// still until [`ManualClock::advance`] (or [`ManualClock::set`]) moves
/// it. Clones share the same underlying counter, so a test can hold one
/// handle while the session holds another.
#[derive(Debug, Clone, Default)]
pub struct ManualClock {
    nanos: Arc<AtomicU64>,
}

impl ManualClock {
    /// A clock at time zero.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Advances the clock by `by`. Saturates at `u64::MAX` nanoseconds.
    pub fn advance(&self, by: Duration) {
        let by = u64::try_from(by.as_nanos()).unwrap_or(u64::MAX);
        let _ = self
            .nanos
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |t| {
                Some(t.saturating_add(by))
            });
    }

    /// Sets the clock to an absolute time since its origin.
    ///
    /// # Panics
    ///
    /// Panics if `to` moves the clock backwards (clocks are monotone).
    pub fn set(&self, to: Duration) {
        let to = u64::try_from(to.as_nanos()).unwrap_or(u64::MAX);
        let prev = self.nanos.swap(to, Ordering::SeqCst);
        assert!(prev <= to, "ManualClock::set moved time backwards");
    }
}

impl Clock for ManualClock {
    fn now(&self) -> Duration {
        Duration::from_nanos(self.nanos.load(Ordering::SeqCst))
    }
}

/// Configuration of [`FlushPolicy::Adaptive`]; see the module docs for
/// the recurrence. [`AdaptiveConfig::default`] is the tuning the bench
/// sweep (`BENCH_engine.json` "ingest_policy") gates: depth in
/// `[1, 64]`, `α = 0.25`, brake at 4× the smoothed unit cost, no
/// deadline backstop.
#[derive(Debug, Clone, PartialEq)]
pub struct AdaptiveConfig {
    /// Smallest depth watermark the smoother may choose (clamped ≥ 1).
    pub min_depth: usize,
    /// Largest depth watermark the smoother may choose (clamped ≥
    /// `min_depth`).
    pub max_depth: usize,
    /// Smoothing factor `α ∈ (0, 1]` of both exponential smoothers:
    /// larger reacts faster, smaller averages longer. Clamped into
    /// `(0, 1]`.
    pub alpha: f64,
    /// Optional latency backstop: regardless of the adapted depth, flush
    /// once the oldest queued change has waited this long (exactly
    /// [`FlushPolicy::Deadline`] layered on top of the adapted depth).
    pub deadline: Option<Duration>,
    /// Settle-cost spike brake: when one flush's unit cost exceeds
    /// `brake_ratio` × the smoothed cost ĉ, the next window's depth is
    /// halved toward `min_depth`. Ratios ≤ 1 are clamped to 1.
    pub brake_ratio: f64,
}

impl Default for AdaptiveConfig {
    fn default() -> Self {
        AdaptiveConfig {
            min_depth: 1,
            max_depth: 64,
            alpha: 0.25,
            deadline: None,
            brake_ratio: 4.0,
        }
    }
}

impl AdaptiveConfig {
    fn min(&self) -> usize {
        self.min_depth.max(1)
    }

    fn max(&self) -> usize {
        self.max_depth.max(self.min())
    }

    fn alpha(&self) -> f64 {
        if self.alpha.is_finite() && self.alpha > 0.0 {
            self.alpha.min(1.0)
        } else {
            0.25
        }
    }

    fn brake(&self) -> f64 {
        if self.brake_ratio.is_finite() {
            self.brake_ratio.max(1.0)
        } else {
            f64::INFINITY
        }
    }

    /// The depth realizing a smoothed coalesce fraction, before the
    /// brake: `clamp(min + round(f̂·(max − min)), min, max)`.
    fn depth_for(&self, fhat: f64) -> usize {
        let span = (self.max() - self.min()) as f64;
        let raw = self.min() as f64 + (fhat.clamp(0.0, 1.0) * span).round();
        (raw as usize).clamp(self.min(), self.max())
    }
}

/// When an [`crate::IngestSession`] flushes; see the module docs for the
/// variants' semantics. Constructed directly or via the convenience
/// constructors; consumed by [`crate::IngestSession::with_policy`] and
/// [`crate::EngineBuilder::build_with_session`].
#[derive(Debug, Clone, PartialEq)]
pub enum FlushPolicy {
    /// Never auto-flush: changes queue until an explicit
    /// [`crate::IngestSession::flush`].
    Manual,
    /// Flush when a window has absorbed this many pushes. Counting
    /// *pushes* — not the coalesced depth — bounds both the pending
    /// buffer and the arrivals a change waits, even on cancel-heavy
    /// streams where the coalesced depth hovers near zero. Clamped ≥ 1;
    /// depth 1 degenerates to unbatched per-change application.
    Depth(usize),
    /// Flush when the oldest queued change has waited this long (per the
    /// session's [`Clock`]). Trips on the push that exceeds the budget,
    /// or on [`crate::IngestSession::poll`] between pushes; fires
    /// exactly at the boundary — a wait of precisely the budget flushes.
    Deadline(Duration),
    /// Flush on depth *or* deadline, whichever trips first.
    Either(usize, Duration),
    /// Depth steered by the exponential-smoother recurrence over
    /// observed coalesce fraction and settle cost (module docs).
    Adaptive(AdaptiveConfig),
}

impl FlushPolicy {
    /// [`FlushPolicy::Adaptive`] with the default tuning.
    #[must_use]
    pub fn adaptive() -> Self {
        FlushPolicy::Adaptive(AdaptiveConfig::default())
    }
}

/// The mutable decision state behind a session's [`FlushPolicy`]: the
/// policy plus, for [`FlushPolicy::Adaptive`], the smoother registers.
#[derive(Debug, Clone)]
pub(crate) struct FlushController {
    policy: FlushPolicy,
    /// Smoothed per-flush coalesce fraction f̂ ∈ [0, 1].
    fhat: f64,
    /// Smoothed settle cost ĉ, in nanoseconds per surviving change.
    chat: f64,
    /// Effective depth watermark for the *next* window (adaptive only).
    depth: usize,
}

impl FlushController {
    pub(crate) fn new(policy: FlushPolicy) -> Self {
        // Start the smoother agnostic: f̂ = ½ puts the first window in
        // the middle of the clamp, so the policy neither assumes a
        // cancel-heavy stream nor penalizes one.
        let fhat = 0.5;
        let depth = match &policy {
            FlushPolicy::Adaptive(cfg) => cfg.depth_for(fhat),
            _ => 0,
        };
        FlushController {
            policy,
            fhat,
            chat: 0.0,
            depth,
        }
    }

    pub(crate) fn policy(&self) -> &FlushPolicy {
        &self.policy
    }

    /// The depth watermark currently in force, if the policy has one.
    pub(crate) fn effective_depth(&self) -> Option<usize> {
        match &self.policy {
            FlushPolicy::Manual | FlushPolicy::Deadline(_) => None,
            FlushPolicy::Depth(n) | FlushPolicy::Either(n, _) => Some((*n).max(1)),
            FlushPolicy::Adaptive(_) => Some(self.depth),
        }
    }

    /// The deadline currently in force, if the policy has one.
    pub(crate) fn effective_deadline(&self) -> Option<Duration> {
        match &self.policy {
            FlushPolicy::Manual | FlushPolicy::Depth(_) => None,
            FlushPolicy::Deadline(d) | FlushPolicy::Either(_, d) => Some(*d),
            FlushPolicy::Adaptive(cfg) => cfg.deadline,
        }
    }

    /// Should the session flush now, given the window's push count and
    /// the age of its oldest queued change?
    pub(crate) fn should_flush(&self, pushed: usize, oldest_age: Option<Duration>) -> bool {
        if pushed == 0 {
            return false;
        }
        if let Some(n) = self.effective_depth() {
            if pushed >= n {
                return true;
            }
        }
        if let (Some(d), Some(age)) = (self.effective_deadline(), oldest_age) {
            if age >= d {
                return true;
            }
        }
        false
    }

    /// Feeds one flush's observation into the adaptive smoother
    /// (no-op for the fixed policies): `pushed` changes entered the
    /// window, `surviving` survived coalescing, and settling them took
    /// `settle` of session-clock time.
    pub(crate) fn observe_flush(&mut self, pushed: usize, surviving: usize, settle: Duration) {
        let FlushPolicy::Adaptive(cfg) = &self.policy else {
            return;
        };
        if pushed == 0 {
            return;
        }
        let alpha = cfg.alpha();
        let phi = (pushed - surviving.min(pushed)) as f64 / pushed as f64;
        self.fhat += alpha * (phi - self.fhat);
        let unit_cost = settle.as_nanos() as f64 / surviving.max(1) as f64;
        let spiked = self.chat > 0.0 && unit_cost > cfg.brake() * self.chat;
        self.chat += alpha * (unit_cost - self.chat);
        self.depth = cfg.depth_for(self.fhat);
        if spiked {
            self.depth = (self.depth / 2).clamp(cfg.min(), cfg.max());
        }
    }
}

/// Per-flush queue-delay accounting on an [`crate::IngestReceipt`]: how
/// long each of the window's pushes waited between arrival and flush
/// (per the session's [`Clock`] — exact ticks under a [`ManualClock`],
/// wall time under the default), plus the flush's settle duration.
///
/// Delays are stored sorted ascending, one entry per *push* (coalesced-
/// away changes waited too — their latency was paid even though their
/// settle work was not), so percentiles are exact, and the value stays
/// `Eq`: two flushes at identical boundaries under identical clocks
/// produce identical `QueueDelay`s, which the replay property in
/// `crates/core/tests/flush_policy.rs` pins.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct QueueDelay {
    /// Arrival→flush wait per push, sorted ascending.
    delays: Box<[Duration]>,
    /// Session-clock duration of the flush's `apply_batch`.
    settle: Duration,
}

impl QueueDelay {
    pub(crate) fn new(mut delays: Vec<Duration>, settle: Duration) -> Self {
        delays.sort_unstable();
        QueueDelay {
            delays: delays.into_boxed_slice(),
            settle,
        }
    }

    /// Number of pushes the window absorbed.
    #[must_use]
    pub fn len(&self) -> usize {
        self.delays.len()
    }

    /// True for the empty window (a flush with no pushes).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.delays.is_empty()
    }

    /// The per-push waits, sorted ascending.
    #[must_use]
    pub fn waits(&self) -> &[Duration] {
        &self.delays
    }

    /// Session-clock duration of the flush's settle (`apply_batch`).
    #[must_use]
    pub fn settle(&self) -> Duration {
        self.settle
    }

    /// Longest wait in the window (zero for the empty window).
    #[must_use]
    pub fn max_delay(&self) -> Duration {
        self.delays.last().copied().unwrap_or_default()
    }

    /// Mean wait over the window's pushes (zero for the empty window).
    #[must_use]
    pub fn mean_delay(&self) -> Duration {
        if self.delays.is_empty() {
            return Duration::ZERO;
        }
        let total: u128 = self.delays.iter().map(Duration::as_nanos).sum();
        nanos_to_duration(total / self.delays.len() as u128)
    }

    /// Nearest-rank percentile of the waits; `p` in 0..=100.
    #[must_use]
    pub fn percentile(&self, p: usize) -> Duration {
        if self.delays.is_empty() {
            return Duration::ZERO;
        }
        self.delays[(self.delays.len() - 1) * p.min(100) / 100]
    }

    /// Median wait.
    #[must_use]
    pub fn p50(&self) -> Duration {
        self.percentile(50)
    }

    /// 99th-percentile wait.
    #[must_use]
    pub fn p99(&self) -> Duration {
        self.percentile(99)
    }
}

fn nanos_to_duration(nanos: u128) -> Duration {
    Duration::from_nanos(u64::try_from(nanos).unwrap_or(u64::MAX))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn manual_clock_only_moves_when_advanced() {
        let clock = ManualClock::new();
        let twin = clock.clone();
        assert_eq!(clock.now(), Duration::ZERO);
        twin.advance(Duration::from_nanos(7));
        assert_eq!(clock.now(), Duration::from_nanos(7), "clones share time");
        clock.set(Duration::from_nanos(10));
        assert_eq!(twin.now(), Duration::from_nanos(10));
    }

    #[test]
    #[should_panic(expected = "backwards")]
    fn manual_clock_rejects_time_travel() {
        let clock = ManualClock::new();
        clock.advance(Duration::from_secs(1));
        clock.set(Duration::from_nanos(1));
    }

    #[test]
    fn monotonic_clock_is_monotone() {
        let clock = MonotonicClock::new();
        let a = clock.now();
        let b = clock.now();
        assert!(b >= a);
    }

    #[test]
    fn depth_policy_trips_at_the_watermark() {
        let c = FlushController::new(FlushPolicy::Depth(3));
        assert!(!c.should_flush(2, None));
        assert!(c.should_flush(3, None));
        assert_eq!(c.effective_depth(), Some(3));
        assert_eq!(c.effective_deadline(), None);
    }

    #[test]
    fn deadline_policy_fires_exactly_at_the_boundary() {
        let d = Duration::from_nanos(100);
        let c = FlushController::new(FlushPolicy::Deadline(d));
        assert!(!c.should_flush(1, Some(Duration::from_nanos(99))));
        assert!(c.should_flush(1, Some(d)), "boundary inclusive");
        assert!(!c.should_flush(0, Some(d)), "empty window never flushes");
        assert_eq!(c.effective_depth(), None);
    }

    #[test]
    fn either_policy_trips_on_whichever_first() {
        let d = Duration::from_nanos(50);
        let c = FlushController::new(FlushPolicy::Either(4, d));
        assert!(c.should_flush(4, Some(Duration::ZERO)), "depth leg");
        assert!(c.should_flush(1, Some(d)), "deadline leg");
        assert!(!c.should_flush(3, Some(Duration::from_nanos(49))));
    }

    #[test]
    fn adaptive_deepens_on_coalescing_and_shallows_without_it() {
        let cfg = AdaptiveConfig::default();
        let mut c = FlushController::new(FlushPolicy::Adaptive(cfg.clone()));
        let mid = cfg.depth_for(0.5);
        assert_eq!(c.effective_depth(), Some(mid));
        // Fully-coalescing flushes drive depth to the max…
        for _ in 0..64 {
            let d = c.effective_depth().unwrap();
            c.observe_flush(d.max(2), 0, Duration::ZERO);
        }
        assert_eq!(c.effective_depth(), Some(cfg.max()));
        // …and non-coalescing flushes drive it back to the min.
        for _ in 0..64 {
            let d = c.effective_depth().unwrap();
            c.observe_flush(d, d, Duration::ZERO);
        }
        assert_eq!(c.effective_depth(), Some(cfg.min()));
    }

    #[test]
    fn adaptive_depth_always_stays_in_the_clamp() {
        let cfg = AdaptiveConfig {
            min_depth: 4,
            max_depth: 16,
            ..AdaptiveConfig::default()
        };
        let mut c = FlushController::new(FlushPolicy::Adaptive(cfg.clone()));
        let mut x = 9u64;
        for i in 0..200 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let pushed = 1 + (x % 40) as usize;
            let surviving = (x >> 8) as usize % (pushed + 1);
            let settle = Duration::from_nanos(x % 10_000);
            c.observe_flush(pushed, surviving, settle);
            let d = c.effective_depth().unwrap();
            assert!((4..=16).contains(&d), "flush {i}: depth {d} escaped clamp");
        }
    }

    #[test]
    fn adaptive_cost_spike_halves_the_window() {
        let cfg = AdaptiveConfig::default();
        let mut c = FlushController::new(FlushPolicy::Adaptive(cfg.clone()));
        // Establish a cheap, fully-coalescing steady state at max depth.
        for _ in 0..64 {
            c.observe_flush(64, 0, Duration::from_nanos(64));
        }
        assert_eq!(c.effective_depth(), Some(cfg.max()));
        // One flush 1000× over the smoothed unit cost trips the brake.
        c.observe_flush(64, 0, Duration::from_micros(64));
        assert_eq!(c.effective_depth(), Some(cfg.max() / 2));
    }

    #[test]
    fn adaptive_without_clock_advancement_never_brakes() {
        // Under a never-advanced ManualClock every settle reads zero,
        // ĉ stays 0, and the spike predicate (strictly >) cannot fire:
        // the recurrence is a pure function of the stream.
        let mut c = FlushController::new(FlushPolicy::adaptive());
        for _ in 0..100 {
            c.observe_flush(8, 0, Duration::ZERO);
        }
        assert_eq!(c.effective_depth(), Some(64));
    }

    #[test]
    fn degenerate_configs_are_clamped_sane() {
        let cfg = AdaptiveConfig {
            min_depth: 0,
            max_depth: 0,
            alpha: f64::NAN,
            brake_ratio: 0.0,
            deadline: None,
        };
        let mut c = FlushController::new(FlushPolicy::Adaptive(cfg));
        assert_eq!(c.effective_depth(), Some(1));
        c.observe_flush(10, 0, Duration::from_nanos(5));
        assert_eq!(c.effective_depth(), Some(1));
    }

    #[test]
    fn queue_delay_percentiles_are_nearest_rank() {
        let delays: Vec<Duration> = (1..=100).map(Duration::from_nanos).collect();
        let qd = QueueDelay::new(delays, Duration::from_nanos(7));
        assert_eq!(qd.len(), 100);
        assert_eq!(qd.p50(), Duration::from_nanos(50));
        assert_eq!(qd.p99(), Duration::from_nanos(99));
        assert_eq!(qd.max_delay(), Duration::from_nanos(100));
        assert_eq!(qd.mean_delay(), Duration::from_nanos(50));
        assert_eq!(qd.settle(), Duration::from_nanos(7));
        let empty = QueueDelay::default();
        assert!(empty.is_empty());
        assert_eq!(empty.p99(), Duration::ZERO);
        assert_eq!(empty.mean_delay(), Duration::ZERO);
    }

    #[test]
    fn queue_delay_sorts_on_construction() {
        let qd = QueueDelay::new(
            vec![
                Duration::from_nanos(30),
                Duration::from_nanos(10),
                Duration::from_nanos(20),
            ],
            Duration::ZERO,
        );
        assert_eq!(
            qd.waits(),
            &[
                Duration::from_nanos(10),
                Duration::from_nanos(20),
                Duration::from_nanos(30)
            ]
        );
    }
}
