//! The write-ahead log: every flushed change window, durable before it
//! is applied.
//!
//! # On-disk format
//!
//! ```text
//! "DMISWAL1"                                       (8-byte magic)
//! repeated records:
//!   len: u32 LE      — payload length in bytes
//!   crc: u32 LE      — CRC-32 of the payload
//!   payload:
//!     seq:   u64 LE  — record sequence number (0, 1, 2, …)
//!     count: u64 LE  — number of changes
//!     count × change — tag byte + LE u64 operands (see the codec)
//! ```
//!
//! [`WriteAheadLog::open`] scans the records in order and **truncates**
//! the file at the first torn, checksum-failing, malformed, or
//! out-of-sequence record: whatever a crash left behind, the log it
//! reopens is a whole-record prefix of the history, and appends resume
//! from there. One record is written per
//! [`IngestSession::flush`](crate::IngestSession::flush) — *including
//! empty windows* — so the record count equals the engine's flush
//! count, which is what makes replay's epoch arithmetic exact.

use std::io;
use std::sync::Arc;

use dmis_graph::TopologyChange;

use super::codec::{crc32, put_change, put_u32, put_u64, take_change, Cursor};
use super::{StorageIo, WalSink, WAL_FILE};

const WAL_MAGIC: &[u8; 8] = b"DMISWAL1";

/// One decoded log record: a flushed change window and its sequence
/// number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalRecord {
    seq: u64,
    changes: Vec<TopologyChange>,
}

impl WalRecord {
    /// The record's sequence number (position in the log, from 0).
    #[must_use]
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// The flushed (already coalesced) change window.
    #[must_use]
    pub fn changes(&self) -> &[TopologyChange] {
        &self.changes
    }
}

/// An append-only log of flushed change windows over a [`StorageIo`].
///
/// Implements [`WalSink`], so a handle can be plugged straight into
/// [`IngestSession::set_wal_sink`](crate::IngestSession::set_wal_sink).
#[derive(Debug)]
pub struct WriteAheadLog {
    io: Arc<dyn StorageIo>,
    next_seq: u64,
}

impl WriteAheadLog {
    /// Starts a fresh, empty log, replacing any existing one.
    ///
    /// # Errors
    ///
    /// Propagates storage errors.
    pub fn create(io: Arc<dyn StorageIo>) -> io::Result<Self> {
        io.write_atomic(WAL_FILE, WAL_MAGIC)?;
        Ok(WriteAheadLog { io, next_seq: 0 })
    }

    /// Opens the existing log: scans its records, truncates the file at
    /// the first invalid byte (torn tail, checksum failure, malformed
    /// change, sequence gap), and returns the surviving records along
    /// with a handle positioned to append after them. A missing file or
    /// unrecognized magic yields a fresh empty log.
    ///
    /// # Errors
    ///
    /// Propagates storage errors; corruption is *not* an error — it is
    /// truncated away, which is the point.
    pub fn open(io: Arc<dyn StorageIo>) -> io::Result<(Self, Vec<WalRecord>)> {
        let Some(bytes) = io.read(WAL_FILE)? else {
            return Self::create(io).map(|log| (log, Vec::new()));
        };
        if bytes.len() < WAL_MAGIC.len() || &bytes[..WAL_MAGIC.len()] != WAL_MAGIC {
            return Self::create(io).map(|log| (log, Vec::new()));
        }
        let mut records = Vec::new();
        let mut pos = WAL_MAGIC.len();
        loop {
            let rest = &bytes[pos..];
            if rest.len() < 8 {
                break;
            }
            // rest.len() >= 8 was checked above, so index directly rather
            // than going through a panicking conversion.
            let len = u32::from_le_bytes([rest[0], rest[1], rest[2], rest[3]]) as usize;
            let crc = u32::from_le_bytes([rest[4], rest[5], rest[6], rest[7]]);
            if rest.len() - 8 < len {
                break; // torn tail
            }
            let payload = &rest[8..8 + len];
            if crc32(payload) != crc {
                break;
            }
            let Some(record) = decode_payload(payload, records.len() as u64) else {
                break;
            };
            records.push(record);
            pos += 8 + len;
        }
        if pos < bytes.len() {
            io.truncate(WAL_FILE, pos as u64)?;
        }
        let next_seq = records.len() as u64;
        Ok((WriteAheadLog { io, next_seq }, records))
    }

    /// Durably appends one change window; returns its sequence number.
    ///
    /// # Errors
    ///
    /// Propagates storage errors. On error the in-memory position does
    /// *not* advance: the bytes that may have landed are a torn tail
    /// the next [`Self::open`] truncates away.
    pub fn append(&mut self, changes: &[TopologyChange]) -> io::Result<u64> {
        let mut payload = Vec::with_capacity(16 + 24 * changes.len());
        put_u64(&mut payload, self.next_seq);
        put_u64(&mut payload, changes.len() as u64);
        for c in changes {
            put_change(&mut payload, c);
        }
        let mut record = Vec::with_capacity(8 + payload.len());
        put_u32(&mut record, payload.len() as u32);
        put_u32(&mut record, crc32(&payload));
        record.extend_from_slice(&payload);
        self.io.append(WAL_FILE, &record)?;
        let seq = self.next_seq;
        self.next_seq += 1;
        Ok(seq)
    }

    /// Number of records durably appended so far — equivalently, the
    /// next sequence number.
    #[must_use]
    pub fn records_persisted(&self) -> u64 {
        self.next_seq
    }
}

impl WalSink for WriteAheadLog {
    fn persist(&mut self, changes: &[TopologyChange]) -> io::Result<u64> {
        self.append(changes)
    }
}

/// Decodes one record payload, rejecting sequence numbers that don't
/// match the record's position (a gap means the bytes belong to some
/// other history — treat everything from here on as corrupt).
fn decode_payload(payload: &[u8], expected_seq: u64) -> Option<WalRecord> {
    let mut cur = Cursor::new(payload);
    let seq = cur.u64().ok()?;
    if seq != expected_seq {
        return None;
    }
    let count = cur.u64().ok()?;
    let mut changes = Vec::new();
    for _ in 0..count {
        changes.push(take_change(&mut cur).ok()?);
    }
    if !cur.is_empty() {
        return None; // trailing garbage inside a CRC-valid frame
    }
    Some(WalRecord { seq, changes })
}

#[cfg(test)]
mod tests {
    use super::super::MemIo;
    use super::*;
    use dmis_graph::NodeId;

    fn sample_batches() -> Vec<Vec<TopologyChange>> {
        vec![
            vec![
                TopologyChange::InsertEdge(NodeId(0), NodeId(1)),
                TopologyChange::DeleteEdge(NodeId(2), NodeId(3)),
            ],
            vec![], // empty flush windows are logged too
            vec![TopologyChange::InsertNode {
                id: NodeId(9),
                edges: vec![NodeId(0)],
            }],
            vec![TopologyChange::DeleteNode(NodeId(1))],
        ]
    }

    #[test]
    fn append_then_open_round_trips_every_record() {
        let store = MemIo::new();
        let mut log = WriteAheadLog::create(Arc::new(store.clone())).unwrap();
        for (i, batch) in sample_batches().iter().enumerate() {
            assert_eq!(log.append(batch).unwrap(), i as u64);
        }
        assert_eq!(log.records_persisted(), 4);

        let (reopened, records) = WriteAheadLog::open(Arc::new(store)).unwrap();
        assert_eq!(reopened.records_persisted(), 4);
        assert_eq!(records.len(), 4);
        for (i, (record, batch)) in records.iter().zip(sample_batches()).enumerate() {
            assert_eq!(record.seq(), i as u64);
            assert_eq!(record.changes(), batch);
        }
    }

    #[test]
    fn open_truncates_a_torn_tail_and_appends_resume() {
        let store = MemIo::new();
        let mut log = WriteAheadLog::create(Arc::new(store.clone())).unwrap();
        for batch in sample_batches() {
            log.append(&batch).unwrap();
        }
        let full = store.file_len(WAL_FILE).unwrap();
        store.chop(WAL_FILE, full - 3); // tear the last record

        let (mut reopened, records) = WriteAheadLog::open(Arc::new(store.clone())).unwrap();
        assert_eq!(records.len(), 3, "the torn record is gone");
        assert_eq!(reopened.records_persisted(), 3);
        assert!(store.file_len(WAL_FILE).unwrap() < full - 3);

        // The log is whole again: a new record appends cleanly at seq 3.
        assert_eq!(reopened.append(&[]).unwrap(), 3);
        let (_, records) = WriteAheadLog::open(Arc::new(store)).unwrap();
        assert_eq!(records.len(), 4);
    }

    #[test]
    fn open_truncates_at_a_flipped_bit() {
        let store = MemIo::new();
        let mut log = WriteAheadLog::create(Arc::new(store.clone())).unwrap();
        for batch in sample_batches() {
            log.append(&batch).unwrap();
        }
        // Flip one payload bit of record 1 (magic 8 + record0 + header 8
        // + 1 byte into record1's payload).
        let record0_payload = 8 + 8 + 2 * 17;
        store.corrupt(WAL_FILE, 8 + 8 + record0_payload + 8 + 1, 0x40);
        let (reopened, records) = WriteAheadLog::open(Arc::new(store)).unwrap();
        assert_eq!(records.len(), 1, "records after the flip are dropped");
        assert_eq!(reopened.records_persisted(), 1);
    }

    #[test]
    fn missing_file_and_foreign_magic_start_fresh() {
        let store = MemIo::new();
        let (log, records) = WriteAheadLog::open(Arc::new(store.clone())).unwrap();
        assert_eq!(log.records_persisted(), 0);
        assert!(records.is_empty());

        store.write_atomic(WAL_FILE, b"NOTAWAL!garbage").unwrap();
        let (log, records) = WriteAheadLog::open(Arc::new(store.clone())).unwrap();
        assert_eq!(log.records_persisted(), 0);
        assert!(records.is_empty());
        assert_eq!(store.file_len(WAL_FILE).unwrap(), WAL_MAGIC.len());
    }

    #[test]
    fn crash_at_every_byte_of_the_log_recovers_a_prefix() {
        // Build a reference log, then for every possible crash offset k,
        // keep only the first k bytes and prove open() lands on a whole
        // -record prefix — never panics, never invents a record.
        let store = MemIo::new();
        let mut log = WriteAheadLog::create(Arc::new(store.clone())).unwrap();
        for batch in sample_batches() {
            log.append(&batch).unwrap();
        }
        let full_bytes = store.read(WAL_FILE).unwrap().unwrap();
        for k in 0..=full_bytes.len() {
            let partial = MemIo::new();
            partial.write_atomic(WAL_FILE, &full_bytes[..k]).unwrap();
            let (_, records) = WriteAheadLog::open(Arc::new(partial)).unwrap();
            assert!(records.len() <= 4, "crash at {k} invented records");
            for (i, record) in records.iter().enumerate() {
                assert_eq!(record.seq(), i as u64, "crash at {k}");
                assert_eq!(record.changes(), sample_batches()[i], "crash at {k}");
            }
        }
    }
}
