//! Durability & self-healing: checkpointing, write-ahead logging, fault
//! injection, and in-memory repair.
//!
//! The engines in this crate are deterministic functions of `(graph, π,
//! RNG position)` — the greedy MIS is the *unique* fixed point for a
//! graph and priority assignment, and every receipt counter is a pure
//! consequence of the settle order. Durability exploits that directly:
//!
//! - [`Checkpoint`] serializes the full engine state (adjacency,
//!   priorities, membership witness, RNG seed + draw count, publisher
//!   epoch) into a checksummed binary image; [`Checkpoint::restore`]
//!   rebuilds a *bit-identical* engine from it, fast-forwarding the
//!   vendored RNG by the recorded draw count so future
//!   [`insert_node`](crate::DynamicMis::insert_node) calls draw the same
//!   keys the uncrashed twin would have drawn.
//! - [`WriteAheadLog`] appends every flushed change window as a
//!   length-prefixed, CRC-framed record *before* the engine applies it
//!   (log-then-publish, wired through [`WalSink`] into
//!   [`IngestSession::flush`](crate::IngestSession::flush)).
//! - [`recover`] loads the last valid checkpoint, scans the log and
//!   truncates it to the last whole record, and replays the surviving
//!   suffix through [`apply_batch`](crate::DynamicMis::apply_batch).
//!   Replay determinism makes the result checkable: the recovered MIS,
//!   flip log, receipts, and reader epoch equal the uncrashed twin's.
//! - [`StorageIo`] abstracts the byte store, mirroring the
//!   [`Clock`](crate::Clock) pattern: [`RealIo`] (directory-backed,
//!   fsync + atomic rename) in production, [`MemIo`] in tests, and
//!   [`FaultIo`] injecting torn appends and crash-at-byte-`k` on a
//!   seeded schedule.
//! - [`RepairReport`] is returned by
//!   [`verify_and_repair`](crate::DynamicMis::verify_and_repair), the
//!   *in-memory* healing tier: a full truth sweep over the counters and
//!   membership bits followed by the template's own self-stabilizing
//!   settle drain — O(k) settle work for k corrupted nodes instead of a
//!   from-scratch rebuild.
//!
//! # Failure model
//!
//! The WAL and checkpoint formats assume *crash* faults (lost or torn
//! suffixes) and *detectable* corruption (CRC mismatch): a torn record
//! truncates the log to the preceding record boundary, so recovery
//! always lands on a **prefix state** of the uncrashed history — never
//! an invented one. Undetectable in-RAM corruption (bit flips in live
//! counters or membership words) is the repair tier's job instead.

mod checkpoint;
mod codec;
mod io;
mod recover;
mod wal;

pub use checkpoint::Checkpoint;
pub use codec::CodecError;
pub use io::{FaultIo, MemIo, RealIo, StorageIo};
pub use recover::{recover, RecoverError, Recovered};
pub use wal::{WalRecord, WriteAheadLog};

use crate::UpdateReceipt;
use dmis_graph::TopologyChange;

/// File name of the checkpoint image within a [`StorageIo`] store.
pub const CHECKPOINT_FILE: &str = "checkpoint.bin";

/// File name of the write-ahead log within a [`StorageIo`] store.
pub const WAL_FILE: &str = "wal.bin";

/// SplitMix64 — the stateless mixer used to derive deterministic fault
/// schedules (crash offsets, corruption positions) from a test seed.
#[must_use]
pub fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Which engine realization a checkpoint was captured from, so
/// [`Checkpoint::restore`] can rebuild the same flavor.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EngineFlavor {
    /// [`crate::MisEngine`] — the unsharded sequential engine.
    Unsharded,
    /// [`crate::ShardedMisEngine`] (and, with a worker-thread count
    /// above one, [`crate::ParallelShardedMisEngine`], which is the
    /// sharded engine plus an execution knob).
    Sharded,
}

/// Everything beyond the graph and priorities that
/// [`Checkpoint::capture`] must persist to rebuild an engine
/// bit-identically: the realization, its layout/execution axes, the RNG
/// stream position, and the published epoch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DurabilityMeta {
    /// The engine realization the state was captured from.
    pub flavor: EngineFlavor,
    /// Shard count K (1 for the unsharded engine).
    pub shards: usize,
    /// Block length of the range partition (1 for the unsharded engine).
    pub block: u64,
    /// Worker threads per settle epoch (1 means inline execution; a
    /// value above 1 restores a [`crate::ParallelShardedMisEngine`]).
    /// Purely an execution knob — it never changes outputs.
    pub threads: usize,
    /// The seed the engine's RNG was constructed from.
    pub seed: u64,
    /// Number of priority keys drawn from the RNG since construction.
    /// Restore replays exactly this many draws so the stream position —
    /// and therefore every *future* draw — matches the original.
    pub draws: u64,
    /// The published snapshot epoch, or `None` if no reader was ever
    /// attached. Restoring at this epoch guarantees readers never
    /// observe a regressed epoch across a crash–recover cycle.
    pub epoch: Option<u64>,
}

/// Outcome of [`verify_and_repair`](crate::DynamicMis::verify_and_repair):
/// what the truth sweep found and what the healing drain cost.
///
/// The sweep recomputes every node's lower-priority-MIS-neighbor count
/// from the adjacency and the current membership, fixes divergent
/// stored counters in place, and seeds the standard settle drain with
/// every violated node. Because truthful counters plus the π-ordered
/// drain converge to the unique greedy fixed point, the healed output
/// is exactly the state an uncorrupted engine would hold — checked
/// against a twin in this crate's tests.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RepairReport {
    scanned: usize,
    counters_fixed: usize,
    memberships_violated: usize,
    adjustments: usize,
    heap_pops: usize,
    counter_updates: usize,
}

impl RepairReport {
    /// A report for a sweep that found nothing to heal.
    pub(crate) fn clean(scanned: usize) -> Self {
        RepairReport {
            scanned,
            counters_fixed: 0,
            memberships_violated: 0,
            adjustments: 0,
            heap_pops: 0,
            counter_updates: 0,
        }
    }

    /// A report for a sweep that healed, carrying the settle drain's
    /// receipt counters.
    pub(crate) fn new(
        scanned: usize,
        counters_fixed: usize,
        memberships_violated: usize,
        receipt: &UpdateReceipt,
    ) -> Self {
        RepairReport {
            scanned,
            counters_fixed,
            memberships_violated,
            adjustments: receipt.adjustments(),
            heap_pops: receipt.heap_pops(),
            counter_updates: receipt.counter_updates(),
        }
    }

    /// `true` if the sweep found no corrupted counter or membership bit.
    /// A clean pass performs no settle work and publishes no epoch.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.counters_fixed == 0 && self.memberships_violated == 0
    }

    /// Nodes examined by the truth sweep (every live node).
    #[must_use]
    pub fn scanned(&self) -> usize {
        self.scanned
    }

    /// Stored neighbor counters that diverged from the recomputed truth
    /// and were fixed in place.
    #[must_use]
    pub fn counters_fixed(&self) -> usize {
        self.counters_fixed
    }

    /// Nodes whose membership bit violated the MIS invariant against
    /// the truthful counter (`v ∈ M ⟺ no lower-priority MIS neighbor`).
    #[must_use]
    pub fn memberships_violated(&self) -> usize {
        self.memberships_violated
    }

    /// Nodes whose final output changed during healing — the repair
    /// analogue of the paper's adjustment complexity.
    #[must_use]
    pub fn adjustments(&self) -> usize {
        self.adjustments
    }

    /// Settle pops performed by the healing drain — the O(k) work term
    /// for k corrupted nodes (experiment E13's engine tier meters this
    /// against a from-scratch rebuild).
    #[must_use]
    pub fn heap_pops(&self) -> usize {
        self.heap_pops
    }

    /// Neighbor-counter updates performed, including the counters the
    /// sweep fixed directly.
    #[must_use]
    pub fn counter_updates(&self) -> usize {
        self.counter_updates
    }
}

/// A persistence hook for [`IngestSession`](crate::IngestSession): the
/// session hands every drained change window to the sink *before*
/// applying it to the engine, and fails the flush (consuming but not
/// applying the window) if the sink errors — so no published state can
/// ever be ahead of the log.
///
/// [`WriteAheadLog`] is the canonical implementation; tests substitute
/// failing sinks to pin the flush-side contract.
pub trait WalSink: std::fmt::Debug + Send {
    /// Durably records one flushed change window (possibly empty — the
    /// one-record-per-flush discipline is what keeps the log's record
    /// count equal to the engine's flush count, and therefore keeps
    /// replay's epoch arithmetic exact). Returns the record's sequence
    /// number.
    ///
    /// # Errors
    ///
    /// Any I/O error; the caller treats the window as consumed but
    /// neither logged nor applied.
    fn persist(&mut self, changes: &[TopologyChange]) -> std::io::Result<u64>;
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmis_graph::ChangeKind;

    #[test]
    fn splitmix_is_deterministic_and_spreads() {
        assert_eq!(splitmix64(1), splitmix64(1));
        assert_ne!(splitmix64(1), splitmix64(2));
        // Known vector: splitmix64 of 0 with this constant set.
        assert_eq!(splitmix64(0), 0xE220_A839_7B1D_CDAF);
    }

    #[test]
    fn repair_report_accessors() {
        let clean = RepairReport::clean(7);
        assert!(clean.is_clean());
        assert_eq!(clean.scanned(), 7);
        assert_eq!(clean.heap_pops(), 0);

        let receipt = UpdateReceipt::new(ChangeKind::EdgeInsert, vec![], 4, 9);
        let dirty = RepairReport::new(7, 2, 1, &receipt);
        assert!(!dirty.is_clean());
        assert_eq!(dirty.counters_fixed(), 2);
        assert_eq!(dirty.memberships_violated(), 1);
        assert_eq!(dirty.adjustments(), 0);
        assert_eq!(dirty.heap_pops(), 4);
        assert_eq!(dirty.counter_updates(), 9);
    }
}
