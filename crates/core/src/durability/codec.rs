//! Hand-rolled binary framing shared by the checkpoint and WAL formats.
//!
//! Everything is little-endian, length-prefixed, and guarded by CRC-32
//! (IEEE polynomial, table-driven). No external serialization crate is
//! involved: the formats are small enough that an explicit codec is both
//! auditable and corruption-testable byte by byte.

use std::fmt;

use dmis_graph::{NodeId, TopologyChange};

/// Why a byte buffer failed to decode.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodecError {
    /// The buffer ended in the middle of a structure.
    Truncated,
    /// The file preamble does not match the expected magic bytes.
    BadMagic,
    /// A frame or record checksum did not match its payload.
    Checksum,
    /// An unknown tag byte where a known discriminant was required.
    BadTag(u8),
    /// The bytes decoded, but describe an internally inconsistent state
    /// (e.g. a priority entry for a node the graph section omits).
    Inconsistent(&'static str),
}

impl fmt::Display for CodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "buffer ended mid-structure"),
            CodecError::BadMagic => write!(f, "bad magic preamble"),
            CodecError::Checksum => write!(f, "checksum mismatch"),
            CodecError::BadTag(t) => write!(f, "unknown tag byte {t:#04x}"),
            CodecError::Inconsistent(what) => write!(f, "inconsistent image: {what}"),
        }
    }
}

impl std::error::Error for CodecError {}

const fn build_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0usize;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = build_crc_table();

/// CRC-32 (IEEE 802.3 polynomial) over `bytes`.
pub(crate) fn crc32(bytes: &[u8]) -> u32 {
    let mut c = 0xFFFF_FFFFu32;
    for &b in bytes {
        c = CRC_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8);
    }
    c ^ 0xFFFF_FFFF
}

pub(crate) fn put_u8(out: &mut Vec<u8>, v: u8) {
    out.push(v);
}

pub(crate) fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

pub(crate) fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

/// A bounds-checked little-endian reader over a byte slice. Every take
/// returns [`CodecError::Truncated`] instead of panicking, so arbitrary
/// (fault-injected) bytes can be fed through the decoders safely.
pub(crate) struct Cursor<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Cursor<'a> {
    pub(crate) fn new(buf: &'a [u8]) -> Self {
        Cursor { buf, pos: 0 }
    }

    pub(crate) fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    pub(crate) fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    pub(crate) fn take(&mut self, n: usize) -> Result<&'a [u8], CodecError> {
        if self.remaining() < n {
            return Err(CodecError::Truncated);
        }
        let slice = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(slice)
    }

    /// Current read offset — pair with [`Self::raw`] to checksum a span
    /// that was just taken.
    pub(crate) fn pos(&self) -> usize {
        self.pos
    }

    /// The raw bytes between two previously observed offsets.
    pub(crate) fn raw(&self, from: usize, to: usize) -> &'a [u8] {
        &self.buf[from..to]
    }

    pub(crate) fn u8(&mut self) -> Result<u8, CodecError> {
        Ok(self.take(1)?[0])
    }

    pub(crate) fn u32(&mut self) -> Result<u32, CodecError> {
        let b = self.take(4)?;
        let bytes: [u8; 4] = b.try_into().map_err(|_| CodecError::Truncated)?;
        Ok(u32::from_le_bytes(bytes))
    }

    pub(crate) fn u64(&mut self) -> Result<u64, CodecError> {
        let b = self.take(8)?;
        let bytes: [u8; 8] = b.try_into().map_err(|_| CodecError::Truncated)?;
        Ok(u64::from_le_bytes(bytes))
    }
}

const TAG_INSERT_EDGE: u8 = 0;
const TAG_DELETE_EDGE: u8 = 1;
const TAG_INSERT_NODE: u8 = 2;
const TAG_DELETE_NODE: u8 = 3;

/// Appends one topology change to `out`: a tag byte followed by the
/// operand identifiers as little-endian `u64`s (`InsertNode` carries a
/// neighbor count before its neighbor list).
pub(crate) fn put_change(out: &mut Vec<u8>, change: &TopologyChange) {
    match change {
        TopologyChange::InsertEdge(u, v) => {
            put_u8(out, TAG_INSERT_EDGE);
            put_u64(out, u.index());
            put_u64(out, v.index());
        }
        TopologyChange::DeleteEdge(u, v) => {
            put_u8(out, TAG_DELETE_EDGE);
            put_u64(out, u.index());
            put_u64(out, v.index());
        }
        TopologyChange::InsertNode { id, edges } => {
            put_u8(out, TAG_INSERT_NODE);
            put_u64(out, id.index());
            put_u64(out, edges.len() as u64);
            for e in edges {
                put_u64(out, e.index());
            }
        }
        TopologyChange::DeleteNode(v) => {
            put_u8(out, TAG_DELETE_NODE);
            put_u64(out, v.index());
        }
    }
}

/// Decodes one topology change from the cursor.
pub(crate) fn take_change(cur: &mut Cursor<'_>) -> Result<TopologyChange, CodecError> {
    match cur.u8()? {
        TAG_INSERT_EDGE => Ok(TopologyChange::InsertEdge(
            NodeId(cur.u64()?),
            NodeId(cur.u64()?),
        )),
        TAG_DELETE_EDGE => Ok(TopologyChange::DeleteEdge(
            NodeId(cur.u64()?),
            NodeId(cur.u64()?),
        )),
        TAG_INSERT_NODE => {
            let id = NodeId(cur.u64()?);
            let count = cur.u64()?;
            // A hostile count must not trigger a huge allocation before
            // the takes below catch the truncation: 8 bytes per entry
            // bounds what the buffer could actually hold.
            if count > (cur.remaining() as u64) / 8 {
                return Err(CodecError::Truncated);
            }
            let mut edges = Vec::with_capacity(count as usize);
            for _ in 0..count {
                edges.push(NodeId(cur.u64()?));
            }
            Ok(TopologyChange::InsertNode { id, edges })
        }
        TAG_DELETE_NODE => Ok(TopologyChange::DeleteNode(NodeId(cur.u64()?))),
        tag => Err(CodecError::BadTag(tag)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_the_ieee_check_value() {
        // The standard check vector for CRC-32/IEEE.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn changes_round_trip() {
        let changes = [
            TopologyChange::InsertEdge(NodeId(3), NodeId(9)),
            TopologyChange::DeleteEdge(NodeId(0), NodeId(1)),
            TopologyChange::InsertNode {
                id: NodeId(12),
                edges: vec![NodeId(2), NodeId(7)],
            },
            TopologyChange::DeleteNode(NodeId(5)),
        ];
        let mut buf = Vec::new();
        for c in &changes {
            put_change(&mut buf, c);
        }
        let mut cur = Cursor::new(&buf);
        for c in &changes {
            assert_eq!(&take_change(&mut cur).unwrap(), c);
        }
        assert!(cur.is_empty());
    }

    #[test]
    fn truncation_is_an_error_never_a_panic() {
        let mut buf = Vec::new();
        put_change(
            &mut buf,
            &TopologyChange::InsertNode {
                id: NodeId(4),
                edges: vec![NodeId(1), NodeId(2), NodeId(3)],
            },
        );
        for cut in 0..buf.len() {
            let mut cur = Cursor::new(&buf[..cut]);
            assert_eq!(
                take_change(&mut cur),
                Err(CodecError::Truncated),
                "cut={cut}"
            );
        }
    }

    #[test]
    fn hostile_length_prefix_does_not_allocate() {
        let mut buf = Vec::new();
        put_u8(&mut buf, 2); // InsertNode
        put_u64(&mut buf, 1); // id
        put_u64(&mut buf, u64::MAX); // absurd neighbor count
        let mut cur = Cursor::new(&buf);
        assert_eq!(take_change(&mut cur), Err(CodecError::Truncated));
    }

    #[test]
    fn unknown_tags_are_rejected() {
        let mut cur = Cursor::new(&[0x7F]);
        assert_eq!(take_change(&mut cur), Err(CodecError::BadTag(0x7F)));
    }
}
