//! Injectable byte storage: the durability analogue of the
//! [`Clock`](crate::Clock) pattern.
//!
//! The checkpoint and WAL code talk to a [`StorageIo`] trait object, so
//! the same recovery logic runs against a real directory ([`RealIo`]),
//! an in-memory map ([`MemIo`] — fast, deterministic tests), or a
//! fault-injecting wrapper ([`FaultIo`] — torn appends and
//! crash-at-byte-`k` on a seeded schedule). Because [`MemIo`] handles
//! share their backing store on [`Clone`], a test can keep one handle,
//! wrap another in [`FaultIo`], crash the writer, and then recover from
//! the surviving bytes exactly as a restarted process would from disk.

use std::collections::HashMap;
use std::fmt;
use std::io::{self, Write};
use std::path::PathBuf;
use std::sync::{Arc, Mutex};

/// A minimal named-file byte store, injectable like
/// [`Clock`](crate::Clock): the durability code never touches the
/// filesystem directly, so tests control every byte that "reaches
/// disk" — including the bytes that *don't* when a fault fires.
pub trait StorageIo: fmt::Debug + Send + Sync {
    /// Reads the full contents of `name`, or `None` if it does not
    /// exist.
    ///
    /// # Errors
    ///
    /// Any underlying I/O error (absence is `Ok(None)`, not an error).
    fn read(&self, name: &str) -> io::Result<Option<Vec<u8>>>;

    /// Replaces `name` with `bytes` atomically: after a crash the file
    /// holds either the old contents or the new, never a mixture.
    ///
    /// # Errors
    ///
    /// Any underlying I/O error; on error the old contents survive.
    fn write_atomic(&self, name: &str, bytes: &[u8]) -> io::Result<()>;

    /// Appends `bytes` to `name`, creating it empty first if absent.
    ///
    /// # Errors
    ///
    /// Any underlying I/O error. A failed append may leave a *prefix*
    /// of `bytes` durable (a torn write) — the WAL's record framing is
    /// what makes that detectable.
    fn append(&self, name: &str, bytes: &[u8]) -> io::Result<()>;

    /// Shortens `name` to `len` bytes (no-op if already shorter).
    ///
    /// # Errors
    ///
    /// Any underlying I/O error, including the file not existing.
    fn truncate(&self, name: &str, len: u64) -> io::Result<()>;
}

/// Directory-backed [`StorageIo`]: the production implementation used
/// by `mis_serve --checkpoint-dir`. Writes are fsynced; whole-file
/// replacement goes through a temp file + rename so a crash mid-write
/// never corrupts the previous image.
#[derive(Debug, Clone)]
pub struct RealIo {
    dir: PathBuf,
}

impl RealIo {
    /// Opens (creating if needed) `dir` as the backing directory.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures.
    pub fn new(dir: impl Into<PathBuf>) -> io::Result<Self> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        Ok(RealIo { dir })
    }

    fn path(&self, name: &str) -> PathBuf {
        self.dir.join(name)
    }
}

impl StorageIo for RealIo {
    fn read(&self, name: &str) -> io::Result<Option<Vec<u8>>> {
        match std::fs::read(self.path(name)) {
            Ok(bytes) => Ok(Some(bytes)),
            Err(e) if e.kind() == io::ErrorKind::NotFound => Ok(None),
            Err(e) => Err(e),
        }
    }

    fn write_atomic(&self, name: &str, bytes: &[u8]) -> io::Result<()> {
        let tmp = self.path(&format!("{name}.tmp"));
        {
            let mut f = std::fs::File::create(&tmp)?;
            f.write_all(bytes)?;
            f.sync_all()?;
        }
        std::fs::rename(&tmp, self.path(name))
    }

    fn append(&self, name: &str, bytes: &[u8]) -> io::Result<()> {
        let mut f = std::fs::OpenOptions::new()
            .create(true)
            .append(true)
            .open(self.path(name))?;
        f.write_all(bytes)?;
        f.sync_all()
    }

    fn truncate(&self, name: &str, len: u64) -> io::Result<()> {
        let f = std::fs::OpenOptions::new()
            .write(true)
            .open(self.path(name))?;
        f.set_len(len)
    }
}

/// In-memory [`StorageIo`] for tests. [`Clone`] *shares* the backing
/// store (two handles see the same files — the crash-drill pattern);
/// [`MemIo::fork`] deep-copies it (an independent store, e.g. a twin's).
#[derive(Debug, Clone, Default)]
pub struct MemIo {
    files: Arc<Mutex<HashMap<String, Vec<u8>>>>,
}

impl MemIo {
    /// An empty store.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// An independent deep copy of the current contents.
    #[must_use]
    pub fn fork(&self) -> Self {
        let files = self.files.lock().expect("MemIo lock poisoned").clone();
        MemIo {
            files: Arc::new(Mutex::new(files)),
        }
    }

    /// Current length of `name` in bytes, or `None` if absent.
    #[must_use]
    pub fn file_len(&self, name: &str) -> Option<usize> {
        self.files
            .lock()
            .expect("MemIo lock poisoned")
            .get(name)
            .map(Vec::len)
    }

    /// XORs `mask` into the byte at `offset` of `name` — a targeted bit
    /// flip for corruption tests. Returns `false` if the file is absent
    /// or shorter than `offset`.
    pub fn corrupt(&self, name: &str, offset: usize, mask: u8) -> bool {
        let mut files = self.files.lock().expect("MemIo lock poisoned");
        match files.get_mut(name) {
            Some(bytes) if offset < bytes.len() => {
                bytes[offset] ^= mask;
                true
            }
            _ => false,
        }
    }

    /// Truncates `name` to `len` bytes without going through the trait —
    /// simulates a torn tail regardless of record framing. Returns
    /// `false` if the file is absent.
    pub fn chop(&self, name: &str, len: usize) -> bool {
        let mut files = self.files.lock().expect("MemIo lock poisoned");
        match files.get_mut(name) {
            Some(bytes) => {
                bytes.truncate(len);
                true
            }
            None => false,
        }
    }
}

impl StorageIo for MemIo {
    fn read(&self, name: &str) -> io::Result<Option<Vec<u8>>> {
        Ok(self
            .files
            .lock()
            .expect("MemIo lock poisoned")
            .get(name)
            .cloned())
    }

    fn write_atomic(&self, name: &str, bytes: &[u8]) -> io::Result<()> {
        self.files
            .lock()
            .expect("MemIo lock poisoned")
            .insert(name.to_owned(), bytes.to_vec());
        Ok(())
    }

    fn append(&self, name: &str, bytes: &[u8]) -> io::Result<()> {
        self.files
            .lock()
            .expect("MemIo lock poisoned")
            .entry(name.to_owned())
            .or_default()
            .extend_from_slice(bytes);
        Ok(())
    }

    fn truncate(&self, name: &str, len: u64) -> io::Result<()> {
        let mut files = self.files.lock().expect("MemIo lock poisoned");
        match files.get_mut(name) {
            Some(bytes) => {
                bytes.truncate(usize::try_from(len).unwrap_or(usize::MAX));
                Ok(())
            }
            None => Err(io::Error::new(
                io::ErrorKind::NotFound,
                format!("no such file: {name}"),
            )),
        }
    }
}

fn injected_crash() -> io::Error {
    io::Error::other("injected crash: write budget exhausted")
}

/// Fault-injecting [`StorageIo`]: forwards to an inner [`MemIo`] until
/// a byte budget runs out, then "crashes" — the budget-exceeding append
/// lands only a *prefix* (a torn write), and every later operation
/// fails persistently, exactly as if the process had died. Recovery
/// tests then reopen the surviving inner store through a retained
/// [`MemIo`] clone.
///
/// Deriving the budget from a seed (e.g. [`splitmix64`](super::splitmix64)
/// modulo the log length) sweeps the crash point across record
/// boundaries and record interiors deterministically.
#[derive(Debug)]
pub struct FaultIo {
    inner: MemIo,
    state: Mutex<FaultState>,
}

#[derive(Debug)]
struct FaultState {
    budget: u64,
    crashed: bool,
}

impl FaultIo {
    /// Wraps `inner`, allowing exactly `budget` more bytes of durable
    /// writes before the simulated crash.
    #[must_use]
    pub fn crash_after(inner: MemIo, budget: u64) -> Self {
        FaultIo {
            inner,
            state: Mutex::new(FaultState {
                budget,
                crashed: false,
            }),
        }
    }

    /// `true` once the budget has been exhausted and the simulated
    /// process is dead.
    #[must_use]
    pub fn crashed(&self) -> bool {
        self.state.lock().expect("FaultIo lock poisoned").crashed
    }
}

impl StorageIo for FaultIo {
    fn read(&self, name: &str) -> io::Result<Option<Vec<u8>>> {
        if self.crashed() {
            return Err(injected_crash());
        }
        self.inner.read(name)
    }

    fn write_atomic(&self, name: &str, bytes: &[u8]) -> io::Result<()> {
        let mut state = self.state.lock().expect("FaultIo lock poisoned");
        if state.crashed {
            return Err(injected_crash());
        }
        let len = bytes.len() as u64;
        if state.budget < len {
            // Atomic replacement mid-crash: the *old* contents survive
            // intact — nothing of the new image lands.
            state.crashed = true;
            state.budget = 0;
            return Err(injected_crash());
        }
        state.budget -= len;
        self.inner.write_atomic(name, bytes)
    }

    fn append(&self, name: &str, bytes: &[u8]) -> io::Result<()> {
        let mut state = self.state.lock().expect("FaultIo lock poisoned");
        if state.crashed {
            return Err(injected_crash());
        }
        let len = bytes.len() as u64;
        if state.budget < len {
            // Torn write: only the prefix that fit the budget becomes
            // durable, then the process dies.
            let keep = usize::try_from(state.budget).expect("budget below len fits usize");
            self.inner
                .append(name, &bytes[..keep])
                .expect("MemIo append is infallible");
            state.crashed = true;
            state.budget = 0;
            return Err(injected_crash());
        }
        state.budget -= len;
        self.inner.append(name, bytes)
    }

    fn truncate(&self, name: &str, len: u64) -> io::Result<()> {
        if self.crashed() {
            return Err(injected_crash());
        }
        self.inner.truncate(name, len)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mem_io_round_trips_and_clone_shares() {
        let io = MemIo::new();
        assert_eq!(io.read("a").unwrap(), None);
        io.write_atomic("a", b"hello").unwrap();
        io.append("a", b" world").unwrap();
        assert_eq!(io.read("a").unwrap().unwrap(), b"hello world");

        let alias = io.clone();
        alias.truncate("a", 5).unwrap();
        assert_eq!(io.read("a").unwrap().unwrap(), b"hello");

        let fork = io.fork();
        fork.append("a", b"!").unwrap();
        assert_eq!(io.read("a").unwrap().unwrap(), b"hello");
        assert_eq!(fork.read("a").unwrap().unwrap(), b"hello!");
    }

    #[test]
    fn mem_io_corruption_helpers() {
        let io = MemIo::new();
        io.write_atomic("f", &[0x00, 0xFF]).unwrap();
        assert!(io.corrupt("f", 1, 0x01));
        assert_eq!(io.read("f").unwrap().unwrap(), vec![0x00, 0xFE]);
        assert!(!io.corrupt("f", 9, 0x01));
        assert!(io.chop("f", 1));
        assert_eq!(io.file_len("f"), Some(1));
        assert!(io.truncate("missing", 0).is_err());
    }

    #[test]
    fn fault_io_tears_the_over_budget_append_and_stays_dead() {
        let store = MemIo::new();
        let io = FaultIo::crash_after(store.clone(), 10);
        io.append("wal", b"12345678").unwrap(); // 8 of 10 spent
        let err = io.append("wal", b"abcdef").unwrap_err();
        assert_eq!(err.to_string(), injected_crash().to_string());
        assert!(io.crashed());
        // Torn: exactly the 2 budgeted bytes of the failed append landed.
        assert_eq!(store.read("wal").unwrap().unwrap(), b"12345678ab");
        // Dead is dead: every later operation fails.
        assert!(io.read("wal").is_err());
        assert!(io.append("wal", b"x").is_err());
        assert!(io.write_atomic("ckp", b"y").is_err());
        assert_eq!(store.read("wal").unwrap().unwrap(), b"12345678ab");
    }

    #[test]
    fn fault_io_atomic_write_crash_preserves_the_old_image() {
        let store = MemIo::new();
        store.write_atomic("ckp", b"old").unwrap();
        let io = FaultIo::crash_after(store.clone(), 2);
        assert!(io.write_atomic("ckp", b"new-image").is_err());
        assert_eq!(store.read("ckp").unwrap().unwrap(), b"old");
    }

    #[test]
    fn real_io_round_trips_in_a_temp_dir() {
        let dir = std::env::temp_dir().join(format!(
            "dmis-io-test-{}-{:?}",
            std::process::id(),
            std::thread::current().id()
        ));
        let io = RealIo::new(&dir).unwrap();
        assert_eq!(io.read("f").unwrap(), None);
        io.write_atomic("f", b"alpha").unwrap();
        io.append("f", b"beta").unwrap();
        assert_eq!(io.read("f").unwrap().unwrap(), b"alphabeta");
        io.truncate("f", 5).unwrap();
        assert_eq!(io.read("f").unwrap().unwrap(), b"alpha");
        io.write_atomic("f", b"gamma").unwrap();
        assert_eq!(io.read("f").unwrap().unwrap(), b"gamma");
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
