//! Crash recovery: checkpoint + WAL suffix ⟶ a bit-identical engine.
//!
//! [`recover`] is the whole restart story: load the last valid
//! [`Checkpoint`], open the [`WriteAheadLog`] (which scans and
//! truncates any torn tail), and replay every surviving record at or
//! after the checkpoint's sequence number through
//! [`apply_batch`](crate::DynamicMis::apply_batch). Because the engine
//! is a deterministic function of `(graph, π, RNG position)` and the
//! log holds the *coalesced* windows in flush order, replay reproduces
//! the uncrashed run exactly — same MIS, same flip log, same receipt
//! counters, and (one log record per flush, one published epoch per
//! applied batch) the same reader epoch. Whatever byte the crash
//! happened at, the recovered state is some *prefix* of the true
//! history — never an invented state — and the log-then-publish flush
//! ordering guarantees that prefix is at or ahead of anything a reader
//! ever observed.

use std::fmt;
use std::sync::Arc;

use dmis_graph::GraphError;

use super::{Checkpoint, CodecError, StorageIo, WalRecord, WriteAheadLog};
use crate::api::DynamicMis;
use crate::BatchReceipt;

/// Why a recovery attempt failed. Corruption *within* the WAL is not a
/// failure (it is truncated away); these are the conditions recovery
/// cannot talk its way around.
#[derive(Debug)]
pub enum RecoverError {
    /// The storage layer itself failed.
    Io(std::io::Error),
    /// The checkpoint image exists but does not decode.
    Corrupt(CodecError),
    /// No checkpoint image exists — there is nothing to anchor replay.
    MissingCheckpoint,
    /// The restored engine's recomputed MIS differs from the captured
    /// witness: the image is internally consistent but wrong.
    Witness,
    /// A logged change was rejected during replay — the log and the
    /// checkpoint disagree about the graph they describe.
    Replay(GraphError),
}

impl fmt::Display for RecoverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            RecoverError::Io(e) => write!(f, "storage failed during recovery: {e}"),
            RecoverError::Corrupt(e) => write!(f, "checkpoint image is corrupt: {e}"),
            RecoverError::MissingCheckpoint => write!(f, "no checkpoint to recover from"),
            RecoverError::Witness => {
                write!(f, "restored MIS does not match the checkpoint witness")
            }
            RecoverError::Replay(e) => write!(f, "WAL replay rejected a logged change: {e}"),
        }
    }
}

impl std::error::Error for RecoverError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RecoverError::Io(e) => Some(e),
            RecoverError::Corrupt(e) => Some(e),
            RecoverError::Replay(e) => Some(e),
            RecoverError::MissingCheckpoint | RecoverError::Witness => None,
        }
    }
}

/// The outcome of a successful [`recover`]: a live engine caught up to
/// the durable history, plus the reopened log ready for new appends.
pub struct Recovered {
    /// The restored engine, checkpoint state plus the replayed WAL
    /// suffix — bit-identical to the uncrashed twin at the same point.
    pub engine: Box<dyn DynamicMis + Send>,
    /// The write-ahead log, truncated to whole records and positioned
    /// to append the next flush.
    pub wal: WriteAheadLog,
    /// The WAL sequence number the checkpoint was consistent with
    /// (records below it were already reflected and skipped).
    pub checkpoint_seq: u64,
    /// Number of WAL records replayed on top of the checkpoint.
    pub replayed: usize,
    /// The receipts of the replayed batches, in log order — replay is
    /// deterministic, so these equal the receipts the uncrashed run
    /// produced for the same flushes.
    pub receipts: Vec<BatchReceipt>,
}

impl fmt::Debug for Recovered {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Recovered")
            .field("meta", &self.engine.durability_meta())
            .field("wal", &self.wal)
            .field("checkpoint_seq", &self.checkpoint_seq)
            .field("replayed", &self.replayed)
            .finish_non_exhaustive()
    }
}

/// Recovers engine state from `io`: last valid checkpoint, then the
/// surviving WAL suffix.
///
/// # Errors
///
/// See [`RecoverError`]; notably a *torn or corrupted WAL tail is not
/// an error* — it is truncated to the last whole record and the intact
/// prefix is replayed.
pub fn recover(io: Arc<dyn StorageIo>) -> Result<Recovered, RecoverError> {
    let checkpoint = Checkpoint::load(io.as_ref())?.ok_or(RecoverError::MissingCheckpoint)?;
    let mut engine = checkpoint.restore()?;
    let (wal, records) = WriteAheadLog::open(io).map_err(RecoverError::Io)?;
    let checkpoint_seq = checkpoint.wal_seq();
    let mut receipts = Vec::new();
    for record in records.iter().filter(|r| r.seq() >= checkpoint_seq) {
        receipts.push(replay(engine.as_mut(), record)?);
    }
    Ok(Recovered {
        engine,
        wal,
        checkpoint_seq,
        replayed: receipts.len(),
        receipts,
    })
}

fn replay(engine: &mut dyn DynamicMis, record: &WalRecord) -> Result<BatchReceipt, RecoverError> {
    engine
        .apply_batch(record.changes())
        .map_err(RecoverError::Replay)
}

#[cfg(test)]
mod tests {
    use super::super::{FaultIo, MemIo};
    use super::*;
    use crate::Engine;
    use dmis_graph::stream::{self, ChurnConfig};
    use dmis_graph::TopologyChange;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Drives `changes` seeded changes through a fresh engine, logging
    /// one record per change, checkpointing at `ckp_every`; returns the
    /// shared store and the final twin state.
    fn run_logged(
        store: &MemIo,
        changes: usize,
        ckp_every: usize,
    ) -> std::collections::BTreeSet<dmis_graph::NodeId> {
        let io: Arc<dyn StorageIo> = Arc::new(store.clone());
        let mut engine = Engine::builder().seed(5).build_unsharded();
        let mut wal = WriteAheadLog::create(Arc::clone(&io)).unwrap();
        Checkpoint::capture(&engine, 0).save(io.as_ref()).unwrap();
        let mut rng = StdRng::seed_from_u64(99);
        let mut made = 0usize;
        while made < changes {
            let change = stream::random_change(engine.graph(), &ChurnConfig::default(), &mut rng)
                .unwrap_or(TopologyChange::InsertNode {
                    id: engine.graph().peek_next_id(),
                    edges: vec![],
                });
            let batch = [change];
            wal.append(&batch).unwrap();
            engine.apply_batch(&batch).unwrap();
            made += 1;
            if made.is_multiple_of(ckp_every) {
                Checkpoint::capture(&engine, wal.records_persisted())
                    .save(io.as_ref())
                    .unwrap();
            }
        }
        engine.mis()
    }

    #[test]
    fn recover_replays_the_suffix_to_the_twin_state() {
        let store = MemIo::new();
        let twin_mis = run_logged(&store, 60, 16);
        let recovered = recover(Arc::new(store)).unwrap();
        assert_eq!(recovered.engine.mis(), twin_mis);
        assert_eq!(recovered.checkpoint_seq, 48);
        assert_eq!(recovered.replayed, 12);
        assert_eq!(recovered.wal.records_persisted(), 60);
    }

    #[test]
    fn missing_checkpoint_is_a_loud_error() {
        let err = recover(Arc::new(MemIo::new())).unwrap_err();
        assert!(matches!(err, RecoverError::MissingCheckpoint));
        assert!(err.to_string().contains("no checkpoint"));
    }

    #[test]
    fn crash_during_logging_recovers_a_prefix_and_resumes() {
        // Learn the full log length, then crash a fresh run at a seeded
        // byte offset and prove recovery lands on a replayable state.
        let probe = MemIo::new();
        let _ = run_logged(&probe, 40, 8);
        let full = probe.file_len(super::super::WAL_FILE).unwrap() as u64;

        for seed in 1..=5u64 {
            let budget = super::super::splitmix64(seed) % full;
            let store = MemIo::new();
            let faulty: Arc<dyn StorageIo> = Arc::new(FaultIo::crash_after(store.clone(), budget));
            // Re-drive the same deterministic run until the crash fires.
            let mut engine = Engine::builder().seed(5).build_unsharded();
            let mut wal = match WriteAheadLog::create(Arc::clone(&faulty)) {
                Ok(wal) => wal,
                Err(_) => continue, // crashed before the log even existed
            };
            let _ = Checkpoint::capture(&engine, 0).save(faulty.as_ref());
            let mut rng = StdRng::seed_from_u64(99);
            for _ in 0..40 {
                let change =
                    stream::random_change(engine.graph(), &ChurnConfig::default(), &mut rng)
                        .unwrap_or(TopologyChange::InsertNode {
                            id: engine.graph().peek_next_id(),
                            edges: vec![],
                        });
                let batch = [change];
                if wal.append(&batch).is_err() {
                    break; // crashed: the unlogged window is lost
                }
                engine.apply_batch(&batch).unwrap();
            }
            // The surviving bytes may or may not include a checkpoint
            // (the initial save competes with the byte budget too).
            match recover(Arc::new(store.fork())) {
                Ok(recovered) => {
                    // Re-derive the twin at the recovered record count.
                    let n = recovered.wal.records_persisted() as usize;
                    let twin_store = MemIo::new();
                    let twin_mis = run_logged(&twin_store, n.max(1), usize::MAX);
                    if n > 0 {
                        assert_eq!(recovered.engine.mis(), twin_mis, "seed={seed}");
                    }
                }
                Err(RecoverError::MissingCheckpoint) => {} // crashed too early
                Err(e) => panic!("seed={seed}: unexpected recovery failure: {e}"),
            }
        }
    }
}
