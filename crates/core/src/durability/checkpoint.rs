//! Checksummed binary checkpoints of full engine state.
//!
//! # On-disk format
//!
//! ```text
//! "DMISCKP1"                                  (8-byte magic)
//! four frames, in this order, each:
//!   tag: u8 | len: u64 LE | payload | crc: u32 LE   (CRC over tag+len+payload)
//!
//! META  (tag 1): flavor u8, shards u64, block u64, threads u64,
//!                seed u64, draws u64, epoch flag u8 (+ epoch u64),
//!                wal_seq u64
//! GRAPH (tag 2): next_id u64, node count + ids, edge count + (u,v) pairs
//! PRIO  (tag 3): count + (id, key) pairs
//! MIS   (tag 4): count + member ids — the corruption witness
//! ```
//!
//! The rank spine is deliberately *not* serialized: it is a pure
//! function of the priorities ([`RankIndex::from_priorities`]
//! (crate::RankIndex::from_priorities) inside engine construction), so
//! persisting it would only add bytes and a second copy to corrupt.
//! Likewise the membership is rebuilt by running greedy from the graph
//! and priorities — the MIS frame exists purely as a **witness**:
//! [`Checkpoint::restore`] recomputes the unique greedy fixed point and
//! refuses ([`RecoverError::Witness`]) if it differs from what was
//! captured, turning any logic or codec drift into a loud error instead
//! of a silently different output.

use std::collections::{BTreeSet, HashSet};
use std::io;

use dmis_graph::{DynGraph, EdgeKey, NodeId, ShardLayout};

use super::codec::{crc32, put_u32, put_u64, put_u8, CodecError, Cursor};
use super::recover::RecoverError;
use super::{DurabilityMeta, EngineFlavor, StorageIo, CHECKPOINT_FILE};
use crate::api::DynamicMis;
use crate::{MisEngine, ParallelShardedMisEngine, Priority, PriorityMap, ShardedMisEngine};

const CKP_MAGIC: &[u8; 8] = b"DMISCKP1";

const TAG_META: u8 = 1;
const TAG_GRAPH: u8 = 2;
const TAG_PRIO: u8 = 3;
const TAG_MIS: u8 = 4;

const FLAVOR_UNSHARDED: u8 = 0;
const FLAVOR_SHARDED: u8 = 1;

/// A decoded (or freshly captured) image of full engine state, plus the
/// WAL sequence number it is consistent with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Checkpoint {
    meta: DurabilityMeta,
    wal_seq: u64,
    next_id: u64,
    nodes: Vec<u64>,
    edges: Vec<(u64, u64)>,
    priorities: Vec<(u64, u64)>,
    mis: Vec<u64>,
}

impl Checkpoint {
    /// Captures the engine's full state. `wal_seq` records how many WAL
    /// records are already reflected in this state, so recovery knows
    /// where replay starts: a checkpoint taken right after the `k`-th
    /// logged flush is captured with `wal_seq = k`.
    #[must_use]
    pub fn capture(engine: &dyn DynamicMis, wal_seq: u64) -> Self {
        let g = engine.graph();
        Checkpoint {
            meta: engine.durability_meta(),
            wal_seq,
            next_id: g.peek_next_id().index(),
            nodes: g.nodes().map(NodeId::index).collect(),
            edges: g
                .edges()
                .map(EdgeKey::endpoints)
                .map(|(u, v)| (u.index(), v.index()))
                .collect(),
            priorities: engine
                .priorities()
                .iter()
                .map(|(id, p)| (id.index(), p.key()))
                .collect(),
            mis: engine.mis_iter().map(NodeId::index).collect(),
        }
    }

    /// The captured engine metadata (flavor, layout, RNG position,
    /// epoch).
    #[must_use]
    pub fn meta(&self) -> DurabilityMeta {
        self.meta
    }

    /// Number of WAL records already reflected in this state — the
    /// sequence number replay resumes from.
    #[must_use]
    pub fn wal_seq(&self) -> u64 {
        self.wal_seq
    }

    /// Serializes to the framed binary format.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(
            64 + 8 * self.nodes.len()
                + 16 * self.edges.len()
                + 16 * self.priorities.len()
                + 8 * self.mis.len(),
        );
        out.extend_from_slice(CKP_MAGIC);

        let mut meta = Vec::with_capacity(64);
        put_u8(
            &mut meta,
            match self.meta.flavor {
                EngineFlavor::Unsharded => FLAVOR_UNSHARDED,
                EngineFlavor::Sharded => FLAVOR_SHARDED,
            },
        );
        put_u64(&mut meta, self.meta.shards as u64);
        put_u64(&mut meta, self.meta.block);
        put_u64(&mut meta, self.meta.threads as u64);
        put_u64(&mut meta, self.meta.seed);
        put_u64(&mut meta, self.meta.draws);
        match self.meta.epoch {
            Some(e) => {
                put_u8(&mut meta, 1);
                put_u64(&mut meta, e);
            }
            None => put_u8(&mut meta, 0),
        }
        put_u64(&mut meta, self.wal_seq);
        put_frame(&mut out, TAG_META, &meta);

        let mut graph = Vec::with_capacity(24 + 8 * self.nodes.len() + 16 * self.edges.len());
        put_u64(&mut graph, self.next_id);
        put_u64(&mut graph, self.nodes.len() as u64);
        for &v in &self.nodes {
            put_u64(&mut graph, v);
        }
        put_u64(&mut graph, self.edges.len() as u64);
        for &(u, v) in &self.edges {
            put_u64(&mut graph, u);
            put_u64(&mut graph, v);
        }
        put_frame(&mut out, TAG_GRAPH, &graph);

        let mut prio = Vec::with_capacity(8 + 16 * self.priorities.len());
        put_u64(&mut prio, self.priorities.len() as u64);
        for &(id, key) in &self.priorities {
            put_u64(&mut prio, id);
            put_u64(&mut prio, key);
        }
        put_frame(&mut out, TAG_PRIO, &prio);

        let mut mis = Vec::with_capacity(8 + 8 * self.mis.len());
        put_u64(&mut mis, self.mis.len() as u64);
        for &v in &self.mis {
            put_u64(&mut mis, v);
        }
        put_frame(&mut out, TAG_MIS, &mis);

        out
    }

    /// Decodes and fully vets a checkpoint image: magic, per-frame
    /// CRCs, tag order, and internal consistency (priorities cover the
    /// node set exactly; the witness is a subset of the nodes). Designed
    /// to reject arbitrary corrupted bytes with an error, never a panic
    /// or a huge allocation.
    ///
    /// # Errors
    ///
    /// The specific [`CodecError`] describing the first defect found.
    pub fn decode(bytes: &[u8]) -> Result<Self, CodecError> {
        if bytes.len() < CKP_MAGIC.len() {
            return Err(CodecError::Truncated);
        }
        if &bytes[..CKP_MAGIC.len()] != CKP_MAGIC {
            return Err(CodecError::BadMagic);
        }
        let mut cur = Cursor::new(&bytes[CKP_MAGIC.len()..]);

        let meta_bytes = take_frame(&mut cur, TAG_META)?;
        let mut m = Cursor::new(meta_bytes);
        let flavor = match m.u8()? {
            FLAVOR_UNSHARDED => EngineFlavor::Unsharded,
            FLAVOR_SHARDED => EngineFlavor::Sharded,
            tag => return Err(CodecError::BadTag(tag)),
        };
        let shards = usize::try_from(m.u64()?).map_err(|_| CodecError::Truncated)?;
        let block = m.u64()?;
        let threads = usize::try_from(m.u64()?).map_err(|_| CodecError::Truncated)?;
        let seed = m.u64()?;
        let draws = m.u64()?;
        let epoch = match m.u8()? {
            0 => None,
            1 => Some(m.u64()?),
            tag => return Err(CodecError::BadTag(tag)),
        };
        let wal_seq = m.u64()?;
        if !m.is_empty() {
            return Err(CodecError::Inconsistent("trailing bytes in META frame"));
        }
        if shards == 0 || block == 0 || threads == 0 {
            return Err(CodecError::Inconsistent("zero shard/block/thread axis"));
        }

        let graph_bytes = take_frame(&mut cur, TAG_GRAPH)?;
        let mut g = Cursor::new(graph_bytes);
        let next_id = g.u64()?;
        let nodes = take_u64_list(&mut g)?;
        let edge_count = checked_count(&g, 16)?;
        let _ = g.u64()?; // consume the count we peeked
        let mut edges = Vec::with_capacity(edge_count);
        for _ in 0..edge_count {
            edges.push((g.u64()?, g.u64()?));
        }
        if !g.is_empty() {
            return Err(CodecError::Inconsistent("trailing bytes in GRAPH frame"));
        }

        let prio_bytes = take_frame(&mut cur, TAG_PRIO)?;
        let mut p = Cursor::new(prio_bytes);
        let prio_count = checked_count(&p, 16)?;
        let _ = p.u64()?; // consume the count we peeked
        let mut priorities = Vec::with_capacity(prio_count);
        for _ in 0..prio_count {
            priorities.push((p.u64()?, p.u64()?));
        }
        if !p.is_empty() {
            return Err(CodecError::Inconsistent("trailing bytes in PRIO frame"));
        }

        let mis_bytes = take_frame(&mut cur, TAG_MIS)?;
        let mut w = Cursor::new(mis_bytes);
        let mis = take_u64_list(&mut w)?;
        if !w.is_empty() {
            return Err(CodecError::Inconsistent("trailing bytes in MIS frame"));
        }
        if !cur.is_empty() {
            return Err(CodecError::Inconsistent("trailing bytes after MIS frame"));
        }

        // Cross-section consistency: the priority map must cover the
        // node set exactly (engine construction *panics* otherwise, and
        // decode of hostile bytes must never panic), and the witness
        // can only name live nodes.
        let node_set: HashSet<u64> = nodes.iter().copied().collect();
        if priorities.len() != node_set.len() {
            return Err(CodecError::Inconsistent(
                "priority count differs from node count",
            ));
        }
        let mut seen = HashSet::with_capacity(priorities.len());
        for &(id, _) in &priorities {
            if !node_set.contains(&id) || !seen.insert(id) {
                return Err(CodecError::Inconsistent(
                    "priorities do not cover the node set exactly",
                ));
            }
        }
        if !mis.iter().all(|v| node_set.contains(v)) {
            return Err(CodecError::Inconsistent("witness names a dead node"));
        }

        Ok(Checkpoint {
            meta: DurabilityMeta {
                flavor,
                shards,
                block,
                threads,
                seed,
                draws,
                epoch,
            },
            wal_seq,
            next_id,
            nodes,
            edges,
            priorities,
            mis,
        })
    }

    /// Atomically writes the image as [`CHECKPOINT_FILE`].
    ///
    /// # Errors
    ///
    /// Propagates storage errors; on error the previous image survives.
    pub fn save(&self, io: &dyn StorageIo) -> io::Result<()> {
        io.write_atomic(CHECKPOINT_FILE, &self.encode())
    }

    /// Reads and decodes [`CHECKPOINT_FILE`]; `Ok(None)` if absent.
    ///
    /// # Errors
    ///
    /// [`RecoverError::Io`] on storage failure, [`RecoverError::Corrupt`]
    /// if the bytes exist but do not decode.
    pub fn load(io: &dyn StorageIo) -> Result<Option<Self>, RecoverError> {
        match io.read(CHECKPOINT_FILE).map_err(RecoverError::Io)? {
            None => Ok(None),
            Some(bytes) => Checkpoint::decode(&bytes)
                .map(Some)
                .map_err(RecoverError::Corrupt),
        }
    }

    /// Rebuilds a live engine of the captured flavor: reconstructs the
    /// graph and priority map, reruns greedy (the unique fixed point for
    /// that pair), fast-forwards the RNG by the recorded draw count, and
    /// re-attaches the publisher at the captured epoch. The recomputed
    /// MIS is checked against the stored witness before the engine is
    /// handed out.
    ///
    /// # Errors
    ///
    /// [`RecoverError::Corrupt`] if the adjacency section is rejected by
    /// graph reconstruction, [`RecoverError::Witness`] if the recomputed
    /// MIS differs from the captured one.
    pub fn restore(&self) -> Result<Box<dyn DynamicMis + Send>, RecoverError> {
        let nodes: Vec<NodeId> = self.nodes.iter().copied().map(NodeId).collect();
        let edges: Vec<(NodeId, NodeId)> = self
            .edges
            .iter()
            .map(|&(u, v)| (NodeId(u), NodeId(v)))
            .collect();
        let graph = DynGraph::from_adjacency(NodeId(self.next_id), &nodes, &edges)
            .map_err(|_| RecoverError::Corrupt(CodecError::Inconsistent("adjacency rejected")))?;
        let mut pm = PriorityMap::new();
        for &(id, key) in &self.priorities {
            pm.insert(NodeId(id), Priority::new(key, NodeId(id)));
        }
        let meta = self.meta;
        let mut engine: Box<dyn DynamicMis + Send> = match meta.flavor {
            EngineFlavor::Unsharded => Box::new(MisEngine::from_parts_impl(graph, pm, meta.seed)),
            EngineFlavor::Sharded => {
                let layout = ShardLayout::blocked(meta.shards, meta.block);
                let inner = ShardedMisEngine::from_parts_impl(graph, pm, layout, meta.seed);
                if meta.threads > 1 {
                    Box::new(ParallelShardedMisEngine::from_engine(inner, meta.threads))
                } else {
                    Box::new(inner)
                }
            }
        };
        // Fast-forward the RNG stream position: construction with
        // prescribed priorities drew nothing, so exactly `draws` throw-
        // away draws put every *future* draw where the original's would
        // be (and the engine's own draw counter self-tracks to match).
        for _ in 0..meta.draws {
            let _ = engine.draw_key();
        }
        let restored: BTreeSet<u64> = engine.mis_iter().map(NodeId::index).collect();
        let witness: BTreeSet<u64> = self.mis.iter().copied().collect();
        if restored != witness {
            return Err(RecoverError::Witness);
        }
        if let Some(epoch) = meta.epoch {
            engine.restore_epoch(epoch);
        }
        Ok(engine)
    }
}

fn put_frame(out: &mut Vec<u8>, tag: u8, payload: &[u8]) {
    let start = out.len();
    put_u8(out, tag);
    put_u64(out, payload.len() as u64);
    out.extend_from_slice(payload);
    let crc = crc32(&out[start..]);
    put_u32(out, crc);
}

fn take_frame<'a>(cur: &mut Cursor<'a>, expect: u8) -> Result<&'a [u8], CodecError> {
    let start = cur.pos();
    let tag = cur.u8()?;
    if tag != expect {
        return Err(CodecError::BadTag(tag));
    }
    let len = usize::try_from(cur.u64()?).map_err(|_| CodecError::Truncated)?;
    let payload = cur.take(len)?;
    let end = cur.pos();
    let crc = cur.u32()?;
    if crc32(cur.raw(start, end)) != crc {
        return Err(CodecError::Checksum);
    }
    Ok(payload)
}

/// A count-prefixed list's length, pre-validated against the bytes that
/// could actually hold it (`stride` bytes per entry) so hostile prefixes
/// never trigger huge allocations.
fn checked_count(cur: &Cursor<'_>, stride: usize) -> Result<usize, CodecError> {
    let mut peek = Cursor::new(cur.raw(cur.pos(), cur.pos() + cur.remaining().min(8)));
    let count = peek.u64()?;
    if count > ((cur.remaining() - 8) / stride) as u64 {
        return Err(CodecError::Truncated);
    }
    usize::try_from(count).map_err(|_| CodecError::Truncated)
}

fn take_u64_list(cur: &mut Cursor<'_>) -> Result<Vec<u64>, CodecError> {
    let count = checked_count(cur, 8)?;
    let _ = cur.u64()?; // consume the count we peeked
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        out.push(cur.u64()?);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::super::MemIo;
    use super::*;
    use crate::Engine;
    use dmis_graph::generators;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_engine() -> crate::MisEngine {
        let mut rng = StdRng::seed_from_u64(21);
        let (g, _) = generators::erdos_renyi(30, 0.15, &mut rng);
        Engine::builder().graph(g).seed(7).build_unsharded()
    }

    #[test]
    fn encode_decode_round_trips_exactly() {
        let engine = sample_engine();
        let ckp = Checkpoint::capture(&engine, 3);
        let decoded = Checkpoint::decode(&ckp.encode()).unwrap();
        assert_eq!(decoded, ckp);
        assert_eq!(decoded.wal_seq(), 3);
        assert_eq!(decoded.meta(), engine.durability_meta());
    }

    #[test]
    fn restore_rebuilds_a_bit_identical_engine() {
        let mut engine = sample_engine();
        let reader = engine.reader();
        let ckp = Checkpoint::capture(&engine, 0);
        let restored = ckp.restore().unwrap();
        assert_eq!(restored.mis(), engine.mis());
        assert_eq!(restored.durability_meta(), engine.durability_meta());
        let _ = reader;
    }

    #[test]
    fn every_single_bit_flip_is_detected() {
        let engine = sample_engine();
        let bytes = Checkpoint::capture(&engine, 1).encode();
        for i in 0..bytes.len() {
            let mut dirty = bytes.clone();
            dirty[i] ^= 0x10;
            assert!(
                Checkpoint::decode(&dirty).is_err(),
                "flip at byte {i} went undetected"
            );
        }
    }

    #[test]
    fn every_truncation_is_detected() {
        let engine = sample_engine();
        let bytes = Checkpoint::capture(&engine, 1).encode();
        for cut in 0..bytes.len() {
            assert!(
                Checkpoint::decode(&bytes[..cut]).is_err(),
                "truncation to {cut} bytes went undetected"
            );
        }
    }

    #[test]
    fn save_and_load_through_storage() {
        let io = MemIo::new();
        assert!(Checkpoint::load(&io).unwrap().is_none());
        let engine = sample_engine();
        let ckp = Checkpoint::capture(&engine, 9);
        ckp.save(&io).unwrap();
        let loaded = Checkpoint::load(&io).unwrap().unwrap();
        assert_eq!(loaded, ckp);

        io.corrupt(CHECKPOINT_FILE, 40, 0x04);
        assert!(matches!(
            Checkpoint::load(&io),
            Err(RecoverError::Corrupt(_))
        ));
    }

    #[test]
    fn a_forged_witness_is_refused() {
        let engine = sample_engine();
        let mut ckp = Checkpoint::capture(&engine, 0);
        // Forge the witness: drop one member. The recomputed greedy MIS
        // cannot match, so restore must refuse.
        assert!(!ckp.mis.is_empty());
        ckp.mis.pop();
        assert!(matches!(ckp.restore(), Err(RecoverError::Witness)));
    }
}
