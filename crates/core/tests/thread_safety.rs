//! Compile-time thread-safety gate for the engines.
//!
//! The parallel executor hands `&mut Shard` slices to scoped worker
//! threads and shares the graph/π read-only, which requires `Send` data
//! throughout; whole engines are also expected to migrate across threads
//! (e.g. a deployment settling disjoint graphs on a thread pool). These
//! `const` items are `static_assertions`-style trait checks: if any
//! engine ever grows a non-`Send`/non-`Sync` member (an `Rc`, a raw
//! pointer, a thread-local handle), this *test target fails to compile* —
//! the CI `parallel-determinism` job runs it explicitly so the breakage
//! is attributed, not buried in a build log.

use dmis_core::{
    BatchReceipt, DynamicMis, MisEngine, ParallelShardedMisEngine, ShardedMisEngine, UpdateReceipt,
};

const fn assert_send<T: Send>() {}
const fn assert_sync<T: Sync>() {}

const _: () = assert_send::<ParallelShardedMisEngine>();
const _: () = assert_sync::<ParallelShardedMisEngine>();
const _: () = assert_send::<ShardedMisEngine>();
const _: () = assert_sync::<ShardedMisEngine>();
const _: () = assert_send::<MisEngine>();
const _: () = assert_sync::<MisEngine>();
const _: () = assert_send::<UpdateReceipt>();
const _: () = assert_send::<BatchReceipt>();
// The unified API's boxed form must stay thread-migratable too: the
// builder returns `Box<dyn DynamicMis + Send>` and the sim's ingestion
// runner carries one across its lifetime.
const _: () = assert_send::<Box<dyn DynamicMis + Send>>();

/// The assertions above are evaluated at compile time; this runtime test
/// exists so the target reports a green check (and exercises an engine
/// actually crossing a thread boundary once).
#[test]
fn engines_cross_thread_boundaries() {
    let (g, ids) = dmis_graph::generators::cycle(8);
    let mut engine = dmis_core::Engine::builder()
        .graph(g)
        .sharding(dmis_graph::ShardLayout::striped(2))
        .threads(2)
        .seed(1)
        .build_parallel();
    let mis = std::thread::spawn(move || {
        engine.remove_edge(ids[0], ids[1]).expect("valid edge");
        engine.mis()
    })
    .join()
    .expect("worker panicked");
    assert!(!mis.is_empty());
}
