//! Property suite for the change-ingestion queue ([`IngestSession`]).
//!
//! Two halves, each checked for K ∈ {1, 2, 4} shards × threads ∈ {1, 2}
//! (the engines built through [`Engine::builder`] and driven as
//! `dyn DynamicMis`):
//!
//! 1. **Coalescing is semantics-preserving.** `push*; flush` is
//!    *bit-identical* (whole [`dmis_core::BatchReceipt`]) to
//!    `apply_batch` of the coalesced sequence on a twin engine, and its
//!    net flips — plus the final MIS — equal those of `apply_batch` of
//!    the **raw** sequence on another twin: cancelling an
//!    insert+delete pair changes net topology by nothing, and the
//!    maintained MIS is history independent, so only the work counters
//!    (the coalescing win) may differ from the raw batch.
//! 2. **Cancel-pairs produce zero settle work.** A window that coalesces
//!    to the empty batch flushes with every receipt counter zero: no
//!    pops, no counter updates, no handoffs, no epochs.

use dmis_core::{ChangeCoalescer, DynamicMis, Engine, IngestSession};
use dmis_graph::stream::{self, ChurnConfig};
use dmis_graph::{generators, DynGraph, ShardLayout, TopologyChange};
use rand::rngs::StdRng;
use rand::SeedableRng;

const SHARD_COUNTS: [usize; 3] = [1, 2, 4];
const THREADS: [usize; 2] = [1, 2];

/// Builds one engine of the (K, T) cell over `g` — spawn threshold 0 so
/// the threaded cells really exercise worker threads.
fn engine(g: &DynGraph, k: usize, t: usize, seed: u64) -> Box<dyn DynamicMis + Send> {
    Engine::builder()
        .graph(g.clone())
        .seed(seed)
        .sharding(ShardLayout::striped(k))
        .threads(t)
        .spawn_threshold(0)
        .build()
}

/// A raw change stream valid for sequential application on `g`: random
/// toggles over a bounded edge pool ([`stream::flapping_stream`]), so
/// windows regularly revisit the same edge and the coalescer has real
/// cancel/merge opportunities.
fn toggle_stream(g: &DynGraph, len: usize, rng: &mut StdRng) -> Vec<TopologyChange> {
    let pool = stream::random_pair_pool(g, 12, rng);
    stream::flapping_stream(g, &pool, len, false, rng)
}

#[test]
fn push_flush_equals_apply_batch_of_the_coalesced_sequence() {
    for seed in 0..12u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let (g, _) = generators::erdos_renyi(18, 0.2, &mut rng);
        let raw = toggle_stream(&g, 24, &mut rng);
        // The coalesced sequence the session will flush.
        let mut coalescer = ChangeCoalescer::new();
        for c in &raw {
            coalescer.push(c.clone());
        }
        let (coalesced, pushed) = coalescer.drain();
        assert_eq!(pushed, raw.len());
        for &k in &SHARD_COUNTS {
            for &t in &THREADS {
                // Session path.
                let mut session_engine = engine(&g, k, t, 77 + seed);
                let mut session = IngestSession::new(&mut *session_engine);
                for c in &raw {
                    session.push(c.clone()).expect("no watermark, cannot fail");
                }
                let receipt = session.flush().expect("valid stream");
                assert_eq!(receipt.pushed(), raw.len());
                assert_eq!(
                    receipt.coalesced_changes(),
                    raw.len() - coalesced.len(),
                    "K={k} T={t}"
                );
                // Twin 1: apply_batch of the coalesced sequence must be
                // bit-identical (the session IS one merged batch).
                let mut twin = engine(&g, k, t, 77 + seed);
                let expected = twin.apply_batch(&coalesced).expect("valid batch");
                assert_eq!(receipt.batch(), &expected, "K={k} T={t} seed={seed}");
                assert_eq!(session_engine.mis(), twin.mis());
                // Twin 2: the RAW batch settles the same net topology, so
                // flips and final MIS agree; only work counters may
                // differ (that delta is the coalescing win).
                let mut raw_twin = engine(&g, k, t, 77 + seed);
                let raw_receipt = raw_twin.apply_batch(&raw).expect("valid batch");
                assert_eq!(raw_receipt.flips(), receipt.batch().flips(), "K={k} T={t}");
                assert_eq!(raw_twin.mis(), session_engine.mis());
                assert!(
                    receipt.batch().heap_pops() <= raw_receipt.heap_pops(),
                    "coalescing must never add settle work (K={k} T={t})"
                );
                session_engine.assert_internally_consistent();
            }
        }
    }
}

#[test]
fn cancel_pairs_produce_zero_settle_work() {
    for seed in 0..6u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let (g, _) = generators::erdos_renyi(16, 0.25, &mut rng);
        // A window of pure opposing pairs: toggle 5 existing edges off
        // and immediately back on.
        let mut window = Vec::new();
        for _ in 0..5 {
            let (u, v) = generators::random_edge(&g, &mut rng).expect("has edges");
            window.push(TopologyChange::DeleteEdge(u, v));
            window.push(TopologyChange::InsertEdge(u, v));
        }
        for &k in &SHARD_COUNTS {
            for &t in &THREADS {
                let mut e = engine(&g, k, t, 5 + seed);
                let before = e.mis();
                let mut session = IngestSession::new(&mut *e);
                for c in &window {
                    session.push(c.clone()).expect("cannot fail");
                }
                assert_eq!(session.queue_depth(), 0, "all pairs cancelled");
                let receipt = session.flush().expect("empty batch");
                assert_eq!(receipt.pushed(), window.len());
                assert_eq!(receipt.coalesced_changes(), window.len());
                assert_eq!(receipt.applied(), 0);
                let b = receipt.batch();
                assert_eq!(b.adjustments(), 0, "K={k} T={t}");
                assert_eq!(b.heap_pops(), 0, "K={k} T={t}");
                assert_eq!(b.counter_updates(), 0, "K={k} T={t}");
                assert_eq!(b.cross_shard_handoffs(), 0, "K={k} T={t}");
                assert_eq!(b.settle_epochs(), 0, "K={k} T={t}");
                assert_eq!(e.mis(), before, "a cancelled window must not move the MIS");
                e.assert_internally_consistent();
            }
        }
    }
}

/// Watermarked sessions (auto-flush at depth Q) reach the same final MIS
/// as unbatched sequential application of the raw stream, for every
/// Q × K × T cell — and on these (deterministic, toggle-heavy) streams a
/// deeper queue never does more total settle work than Q=1: merging
/// windows unions their conservative seeds and cancels opposing pairs
/// outright. (The baseline is the Q=1 *session*, not per-change `apply`:
/// the batch path deliberately seeds the higher endpoint of every edge
/// change, so even a 1-deep flush pops more than the single-change fast
/// path — coalescing wins are measured against batched application.)
#[test]
fn watermark_sweep_preserves_outputs() {
    for seed in 0..6u64 {
        let mut rng = StdRng::seed_from_u64(100 + seed);
        let (g, _) = generators::erdos_renyi(20, 0.2, &mut rng);
        let raw = toggle_stream(&g, 48, &mut rng);
        // Sequential oracle for outputs.
        let mut oracle = engine(&g, 1, 1, 9 + seed);
        for c in &raw {
            oracle.apply(c).expect("valid");
        }
        for &k in &SHARD_COUNTS {
            for &t in &THREADS {
                let mut pops_by_q = Vec::new();
                for q in [1usize, 4, 16] {
                    let mut e = engine(&g, k, t, 9 + seed);
                    let mut session = IngestSession::with_watermark(&mut *e, q);
                    let mut pops = 0usize;
                    for c in &raw {
                        if let Some(receipt) = session.push(c.clone()).expect("valid stream") {
                            pops += receipt.batch().heap_pops();
                        }
                    }
                    pops += session.flush().expect("valid tail").batch().heap_pops();
                    assert_eq!(e.mis(), oracle.mis(), "Q={q} K={k} T={t} seed={seed}");
                    pops_by_q.push(pops);
                    e.assert_internally_consistent();
                }
                assert!(
                    pops_by_q[2] <= pops_by_q[0],
                    "K={k} T={t}: deep queue did more settle work than Q=1 \
                     ({} > {})",
                    pops_by_q[2],
                    pops_by_q[0]
                );
            }
        }
    }
}

/// Node changes act as barriers: a session fed a stream containing node
/// inserts/deletes still matches sequential application (coalescing must
/// not merge edge changes across an implicit incident-edge removal).
#[test]
fn node_barriers_keep_mixed_streams_valid() {
    for seed in 0..10u64 {
        let mut rng = StdRng::seed_from_u64(300 + seed);
        let (g, _) = generators::erdos_renyi(14, 0.25, &mut rng);
        // Random mixed stream (edges + node churn) built against a shadow.
        let mut shadow = g.clone();
        let mut raw = Vec::new();
        for _ in 0..20 {
            if let Some(c) = stream::random_change(&shadow, &ChurnConfig::default(), &mut rng) {
                c.apply(&mut shadow).expect("valid");
                raw.push(c);
            }
        }
        let mut oracle = engine(&g, 2, 1, 40 + seed);
        for c in &raw {
            oracle.apply(c).expect("valid");
        }
        let mut e = engine(&g, 2, 1, 40 + seed);
        let mut session = IngestSession::with_watermark(&mut *e, 6);
        for c in &raw {
            session.push(c.clone()).expect("valid stream");
        }
        session.flush().expect("valid tail");
        assert_eq!(e.mis(), oracle.mis(), "seed={seed}");
        e.assert_internally_consistent();
    }
}
