//! Trait-conformance suite: every engine flavor, driven **only** through
//! `dyn DynamicMis`.
//!
//! The unified API's promise is that a `Box<dyn DynamicMis>` is a
//! complete engine — the full update/query/receipt surface, including the
//! provided conveniences (`apply` dispatch, `insert_node` key draws,
//! `mis`, `state`), behaves identically whether the caller holds the
//! concrete type or the trait object, and identically *across* the three
//! flavors for the same seed. CI runs this target in a dedicated
//! `trait-conformance` job so an engine drifting out of the shared
//! contract is attributed immediately.

use dmis_core::{DynamicMis, Engine, MisState, SettleStrategy};
use dmis_graph::stream::{self, ChurnConfig};
use dmis_graph::{generators, DynGraph, GraphError, NodeId, ShardLayout, TopologyChange};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// All engine flavors over the same graph and seed, as trait objects.
fn flavors(g: &DynGraph, seed: u64) -> Vec<(&'static str, Box<dyn DynamicMis + Send>)> {
    vec![
        (
            "unsharded",
            Engine::builder().graph(g.clone()).seed(seed).build(),
        ),
        (
            "sharded",
            Engine::builder()
                .graph(g.clone())
                .seed(seed)
                .sharding(ShardLayout::striped(3))
                .build(),
        ),
        (
            "parallel",
            Engine::builder()
                .graph(g.clone())
                .seed(seed)
                .sharding(ShardLayout::striped(3))
                .threads(2)
                .spawn_threshold(0)
                .build(),
        ),
    ]
}

/// Every flavor agrees with every other on outputs after every change of
/// a random mixed stream, with all traffic going through the trait —
/// including the provided `apply` dispatch and the key-drawing
/// `insert_node`.
#[test]
fn all_flavors_agree_through_the_trait_object() {
    for seed in 0..25u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let (g, _) = generators::erdos_renyi(16, 0.25, &mut rng);
        let mut engines = flavors(&g, 1000 + seed);
        for step in 0..30 {
            let Some(change) =
                stream::random_change(engines[0].1.graph(), &ChurnConfig::default(), &mut rng)
            else {
                break;
            };
            let mut first = None;
            for (name, e) in &mut engines {
                let receipt = e.apply(&change).expect("valid change");
                match &first {
                    None => first = Some((receipt.adjusted_nodes(), e.mis())),
                    Some((adjusted, mis)) => {
                        assert_eq!(
                            &receipt.adjusted_nodes(),
                            adjusted,
                            "{name} step {step} seed {seed}"
                        );
                        assert_eq!(&e.mis(), mis, "{name} step {step} seed {seed}");
                    }
                }
            }
        }
        for (name, e) in &engines {
            assert!(e.check_invariant().is_ok(), "{name}");
            e.assert_internally_consistent();
        }
    }
}

/// The provided query conveniences are consistent with the primitives on
/// every flavor: `mis()` materializes `mis_iter()`, `mis_len()` counts
/// it, and `state()`/`is_in_mis()` agree pointwise.
#[test]
fn provided_queries_are_consistent_with_primitives() {
    let mut rng = StdRng::seed_from_u64(3);
    let (g, _) = generators::erdos_renyi(30, 0.2, &mut rng);
    for (name, e) in flavors(&g, 8) {
        let mis = e.mis();
        let from_iter: Vec<NodeId> = e.mis_iter().collect();
        assert_eq!(mis.iter().copied().collect::<Vec<_>>(), from_iter, "{name}");
        assert_eq!(mis.len(), e.mis_len(), "{name}");
        for v in e.graph().nodes() {
            let member = e.is_in_mis(v).expect("live node");
            assert_eq!(member, mis.contains(&v), "{name}");
            assert_eq!(
                e.state(v),
                Some(MisState::from_membership(member)),
                "{name}"
            );
        }
        assert_eq!(e.is_in_mis(NodeId(9999)), None, "{name}");
        assert_eq!(e.state(NodeId(9999)), None, "{name}");
    }
}

/// `insert_node` draws from the same seeded stream on every flavor: the
/// outputs stay aligned after trait-side node insertion, and the drawn
/// priorities are literally equal.
#[test]
fn key_draws_are_seed_aligned_across_flavors() {
    let (g, ids) = generators::cycle(9);
    let mut engines = flavors(&g, 42);
    let mut inserted = Vec::new();
    for (_, e) in &mut engines {
        let (v, _) = e.insert_node(&[ids[0], ids[3]]).expect("valid neighbors");
        inserted.push((v, e.priorities().of(v)));
    }
    for w in inserted.windows(2) {
        assert_eq!(w[0], w[1], "same seed must draw the same key");
    }
    let mis = engines[0].1.mis();
    for (name, e) in &engines[1..] {
        assert_eq!(e.mis(), mis, "{name}");
    }
}

/// The settle-strategy knob round-trips through the trait and keeps
/// receipts bit-identical per flavor.
#[test]
fn settle_strategy_toggles_through_the_trait() {
    let mut rng = StdRng::seed_from_u64(11);
    let (g, _) = generators::erdos_renyi(20, 0.25, &mut rng);
    for (name, mut front) in flavors(&g, 77) {
        let mut heap = flavors(&g, 77)
            .into_iter()
            .find(|(n, _)| *n == name)
            .map(|(_, e)| e)
            .expect("same flavor");
        assert_eq!(front.settle_strategy(), SettleStrategy::RankFront);
        heap.set_settle_strategy(SettleStrategy::BinaryHeap);
        assert_eq!(heap.settle_strategy(), SettleStrategy::BinaryHeap);
        for _ in 0..40 {
            let Some(change) =
                stream::random_change(front.graph(), &ChurnConfig::default(), &mut rng)
            else {
                break;
            };
            let rf = front.apply(&change).expect("valid");
            let rh = heap.apply(&change).expect("valid");
            assert_eq!(rf, rh, "{name}: strategies must be bit-identical");
        }
    }
}

/// Errors propagate identically through the trait object and leave every
/// flavor untouched.
#[test]
fn errors_are_uniform_across_flavors() {
    let (g, ids) = generators::path(3);
    for (name, mut e) in flavors(&g, 0) {
        let snapshot = e.mis();
        assert!(e.insert_edge(ids[0], ids[1]).is_err(), "{name}");
        assert!(e.remove_edge(ids[0], ids[2]).is_err(), "{name}");
        assert!(e.remove_node(NodeId(50)).is_err(), "{name}");
        assert!(e.insert_node(&[NodeId(50)]).is_err(), "{name}");
        let err = e
            .apply(&TopologyChange::InsertNode {
                id: NodeId(0),
                edges: vec![],
            })
            .unwrap_err();
        assert_eq!(err, GraphError::MissingNode(NodeId(0)), "{name}");
        assert_eq!(e.mis(), snapshot, "{name}");
        e.assert_internally_consistent();
    }
}

/// The snapshot read path through the trait: after every applied batch,
/// the quiesced engine's `MisReader` agrees with `mis_iter`/`is_in_mis`/
/// `mis_len` exactly — for every flavor, under node delete/recycle churn
/// (deletes evict rank slots, inserts recycle them), with one epoch
/// published per settle.
#[test]
fn reader_agrees_with_the_quiesced_engine_on_every_flavor() {
    // Node-heavy churn so rank slots are actually tombstoned and
    // recycled under the attached read path.
    let churny = ChurnConfig {
        edge_insert: 0.25,
        edge_delete: 0.25,
        node_insert: 0.25,
        node_delete: 0.25,
        max_new_degree: 4,
    };
    for seed in 0..8u64 {
        let mut rng = StdRng::seed_from_u64(400 + seed);
        let (g, _) = generators::erdos_renyi(20, 0.25, &mut rng);
        for (name, mut e) in flavors(&g, 700 + seed) {
            let reader = e.reader();
            assert_eq!(reader.epoch(), 0, "{name}: attach is epoch 0");
            let mut batches = 0u64;
            for _ in 0..12 {
                let mut shadow = e.graph().clone();
                let mut batch = Vec::new();
                for _ in 0..4 {
                    if let Some(c) = stream::random_change(&shadow, &churny, &mut rng) {
                        c.apply(&mut shadow).expect("valid");
                        batch.push(c);
                    }
                }
                if batch.is_empty() {
                    continue;
                }
                e.apply_batch(&batch).expect("valid batch");
                batches += 1;
                assert_eq!(reader.epoch(), batches, "{name}: one epoch per settle");
                let snap = reader.snapshot();
                assert_eq!(snap.epoch(), batches, "{name}");
                assert_eq!(snap.mis_len(), e.mis_len(), "{name}");
                let published: Vec<NodeId> = snap.iter().collect();
                let mut quiesced: Vec<NodeId> = e.mis_iter().collect();
                quiesced.sort_unstable();
                assert_eq!(published, quiesced, "{name} batch {batches}");
                for v in e.graph().nodes() {
                    assert_eq!(
                        Some(snap.contains(v)),
                        e.is_in_mis(v),
                        "{name}: pointwise membership"
                    );
                }
                // Convenience queries on the reader handle agree too.
                assert_eq!(reader.mis_len(), e.mis_len(), "{name}");
                assert_eq!(reader.mis_iter().collect::<Vec<_>>(), published, "{name}");
            }
            assert!(batches > 0, "{name}: churn produced work");
            e.assert_internally_consistent();
        }
    }
}

/// Batches through the trait: `apply_batch` equals per-change `apply` on
/// final outputs for every flavor.
#[test]
fn batches_match_sequential_application_per_flavor() {
    for seed in 0..10u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let (g, _) = generators::erdos_renyi(18, 0.25, &mut rng);
        let mut shadow = g.clone();
        let mut batch = Vec::new();
        for _ in 0..8 {
            if let Some(c) = stream::random_change(&shadow, &ChurnConfig::default(), &mut rng) {
                c.apply(&mut shadow).expect("valid");
                batch.push(c);
            }
        }
        for (name, mut batched) in flavors(&g, 500 + seed) {
            let mut sequential = flavors(&g, 500 + seed)
                .into_iter()
                .find(|(n, _)| *n == name)
                .map(|(_, e)| e)
                .expect("same flavor");
            let receipt = batched.apply_batch(&batch).expect("valid batch");
            assert_eq!(receipt.applied(), batch.len(), "{name}");
            for c in &batch {
                sequential.apply(c).expect("valid change");
            }
            assert_eq!(batched.mis(), sequential.mis(), "{name} seed={seed}");
            batched.assert_internally_consistent();
        }
    }
}
