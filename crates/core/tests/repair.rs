//! Self-healing through the trait: `verify_and_repair` on every engine
//! flavor, against the in-RAM corruption model the durability files
//! can't see (bit flips in live membership/counter state).
//!
//! The healing rule is the template's own self-stabilization: recompute
//! truthful lower-priority-MIS counters, then drain the violated nodes
//! in π order. Truthful counters + the π-ordered drain converge to the
//! *unique* greedy fixed point, so a healed engine must be bit-identical
//! to an uncorrupted twin — which is exactly what this suite asserts,
//! for every flavor, via `dyn DynamicMis` only.

use dmis_core::{DynamicMis, Engine};
use dmis_graph::stream::{self, ChurnConfig};
use dmis_graph::{generators, DynGraph, NodeId, ShardLayout};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn flavors(g: &DynGraph, seed: u64) -> Vec<(&'static str, Box<dyn DynamicMis + Send>)> {
    vec![
        (
            "unsharded",
            Engine::builder().graph(g.clone()).seed(seed).build(),
        ),
        (
            "sharded-k4",
            Engine::builder()
                .graph(g.clone())
                .seed(seed)
                .sharding(ShardLayout::striped(4))
                .build(),
        ),
        (
            "parallel-k4",
            Engine::builder()
                .graph(g.clone())
                .seed(seed)
                .sharding(ShardLayout::striped(4))
                .threads(2)
                .spawn_threshold(0)
                .build(),
        ),
    ]
}

#[test]
fn repair_restores_the_twin_state_on_every_flavor() {
    for seed in 0..6u64 {
        let mut rng = StdRng::seed_from_u64(13_100 + seed);
        let (g, ids) = generators::erdos_renyi(36, 0.15, &mut rng);
        for (name, mut engine) in flavors(&g, 40 + seed) {
            // Identical construction ⇒ identical state: the twin is the
            // ground truth the healed engine must return to.
            let twin = flavors(&g, 40 + seed)
                .into_iter()
                .find(|(n, _)| *n == name)
                .map(|(_, e)| e)
                .expect("same flavor");

            let k = 3 + (seed as usize % 3);
            let victims: Vec<NodeId> = ids.iter().step_by(5).take(k).copied().collect();
            assert_eq!(engine.corrupt_in_mis(&victims), victims.len(), "{name}");
            assert_ne!(engine.mis(), twin.mis(), "{name}: corruption took hold");

            let report = engine.verify_and_repair();
            assert!(!report.is_clean(), "{name}");
            assert_eq!(report.scanned(), engine.graph().node_count(), "{name}");
            assert!(report.memberships_violated() > 0, "{name}");
            assert_eq!(
                engine.mis(),
                twin.mis(),
                "{name} seed={seed}: healed to twin"
            );
            assert!(engine.check_invariant().is_ok(), "{name}");
            engine.assert_internally_consistent();

            let second = engine.verify_and_repair();
            assert!(second.is_clean(), "{name}: healing converged in one pass");
            assert_eq!(second.scanned(), engine.graph().node_count(), "{name}");
        }
    }
}

#[test]
fn repair_then_churn_stays_aligned_with_the_twin() {
    // A healed engine is not just pointwise-correct — it keeps producing
    // bit-identical receipts under further churn (counters, flip order,
    // RNG draws all intact).
    let mut rng = StdRng::seed_from_u64(77);
    let (g, ids) = generators::erdos_renyi(30, 0.2, &mut rng);
    for (name, mut engine) in flavors(&g, 9) {
        let mut twin = flavors(&g, 9)
            .into_iter()
            .find(|(n, _)| *n == name)
            .map(|(_, e)| e)
            .expect("same flavor");
        engine.corrupt_in_mis(&[ids[1], ids[8], ids[15]]);
        engine.verify_and_repair();
        for _ in 0..60 {
            let Some(change) =
                stream::random_change(twin.graph(), &ChurnConfig::default(), &mut rng)
            else {
                continue;
            };
            let rt = twin.apply(&change).expect("valid");
            let rh = engine.apply(&change).expect("valid");
            assert_eq!(rt, rh, "{name}: receipts diverged after healing");
        }
        assert_eq!(engine.mis(), twin.mis(), "{name}");
    }
}

#[test]
fn a_clean_pass_publishes_no_epoch_a_healing_pass_publishes_one() {
    for (name, mut engine) in flavors(&generators::cycle(12).0, 4) {
        let reader = engine.reader();
        assert_eq!(reader.epoch(), 0, "{name}");

        let clean = engine.verify_and_repair();
        assert!(clean.is_clean(), "{name}");
        assert_eq!(reader.epoch(), 0, "{name}: clean sweeps are invisible");

        let victim = engine.mis_iter().next().expect("cycle MIS is non-empty");
        engine.corrupt_in_mis(&[victim]);
        let healed = engine.verify_and_repair();
        assert!(!healed.is_clean(), "{name}");
        assert_eq!(
            reader.epoch(),
            1,
            "{name}: healing publishes a fresh epoch, never a regressed one"
        );
        let snap = reader.snapshot();
        let mut quiesced: Vec<NodeId> = engine.mis_iter().collect();
        quiesced.sort_unstable();
        assert_eq!(
            snap.iter().collect::<Vec<_>>(),
            quiesced,
            "{name}: the published snapshot is the healed membership"
        );
    }
}

#[test]
fn repair_work_scales_with_corruption_not_graph_size() {
    // The E13 engine-tier claim at test scale: healing k corrupted nodes
    // costs O(k) settle work (pops bounded by touched neighborhoods),
    // not O(n) — the sweep scans everything, but the *drain* stays local.
    let mut rng = StdRng::seed_from_u64(5);
    let (g, ids) = generators::erdos_renyi(400, 0.01, &mut rng);
    let mut engine = Engine::builder().graph(g).seed(2).build();
    engine.corrupt_in_mis(&[ids[7]]);
    let report = engine.verify_and_repair();
    assert!(!report.is_clean());
    assert_eq!(report.memberships_violated(), 1);
    let degree_bound = 1 + engine
        .graph()
        .nodes()
        .map(|v| engine.graph().degree(v).unwrap_or(0))
        .max()
        .unwrap_or(0);
    assert!(
        report.heap_pops() <= 2 * degree_bound,
        "one flipped bit must heal with neighborhood-local work \
         (pops {} vs degree bound {degree_bound})",
        report.heap_pops()
    );
}
