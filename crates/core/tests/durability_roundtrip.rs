//! Durability round-trip property suite: checkpoint + WAL replay
//! restores **bit-identical** state on every engine flavor.
//!
//! The engines are deterministic functions of `(graph, π, RNG
//! position)`, so recovery is checkable to the bit: for each flavor ×
//! shard count, a session streams churn through the log-then-publish
//! ingest path (WAL record per flush, periodic checkpoints), and
//! [`recover`] must reproduce the uncrashed twin exactly — the MIS, the
//! per-flush flip logs and receipt counters (replayed receipts equal
//! the live ones), the published reader epoch, and the RNG stream
//! position (pinned by applying identical *post*-recovery change
//! windows, including key-drawing node inserts, to both twins).

use std::sync::Arc;

use dmis_core::durability::{recover, Checkpoint, MemIo, StorageIo, WalSink, WriteAheadLog};
use dmis_core::{BatchReceipt, DynamicMis, Engine, IngestSession};
use dmis_graph::stream::{self, ChurnConfig};
use dmis_graph::{generators, DynGraph, GraphError, ShardLayout, TopologyChange};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Node-heavy churn so recovery also exercises id recycling and the
/// RNG draw fast-forward (every node insert draws a priority key).
fn churny() -> ChurnConfig {
    ChurnConfig {
        edge_insert: 0.3,
        edge_delete: 0.25,
        node_insert: 0.25,
        node_delete: 0.2,
        max_new_degree: 4,
    }
}

/// Every engine flavor × shard count K ∈ {1, 4}, as trait objects.
fn flavors(g: &DynGraph, seed: u64) -> Vec<(&'static str, Box<dyn DynamicMis + Send>)> {
    vec![
        (
            "unsharded",
            Engine::builder().graph(g.clone()).seed(seed).build(),
        ),
        (
            "sharded-k1",
            Engine::builder()
                .graph(g.clone())
                .seed(seed)
                .sharding(ShardLayout::single())
                .build(),
        ),
        (
            "sharded-k4",
            Engine::builder()
                .graph(g.clone())
                .seed(seed)
                .sharding(ShardLayout::striped(4))
                .build(),
        ),
        (
            "parallel-k1",
            Engine::builder()
                .graph(g.clone())
                .seed(seed)
                .sharding(ShardLayout::single())
                .threads(2)
                .spawn_threshold(0)
                .build(),
        ),
        (
            "parallel-k4",
            Engine::builder()
                .graph(g.clone())
                .seed(seed)
                .sharding(ShardLayout::striped(4))
                .threads(2)
                .spawn_threshold(0)
                .build(),
        ),
    ]
}

/// One churn window of up to `len` changes, valid as a sequence against
/// the current graph.
fn window(g: &DynGraph, len: usize, rng: &mut StdRng) -> Vec<TopologyChange> {
    let mut shadow = g.clone();
    let mut out = Vec::new();
    for _ in 0..len {
        if let Some(c) = stream::random_change(&shadow, &churny(), rng) {
            c.apply(&mut shadow).expect("valid against shadow");
            out.push(c);
        }
    }
    out
}

#[test]
fn checkpoint_plus_replay_is_bit_identical_on_every_flavor() {
    for seed in 0..3u64 {
        let mut rng = StdRng::seed_from_u64(9_000 + seed);
        let (g, _) = generators::erdos_renyi(24, 0.2, &mut rng);
        for (name, mut engine) in flavors(&g, 77 + seed) {
            let reader = engine.reader();
            let store = MemIo::new();
            let io: Arc<dyn StorageIo> = Arc::new(store.clone());
            Checkpoint::capture(&*engine, 0).save(io.as_ref()).unwrap();
            let wal = WriteAheadLog::create(Arc::clone(&io)).unwrap();

            let mut session = IngestSession::new(engine);
            session.set_wal_sink(Box::new(wal));
            assert!(session.has_wal_sink(), "{name}");

            let mut live_receipts: Vec<BatchReceipt> = Vec::new();
            let mut flushes = 0u64;
            for _ in 0..20 {
                for c in window(session.engine().graph(), 6, &mut rng) {
                    session.push(c).expect("manual policy never auto-flushes");
                }
                let receipt = session.flush().expect("flush applies the window");
                live_receipts.push(receipt.into_batch());
                flushes += 1;
                if flushes.is_multiple_of(7) {
                    Checkpoint::capture(&**session.engine(), flushes)
                        .save(io.as_ref())
                        .unwrap();
                }
            }
            let mut twin = session.into_engine();
            assert_eq!(reader.epoch(), flushes, "{name}: one epoch per flush");

            let recovered = recover(Arc::new(store.fork())).unwrap();
            assert_eq!(recovered.checkpoint_seq, 14, "{name}");
            assert_eq!(recovered.replayed, 6, "{name}");
            let mut healed = recovered.engine;

            // Bit-identical state: MIS, priorities, epoch, and the
            // replayed receipts (flip logs + work counters) match the
            // live flushes they re-execute.
            assert_eq!(healed.mis(), twin.mis(), "{name} seed={seed}");
            assert_eq!(
                healed.durability_meta(),
                twin.durability_meta(),
                "{name}: flavor, layout, RNG position, and epoch survive"
            );
            assert_eq!(
                healed.durability_meta().epoch,
                Some(reader.epoch()),
                "{name}: recovered epoch equals what readers observed"
            );
            for v in healed.graph().nodes() {
                assert_eq!(
                    healed.priorities().of(v),
                    twin.priorities().of(v),
                    "{name}: π survives the round trip"
                );
            }
            assert_eq!(
                recovered.receipts,
                &live_receipts[recovered.checkpoint_seq as usize..],
                "{name}: replay reproduces the live flip logs and receipts"
            );

            // The RNG stream position survived: identical future windows
            // (with key-drawing node inserts) keep both twins aligned.
            for _ in 0..3 {
                let batch = window(twin.graph(), 5, &mut rng);
                let rt = twin.apply_batch(&batch).expect("valid batch");
                let rh = healed.apply_batch(&batch).expect("valid batch");
                assert_eq!(rt, rh, "{name}: post-recovery receipts diverged");
            }
            assert_eq!(healed.mis(), twin.mis(), "{name}: post-recovery state");
            healed.assert_internally_consistent();
            assert!(healed.check_invariant().is_ok(), "{name}");
        }
    }
}

/// A sink that always fails — pins the flush-side persistence contract.
#[derive(Debug)]
struct FailingSink;

impl WalSink for FailingSink {
    fn persist(&mut self, _changes: &[TopologyChange]) -> std::io::Result<u64> {
        Err(std::io::Error::other("sink offline"))
    }
}

#[test]
fn a_failing_sink_fails_the_flush_before_anything_is_applied() {
    let (g, ids) = generators::cycle(8);
    let mut engine = Engine::builder().graph(g).seed(3).build();
    let reader = engine.reader();
    let mut session = IngestSession::new(engine);
    session.set_wal_sink(Box::new(FailingSink));

    session
        .push(TopologyChange::DeleteEdge(ids[0], ids[1]))
        .unwrap();
    let before = session.engine().mis();
    assert_eq!(
        session.flush().unwrap_err(),
        GraphError::PersistFailed,
        "log-then-publish: an unlogged window must not apply"
    );
    assert_eq!(session.engine().mis(), before, "engine untouched");
    assert_eq!(reader.epoch(), 0, "no epoch published for the lost window");

    // The session stays usable: swap in a working log and stream on.
    let store = MemIo::new();
    let wal = WriteAheadLog::create(Arc::new(store.clone())).unwrap();
    session.set_wal_sink(Box::new(wal));
    session
        .push(TopologyChange::DeleteEdge(ids[2], ids[3]))
        .unwrap();
    session.flush().expect("healthy sink flushes fine");
    assert_eq!(reader.epoch(), 1);
    assert!(
        store.file_len(dmis_core::durability::WAL_FILE).unwrap() > 8,
        "the flushed window reached the log"
    );
}

#[test]
fn empty_windows_are_logged_so_epoch_arithmetic_stays_exact() {
    let (g, ids) = generators::path(6);
    let mut engine = Engine::builder().graph(g).seed(11).build();
    let reader = engine.reader();
    let store = MemIo::new();
    let io: Arc<dyn StorageIo> = Arc::new(store.clone());
    Checkpoint::capture(&*engine, 0).save(io.as_ref()).unwrap();
    let wal = WriteAheadLog::create(Arc::clone(&io)).unwrap();
    let mut session = IngestSession::new(engine);
    session.set_wal_sink(Box::new(wal));

    // Flush 0: real work. Flush 1: a self-cancelling window (coalesces
    // to nothing). Flush 2: an outright empty window.
    session
        .push(TopologyChange::DeleteEdge(ids[0], ids[1]))
        .unwrap();
    session.flush().unwrap();
    session
        .push(TopologyChange::InsertEdge(ids[0], ids[1]))
        .unwrap();
    session
        .push(TopologyChange::DeleteEdge(ids[0], ids[1]))
        .unwrap();
    session.flush().unwrap();
    session.flush().unwrap();
    assert_eq!(reader.epoch(), 3, "every flush publishes, even empty ones");

    let twin = session.into_engine();
    let recovered = recover(Arc::new(store)).unwrap();
    assert_eq!(recovered.replayed, 3, "one WAL record per flush");
    assert_eq!(recovered.engine.mis(), twin.mis());
    assert_eq!(
        recovered.engine.durability_meta().epoch,
        Some(3),
        "replaying empty records advances the epoch exactly as live flushes did"
    );
}
