//! Fault-injection sweep: whatever byte the crash or corruption lands
//! on, recovery never panics and always lands on a **prefix state** of
//! the true history.
//!
//! A reference writer logs a 200-change history (one WAL record per
//! change, checkpoints every 64), remembering every record boundary and
//! every prefix state. The sweep then crashes a copy of the store at
//! every record boundary — and at seeded offsets *inside* records, and
//! under seeded bit flips — and proves [`recover`] returns either a
//! prefix state (bit-identical MIS + epoch for that prefix) or a clean
//! error, never a panic and never an invented state.

use std::collections::BTreeSet;
use std::sync::Arc;

use dmis_core::durability::{
    recover, splitmix64, Checkpoint, MemIo, RecoverError, StorageIo, WriteAheadLog, WAL_FILE,
};
use dmis_core::{DynamicMis, Engine, MisEngine};
use dmis_graph::stream::{self, ChurnConfig};
use dmis_graph::{NodeId, TopologyChange};
use rand::rngs::StdRng;
use rand::SeedableRng;

const CHANGES: usize = 200;
const CKP_EVERY: u64 = 64;

/// The reference history: the shared store's final bytes, the WAL byte
/// offset after each record, the checkpoint images that were durable at
/// each point, and the MIS after every prefix of records.
struct Reference {
    store: MemIo,
    boundaries: Vec<usize>,
    prefix_mis: Vec<BTreeSet<NodeId>>,
    /// Image `i` is the checkpoint captured at record `i * CKP_EVERY`.
    ckp_images: Vec<Vec<u8>>,
}

fn churny() -> ChurnConfig {
    ChurnConfig {
        edge_insert: 0.3,
        edge_delete: 0.25,
        node_insert: 0.25,
        node_delete: 0.2,
        max_new_degree: 4,
    }
}

fn drive_reference() -> Reference {
    let store = MemIo::new();
    let io: Arc<dyn StorageIo> = Arc::new(store.clone());
    let mut engine: MisEngine = Engine::builder().seed(5).build_unsharded();
    let _reader = engine.reader(); // epochs are part of the prefix state
    let mut wal = WriteAheadLog::create(Arc::clone(&io)).unwrap();
    let first = Checkpoint::capture(&engine, 0);
    first.save(io.as_ref()).unwrap();
    let mut ckp_images = vec![first.encode()];

    let mut boundaries = vec![store.file_len(WAL_FILE).unwrap()];
    let mut prefix_mis = vec![engine.mis()];
    let mut rng = StdRng::seed_from_u64(99);
    for i in 0..CHANGES {
        let change = stream::random_change(engine.graph(), &churny(), &mut rng).unwrap_or(
            TopologyChange::InsertNode {
                id: engine.graph().peek_next_id(),
                edges: vec![],
            },
        );
        let batch = [change];
        wal.append(&batch).unwrap();
        engine.apply_batch(&batch).unwrap();
        boundaries.push(store.file_len(WAL_FILE).unwrap());
        prefix_mis.push(engine.mis());
        let done = (i + 1) as u64;
        if done.is_multiple_of(CKP_EVERY) {
            let ckp = Checkpoint::capture(&engine, done);
            ckp.save(io.as_ref()).unwrap();
            ckp_images.push(ckp.encode());
        }
    }
    Reference {
        store,
        boundaries,
        prefix_mis,
        ckp_images,
    }
}

/// The checkpoint image that was durable when the WAL held `records`
/// records (the last periodic save at or below that point).
fn durable_checkpoint_bytes(reference: &Reference, records: u64) -> Vec<u8> {
    reference.ckp_images[(records / CKP_EVERY) as usize].clone()
}

/// Asserts that `store` recovers to a whole-record prefix of the
/// reference history with the matching MIS and epoch; `max_records`
/// bounds which prefix is reachable. Returns the prefix length.
fn assert_recovers_to_prefix(reference: &Reference, store: MemIo, max_records: u64) -> u64 {
    let recovered = recover(Arc::new(store)).expect("recovery must succeed");
    let landed = recovered.checkpoint_seq + recovered.replayed as u64;
    assert!(landed <= max_records, "invented records beyond the tear");
    assert_eq!(
        recovered.engine.mis(),
        reference.prefix_mis[landed as usize],
        "not the prefix state at record {landed}"
    );
    assert_eq!(
        recovered.engine.durability_meta().epoch,
        Some(landed),
        "prefix epoch mismatch at record {landed}"
    );
    landed
}

#[test]
fn crash_at_every_record_boundary_recovers_that_exact_prefix() {
    let reference = drive_reference();
    let full = reference.store.read(WAL_FILE).unwrap().unwrap();
    for (r, &cut) in reference.boundaries.iter().enumerate() {
        let r = r as u64;
        let store = MemIo::new();
        store
            .write_atomic(
                dmis_core::durability::CHECKPOINT_FILE,
                &durable_checkpoint_bytes(&reference, r),
            )
            .unwrap();
        store.write_atomic(WAL_FILE, &full[..cut]).unwrap();
        let landed = assert_recovers_to_prefix(&reference, store, r);
        assert_eq!(landed, r, "a whole-record log replays in full");
    }
}

#[test]
fn crash_inside_a_record_truncates_back_to_the_boundary() {
    let reference = drive_reference();
    let full = reference.store.read(WAL_FILE).unwrap().unwrap();
    for seed in 0..40u64 {
        // A seeded offset strictly inside some record.
        let cut = 8 + (splitmix64(seed) % (full.len() as u64 - 8)) as usize;
        let r = reference
            .boundaries
            .iter()
            .take_while(|&&b| b <= cut)
            .count() as u64
            - 1;
        if reference.boundaries[r as usize] == cut {
            continue; // exact boundary — covered by the sweep above
        }
        let store = MemIo::new();
        store
            .write_atomic(
                dmis_core::durability::CHECKPOINT_FILE,
                &durable_checkpoint_bytes(&reference, r),
            )
            .unwrap();
        store.write_atomic(WAL_FILE, &full[..cut]).unwrap();
        let landed = assert_recovers_to_prefix(&reference, store, r);
        assert_eq!(
            landed, r,
            "seed={seed}: torn tail must fall back to boundary"
        );
    }
}

#[test]
fn seeded_bit_flips_never_panic_and_never_invent_state() {
    let reference = drive_reference();
    let wal_len = reference.store.file_len(WAL_FILE).unwrap() as u64;
    for seed in 0..60u64 {
        let store = reference.store.fork();
        let offset = (splitmix64(0xF00D ^ seed) % wal_len) as usize;
        let mask = 1u8 << (splitmix64(seed ^ 0xBEEF) % 8) as u8;
        assert!(store.corrupt(WAL_FILE, offset, mask));
        // The flip lands in some record (or the magic); everything from
        // that record on is discarded, so recovery lands on a prefix.
        match std::panic::catch_unwind(|| recover(Arc::new(store))) {
            Ok(Ok(recovered)) => {
                let landed = recovered.checkpoint_seq + recovered.replayed as u64;
                assert_eq!(
                    recovered.engine.mis(),
                    reference.prefix_mis[landed as usize],
                    "seed={seed}: flipped log produced a non-prefix state"
                );
            }
            Ok(Err(e)) => panic!("seed={seed}: WAL corruption must truncate, not fail: {e}"),
            Err(_) => panic!("seed={seed}: recovery panicked"),
        }
    }
}

#[test]
fn checkpoint_corruption_is_a_loud_error_never_a_panic() {
    let reference = drive_reference();
    let ckp_len = reference
        .store
        .file_len(dmis_core::durability::CHECKPOINT_FILE)
        .unwrap() as u64;
    for seed in 0..60u64 {
        let store = reference.store.fork();
        let offset = (splitmix64(0xCAFE ^ seed) % ckp_len) as usize;
        assert!(store.corrupt(dmis_core::durability::CHECKPOINT_FILE, offset, 0x20));
        match std::panic::catch_unwind(|| recover(Arc::new(store))) {
            Ok(Err(RecoverError::Corrupt(_))) => {}
            Ok(Ok(_)) => panic!("seed={seed}: corrupted checkpoint decoded cleanly"),
            Ok(Err(e)) => panic!("seed={seed}: unexpected error class: {e}"),
            Err(_) => panic!("seed={seed}: recovery panicked"),
        }
    }
}
