//! Storage-equivalence property test for the dense engine.
//!
//! The dense `NodeMap`/`NodeSet`-backed [`MisEngine`] must be
//! observationally identical to the ordered-tree layout it replaced. The
//! oracle here is a *retained* BTree-backed reference: it mirrors every
//! topology change in `BTreeMap`/`BTreeSet` structures and recomputes the
//! greedy MIS from scratch under the engine's own priorities after each
//! change. Agreement of outputs after every prefix of a random change
//! sequence is exactly history independence (Section 5) at fixed π, and
//! receipt agreement pins the adjustment accounting.

use std::collections::{BTreeMap, BTreeSet};

use dmis_core::{DynamicMis, PriorityMap};
use dmis_graph::stream::{self, ChurnConfig};
use dmis_graph::{DynGraph, NodeId, TopologyChange};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// BTree-retained mirror of the evolving graph, with a from-scratch greedy
/// oracle over the ordered-tree layout.
#[derive(Default)]
struct BTreeOracle {
    adj: BTreeMap<NodeId, BTreeSet<NodeId>>,
}

impl BTreeOracle {
    fn mirror(g: &DynGraph) -> Self {
        let mut adj = BTreeMap::new();
        for v in g.nodes() {
            adj.insert(v, g.neighbors(v).expect("live node").collect());
        }
        BTreeOracle { adj }
    }

    fn apply(&mut self, change: &TopologyChange) {
        match change {
            TopologyChange::InsertEdge(u, v) => {
                self.adj.get_mut(u).expect("live").insert(*v);
                self.adj.get_mut(v).expect("live").insert(*u);
            }
            TopologyChange::DeleteEdge(u, v) => {
                self.adj.get_mut(u).expect("live").remove(v);
                self.adj.get_mut(v).expect("live").remove(u);
            }
            TopologyChange::InsertNode { id, edges } => {
                self.adj.insert(*id, edges.iter().copied().collect());
                for u in edges {
                    self.adj.get_mut(u).expect("live").insert(*id);
                }
            }
            TopologyChange::DeleteNode(v) => {
                let nbrs = self.adj.remove(v).expect("live");
                for u in nbrs {
                    self.adj.get_mut(&u).expect("live").remove(v);
                }
            }
        }
    }

    /// Sequential greedy over the ordered-tree layout.
    fn greedy_mis(&self, priorities: &PriorityMap) -> BTreeSet<NodeId> {
        let mut order: Vec<NodeId> = self.adj.keys().copied().collect();
        order.sort_unstable_by_key(|&v| priorities.of(v));
        let mut mis: BTreeSet<NodeId> = BTreeSet::new();
        for v in order {
            let dominated = self.adj[&v]
                .iter()
                .any(|&u| mis.contains(&u) && priorities.before(u, v));
            if !dominated {
                mis.insert(v);
            }
        }
        mis
    }
}

/// ≥ 1000 random insert/delete sequences: after every single change, the
/// dense engine's output and receipts match the BTree oracle exactly.
#[test]
fn dense_engine_matches_btree_oracle_over_random_sequences() {
    let mut sequences = 0u32;
    for seed in 0..1100u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = 1 + (seed as usize % 16);
        let p = 0.05 + 0.4 * ((seed % 7) as f64 / 6.0);
        let (g, _) = generators_er(n, p, &mut rng);
        let mut engine = dmis_core::Engine::builder()
            .graph(g)
            .seed(seed ^ 0x5EED)
            .build_unsharded();
        let mut oracle = BTreeOracle::mirror(engine.graph());
        let steps = 2 + (seed as usize % 9);
        for _ in 0..steps {
            let Some(change) =
                stream::random_change(engine.graph(), &ChurnConfig::default(), &mut rng)
            else {
                break;
            };
            let before = engine.mis();
            let deleted = match &change {
                TopologyChange::DeleteNode(v) => Some(*v),
                _ => None,
            };
            let receipt = engine.apply(&change).expect("valid change");
            oracle.apply(&change);

            let expect = oracle.greedy_mis(engine.priorities());
            assert_eq!(
                engine.mis(),
                expect,
                "dense output diverged from BTree oracle (seed {seed})"
            );
            let mut diff: BTreeSet<NodeId> = before
                .symmetric_difference(&engine.mis())
                .copied()
                .collect();
            if let Some(v) = deleted {
                diff.remove(&v);
            }
            assert_eq!(
                diff,
                receipt.adjusted_nodes(),
                "receipt diverged from output delta (seed {seed})"
            );
        }
        engine.assert_internally_consistent();
        sequences += 1;
    }
    assert!(sequences >= 1000, "ran only {sequences} sequences");
}

/// Batch updates settle one merged dirty-set but must land on the same
/// output as the sequential BTree oracle.
#[test]
fn batched_dense_engine_matches_btree_oracle() {
    for seed in 0..150u64 {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(97));
        let (g, _) = generators_er(12 + (seed as usize % 8), 0.25, &mut rng);
        let mut engine = dmis_core::Engine::builder()
            .graph(g)
            .seed(seed)
            .build_unsharded();
        let mut oracle = BTreeOracle::mirror(engine.graph());
        // Build a valid batch against a shadow copy.
        let mut shadow = engine.graph().clone();
        let mut batch = Vec::new();
        for _ in 0..5 {
            if let Some(change) =
                stream::random_change(&shadow, &ChurnConfig::edges_only(), &mut rng)
            {
                change.apply(&mut shadow).expect("valid");
                batch.push(change);
            }
        }
        engine.apply_batch(&batch).expect("valid batch");
        for change in &batch {
            oracle.apply(change);
        }
        assert_eq!(engine.mis(), oracle.greedy_mis(engine.priorities()));
        engine.assert_internally_consistent();
    }
}

fn generators_er(n: usize, p: f64, rng: &mut StdRng) -> (DynGraph, Vec<NodeId>) {
    dmis_graph::generators::erdos_renyi(n, p, rng)
}
