//! Sharding- and parallel-equivalence property suite — **generic over
//! [`DynamicMis`]**.
//!
//! Three engines must be observationally identical on every change
//! stream: the unsharded [`dmis_core::MisEngine`] (the oracle for outputs
//! and adjustment sets), the K-shard [`dmis_core::ShardedMisEngine`], and
//! the thread-executed [`dmis_core::ParallelShardedMisEngine`]. Since the
//! unified-API redesign the suite drives every engine through one code
//! path: each is built by [`Engine::builder`] as a `Box<dyn DynamicMis>`,
//! and the replay loop only ever sees the trait — the per-engine copies
//! of this driver are gone. The sharded engines must agree with the
//! oracle on the MIS and the adjustment set after every prefix; the
//! parallel engines must additionally be **bit-identical to the
//! sequential sharded engine on the whole receipt** — flip log, handoffs,
//! shard runs, epochs — for every layout × thread count, with the spawn
//! threshold forced to zero so worker threads really run. The sequences
//! are biased toward *boundary churn* — random edge/node insert/delete
//! streams whose edges overwhelmingly span shard boundaries under
//! striping, plus adversarial stars whose leaves are dealt across all
//! shards — because cross-shard handoffs are exactly where a
//! scheduling-dependent divergence would hide.
//!
//! The `DMIS_PAR_THREADS` environment variable appends an extra thread
//! count to the tested axis; CI's `parallel-determinism` matrix job sets
//! it to {1, 2, 8} to hunt nondeterminism under real schedulers.

use std::collections::BTreeSet;

use dmis_core::{DynamicMis, Engine, PriorityMap, UpdateReceipt};
use dmis_graph::stream::{self, ChurnConfig};
use dmis_graph::{generators, DynGraph, NodeId, ShardLayout};
use rand::rngs::StdRng;
use rand::SeedableRng;

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 7];

/// Worker-thread counts exercised by the parallel engines: {1, 2, 4}
/// plus whatever CI injects through `DMIS_PAR_THREADS`.
fn thread_axis() -> Vec<usize> {
    let mut axis = vec![1, 2, 4];
    if let Some(extra) = std::env::var("DMIS_PAR_THREADS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
    {
        if !axis.contains(&extra) {
            axis.push(extra);
        }
    }
    axis
}

/// One engine under test: the boxed trait object plus the axes it was
/// built with (for failure labels and for pairing parallel engines with
/// their sequential counterparts).
struct Subject {
    label: String,
    /// Shard-count index into `SHARD_COUNTS` for parallel engines, so a
    /// receipt can be checked against the sequential engine of the same
    /// layout; `None` for sequential subjects.
    paired_with: Option<usize>,
    engine: Box<dyn DynamicMis + Send>,
}

/// Builds the full engine matrix for one stream: the unsharded oracle,
/// one sequential sharded engine per K, and one parallel engine per
/// K × thread count — all through [`Engine::builder`], all driven as
/// `dyn DynamicMis`.
fn subjects(
    g: &DynGraph,
    priorities: Option<&PriorityMap>,
    seed: u64,
) -> (Box<dyn DynamicMis + Send>, Vec<Subject>) {
    let base = |k: Option<usize>| {
        let mut b = Engine::builder().graph(g.clone()).seed(seed);
        if let Some(p) = priorities {
            b = b.priorities(p.clone());
        }
        if let Some(k) = k {
            b = b.sharding(ShardLayout::striped(k));
        }
        b
    };
    let oracle = base(None).build();
    let mut list = Vec::new();
    for &k in &SHARD_COUNTS {
        list.push(Subject {
            label: format!("K={k}"),
            paired_with: None,
            engine: base(Some(k)).build(),
        });
    }
    for (ki, &k) in SHARD_COUNTS.iter().enumerate() {
        for &t in &thread_axis() {
            list.push(Subject {
                label: format!("K={k} threads={t}"),
                paired_with: Some(ki),
                engine: base(Some(k)).threads(t).spawn_threshold(0).build(),
            });
        }
    }
    (oracle, list)
}

/// Drives the same change stream through the whole engine matrix,
/// asserting agreement after every single change: outputs and adjustment
/// sets against the oracle, full receipts between the sequential and
/// parallel coordinators.
fn assert_equivalent_on_stream(
    g: &DynGraph,
    seed: u64,
    steps: usize,
    cfg: &ChurnConfig,
    rng: &mut StdRng,
) {
    let (mut plain, mut matrix) = subjects(g, None, seed);
    for s in &matrix {
        assert_eq!(
            s.engine.mis(),
            plain.mis(),
            "{} initial greedy MIS diverged",
            s.label
        );
    }
    for _ in 0..steps {
        let Some(change) = stream::random_change(plain.graph(), cfg, rng) else {
            break;
        };
        let receipt = plain.apply(&change).expect("valid change");
        let mut sequential_receipts: Vec<UpdateReceipt> = Vec::with_capacity(SHARD_COUNTS.len());
        for s in &mut matrix {
            let r = s.engine.apply(&change).expect("valid change");
            match s.paired_with {
                None => {
                    assert_eq!(
                        s.engine.mis(),
                        plain.mis(),
                        "{} output diverged (seed {seed})",
                        s.label
                    );
                    assert_eq!(
                        r.adjusted_nodes(),
                        receipt.adjusted_nodes(),
                        "{} adjustment set diverged (seed {seed})",
                        s.label
                    );
                    sequential_receipts.push(r);
                }
                Some(ki) => {
                    assert_eq!(
                        r, sequential_receipts[ki],
                        "{} receipt diverged from sequential (seed {seed})",
                        s.label
                    );
                }
            }
        }
    }
    for s in &matrix {
        assert_eq!(s.engine.mis(), plain.mis(), "{} final MIS", s.label);
        s.engine.assert_internally_consistent();
    }
}

/// ≥ 1000 random insert/delete sequences across K ∈ {1, 2, 4, 7} ×
/// threads ∈ {1, 2, 4}: after every change, every sharded engine's MIS is
/// bit-identical to the unsharded engine's, and every parallel engine's
/// receipt is bit-identical to its sequential counterpart's.
#[test]
fn sharded_engines_match_unsharded_over_random_sequences() {
    let per_stream = (SHARD_COUNTS.len() * (1 + thread_axis().len())) as u32;
    let mut sequences = 0u32;
    for seed in 0..100u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = 2 + (seed as usize % 18);
        let p = 0.05 + 0.4 * ((seed % 7) as f64 / 6.0);
        let (g, _) = generators::erdos_renyi(n, p, &mut rng);
        let steps = 3 + (seed as usize % 10);
        assert_equivalent_on_stream(&g, seed ^ 0x5AAD, steps, &ChurnConfig::default(), &mut rng);
        // One stream is checked against 4 sequential layouts plus
        // 4 × |threads| parallel engines, each an engine-vs-oracle
        // sequence.
        sequences += per_stream;
    }
    assert!(sequences >= 1000, "ran only {sequences} sequences");
}

/// Stars spanning shard boundaries: under striping every leaf of a star
/// centered at node 0 lives on a rotating shard, so deleting the center
/// is the worst-case all-handoff promotion cascade; rebuilding it
/// exercises boundary-crossing inserts. The whole matrix (including the
/// prescribed-π axis) runs through the builder's `priorities` axis.
#[test]
fn boundary_spanning_stars_settle_identically() {
    for leaves in [5usize, 8, 13, 21] {
        let (g, ids) = generators::star(leaves + 1);
        // Center first in π: MIS = {center}; all leaves promote on its
        // deletion, each promotion notified across a boundary.
        let pm = PriorityMap::from_order(&ids);
        let (mut plain, mut matrix) = subjects(&g, Some(&pm), 0);
        let oracle_receipt = plain.remove_node(ids[0]).expect("center exists");
        assert_eq!(oracle_receipt.adjustments(), leaves, "all leaves join");
        let mut sequential_receipts: Vec<UpdateReceipt> = Vec::new();
        for s in &mut matrix {
            let r = s.engine.remove_node(ids[0]).expect("center exists");
            assert_eq!(r.adjustments(), leaves, "all leaves join ({})", s.label);
            match s.paired_with {
                None => {
                    if s.label != "K=1" {
                        assert!(
                            r.cross_shard_handoffs() > 0,
                            "star cascade must cross boundaries ({})",
                            s.label
                        );
                    }
                    sequential_receipts.push(r);
                }
                Some(ki) => {
                    // The all-handoff promotion cascade is the worst case
                    // for a scheduling bug: demand the receipt bit for bit.
                    assert_eq!(
                        r, sequential_receipts[ki],
                        "{} star receipt diverged",
                        s.label
                    );
                }
            }
            assert_eq!(s.engine.mis(), plain.mis(), "{}", s.label);
            s.engine.assert_internally_consistent();
        }
    }
}

/// A star wired up edge by edge *through* the engines (crossing a shard
/// boundary on every insert), then torn down: outputs agree on every
/// prefix.
#[test]
fn incremental_star_churn_agrees_on_every_prefix() {
    for &k in &SHARD_COUNTS {
        let (g, ids) = DynGraph::with_nodes(9);
        let pm = PriorityMap::from_order(&ids);
        let mut plain = Engine::builder()
            .graph(g.clone())
            .priorities(pm.clone())
            .seed(1)
            .build();
        let mut engine = Engine::builder()
            .graph(g)
            .priorities(pm)
            .seed(1)
            .sharding(ShardLayout::striped(k))
            .build();
        for &leaf in &ids[1..] {
            plain.insert_edge(ids[0], leaf).expect("valid");
            engine.insert_edge(ids[0], leaf).expect("valid");
            assert_eq!(engine.mis(), plain.mis(), "grow, K={k}");
        }
        for &leaf in &ids[1..] {
            plain.remove_edge(ids[0], leaf).expect("valid");
            engine.remove_edge(ids[0], leaf).expect("valid");
            assert_eq!(engine.mis(), plain.mis(), "shrink, K={k}");
        }
        engine.assert_internally_consistent();
    }
}

/// Batched boundary churn (including node inserts wired across shards and
/// deletes of just-inserted nodes) lands on the same output as the
/// unsharded engine's batch path.
#[test]
fn batched_boundary_churn_matches_unsharded() {
    for seed in 0..60u64 {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(131));
        let (g, _) = generators::erdos_renyi(12 + (seed as usize % 8), 0.25, &mut rng);
        // Build a valid batch against a shadow copy.
        let mut shadow = g.clone();
        let mut batch = Vec::new();
        for _ in 0..6 {
            if let Some(change) = stream::random_change(&shadow, &ChurnConfig::default(), &mut rng)
            {
                change.apply(&mut shadow).expect("valid");
                batch.push(change);
            }
        }
        let (mut plain, mut matrix) = subjects(&g, None, seed);
        plain.apply_batch(&batch).expect("valid batch");
        let mut sequential_receipts = Vec::new();
        for s in &mut matrix {
            let receipt = s.engine.apply_batch(&batch).expect("valid batch");
            assert_eq!(s.engine.mis(), plain.mis(), "{} seed={seed}", s.label);
            s.engine.assert_internally_consistent();
            match s.paired_with {
                None => sequential_receipts.push(receipt),
                // Batches are where threads actually engage (many shards
                // seeded per epoch): the parallel batch receipt must
                // still be bit-identical to the sequential one.
                Some(ki) => assert_eq!(receipt, sequential_receipts[ki], "{} seed={seed}", s.label),
            }
        }
    }
}

/// Blocked layouts (ranges of consecutive identifiers per shard) are
/// equivalent too — the layout only moves the boundaries, never the
/// output — and the parallel executor tracks the sequential receipts on
/// them just like on striping.
#[test]
fn blocked_layouts_are_equivalent_as_well() {
    for seed in 0..60u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let (g, _) = generators::erdos_renyi(20, 0.2, &mut rng);
        let mut plain = Engine::builder().graph(g.clone()).seed(seed).build();
        let layouts = [(2usize, 3u64), (4, 2), (3, 5)];
        let mut engines: Vec<Box<dyn DynamicMis + Send>> = layouts
            .iter()
            .map(|&(k, b)| {
                Engine::builder()
                    .graph(g.clone())
                    .seed(seed)
                    .sharding(ShardLayout::blocked(k, b))
                    .build()
            })
            .collect();
        let mut parallels: Vec<Box<dyn DynamicMis + Send>> = layouts
            .iter()
            .map(|&(k, b)| {
                Engine::builder()
                    .graph(g.clone())
                    .seed(seed)
                    .sharding(ShardLayout::blocked(k, b))
                    .threads(2)
                    .spawn_threshold(0)
                    .build()
            })
            .collect();
        for _ in 0..8 {
            let Some(change) =
                stream::random_change(plain.graph(), &ChurnConfig::default(), &mut rng)
            else {
                break;
            };
            plain.apply(&change).expect("valid");
            for (i, (engine, par)) in engines.iter_mut().zip(&mut parallels).enumerate() {
                let r = engine.apply(&change).expect("valid");
                assert_eq!(engine.mis(), plain.mis(), "layout {:?}", layouts[i]);
                let rp = par.apply(&change).expect("valid");
                assert_eq!(rp, r, "parallel diverged on {:?}", layouts[i]);
            }
        }
    }
}

/// The handoff counter is exact on a hand-built two-shard cascade.
#[test]
fn handoff_accounting_is_exact_on_a_path() {
    // Path n0-n1-n2-n3, priorities in id order, striped over 2 shards:
    // shard 0 owns {n0, n2}, shard 1 owns {n1, n3}. Deleting {n0, n1}
    // flips n1 (in), n2 (out), n3 (in); every notification crosses the
    // boundary, and the initial seed routing of n1 from n0's shard does
    // too.
    let (mut g, ids) = DynGraph::with_nodes(4);
    for w in ids.windows(2) {
        g.insert_edge(w[0], w[1]).unwrap();
    }
    let pm = PriorityMap::from_order(&ids);
    let mut engine = Engine::builder()
        .graph(g)
        .priorities(pm)
        .seed(0)
        .sharding(ShardLayout::striped(2))
        .build();
    let receipt = engine.remove_edge(ids[0], ids[1]).unwrap();
    let expected: BTreeSet<NodeId> = [ids[1], ids[2], ids[3]].into_iter().collect();
    assert_eq!(receipt.adjusted_nodes(), expected);
    // Seed n1 (cross), n1→n2 (cross), n2→n3 (cross): three handoffs.
    assert_eq!(receipt.cross_shard_handoffs(), 3);
    assert!(receipt.shard_runs() >= 2);
    engine.assert_internally_consistent();
}
