//! Sharding-equivalence property test.
//!
//! The K-shard [`ShardedMisEngine`] must be observationally identical to
//! the unsharded [`MisEngine`]: same seed, same change sequence,
//! bit-identical MIS after every prefix, and the same adjustment sets on
//! every receipt. The sequences here are biased toward *boundary churn* —
//! random edge/node insert/delete streams whose edges overwhelmingly span
//! shard boundaries under striping, plus adversarial stars whose leaves
//! are dealt across all shards — because cross-shard handoffs are exactly
//! where the sharded settle could diverge.

use std::collections::BTreeSet;

use dmis_core::{MisEngine, PriorityMap, ShardedMisEngine};
use dmis_graph::stream::{self, ChurnConfig};
use dmis_graph::{generators, DynGraph, NodeId, ShardLayout};
use rand::rngs::StdRng;
use rand::SeedableRng;

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 7];

/// Drives the same change stream through the unsharded engine and one
/// sharded engine per layout, asserting output and receipt agreement
/// after every single change.
fn assert_equivalent_on_stream(
    g: &DynGraph,
    seed: u64,
    steps: usize,
    cfg: &ChurnConfig,
    rng: &mut StdRng,
) {
    let mut plain = MisEngine::from_graph(g.clone(), seed);
    let mut sharded: Vec<ShardedMisEngine> = SHARD_COUNTS
        .iter()
        .map(|&k| ShardedMisEngine::from_graph(g.clone(), ShardLayout::striped(k), seed))
        .collect();
    for engine in &sharded {
        assert_eq!(engine.mis(), plain.mis(), "initial greedy MIS diverged");
    }
    for _ in 0..steps {
        let Some(change) = stream::random_change(plain.graph(), cfg, rng) else {
            break;
        };
        let receipt = plain.apply(&change).expect("valid change");
        for engine in &mut sharded {
            let r = engine.apply(&change).expect("valid change");
            assert_eq!(
                engine.mis(),
                plain.mis(),
                "K={} output diverged (seed {seed})",
                engine.shard_count()
            );
            assert_eq!(
                r.adjusted_nodes(),
                receipt.adjusted_nodes(),
                "K={} adjustment set diverged (seed {seed})",
                engine.shard_count()
            );
        }
    }
    for engine in &sharded {
        engine.assert_internally_consistent();
    }
}

/// ≥ 1000 random insert/delete sequences across K ∈ {1, 2, 4, 7}: after
/// every change, every sharded engine's MIS is bit-identical to the
/// unsharded engine's.
#[test]
fn sharded_engines_match_unsharded_over_random_sequences() {
    let mut sequences = 0u32;
    for seed in 0..260u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let n = 2 + (seed as usize % 18);
        let p = 0.05 + 0.4 * ((seed % 7) as f64 / 6.0);
        let (g, _) = generators::erdos_renyi(n, p, &mut rng);
        let steps = 3 + (seed as usize % 10);
        assert_equivalent_on_stream(&g, seed ^ 0x5AAD, steps, &ChurnConfig::default(), &mut rng);
        // One stream checked against 4 layouts = 4 engine-vs-oracle
        // sequences.
        sequences += SHARD_COUNTS.len() as u32;
    }
    assert!(sequences >= 1000, "ran only {sequences} sequences");
}

/// Stars spanning shard boundaries: under striping every leaf of a star
/// centered at node 0 lives on a rotating shard, so deleting the center
/// is the worst-case all-handoff promotion cascade; rebuilding it exercises
/// boundary-crossing inserts.
#[test]
fn boundary_spanning_stars_settle_identically() {
    for leaves in [5usize, 8, 13, 21] {
        let (g, ids) = generators::star(leaves + 1);
        // Center first in π: MIS = {center}; all leaves promote on its
        // deletion, each promotion notified across a boundary.
        let pm = PriorityMap::from_order(&ids);
        let mut plain = MisEngine::from_parts(g.clone(), pm.clone(), 0);
        for &k in &SHARD_COUNTS {
            let mut engine =
                ShardedMisEngine::from_parts(g.clone(), pm.clone(), ShardLayout::striped(k), 0);
            assert_eq!(engine.mis(), plain.mis());
            let receipt = engine.remove_node(ids[0]).expect("center exists");
            assert_eq!(receipt.adjustments(), leaves, "all leaves join (K={k})");
            if k > 1 {
                assert!(
                    receipt.cross_shard_handoffs() > 0,
                    "star cascade must cross boundaries (K={k})"
                );
            }
            engine.assert_internally_consistent();
        }
        // Keep `plain` in lockstep for the next leaf count's sanity check.
        plain.remove_node(ids[0]).expect("center exists");
    }
}

/// A star wired up edge by edge *through* the engines (crossing a shard
/// boundary on every insert), then torn down: outputs agree on every
/// prefix.
#[test]
fn incremental_star_churn_agrees_on_every_prefix() {
    for &k in &SHARD_COUNTS {
        let (g, ids) = DynGraph::with_nodes(9);
        let pm = PriorityMap::from_order(&ids);
        let mut plain = MisEngine::from_parts(g.clone(), pm.clone(), 1);
        let mut engine = ShardedMisEngine::from_parts(g, pm, ShardLayout::striped(k), 1);
        for &leaf in &ids[1..] {
            plain.insert_edge(ids[0], leaf).expect("valid");
            engine.insert_edge(ids[0], leaf).expect("valid");
            assert_eq!(engine.mis(), plain.mis(), "grow, K={k}");
        }
        for &leaf in &ids[1..] {
            plain.remove_edge(ids[0], leaf).expect("valid");
            engine.remove_edge(ids[0], leaf).expect("valid");
            assert_eq!(engine.mis(), plain.mis(), "shrink, K={k}");
        }
        engine.assert_internally_consistent();
    }
}

/// Batched boundary churn (including node inserts wired across shards and
/// deletes of just-inserted nodes) lands on the same output as the
/// unsharded engine's batch path.
#[test]
fn batched_boundary_churn_matches_unsharded() {
    for seed in 0..120u64 {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(131));
        let (g, _) = generators::erdos_renyi(12 + (seed as usize % 8), 0.25, &mut rng);
        // Build a valid batch against a shadow copy.
        let mut shadow = g.clone();
        let mut batch = Vec::new();
        for _ in 0..6 {
            if let Some(change) = stream::random_change(&shadow, &ChurnConfig::default(), &mut rng)
            {
                change.apply(&mut shadow).expect("valid");
                batch.push(change);
            }
        }
        let mut plain = MisEngine::from_graph(g.clone(), seed);
        plain.apply_batch(&batch).expect("valid batch");
        for &k in &SHARD_COUNTS {
            let mut engine = ShardedMisEngine::from_graph(g.clone(), ShardLayout::striped(k), seed);
            engine.apply_batch(&batch).expect("valid batch");
            assert_eq!(engine.mis(), plain.mis(), "K={k} seed={seed}");
            engine.assert_internally_consistent();
        }
    }
}

/// Blocked layouts (ranges of consecutive identifiers per shard) are
/// equivalent too — the layout only moves the boundaries, never the
/// output.
#[test]
fn blocked_layouts_are_equivalent_as_well() {
    for seed in 0..60u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let (g, _) = generators::erdos_renyi(20, 0.2, &mut rng);
        let mut plain = MisEngine::from_graph(g.clone(), seed);
        let mut engines: Vec<ShardedMisEngine> = [(2usize, 3u64), (4, 2), (3, 5)]
            .iter()
            .map(|&(k, b)| {
                ShardedMisEngine::from_graph(g.clone(), ShardLayout::blocked(k, b), seed)
            })
            .collect();
        for _ in 0..8 {
            let Some(change) =
                stream::random_change(plain.graph(), &ChurnConfig::default(), &mut rng)
            else {
                break;
            };
            plain.apply(&change).expect("valid");
            for engine in &mut engines {
                engine.apply(&change).expect("valid");
                assert_eq!(engine.mis(), plain.mis(), "{:?}", engine.layout());
            }
        }
    }
}

/// The handoff counter is exact on a hand-built two-shard cascade.
#[test]
fn handoff_accounting_is_exact_on_a_path() {
    // Path n0-n1-n2-n3, priorities in id order, striped over 2 shards:
    // shard 0 owns {n0, n2}, shard 1 owns {n1, n3}. Deleting {n0, n1}
    // flips n1 (in), n2 (out), n3 (in); every notification crosses the
    // boundary, and the initial seed routing of n1 from n0's shard does
    // too.
    let (mut g, ids) = DynGraph::with_nodes(4);
    for w in ids.windows(2) {
        g.insert_edge(w[0], w[1]).unwrap();
    }
    let pm = PriorityMap::from_order(&ids);
    let mut engine = ShardedMisEngine::from_parts(g, pm, ShardLayout::striped(2), 0);
    let receipt = engine.remove_edge(ids[0], ids[1]).unwrap();
    let expected: BTreeSet<NodeId> = [ids[1], ids[2], ids[3]].into_iter().collect();
    assert_eq!(receipt.adjusted_nodes(), expected);
    // Seed n1 (cross), n1→n2 (cross), n2→n3 (cross): three handoffs.
    assert_eq!(receipt.cross_shard_handoffs(), 3);
    assert!(receipt.shard_runs() >= 2);
    engine.assert_internally_consistent();
}
