//! End-to-end checks for the scale-tier stream families (power-law churn,
//! community churn, temporal sliding window): every family must drive a
//! watermarked [`IngestSession`] — the coalescing ingestion path — without
//! a single validity error, and the session's final MIS must match
//! sequential unbatched application of the same raw stream (history
//! independence makes the two comparable). A separate check pins the
//! structural reason the Chung–Lu family exists: its hubs reach `√n`
//! degree, the regime the chunked adjacency layout is built for.

use dmis_core::{Engine, IngestSession};
use dmis_graph::{generators, stream, DynGraph, ShardLayout, TopologyChange};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Pushes `raw` through a watermarked session on a (K-sharded) engine and
/// checks it against a sequential oracle; every push and flush must be
/// `Ok` — a coalescer that reorders into invalidity would surface here.
fn ingest_matches_sequential(g: &DynGraph, raw: &[TopologyChange], seed: u64) {
    let mut oracle = Engine::builder().graph(g.clone()).seed(seed).build();
    for c in raw {
        oracle.apply(c).expect("raw stream is sequentially valid");
    }
    for k in [1usize, 4] {
        let mut engine = Engine::builder()
            .graph(g.clone())
            .seed(seed)
            .sharding(ShardLayout::striped(k))
            .build();
        let mut session = IngestSession::with_watermark(&mut *engine, 8);
        for c in raw {
            session
                .push(c.clone())
                .unwrap_or_else(|e| panic!("K={k}: coalesced window rejected {c:?}: {e}"));
        }
        session.flush().expect("tail window is valid");
        assert_eq!(engine.mis(), oracle.mis(), "K={k}");
        engine.assert_internally_consistent();
        engine.check_invariant().expect("MIS invariant holds");
    }
}

#[test]
fn power_law_churn_passes_ingest_coalescing() {
    for seed in 0..4u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let (g, ids) = generators::chung_lu(120, 6.0, 2.5, &mut rng);
        let raw = stream::power_law_churn(&g, &ids, 2.5, 160, &mut rng);
        assert_eq!(raw.len(), 160);
        ingest_matches_sequential(&g, &raw, 50 + seed);
    }
}

#[test]
fn community_churn_passes_ingest_coalescing() {
    for seed in 0..4u64 {
        let mut rng = StdRng::seed_from_u64(10 + seed);
        let (g, ids) = generators::gnm(120, 180, &mut rng);
        let raw = stream::community_churn(&g, &ids, 6, 0.1, 160, &mut rng);
        assert_eq!(raw.len(), 160);
        ingest_matches_sequential(&g, &raw, 60 + seed);
    }
}

#[test]
fn sliding_window_passes_ingest_coalescing() {
    for seed in 0..4u64 {
        let mut rng = StdRng::seed_from_u64(20 + seed);
        let (g, ids) = generators::gnm(100, 120, &mut rng);
        let raw = stream::sliding_window_stream(&g, &ids, 24, 200, &mut rng);
        assert_eq!(raw.len(), 200);
        ingest_matches_sequential(&g, &raw, 70 + seed);
    }
}

#[test]
fn fresh_pair_stream_passes_ingest_coalescing() {
    for seed in 0..4u64 {
        let mut rng = StdRng::seed_from_u64(30 + seed);
        let (g, ids) = generators::gnm(120, 90, &mut rng);
        let raw = stream::fresh_pair_stream(&g, &ids, 160, &mut rng);
        assert_eq!(raw.len(), 160);
        ingest_matches_sequential(&g, &raw, 80 + seed);
    }
}

#[test]
fn barrier_churn_passes_ingest_coalescing() {
    for seed in 0..4u64 {
        let mut rng = StdRng::seed_from_u64(40 + seed);
        let (g, _) = generators::gnm(120, 150, &mut rng);
        let pool = stream::random_pair_pool(&g, 24, &mut rng);
        let raw = stream::barrier_churn(&g, &pool, 4, 6, 160, &mut rng);
        assert_eq!(raw.len(), 160);
        ingest_matches_sequential(&g, &raw, 90 + seed);
    }
}

/// The snapshot read path under session coalescing: for the
/// sliding-window and community-churn families at watermarks
/// W ∈ {1, 4}, every auto-flush publishes exactly one epoch, the
/// published membership equals an unbatched oracle replayed to the same
/// stream prefix, and between flushes the reader's epoch stays pinned
/// at the last flush — it can never observe anything older (the
/// staleness bound), and queued-but-unflushed changes never leak into a
/// snapshot.
#[test]
fn session_flushes_publish_exactly_the_flush_boundaries() {
    let mut rng = StdRng::seed_from_u64(31);
    let (g1, ids1) = generators::gnm(80, 100, &mut rng);
    let sliding = stream::sliding_window_stream(&g1, &ids1, 16, 120, &mut rng);
    let (g2, ids2) = generators::gnm(80, 120, &mut rng);
    let community = stream::community_churn(&g2, &ids2, 4, 0.1, 120, &mut rng);
    for (family, g, raw) in [("sliding", &g1, &sliding), ("community", &g2, &community)] {
        for watermark in [1usize, 4] {
            let mut oracle = Engine::builder().graph(g.clone()).seed(41).build();
            let mut oracle_pos = 0usize;
            let mut engine = Engine::builder()
                .graph(g.clone())
                .seed(41)
                .sharding(ShardLayout::striped(2))
                .build();
            let reader = engine.reader();
            assert_eq!(reader.epoch(), 0, "{family}: attach is epoch 0");
            let mut session = IngestSession::with_watermark(&mut *engine, watermark);
            let mut flushes = 0u64;
            for (i, c) in raw.iter().enumerate() {
                let outcome = session.push(c.clone()).expect("valid window");
                if outcome.is_some() {
                    flushes += 1;
                    // History independence makes the coalesced window
                    // comparable to the raw prefix.
                    while oracle_pos <= i {
                        oracle.apply(&raw[oracle_pos]).expect("valid");
                        oracle_pos += 1;
                    }
                    let snap = reader.snapshot();
                    assert_eq!(
                        snap.epoch(),
                        flushes,
                        "{family} W={watermark}: one epoch per flush"
                    );
                    let published: Vec<_> = snap.iter().collect();
                    let expected: Vec<_> = oracle.mis().into_iter().collect();
                    assert_eq!(
                        published, expected,
                        "{family} W={watermark}: flush {flushes} membership"
                    );
                } else {
                    // Staleness bound between flushes: the channel still
                    // carries exactly the last flush boundary — never
                    // older, and never a half-window preview.
                    assert_eq!(
                        reader.epoch(),
                        flushes,
                        "{family} W={watermark}: no publication without a flush"
                    );
                }
            }
            session.flush().expect("tail window");
            flushes += 1;
            assert_eq!(reader.epoch(), flushes, "{family}: tail flush published");
            while oracle_pos < raw.len() {
                oracle.apply(&raw[oracle_pos]).expect("valid");
                oracle_pos += 1;
            }
            let snap = reader.snapshot();
            let published: Vec<_> = snap.iter().collect();
            let expected: Vec<_> = oracle.mis().into_iter().collect();
            assert_eq!(published, expected, "{family} W={watermark}: final state");
            engine.assert_internally_consistent();
        }
    }
}

/// The hub degrees of the Chung–Lu family really scale like `√n`: averaged
/// over seeds, the realized maximum degree clears `√n` with room (the
/// weight cap targets `√(8n) ≈ 2.8·√n` for the heaviest node).
#[test]
fn chung_lu_max_degree_scales_like_sqrt_n() {
    let n = 4096usize;
    let seeds = 3u64;
    let mut total = 0usize;
    for seed in 0..seeds {
        let mut rng = StdRng::seed_from_u64(seed);
        let (g, _) = generators::chung_lu(n, 8.0, 2.5, &mut rng);
        total += g.max_degree();
    }
    let average = total / seeds as usize;
    let sqrt_n = (n as f64).sqrt() as usize;
    assert!(
        average >= sqrt_n,
        "average max degree {average} fell below √n = {sqrt_n}"
    );
}

/// The power-law stream keeps hammering the same hubs, so the coalescer
/// sees real cancel opportunities: a long window coalesces away a
/// measurable fraction of the pushed changes.
#[test]
fn power_law_churn_gives_the_coalescer_real_work() {
    let mut rng = StdRng::seed_from_u64(99);
    let (g, ids) = generators::chung_lu(48, 6.0, 2.5, &mut rng);
    let raw = stream::power_law_churn(&g, &ids, 2.5, 400, &mut rng);
    let mut engine = Engine::builder().graph(g).seed(7).build();
    let mut session = IngestSession::new(&mut *engine);
    for c in &raw {
        session.push(c.clone()).expect("no watermark, cannot fail");
    }
    let receipt = session.flush().expect("valid window");
    assert!(
        receipt.coalesced_changes() > 0,
        "revisiting hub edges must cancel at least one opposing pair"
    );
}
