//! Property-based tests for the core engine, template, and theory modules.
//!
//! Strategy: graphs and update streams are derived from proptest-chosen
//! seeds and size parameters, so every failure shrinks to a small seed that
//! reproduces deterministically.

use std::collections::BTreeSet;

use dmis_core::{invariant, static_greedy, template, theory, DynamicMis, PriorityMap};
use dmis_graph::stream::{self, ChurnConfig};
use dmis_graph::{generators, NodeId, TopologyChange};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn random_priorities(g: &dmis_graph::DynGraph, seed: u64) -> PriorityMap {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut pm = PriorityMap::new();
    for v in g.nodes() {
        pm.assign(v, &mut rng);
    }
    pm
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The engine's output equals the static greedy MIS of the current
    /// graph under the current priorities, after any update sequence —
    /// this is history independence at fixed randomness (Section 5).
    #[test]
    fn engine_tracks_static_greedy(
        graph_seed in any::<u64>(),
        engine_seed in any::<u64>(),
        churn_seed in any::<u64>(),
        n in 1usize..24,
        p in 0.05f64..0.6,
        steps in 0usize..120,
    ) {
        let mut rng = StdRng::seed_from_u64(graph_seed);
        let (g, _) = generators::erdos_renyi(n, p, &mut rng);
        let mut engine = dmis_core::Engine::builder().graph(g).seed(engine_seed).build_unsharded();
        let mut churn = StdRng::seed_from_u64(churn_seed);
        for _ in 0..steps {
            let Some(change) =
                stream::random_change(engine.graph(), &ChurnConfig::default(), &mut churn)
            else { break };
            engine.apply(&change).unwrap();
        }
        let ground_truth = static_greedy::greedy_mis(engine.graph(), engine.priorities());
        prop_assert_eq!(engine.mis(), ground_truth);
        prop_assert!(engine.check_invariant().is_ok());
        prop_assert!(invariant::is_maximal_independent_set(engine.graph(), &engine.mis()));
    }

    /// The adjustment set reported by a receipt is exactly the symmetric
    /// difference of outputs (modulo a deleted node, which leaves the
    /// output by definition).
    #[test]
    fn receipts_report_exact_adjustments(
        graph_seed in any::<u64>(),
        churn_seed in any::<u64>(),
        n in 2usize..20,
        steps in 1usize..60,
    ) {
        let mut rng = StdRng::seed_from_u64(graph_seed);
        let (g, _) = generators::erdos_renyi(n, 0.3, &mut rng);
        let mut engine = dmis_core::Engine::builder().graph(g).seed(graph_seed ^ 0xABCD).build_unsharded();
        let mut churn = StdRng::seed_from_u64(churn_seed);
        for _ in 0..steps {
            let Some(change) =
                stream::random_change(engine.graph(), &ChurnConfig::default(), &mut churn)
            else { break };
            let before = engine.mis();
            let deleted = match &change {
                TopologyChange::DeleteNode(v) => Some(*v),
                _ => None,
            };
            let receipt = engine.apply(&change).unwrap();
            let mut diff: BTreeSet<NodeId> =
                before.symmetric_difference(&engine.mis()).copied().collect();
            if let Some(v) = deleted {
                diff.remove(&v);
            }
            prop_assert_eq!(diff, receipt.adjusted_nodes());
        }
    }

    /// Template relaxation converges from ANY initial configuration to the
    /// greedy MIS — not just from one valid pre-change state.
    #[test]
    fn template_converges_from_arbitrary_state(
        graph_seed in any::<u64>(),
        pm_seed in any::<u64>(),
        initial_bits in any::<u64>(),
        n in 1usize..20,
        p in 0.05f64..0.7,
    ) {
        let mut rng = StdRng::seed_from_u64(graph_seed);
        let (g, ids) = generators::erdos_renyi(n, p, &mut rng);
        let pm = random_priorities(&g, pm_seed);
        let initial: BTreeSet<NodeId> = ids
            .iter()
            .enumerate()
            .filter(|(i, _)| initial_bits >> (i % 64) & 1 == 1)
            .map(|(_, &v)| v)
            .collect();
        let trace = template::relax(&g, &pm, &initial);
        prop_assert_eq!(trace.final_mis, static_greedy::greedy_mis(&g, &pm));
    }

    /// Lemma 2, machine-checked: for any graph, priorities, and single
    /// change, either v* is not minimal in S' and S = ∅, or S ⊆ S'.
    #[test]
    fn lemma2_holds(
        graph_seed in any::<u64>(),
        pm_seed in any::<u64>(),
        change_seed in any::<u64>(),
        n in 2usize..18,
        p in 0.05f64..0.7,
    ) {
        let mut rng = StdRng::seed_from_u64(graph_seed);
        let (g, _) = generators::erdos_renyi(n, p, &mut rng);
        let mut pm = random_priorities(&g, pm_seed);
        let mut change_rng = StdRng::seed_from_u64(change_seed);
        let Some(change) =
            stream::random_change(&g, &ChurnConfig::default(), &mut change_rng)
        else { return Ok(()) };
        if let TopologyChange::InsertNode { id, .. } = &change {
            pm.assign(*id, &mut change_rng);
        }
        let report = theory::check_lemma2_on(&g, &pm, &change);
        prop_assert!(report.holds(), "lemma 2 violated: {:?}", report);
    }

    /// S' always contains v* and never depends on whether v* is actually
    /// minimal in π (it is defined under π' where v* is forced first).
    #[test]
    fn s_prime_seeded_with_v_star(
        graph_seed in any::<u64>(),
        pm_seed in any::<u64>(),
        n in 2usize..16,
    ) {
        let mut rng = StdRng::seed_from_u64(graph_seed);
        let (g, _) = generators::erdos_renyi(n, 0.35, &mut rng);
        let pm = random_priorities(&g, pm_seed);
        let Some((u, v)) = generators::random_edge(&g, &mut rng) else { return Ok(()) };
        let mut g_new = g.clone();
        g_new.remove_edge(u, v).unwrap();
        let change = TopologyChange::DeleteEdge(u, v);
        let sp = theory::s_prime(&g, &g_new, &pm, &change);
        prop_assert!(sp.contains(&theory::v_star(&change, &pm)));
    }

    /// Greedy coloring is always proper and uses at most Δ+1 colors.
    #[test]
    fn greedy_coloring_proper(
        graph_seed in any::<u64>(),
        pm_seed in any::<u64>(),
        n in 1usize..24,
        p in 0.05f64..0.8,
    ) {
        let mut rng = StdRng::seed_from_u64(graph_seed);
        let (g, _) = generators::erdos_renyi(n, p, &mut rng);
        let pm = random_priorities(&g, pm_seed);
        let coloring = static_greedy::greedy_coloring(&g, &pm);
        let map: std::collections::BTreeMap<_, _> = coloring.iter().copied().collect();
        for key in g.edges() {
            let (a, b) = key.endpoints();
            prop_assert_ne!(map[&a], map[&b]);
        }
        for (_, c) in coloring {
            prop_assert!(c <= g.max_degree());
        }
    }
}
