//! Property suite for the [`FlushPolicy`] family under a manual test
//! clock — every auto-flush variant pinned against the sequential
//! oracle and its own documented boundary semantics:
//!
//! 1. **Policy-independent outputs.** Whatever boundaries a policy
//!    chooses, the final MIS equals unbatched sequential application
//!    (history independence, Section 5 of the paper).
//! 2. **Exact boundaries.** `Deadline` fires on the poll where the
//!    oldest queued push's age *reaches* the bound — one tick earlier
//!    it does not; `Either` fires on whichever leg trips first.
//! 3. **Adaptive clamp and convergence.** The smoother's depth stays
//!    inside `[min_depth, max_depth]` on arbitrary streams, walks to
//!    `min_depth` on a stationary anti-coalescing stream (fresh pairs,
//!    nothing ever cancels), and walks to `max_depth` on a stationary
//!    duplicate-collapse stream (every window coalesces to one change).
//! 4. **Receipt replay.** The receipts of a policy-driven run are
//!    bit-identical (full [`IngestReceipt`] equality, [`QueueDelay`]
//!    included) to a manual-flush replay at the same boundaries on a
//!    twin engine — a policy adds *when*, never *what*.
//!
//! Everything runs on the injectable [`ManualClock`], so there is not a
//! single nondeterministic observation in this file.

use std::sync::Arc;
use std::time::Duration;

use dmis_core::{
    AdaptiveConfig, DynamicMis, Engine, FlushPolicy, IngestReceipt, IngestSession, ManualClock,
};
use dmis_graph::stream;
use dmis_graph::{generators, DynGraph, ShardLayout, TopologyChange};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn engine(g: &DynGraph, k: usize, seed: u64) -> Box<dyn DynamicMis + Send> {
    Engine::builder()
        .graph(g.clone())
        .seed(seed)
        .sharding(ShardLayout::striped(k))
        .build()
}

/// Where in the drive cycle a flush fired: on the push itself (depth
/// leg) or on the post-advance poll (deadline leg / idle tick).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum FiredOn {
    Push,
    Poll,
    Tail,
}

/// Drives `stream` through a session under `policy`, advancing the
/// manual clock one `tick` per push (poll after each advance, as a
/// deadline-driven loop would), and returns every receipt annotated
/// with its firing instant, plus the session's final watermark.
fn drive(
    g: &DynGraph,
    k: usize,
    seed: u64,
    policy: FlushPolicy,
    stream: &[TopologyChange],
    tick: Duration,
) -> (Vec<(IngestReceipt, FiredOn)>, Option<usize>) {
    let clock = ManualClock::new();
    let mut session =
        IngestSession::with_policy_and_clock(engine(g, k, seed), policy, Arc::new(clock.clone()));
    let mut receipts = Vec::new();
    for c in stream {
        if let Some(r) = session.push(c.clone()).expect("valid stream") {
            receipts.push((r, FiredOn::Push));
        }
        clock.advance(tick);
        if let Some(r) = session.poll().expect("valid stream") {
            receipts.push((r, FiredOn::Poll));
        }
    }
    if session.queue_depth() > 0 {
        receipts.push((session.flush().expect("valid tail"), FiredOn::Tail));
    }
    let watermark = session.watermark();
    (receipts, watermark)
}

/// The four auto-flushing policies the suite sweeps.
fn policies() -> Vec<FlushPolicy> {
    vec![
        FlushPolicy::Depth(4),
        FlushPolicy::Deadline(Duration::from_millis(3)),
        FlushPolicy::Either(6, Duration::from_millis(4)),
        FlushPolicy::adaptive(),
    ]
}

#[test]
fn every_policy_matches_the_sequential_oracle() {
    for seed in 0..6u64 {
        let mut rng = StdRng::seed_from_u64(seed);
        let (g, _) = generators::erdos_renyi(24, 0.2, &mut rng);
        let pool = stream::random_pair_pool(&g, 10, &mut rng);
        let raw = stream::flapping_stream(&g, &pool, 48, false, &mut rng);
        for k in [1usize, 4] {
            let mut oracle = engine(&g, k, 99 + seed);
            for c in &raw {
                oracle.apply(c).expect("valid stream");
            }
            for policy in policies() {
                let clock = ManualClock::new();
                let mut session = IngestSession::with_policy_and_clock(
                    engine(&g, k, 99 + seed),
                    policy.clone(),
                    Arc::new(clock.clone()),
                );
                for c in &raw {
                    session.push(c.clone()).expect("valid stream");
                    clock.advance(Duration::from_millis(1));
                    session.poll().expect("valid stream");
                }
                session.flush().expect("valid tail");
                assert_eq!(
                    session.engine().mis(),
                    oracle.mis(),
                    "{policy:?} at K={k} diverged from sequential application"
                );
            }
        }
    }
}

#[test]
fn deadline_fires_exactly_at_the_boundary() {
    let (g, ids) = generators::cycle(8);
    let clock = ManualClock::new();
    let mut session = IngestSession::with_policy_and_clock(
        engine(&g, 1, 5),
        FlushPolicy::Deadline(Duration::from_millis(10)),
        Arc::new(clock.clone()),
    );
    session
        .push(TopologyChange::DeleteEdge(ids[0], ids[1]))
        .expect("valid");
    clock.advance(Duration::from_millis(9));
    assert!(
        session.poll().expect("valid").is_none(),
        "one tick early must not fire"
    );
    clock.advance(Duration::from_millis(1));
    let receipt = session
        .poll()
        .expect("valid")
        .expect("deadline reached fires");
    assert_eq!(receipt.pushed(), 1);
    assert_eq!(receipt.queue_delay().max_delay(), Duration::from_millis(10));
    assert!(
        session.poll().expect("valid").is_none(),
        "an empty window never deadline-fires"
    );
}

#[test]
fn either_fires_on_whichever_leg_trips_first() {
    let (g, ids) = generators::cycle(12);
    let policy = FlushPolicy::Either(3, Duration::from_millis(10));
    let clock = ManualClock::new();
    let mut session =
        IngestSession::with_policy_and_clock(engine(&g, 1, 6), policy, Arc::new(clock.clone()));
    // Depth leg: three rapid pushes flush with no clock movement.
    let mut receipt = None;
    for w in ids.windows(2).take(3) {
        receipt = session
            .push(TopologyChange::DeleteEdge(w[0], w[1]))
            .expect("valid");
    }
    let receipt = receipt.expect("third push hits the depth leg");
    assert_eq!(receipt.pushed(), 3);
    assert_eq!(receipt.queue_delay().max_delay(), Duration::ZERO);
    // Deadline leg: a single push ages to the bound before the window
    // could fill.
    session
        .push(TopologyChange::DeleteEdge(ids[6], ids[7]))
        .expect("valid");
    clock.advance(Duration::from_millis(10));
    let receipt = session
        .poll()
        .expect("valid")
        .expect("deadline leg fires on a 1-deep window");
    assert_eq!(receipt.pushed(), 1);
    assert_eq!(receipt.queue_delay().max_delay(), Duration::from_millis(10));
}

#[test]
fn adaptive_depth_stays_clamped_on_arbitrary_streams() {
    let cfg = AdaptiveConfig {
        min_depth: 2,
        max_depth: 12,
        ..AdaptiveConfig::default()
    };
    for seed in 0..8u64 {
        let mut rng = StdRng::seed_from_u64(100 + seed);
        let (g, _) = generators::erdos_renyi(20, 0.25, &mut rng);
        let pool = stream::random_pair_pool(&g, 6, &mut rng);
        let raw = stream::flapping_stream(&g, &pool, 64, false, &mut rng);
        let clock = ManualClock::new();
        let mut session = IngestSession::with_policy_and_clock(
            engine(&g, 1, seed),
            FlushPolicy::Adaptive(cfg.clone()),
            Arc::new(clock.clone()),
        );
        for c in &raw {
            let w = session.watermark().expect("adaptive always has a depth");
            assert!((2..=12).contains(&w), "depth {w} escaped the clamp");
            session.push(c.clone()).expect("valid stream");
            clock.advance(Duration::from_millis(1));
        }
    }
}

#[test]
fn adaptive_walks_to_min_depth_on_anti_coalescing_streams() {
    let mut rng = StdRng::seed_from_u64(41);
    let (g, ids) = generators::gnm(64, 48, &mut rng);
    // Fresh pairs: no key revisited, so no window ever coalesces and
    // the observed coalesce fraction is exactly 0 at every flush.
    let raw = stream::fresh_pair_stream(&g, &ids, 600, &mut rng);
    let (receipts, watermark) = drive(
        &g,
        1,
        17,
        FlushPolicy::adaptive(),
        &raw,
        Duration::from_millis(1),
    );
    assert!(!receipts.is_empty());
    assert_eq!(
        watermark,
        Some(AdaptiveConfig::default().min_depth),
        "a stream that never coalesces drives the smoother to per-change flushing"
    );
    assert!(
        receipts.iter().all(|(r, _)| r.coalesced_changes() == 0),
        "fresh pairs never coalesce"
    );
}

#[test]
fn adaptive_walks_to_max_depth_on_duplicate_collapse_streams() {
    let (g, ids) = generators::cycle(6);
    // One edge toggled forever: every window collapses to at most one
    // surviving change, so the observed coalesce fraction approaches 1.
    let raw: Vec<TopologyChange> = (0..600)
        .map(|i| {
            if i % 2 == 0 {
                TopologyChange::DeleteEdge(ids[0], ids[1])
            } else {
                TopologyChange::InsertEdge(ids[0], ids[1])
            }
        })
        .collect();
    let (receipts, watermark) = drive(
        &g,
        1,
        23,
        FlushPolicy::adaptive(),
        &raw,
        Duration::from_millis(1),
    );
    assert!(!receipts.is_empty());
    // One change survives each window, so the observed fraction is
    // (d-1)/d, not exactly 1 — the smoother settles just shy of the
    // ceiling rather than on it.
    let max = AdaptiveConfig::default().max_depth;
    let w = watermark.expect("adaptive always has a depth");
    assert!(
        w >= max - max / 8,
        "a fully-collapsing stream should drive the smoother near the \
         deepest window: got {w}, clamp max {max}"
    );
}

#[test]
fn policy_receipts_replay_bit_identically_at_the_same_boundaries() {
    for seed in 0..6u64 {
        let mut rng = StdRng::seed_from_u64(200 + seed);
        let (g, _) = generators::erdos_renyi(24, 0.2, &mut rng);
        let pool = stream::random_pair_pool(&g, 8, &mut rng);
        let raw = stream::flapping_stream(&g, &pool, 40, false, &mut rng);
        for policy in policies() {
            // Policy-driven run, recording each receipt's window size
            // and whether it fired on the push itself or on the
            // post-advance poll.
            let (receipts, _) = drive(&g, 2, seed, policy.clone(), &raw, Duration::from_millis(1));
            let pushed_total: usize = receipts.iter().map(|(r, _)| r.pushed()).sum();
            assert_eq!(pushed_total, raw.len());
            // Manual replay: same engine seed, same clock discipline,
            // Manual policy, explicit flush at the recorded boundaries
            // — at the same pre/post-advance instant the policy fired,
            // so every arrival stamp and flush stamp coincides.
            let clock = ManualClock::new();
            let mut twin = IngestSession::with_policy_and_clock(
                engine(&g, 2, seed),
                FlushPolicy::Manual,
                Arc::new(clock.clone()),
            );
            let mut replayed = Vec::new();
            let mut boundaries = receipts.iter().map(|(r, f)| (r.pushed(), *f)).peekable();
            let mut window = 0usize;
            for c in &raw {
                twin.push(c.clone()).expect("valid stream");
                window += 1;
                if boundaries
                    .next_if(|&(n, f)| n == window && f == FiredOn::Push)
                    .is_some()
                {
                    replayed.push(twin.flush().expect("valid window"));
                    window = 0;
                }
                clock.advance(Duration::from_millis(1));
                if boundaries
                    .next_if(|&(n, f)| n == window && f == FiredOn::Poll)
                    .is_some()
                {
                    replayed.push(twin.flush().expect("valid window"));
                    window = 0;
                }
            }
            if boundaries
                .next_if(|&(n, f)| n == window && f == FiredOn::Tail)
                .is_some()
            {
                replayed.push(twin.flush().expect("valid tail"));
            }
            assert_eq!(
                receipts.len(),
                replayed.len(),
                "{policy:?}: boundary counts diverged"
            );
            for ((expected, fired), got) in receipts.iter().zip(&replayed) {
                assert_eq!(
                    expected, got,
                    "{policy:?}: receipt fired on {fired:?} is not bit-identical under replay"
                );
            }
        }
    }
}
