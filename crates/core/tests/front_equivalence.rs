//! Heap-vs-front equivalence property suite.
//!
//! The word-parallel rank-bitset settle front
//! ([`SettleStrategy::RankFront`], the default) replaced the per-update
//! `BinaryHeap` drain ([`SettleStrategy::BinaryHeap`], retained as the
//! bitwise reference). Min rank = min π by the [`dmis_core::RankIndex`]
//! invariant, so the two drains must pop the identical sequence — and
//! therefore produce identical flip logs and identical values of **every
//! receipt counter** (`heap_pops`, `counter_updates`,
//! `cross_shard_handoffs`, `shard_runs`, `settle_epochs`), not just the
//! same MIS. This suite replays the same random change streams through
//! both strategies on all three engines — unsharded, sequential sharded,
//! and thread-executed — across K ∈ {1, 2, 4, 7} × threads ∈ {1, 2, 4}
//! (plus the `DMIS_PAR_THREADS` CI axis), comparing whole receipts
//! bitwise after every change and every batch.
//!
//! Node churn is the interesting part: node inserts re-rank the index
//! mid-batch and node deletes park stale seeds, which is exactly where a
//! front-vs-heap accounting divergence would hide.

use dmis_core::{
    DynamicMis, MisEngine, ParallelShardedMisEngine, PriorityMap, SettleStrategy, ShardedMisEngine,
};
use dmis_graph::stream::{self, ChurnConfig};
use dmis_graph::{generators, DynGraph, ShardLayout, TopologyChange};
use rand::rngs::StdRng;
use rand::SeedableRng;

const SHARD_COUNTS: [usize; 4] = [1, 2, 4, 7];

/// Worker-thread counts: {1, 2, 4} plus the CI `DMIS_PAR_THREADS` axis.
fn thread_axis() -> Vec<usize> {
    let mut axis = vec![1, 2, 4];
    if let Some(extra) = std::env::var("DMIS_PAR_THREADS")
        .ok()
        .and_then(|s| s.trim().parse::<usize>().ok())
    {
        if !axis.contains(&extra) {
            axis.push(extra);
        }
    }
    axis
}

/// One engine per strategy, identically seeded.
fn engine_pair(g: &DynGraph, seed: u64) -> (MisEngine, MisEngine) {
    let front = dmis_core::Engine::builder()
        .graph(g.clone())
        .seed(seed)
        .build_unsharded();
    assert_eq!(front.settle_strategy(), SettleStrategy::RankFront);
    let mut heap = dmis_core::Engine::builder()
        .graph(g.clone())
        .seed(seed)
        .build_unsharded();
    heap.set_settle_strategy(SettleStrategy::BinaryHeap);
    (front, heap)
}

/// Front-vs-heap lockstep on the unsharded engine over random churn.
#[test]
fn unsharded_front_matches_heap_bitwise() {
    for seed in 0..60u64 {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(977));
        let n = 2 + (seed as usize % 20);
        let (g, _) = generators::erdos_renyi(n, 0.1 + 0.3 * ((seed % 5) as f64 / 4.0), &mut rng);
        let (mut front, mut heap) = engine_pair(&g, seed);
        for step in 0..12 {
            let Some(change) =
                stream::random_change(front.graph(), &ChurnConfig::default(), &mut rng)
            else {
                break;
            };
            let rf = front.apply(&change).expect("valid change");
            let rh = heap.apply(&change).expect("valid change");
            assert_eq!(rf, rh, "receipt diverged (seed {seed}, step {step})");
            assert_eq!(front.mis(), heap.mis(), "MIS diverged (seed {seed})");
        }
        front.assert_internally_consistent();
        heap.assert_internally_consistent();
        // Both strategies flush at every settle, so out-of-order node
        // insertions never accumulate as pending ranks between updates —
        // the bound that keeps RankIndex::remove O(batch) in heap mode.
        assert!(front.ranks().is_flushed());
        assert!(heap.ranks().is_flushed());
    }
}

/// Batches (merged dirty sets, mid-batch node churn, hence mid-batch
/// re-ranks and stale seeds) settle bitwise-identically under both
/// strategies on the unsharded engine.
#[test]
fn unsharded_batches_match_bitwise() {
    for seed in 0..40u64 {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(313) + 7);
        let (g, _) = generators::erdos_renyi(14 + (seed as usize % 6), 0.25, &mut rng);
        let mut shadow = g.clone();
        let mut batch = Vec::new();
        for _ in 0..8 {
            if let Some(change) = stream::random_change(&shadow, &ChurnConfig::default(), &mut rng)
            {
                change.apply(&mut shadow).expect("valid");
                batch.push(change);
            }
        }
        let (mut front, mut heap) = engine_pair(&g, seed);
        let rf = front.apply_batch(&batch).expect("valid batch");
        let rh = heap.apply_batch(&batch).expect("valid batch");
        assert_eq!(rf, rh, "batch receipt diverged (seed {seed})");
        assert_eq!(front.mis(), heap.mis());
        front.assert_internally_consistent();
        heap.assert_internally_consistent();
    }
}

/// A batch that seeds a node and then deletes it forces the front path's
/// stale-seed accounting; the receipt (including `heap_pops`) must still
/// match the heap path, which pops-and-skips the stale entry instead.
#[test]
fn stale_seeds_are_accounted_identically() {
    for &k in &SHARD_COUNTS {
        let (g, ids) = generators::path(6);
        let layout = ShardLayout::striped(k);
        let mut front = dmis_core::Engine::builder()
            .graph(g.clone())
            .sharding(layout)
            .seed(3)
            .build_sharded();
        let mut heap = dmis_core::Engine::builder()
            .graph(g.clone())
            .sharding(layout)
            .seed(3)
            .build_sharded();
        heap.set_settle_strategy(SettleStrategy::BinaryHeap);
        let fresh = g.peek_next_id();
        let batch = vec![
            // Seed several nodes' dirty marks...
            TopologyChange::DeleteEdge(ids[0], ids[1]),
            TopologyChange::InsertNode {
                id: fresh,
                edges: vec![ids[2], ids[4]],
            },
            // ...then delete the newcomer (its seed goes stale) and one
            // of its neighbors (whose earlier marks survive).
            TopologyChange::DeleteNode(fresh),
            TopologyChange::DeleteNode(ids[4]),
        ];
        let rf = front.apply_batch(&batch).expect("valid batch");
        let rh = heap.apply_batch(&batch).expect("valid batch");
        assert_eq!(rf, rh, "stale-seed receipt diverged (K={k})");
        assert_eq!(front.mis(), heap.mis());
        front.assert_internally_consistent();
        heap.assert_internally_consistent();
    }
}

/// Front-vs-heap lockstep on the sharded and parallel engines: whole
/// receipts bitwise, K ∈ {1, 2, 4, 7} × threads ∈ {1, 2, 4} (+ env),
/// spawn threshold forced to 0 so worker threads really drain fronts.
#[test]
fn sharded_and_parallel_fronts_match_heaps_bitwise() {
    let threads = thread_axis();
    for seed in 0..25u64 {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(7919) + 1);
        let n = 4 + (seed as usize % 16);
        let (g, _) = generators::erdos_renyi(n, 0.2, &mut rng);
        let mut pairs: Vec<(ShardedMisEngine, ShardedMisEngine)> = SHARD_COUNTS
            .iter()
            .map(|&k| {
                let layout = ShardLayout::striped(k);
                let front = dmis_core::Engine::builder()
                    .graph(g.clone())
                    .sharding(layout)
                    .seed(seed)
                    .build_sharded();
                let mut heap = dmis_core::Engine::builder()
                    .graph(g.clone())
                    .sharding(layout)
                    .seed(seed)
                    .build_sharded();
                heap.set_settle_strategy(SettleStrategy::BinaryHeap);
                (front, heap)
            })
            .collect();
        let mut parallels: Vec<ParallelShardedMisEngine> = SHARD_COUNTS
            .iter()
            .flat_map(|&k| threads.iter().map(move |&t| (k, t)))
            .map(|(k, t)| {
                let mut par = dmis_core::Engine::builder()
                    .graph(g.clone())
                    .sharding(ShardLayout::striped(k))
                    .threads(t)
                    .seed(seed)
                    .build_parallel();
                par.set_spawn_threshold(0);
                assert_eq!(par.settle_strategy(), SettleStrategy::RankFront);
                par
            })
            .collect();
        for step in 0..10 {
            let Some(change) =
                stream::random_change(pairs[0].0.graph(), &ChurnConfig::default(), &mut rng)
            else {
                break;
            };
            let mut front_receipts = Vec::with_capacity(pairs.len());
            for (front, heap) in &mut pairs {
                let rf = front.apply(&change).expect("valid change");
                let rh = heap.apply(&change).expect("valid change");
                assert_eq!(
                    rf,
                    rh,
                    "K={} receipt diverged (seed {seed}, step {step})",
                    front.shard_count()
                );
                front_receipts.push(rf);
            }
            for (i, par) in parallels.iter_mut().enumerate() {
                let r = par.apply(&change).expect("valid change");
                let k_index = i / threads.len();
                assert_eq!(
                    r,
                    front_receipts[k_index],
                    "K={} threads={} parallel front diverged (seed {seed})",
                    par.shard_count(),
                    par.threads()
                );
            }
        }
        for (front, heap) in &pairs {
            assert_eq!(front.mis(), heap.mis());
            front.assert_internally_consistent();
            heap.assert_internally_consistent();
        }
        for par in &parallels {
            par.assert_internally_consistent();
        }
    }
}

/// The parallel engine's heap strategy also matches its front strategy on
/// batched settles — the workload where threads engage and per-shard
/// fronts drain concurrently.
#[test]
fn parallel_batches_match_across_strategies() {
    let threads = thread_axis();
    for seed in 0..15u64 {
        let mut rng = StdRng::seed_from_u64(seed.wrapping_mul(131) + 5);
        let (g, _) = generators::erdos_renyi(18, 0.2, &mut rng);
        let mut shadow = g.clone();
        let mut batch = Vec::new();
        for _ in 0..10 {
            if let Some(change) = stream::random_change(&shadow, &ChurnConfig::default(), &mut rng)
            {
                change.apply(&mut shadow).expect("valid");
                batch.push(change);
            }
        }
        for &k in &SHARD_COUNTS {
            for &t in &threads {
                let layout = ShardLayout::striped(k);
                let mut front = dmis_core::Engine::builder()
                    .graph(g.clone())
                    .sharding(layout)
                    .threads(t)
                    .seed(seed)
                    .build_parallel();
                front.set_spawn_threshold(0);
                let mut heap = dmis_core::Engine::builder()
                    .graph(g.clone())
                    .sharding(layout)
                    .threads(t)
                    .seed(seed)
                    .build_parallel();
                heap.set_spawn_threshold(0);
                heap.set_settle_strategy(SettleStrategy::BinaryHeap);
                let rf = front.apply_batch(&batch).expect("valid batch");
                let rh = heap.apply_batch(&batch).expect("valid batch");
                assert_eq!(rf, rh, "K={k} threads={t} batch diverged (seed {seed})");
                assert_eq!(front.mis(), heap.mis());
                front.assert_internally_consistent();
                heap.assert_internally_consistent();
            }
        }
    }
}

/// Boundary-spanning star promotion (every leaf notified across a shard
/// boundary under striping) — the all-handoff worst case — is bitwise
/// identical across strategies, layouts, and thread counts.
#[test]
fn star_promotion_matches_across_strategies() {
    for leaves in [5usize, 12, 21] {
        let (g, ids) = generators::star(leaves + 1);
        let pm = PriorityMap::from_order(&ids);
        for &k in &SHARD_COUNTS {
            let layout = ShardLayout::striped(k);
            let mut front = dmis_core::Engine::builder()
                .graph(g.clone())
                .priorities(pm.clone())
                .sharding(layout)
                .seed(0)
                .build_sharded();
            let mut heap = dmis_core::Engine::builder()
                .graph(g.clone())
                .priorities(pm.clone())
                .sharding(layout)
                .seed(0)
                .build_sharded();
            heap.set_settle_strategy(SettleStrategy::BinaryHeap);
            let rf = front.remove_node(ids[0]).expect("center exists");
            let rh = heap.remove_node(ids[0]).expect("center exists");
            assert_eq!(rf, rh, "K={k} star receipt diverged");
            assert_eq!(rf.adjustments(), leaves);
            for &t in &thread_axis() {
                let mut par = dmis_core::Engine::builder()
                    .graph(g.clone())
                    .priorities(pm.clone())
                    .sharding(layout)
                    .threads(t)
                    .seed(0)
                    .build_parallel();
                par.set_spawn_threshold(0);
                let r = par.remove_node(ids[0]).expect("center exists");
                assert_eq!(r, rf, "K={k} threads={t} parallel star diverged");
            }
        }
    }
}
