//! Concurrency tier: the snapshot read path's consistency proof.
//!
//! The epoch-versioned channel (`dmis_core::snapshot`) promises that a
//! concurrent reader observes **only** flush-boundary states: every
//! acquired [`MisSnapshot`] bit-matches the writer's quiesced membership
//! at *some* settle boundary, epochs are monotone per reader, and a
//! reader sampling after the writer finished observes the final epoch
//! (liveness). This suite proves those properties under real
//! multi-threaded interleavings for every engine flavor:
//!
//! - a writer thread replays a churn stream (random mixed, flapping,
//!   and power-law families) recording a per-epoch **oracle** — the
//!   exact membership at each flush boundary — while R ∈ {1, 2, 4}
//!   reader threads sample `(epoch, mis_len, membership)` as fast as
//!   they can; every sample is then verified bit-for-bit against the
//!   oracle entry for its epoch;
//! - the publication-ordering witness: publication runs strictly after
//!   `RankIndex::maybe_compact`, so a snapshot's stamped
//!   [`MisSnapshot::rank_compactions`] always equals the engine's live
//!   counter at quiescence and no snapshot ever carries a tombstoned
//!   (recycled) slot — checked under deletion-heavy node churn where
//!   compaction actually fires.
//!
//! Scale knobs for CI's `concurrency` job: `DMIS_STRESS_ITERS`
//! multiplies stream lengths and sampling quotas; `DMIS_YIELD_SEED`
//! injects seeded `yield_now` calls into the writer loop, forcing
//! different interleavings per seed on runners without a race detector.
//!
//! [`MisSnapshot`]: dmis_core::MisSnapshot
//! [`MisSnapshot::rank_compactions`]: dmis_core::MisSnapshot::rank_compactions

use std::collections::BTreeSet;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::thread;

use dmis_core::{DynamicMis, Engine, MisReader};
use dmis_graph::stream::{self, ChurnConfig};
use dmis_graph::{generators, DynGraph, NodeId, ShardLayout, TopologyChange};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Stress multiplier (CI's concurrency job elevates it; default 1).
fn stress() -> usize {
    std::env::var("DMIS_STRESS_ITERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(1)
        .max(1)
}

/// Seeded-interleaving injector: when `DMIS_YIELD_SEED` is set, the
/// writer yields at pseudo-random points of its loop, so each seed
/// explores a different writer/reader interleaving — the fallback
/// stressor for runners without ThreadSanitizer.
struct YieldInjector {
    state: u64,
    active: bool,
}

impl YieldInjector {
    fn new(salt: u64) -> Self {
        match std::env::var("DMIS_YIELD_SEED")
            .ok()
            .and_then(|v| v.parse::<u64>().ok())
        {
            Some(seed) => YieldInjector {
                state: (seed ^ salt.wrapping_mul(0x9e37_79b9_7f4a_7c15)) | 1,
                active: true,
            },
            None => YieldInjector {
                state: 0,
                active: false,
            },
        }
    }

    fn tick(&mut self) {
        if !self.active {
            return;
        }
        self.state ^= self.state << 13;
        self.state ^= self.state >> 7;
        self.state ^= self.state << 17;
        if self.state.is_multiple_of(3) {
            thread::yield_now();
        }
    }
}

/// All engine flavors over the same graph and seed, as trait objects —
/// the same trio the trait-conformance suite drives.
fn flavors(g: &DynGraph, seed: u64) -> Vec<(&'static str, Box<dyn DynamicMis + Send>)> {
    vec![
        (
            "unsharded",
            Engine::builder().graph(g.clone()).seed(seed).build(),
        ),
        (
            "sharded",
            Engine::builder()
                .graph(g.clone())
                .seed(seed)
                .sharding(ShardLayout::striped(3))
                .build(),
        ),
        (
            "parallel",
            Engine::builder()
                .graph(g.clone())
                .seed(seed)
                .sharding(ShardLayout::striped(3))
                .threads(2)
                .spawn_threshold(0)
                .build(),
        ),
    ]
}

/// A pre-generated churn stream of the named family, valid against `g`.
fn stream_of(
    family: &str,
    g: &DynGraph,
    ids: &[NodeId],
    len: usize,
    seed: u64,
) -> Vec<TopologyChange> {
    let mut rng = StdRng::seed_from_u64(seed);
    match family {
        "flapping" => {
            let pool = stream::random_pair_pool(g, 24, &mut rng);
            stream::flapping_stream(g, &pool, len, false, &mut rng)
        }
        "power_law" => stream::power_law_churn(g, ids, 2.5, len, &mut rng),
        _ => {
            // Random mixed churn (edges + node insert/delete), generated
            // against a shadow replay so every change is valid.
            let mut shadow = g.clone();
            let mut out = Vec::with_capacity(len);
            while out.len() < len {
                let Some(c) = stream::random_change(&shadow, &ChurnConfig::default(), &mut rng)
                else {
                    break;
                };
                c.apply(&mut shadow).expect("valid against shadow");
                out.push(c);
            }
            out
        }
    }
}

/// One reader sample: the epoch it observed and the full membership it
/// read off the acquired snapshot.
struct Sample {
    epoch: u64,
    mis_len: usize,
    members: Vec<NodeId>,
}

/// What one reader thread brings home.
struct ReaderOutcome {
    samples: Vec<Sample>,
    epoch_regressions: u64,
    final_epoch_observed: u64,
}

/// Reader loop: sample until the writer is done **and** the quota is
/// met, then take one last sample (which must observe the final epoch —
/// the liveness half of the contract).
fn reader_loop(reader: &MisReader, done: &AtomicBool, quota: usize) -> ReaderOutcome {
    let mut samples = Vec::with_capacity(quota + 1);
    let mut regressions = 0u64;
    let mut last = 0u64;
    loop {
        let finished = done.load(Ordering::Acquire);
        let snap = reader.snapshot();
        if snap.epoch() < last {
            regressions += 1;
        }
        last = snap.epoch();
        samples.push(Sample {
            epoch: snap.epoch(),
            mis_len: snap.mis_len(),
            members: snap.iter().collect(),
        });
        if finished && samples.len() >= quota {
            break;
        }
    }
    ReaderOutcome {
        samples,
        epoch_regressions: regressions,
        final_epoch_observed: reader.snapshot().epoch(),
    }
}

/// The centerpiece: for every flavor × reader count × stream family,
/// every concurrently observed snapshot equals the writer's membership
/// at that exact flush boundary, epochs never regress per reader, and
/// the last sample observes the writer's final epoch.
#[test]
fn every_observed_snapshot_is_a_flush_boundary_state() {
    // ≥ 10^4 sampled reads per flavor: 3 configs × quota × R readers,
    // quota chosen so even the R=1 config contributes thousands.
    let quota = 1500 * stress();
    let configs: [(usize, &str); 3] = [(1, "mixed"), (2, "flapping"), (4, "power_law")];
    for (readers, family) in configs {
        let mut rng = StdRng::seed_from_u64(readers as u64);
        let (g, ids) = generators::erdos_renyi(48, 0.15, &mut rng);
        let changes = stream_of(family, &g, &ids, 240 * stress(), 77 + readers as u64);
        assert!(!changes.is_empty());
        for (name, mut engine) in flavors(&g, 9000 + readers as u64) {
            let reader = engine.reader();
            assert_eq!(reader.epoch(), 0, "{name}: attach is epoch 0");

            let done = AtomicBool::new(false);
            let final_epoch = AtomicU64::new(0);
            let (oracle, outcomes) = thread::scope(|s| {
                let handles: Vec<_> = (0..readers)
                    .map(|_| {
                        let r = reader.clone();
                        let done = &done;
                        s.spawn(move || reader_loop(&r, done, quota))
                    })
                    .collect();

                // The writer: one change per epoch, oracle recorded at
                // each quiescence point. Epoch e's oracle entry is
                // complete before epoch e is published (the engine
                // publishes at the *end* of the settle the change
                // triggers), so samples can be verified after the join.
                let mut oracle: Vec<(usize, Vec<NodeId>)> = Vec::with_capacity(changes.len() + 1);
                let membership = |e: &dyn DynamicMis| {
                    let mut m: Vec<NodeId> = e.mis_iter().collect();
                    m.sort_unstable();
                    (e.mis_len(), m)
                };
                oracle.push(membership(&*engine));
                let mut yielder = YieldInjector::new(readers as u64);
                for change in &changes {
                    engine.apply(change).expect("valid change");
                    oracle.push(membership(&*engine));
                    yielder.tick();
                }
                final_epoch.store(changes.len() as u64, Ordering::Release);
                done.store(true, Ordering::Release);
                let outcomes: Vec<ReaderOutcome> = handles
                    .into_iter()
                    .map(|h| h.join().expect("reader threads do not panic"))
                    .collect();
                (oracle, outcomes)
            });

            let expected_final = final_epoch.load(Ordering::Acquire);
            assert_eq!(
                reader.epoch(),
                expected_final,
                "{name}: one publish per settle"
            );
            let mut total = 0usize;
            for outcome in &outcomes {
                assert_eq!(outcome.epoch_regressions, 0, "{name}: epochs monotone");
                assert_eq!(
                    outcome.final_epoch_observed, expected_final,
                    "{name}: liveness — a post-completion sample sees the final epoch"
                );
                total += outcome.samples.len();
                for sample in &outcome.samples {
                    let (oracle_len, oracle_members) = &oracle[sample.epoch as usize];
                    assert_eq!(sample.mis_len, *oracle_len, "{name} epoch {}", sample.epoch);
                    assert_eq!(
                        &sample.members, oracle_members,
                        "{name} epoch {}: snapshot must bit-match the flush boundary",
                        sample.epoch
                    );
                }
            }
            assert!(
                total >= quota * readers,
                "{name}: sampling quota met ({total} samples)"
            );
        }
    }
}

/// Publication-ordering witness, unsharded: the snapshot's compaction
/// stamp always equals the live `RankIndex` counter at quiescence
/// (publication ran strictly after `maybe_compact`), deletion churn
/// makes the counter actually move, and no published member is ever a
/// departed (tombstoned or recycled) node.
#[test]
fn snapshots_publish_after_rank_compaction_unsharded() {
    let (g, ids) = generators::erdos_renyi(64, 0.1, &mut StdRng::seed_from_u64(4));
    let mut engine = dmis_core::Engine::builder()
        .graph(g)
        .seed(17)
        .build_unsharded();
    let reader = engine.reader();
    assert_eq!(
        reader.snapshot().rank_compactions(),
        engine.ranks().compactions()
    );
    // Deletion-heavy phase: removing most nodes drives tombstones past
    // the live count, which is exactly when `maybe_compact` fires.
    for &v in &ids[..56] {
        engine.remove_node(v).expect("live node");
        let snap = reader.snapshot();
        assert_eq!(
            snap.rank_compactions(),
            engine.ranks().compactions(),
            "stamp equals the live counter at quiescence"
        );
        let live: BTreeSet<NodeId> = engine.graph().nodes().collect();
        for m in snap.iter() {
            assert!(live.contains(&m), "published member {m:?} is live");
        }
    }
    assert!(
        engine.ranks().compactions() >= 1,
        "deletion churn must have compacted the rank table"
    );
    // Recycle phase: fresh inserts reuse compacted slots; stamps must
    // keep agreeing.
    for _ in 0..16 {
        engine.insert_node(&[]).expect("valid");
        assert_eq!(
            reader.snapshot().rank_compactions(),
            engine.ranks().compactions()
        );
    }
    engine.assert_internally_consistent();
}

/// The same ordering witness on the sharded engine (the parallel flavor
/// forwards to it, and its `reader()` is macro-forwarded — covered by
/// the flush-boundary test above).
#[test]
fn snapshots_publish_after_rank_compaction_sharded() {
    let (g, ids) = generators::erdos_renyi(64, 0.1, &mut StdRng::seed_from_u64(6));
    let mut engine = dmis_core::Engine::builder()
        .graph(g)
        .sharding(ShardLayout::striped(3))
        .seed(23)
        .build_sharded();
    let reader = engine.reader();
    for &v in &ids[..56] {
        engine.remove_node(v).expect("live node");
        let snap = reader.snapshot();
        assert_eq!(snap.rank_compactions(), engine.ranks().compactions());
        let live: BTreeSet<NodeId> = engine.graph().nodes().collect();
        for m in snap.iter() {
            assert!(live.contains(&m), "published member {m:?} is live");
        }
    }
    assert!(engine.ranks().compactions() >= 1);
    engine.assert_internally_consistent();
}

/// Clone semantics under concurrency: cloning an engine detaches the
/// clone from the original's channel — readers keep following the
/// original, and the clone publishes nowhere until its own `reader()`
/// call creates a fresh channel at epoch 0.
#[test]
fn cloned_engines_do_not_publish_into_the_original_channel() {
    let (g, ids) = generators::cycle(12);
    let mut engine = dmis_core::Engine::builder()
        .graph(g)
        .seed(3)
        .build_unsharded();
    let reader = engine.reader();
    engine.remove_edge(ids[0], ids[1]).expect("valid");
    assert_eq!(reader.epoch(), 1);
    let mut clone = engine.clone();
    clone.remove_edge(ids[4], ids[5]).expect("valid");
    assert_eq!(reader.epoch(), 1, "clone settles must not publish here");
    let clone_reader = clone.reader();
    assert_eq!(clone_reader.epoch(), 0, "fresh channel starts at attach");
    clone.remove_edge(ids[7], ids[8]).expect("valid");
    assert_eq!(clone_reader.epoch(), 1);
    assert_eq!(reader.epoch(), 1);
}
