//! Positive/negative fixture pair per rule: the positive fixture must
//! fire the rule at a synthetic in-scope path, the negative must stay
//! silent — including its `#[cfg(test)]` sections, which deliberately
//! contain banned tokens to pin the test-masking behavior.

use std::path::{Path, PathBuf};

use dmis_lint::{scan_source, RULES};

fn fixture_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/rules")
}

/// The synthetic in-scope path each rule's fixtures are scanned under.
fn scope_path(rule: &str) -> &'static str {
    match rule {
        "no-ordered-map-hot-path" => "crates/graph/src/fixture_subject.rs",
        "no-ambient-time" | "no-thread-spawn" => "crates/core/src/engine_subject.rs",
        "no-ambient-rng" => "crates/core/src/rank_subject.rs",
        "no-panic-decode" => "crates/core/src/durability/codec.rs",
        "forbid-unsafe-everywhere" => "crates/subject/src/lib.rs",
        "no-print-in-lib" => "crates/core/src/report_subject.rs",
        other => panic!("no fixture path mapped for rule {other}"),
    }
}

fn read_fixture(rule: &str, polarity: &str) -> String {
    let path = fixture_dir().join(format!("{rule}_{polarity}.rs"));
    std::fs::read_to_string(&path).unwrap_or_else(|_| panic!("missing fixture {}", path.display()))
}

#[test]
fn every_rule_has_a_firing_positive_fixture() {
    for rule in RULES {
        let text = read_fixture(rule.name, "pos");
        let violations = scan_source(scope_path(rule.name), &text).expect("fixture lexes");
        assert!(
            violations.iter().any(|v| v.rule == rule.name),
            "{}: positive fixture did not fire; got {violations:?}",
            rule.name
        );
    }
}

#[test]
fn every_rule_has_a_silent_negative_fixture() {
    for rule in RULES {
        let text = read_fixture(rule.name, "neg");
        let violations = scan_source(scope_path(rule.name), &text).expect("fixture lexes");
        assert!(
            violations.is_empty(),
            "{}: negative fixture fired: {violations:?}",
            rule.name
        );
    }
}

/// The same source at an out-of-scope path is clean: scoping, not just
/// token matching, is part of each rule's contract.
#[test]
fn positive_fixtures_are_silent_out_of_scope() {
    for rule in RULES {
        if rule.name == "forbid-unsafe-everywhere" {
            // The inverted rule has no "banned token" to go silent; its
            // out-of-scope behavior is covered by non-root paths below.
            let text = read_fixture(rule.name, "pos");
            let v = scan_source("crates/subject/src/helper.rs", &text).expect("lexes");
            assert!(v.iter().all(|v| v.rule != rule.name));
            continue;
        }
        let text = read_fixture(rule.name, "pos");
        let out_of_scope = format!(
            "crates/core/tests/{}_subject.rs",
            rule.name.replace('-', "_")
        );
        let violations = scan_source(&out_of_scope, &text).expect("fixture lexes");
        assert!(
            violations.iter().all(|v| v.rule != rule.name),
            "{}: fired under a tests/ path: {violations:?}",
            rule.name
        );
    }
}
