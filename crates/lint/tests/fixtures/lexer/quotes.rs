fn generic<'a, 'b: 'a>(x: &'a str, y: &'b str) -> &'a str { x }
let ch = 'y';
let esc = '\'';
let quote_char = '"';
let unicode = '\u{1F600}';
'outer: loop { break 'outer; }
let life: &'static str = "s";
