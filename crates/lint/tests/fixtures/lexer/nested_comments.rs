/* outer /* inner HashMap */ still outer Instant::now() */
before();
/* a /* b /* c panic!() */ b */ a */ after();
// line comment with unwrap() and a /* dangling opener
tail();
