// Raw strings are comment- and escape-proof containers: nothing inside
// them may leak tokens, including block-comment openers and quotes.
let a = r"plain raw with \ backslash";
let b = r#"contains /* not a comment */ and "quotes""#;
let c = r##"one "# hash guard inside"##;
let d = br#"byte raw with BTreeMap inside"#;
let e = cr"c raw with thread::spawn inside";
after();
