#!/usr/bin/env run-cargo-script
#![forbid(unsafe_code)]
fn main() {
    body();
}
