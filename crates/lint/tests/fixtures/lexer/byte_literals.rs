let s = b"byte string with println! inside";
let c = b'x';
let q = b'\'';
let nl = b'\n';
let raw = br##"raw bytes "# with dbg! inside"##;
done();
