pub fn decode(bytes: &[u8]) -> u32 {
    let head: [u8; 4] = bytes[..4].try_into().unwrap();
    if head[0] > 3 {
        panic!("bad tag");
    }
    u32::from_le_bytes(head)
}
