use crate::{NodeMap, NodeSet};

pub struct Table {
    dist: NodeMap<usize>,
    seen: NodeSet,
}

#[cfg(test)]
mod tests {
    // Ordered maps are fine in test scaffolding.
    use std::collections::BTreeMap;

    fn oracle() -> BTreeMap<u64, usize> {
        BTreeMap::new()
    }
}
