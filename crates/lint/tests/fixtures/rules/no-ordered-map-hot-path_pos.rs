use std::collections::BTreeMap;

pub struct Table {
    dist: BTreeMap<u64, usize>,
    seen: std::collections::HashSet<u64>,
}
