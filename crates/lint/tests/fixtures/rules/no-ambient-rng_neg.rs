use rand::rngs::StdRng;
use rand::SeedableRng;

pub fn seeded(seed: u64) -> StdRng {
    // Seeded construction keeps the draw stream replayable.
    StdRng::seed_from_u64(seed)
}
