//! A compliant crate root.

#![forbid(unsafe_code)]
#![deny(deprecated)]

pub fn f() {}
