use std::time::Instant;

pub fn settle_deadline() -> Instant {
    Instant::now()
}
