pub fn decode(bytes: &[u8], expect: u8) -> Result<u32, CodecError> {
    // `expect` as a parameter *name* must not fire the method-call rule.
    let head: [u8; 4] = bytes
        .get(..4)
        .ok_or(CodecError::Truncated)?
        .try_into()
        .map_err(|_| CodecError::Truncated)?;
    if head[0] != expect {
        return Err(CodecError::BadTag(head[0]));
    }
    Ok(u32::from_le_bytes(head))
}

#[cfg(test)]
mod tests {
    #[test]
    fn round_trip() {
        super::decode(&[0, 0, 0, 0], 0).unwrap();
    }
}
