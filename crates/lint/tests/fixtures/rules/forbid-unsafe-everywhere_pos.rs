//! A crate root without the forbid attribute.

pub fn f() {}
