pub fn draw_key() -> u64 {
    let mut rng = rand::thread_rng();
    rng.random()
}
