use std::thread;

pub fn fan_out() {
    let h = thread::spawn(|| {});
    h.join().ok();
    thread::scope(|_| {});
}
