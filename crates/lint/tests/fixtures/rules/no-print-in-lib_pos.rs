pub fn settle(changed: usize) {
    println!("settled {changed} nodes");
    if changed > 100 {
        eprintln!("large cascade");
    }
    dbg!(changed);
}
