use crate::parallel::EpochExecutor;

pub fn fan_out(exec: &EpochExecutor) {
    // Work is submitted to the epoch executor; only parallel.rs spawns.
    exec.run_epoch();
}
