use std::fmt::Write as _;

pub fn settle(changed: usize, report: &mut String) {
    // Reporting goes through the caller-supplied sink, not stdout.
    let _ = writeln!(report, "settled {changed} nodes");
}

#[cfg(test)]
mod tests {
    #[test]
    fn prints_in_tests_are_fine() {
        println!("debug output");
    }
}
