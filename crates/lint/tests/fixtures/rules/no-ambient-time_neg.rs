use crate::policy::Clock;

pub fn settle_deadline(clock: &dyn Clock) -> u64 {
    // Time flows through the injected clock, never ambient.
    clock.now_nanos()
}

#[cfg(test)]
mod tests {
    #[test]
    fn wall_clock_ok_in_tests() {
        let _ = std::time::Instant::now();
    }
}
