//! End-to-end contract checks against the *real* workspace tree plus
//! the waiver-ratchet failure modes: the committed tree must be clean
//! under the committed waivers, a seeded banned token must fail loudly,
//! and stale or over-budget waivers must be config errors.

use std::path::{Path, PathBuf};

use dmis_lint::{analyze, collect_workspace, waiver, SourceFile};

fn workspace_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root")
        .to_path_buf()
}

fn committed_waivers() -> waiver::WaiverFile {
    let text = std::fs::read_to_string(workspace_root().join("tools/lint_waivers.toml"))
        .expect("waiver file exists");
    waiver::parse(&text).expect("committed waiver file parses")
}

#[test]
fn committed_tree_is_clean_under_committed_waivers() {
    let files = collect_workspace(&workspace_root()).expect("walk");
    let report = analyze(&files, &committed_waivers());
    assert!(
        report.is_clean(),
        "committed tree violates its own contracts:\nunwaived: {:#?}\nconfig: {:#?}",
        report.unwaived,
        report.config_errors
    );
    // The ratchet is tight: stale waiver slack must be burned down, so a
    // clean tree also has no slack notes.
    assert!(
        report.notes.is_empty(),
        "waiver slack detected — ratchet the counts down: {:#?}",
        report.notes
    );
}

/// Seeding one ambient `Instant::now()` into the real engine source must
/// produce exactly one unwaived violation naming the rule, file, and a
/// plausible line — the acceptance criterion for the whole pass.
#[test]
fn seeded_ambient_time_in_engine_fails() {
    let mut files = collect_workspace(&workspace_root()).expect("walk");
    let engine = files
        .iter_mut()
        .find(|f| f.rel_path == "crates/core/src/engine.rs")
        .expect("engine.rs present");
    engine
        .text
        .push_str("\npub fn seeded() { let _ = std::time::Instant::now(); }\n");
    let seeded_line = engine
        .text
        .lines()
        .position(|l| l.contains("pub fn seeded"))
        .expect("seeded line present") as u32
        + 1;
    let report = analyze(&files, &committed_waivers());
    let hit = report
        .unwaived
        .iter()
        .find(|v| v.rule == "no-ambient-time")
        .expect("seeded Instant::now() must be an unwaived violation");
    assert_eq!(hit.path, "crates/core/src/engine.rs");
    assert_eq!(hit.line, seeded_line);
    assert!(!report.is_clean());
}

fn fake_files() -> Vec<SourceFile> {
    vec![SourceFile {
        rel_path: "crates/graph/src/hot.rs".to_string(),
        text: "use std::collections::BTreeMap;\npub type T = BTreeMap<u64, u64>;\n".to_string(),
    }]
}

const FULL_RATCHET_TAIL: &str = "no-ambient-time = 0\nno-ambient-rng = 0\nno-thread-spawn = 0\n\
                                 no-panic-decode = 0\nforbid-unsafe-everywhere = 0\n\
                                 no-print-in-lib = 0\n";

#[test]
fn waivers_absorb_exactly_their_count() {
    let toml = format!(
        "[[waiver]]\nrule = \"no-ordered-map-hot-path\"\npath = \"crates/graph/src/hot.rs\"\n\
         count = 2\nreason = \"pinned\"\n\n[ratchet]\nno-ordered-map-hot-path = 2\n{FULL_RATCHET_TAIL}"
    );
    let report = analyze(&fake_files(), &waiver::parse(&toml).expect("parses"));
    assert!(report.is_clean(), "{report:?}");
    assert_eq!(report.waived.len(), 2);

    // One hit fewer than the waiver allows: clean, but slack is noted.
    let toml_slack = toml
        .replace("count = 2", "count = 3")
        .replace("no-ordered-map-hot-path = 2", "no-ordered-map-hot-path = 3");
    let report = analyze(&fake_files(), &waiver::parse(&toml_slack).expect("parses"));
    assert!(report.is_clean());
    assert_eq!(report.notes.len(), 1, "{:?}", report.notes);

    // One hit more than the waiver allows: the overflow is unwaived.
    let toml_tight = toml
        .replace("count = 2", "count = 1")
        .replace("no-ordered-map-hot-path = 2", "no-ordered-map-hot-path = 1");
    let report = analyze(&fake_files(), &waiver::parse(&toml_tight).expect("parses"));
    assert!(!report.is_clean());
    assert_eq!(report.unwaived.len(), 1);
    assert_eq!(report.waived.len(), 1);
}

#[test]
fn ratchet_overflow_and_omission_are_config_errors() {
    // Waiver total (2) exceeds the ratchet pin (1).
    let over = format!(
        "[[waiver]]\nrule = \"no-ordered-map-hot-path\"\npath = \"crates/graph/src/hot.rs\"\n\
         count = 2\nreason = \"pinned\"\n\n[ratchet]\nno-ordered-map-hot-path = 1\n{FULL_RATCHET_TAIL}"
    );
    let report = analyze(&fake_files(), &waiver::parse(&over).expect("parses"));
    assert!(report
        .config_errors
        .iter()
        .any(|e| e.contains("ratchet exceeded")));

    // A rule missing from the ratchet is an error even with no waivers.
    let missing = "[ratchet]\nno-ordered-map-hot-path = 0\n";
    let report = analyze(&[], &waiver::parse(missing).expect("parses"));
    assert!(
        report
            .config_errors
            .iter()
            .any(|e| e.contains("ratchet is missing rule")),
        "{:?}",
        report.config_errors
    );

    // Unknown rule names anywhere are errors, not silent no-ops.
    let unknown =
        format!("[ratchet]\nno-such-rule = 0\nno-ordered-map-hot-path = 0\n{FULL_RATCHET_TAIL}");
    let report = analyze(&[], &waiver::parse(&unknown).expect("parses"));
    assert!(report
        .config_errors
        .iter()
        .any(|e| e.contains("unknown rule `no-such-rule`")));
}

/// A waiver pointing at a path that is no longer in the workspace is
/// rot: it must fail the run rather than silently shielding nothing (or
/// a future file that happens to take the name).
#[test]
fn waiver_rot_is_a_config_error() {
    let toml = format!(
        "[[waiver]]\nrule = \"no-ordered-map-hot-path\"\npath = \"crates/graph/src/deleted.rs\"\n\
         count = 1\nreason = \"stale\"\n\n[ratchet]\nno-ordered-map-hot-path = 1\n{FULL_RATCHET_TAIL}"
    );
    let report = analyze(&fake_files(), &waiver::parse(&toml).expect("parses"));
    assert!(
        report
            .config_errors
            .iter()
            .any(|e| e.contains("waiver rot") && e.contains("deleted.rs")),
        "{:?}",
        report.config_errors
    );
}

/// Every committed waiver path must exist on disk right now — the
/// file-level rot check against the real tree.
#[test]
fn committed_waiver_paths_exist() {
    let root = workspace_root();
    for w in &committed_waivers().waivers {
        assert!(
            root.join(&w.path).is_file(),
            "waiver path {} does not exist",
            w.path
        );
        assert!(
            !w.reason.trim().is_empty(),
            "waiver for {} has an empty reason",
            w.path
        );
    }
}
