//! Lexer hardening corpus: each `tests/fixtures/lexer/<name>.rs` has a
//! committed `<name>.tokens` golden stream (`line<TAB>kind<TAB>text`).
//! Regenerate with `DMIS_LINT_BLESS=1 cargo test -p dmis-lint` after a
//! deliberate lexer change, then review the diff — the goldens are the
//! spec for the tricky cases (raw strings containing `/*`, nested block
//! comments, byte literals, char-vs-lifetime quotes, shebangs).

use std::path::{Path, PathBuf};

use dmis_lint::lexer::{format_tokens, lex};

fn fixture_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("tests/fixtures/lexer")
}

#[test]
fn lexer_fixtures_match_goldens() {
    let bless = std::env::var_os("DMIS_LINT_BLESS").is_some();
    let mut cases = 0;
    let mut entries: Vec<_> = std::fs::read_dir(fixture_dir())
        .expect("fixture dir exists")
        .map(|e| e.expect("readable entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "rs"))
        .collect();
    entries.sort();
    for source_path in entries {
        let name = source_path
            .file_stem()
            .unwrap()
            .to_string_lossy()
            .to_string();
        let source = std::fs::read_to_string(&source_path).expect("fixture readable");
        let tokens = lex(&source).unwrap_or_else(|e| panic!("{name}.rs failed to lex: {e}"));
        let got = format_tokens(&tokens);
        let golden_path = source_path.with_extension("tokens");
        if bless {
            std::fs::write(&golden_path, &got).expect("write golden");
        } else {
            let want = std::fs::read_to_string(&golden_path)
                .unwrap_or_else(|_| panic!("{name}.tokens missing — run with DMIS_LINT_BLESS=1"));
            assert_eq!(got, want, "{name}: token stream diverged from golden");
        }
        cases += 1;
    }
    assert!(
        cases >= 5,
        "expected the full fixture corpus, found {cases}"
    );
}

/// Every token stream must be free of text that only appeared inside
/// comments or literals — the corpus deliberately hides banned-looking
/// names in those positions.
#[test]
fn fixtures_leak_no_masked_text() {
    for name in ["raw_strings", "nested_comments", "byte_literals"] {
        let source =
            std::fs::read_to_string(fixture_dir().join(format!("{name}.rs"))).expect("fixture");
        let formatted = format_tokens(&lex(&source).expect("lexes"));
        for banned in [
            "BTreeMap", "HashMap", "Instant", "spawn", "panic", "dbg", "unwrap",
        ] {
            assert!(
                !formatted.contains(banned),
                "{name}: `{banned}` leaked out of a comment/literal"
            );
        }
    }
}

/// The whole workspace — every file the rule engine scans, vendored
/// stand-ins included — must lex without error: a file the lexer cannot
/// handle is a file the rules cannot see.
#[test]
fn whole_workspace_lexes() {
    let root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("workspace root");
    let files = dmis_lint::collect_workspace(root).expect("workspace walk");
    assert!(
        files.len() > 50,
        "workspace walk looks truncated: {}",
        files.len()
    );
    for f in &files {
        if let Err(e) = lex(&f.text) {
            panic!("{}: {e}", f.rel_path);
        }
    }
}
