//! A small, purpose-built Rust lexer.
//!
//! The rule engine only needs identifier/path tokens with line numbers,
//! but getting those *right* requires skipping everything that can
//! contain banned-looking text without being code: line comments,
//! nested block comments, normal/raw/byte/C strings, and char literals
//! (which must be told apart from lifetimes, or `'a'` inside a generic
//! argument list would derail the scan). Numeric literals are consumed
//! and dropped; punctuation is emitted one char at a time, which is all
//! the sequence matchers (`::`, `!`, `#[...]`) need.
//!
//! The lexer is intentionally *stricter* than rustc about what it
//! accepts — an unterminated string or block comment is a [`LexError`],
//! never a silent resync — so a lexing bug cannot quietly blind a rule.

/// One lexical token the rule engine cares about.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Tok {
    /// An identifier or keyword (`BTreeMap`, `fn`, `r#type` → `type`).
    Ident(String),
    /// A single punctuation character (`:`, `!`, `#`, `{`, …).
    Punct(char),
    /// A lifetime or loop label, without the leading quote (`'a` → `a`).
    Lifetime(String),
}

/// A token plus the 1-based source line it starts on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Token {
    /// The token itself.
    pub tok: Tok,
    /// 1-based line number.
    pub line: u32,
}

/// A lexing failure: where and why.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LexError {
    /// 1-based line the offending construct started on.
    pub line: u32,
    /// Human-readable description.
    pub msg: String,
}

impl std::fmt::Display for LexError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "line {}: {}", self.line, self.msg)
    }
}

struct Lexer {
    chars: Vec<char>,
    pos: usize,
    line: u32,
    out: Vec<Token>,
}

/// Lexes `source` into identifier/punct/lifetime tokens.
///
/// # Errors
///
/// Returns [`LexError`] on unterminated strings, char literals, or
/// block comments — malformed input must be loud, not silently skipped.
pub fn lex(source: &str) -> Result<Vec<Token>, LexError> {
    let mut lx = Lexer {
        chars: source.chars().collect(),
        pos: 0,
        line: 1,
        out: Vec::new(),
    };
    lx.skip_shebang();
    lx.run()?;
    Ok(lx.out)
}

impl Lexer {
    fn peek(&self, ahead: usize) -> Option<char> {
        self.chars.get(self.pos + ahead).copied()
    }

    fn bump(&mut self) -> Option<char> {
        let c = self.peek(0)?;
        self.pos += 1;
        if c == '\n' {
            self.line += 1;
        }
        Some(c)
    }

    fn err(&self, line: u32, msg: &str) -> LexError {
        LexError {
            line,
            msg: msg.to_string(),
        }
    }

    /// A `#!...` first line that is not an inner attribute (`#![`) is a
    /// shebang and vanishes before lexing proper.
    fn skip_shebang(&mut self) {
        if self.peek(0) == Some('#') && self.peek(1) == Some('!') && self.peek(2) != Some('[') {
            while let Some(c) = self.peek(0) {
                if c == '\n' {
                    break;
                }
                self.pos += 1;
            }
        }
    }

    fn run(&mut self) -> Result<(), LexError> {
        while let Some(c) = self.peek(0) {
            match c {
                c if c.is_whitespace() => {
                    self.bump();
                }
                '/' if self.peek(1) == Some('/') => self.line_comment(),
                '/' if self.peek(1) == Some('*') => self.block_comment()?,
                '"' => self.string()?,
                '\'' => self.quote()?,
                'r' | 'b' | 'c' if self.literal_prefix() => {}
                c if c == '_' || c.is_alphabetic() => self.ident(),
                c if c.is_ascii_digit() => self.number(),
                _ => {
                    let line = self.line;
                    let c = self.bump().unwrap_or_default();
                    self.out.push(Token {
                        tok: Tok::Punct(c),
                        line,
                    });
                }
            }
        }
        Ok(())
    }

    fn line_comment(&mut self) {
        while let Some(c) = self.peek(0) {
            if c == '\n' {
                break;
            }
            self.bump();
        }
    }

    fn block_comment(&mut self) -> Result<(), LexError> {
        let start = self.line;
        self.bump(); // '/'
        self.bump(); // '*'
        let mut depth = 1usize;
        while depth > 0 {
            match (self.peek(0), self.peek(1)) {
                (Some('/'), Some('*')) => {
                    self.bump();
                    self.bump();
                    depth += 1;
                }
                (Some('*'), Some('/')) => {
                    self.bump();
                    self.bump();
                    depth -= 1;
                }
                (Some(_), _) => {
                    self.bump();
                }
                (None, _) => return Err(self.err(start, "unterminated block comment")),
            }
        }
        Ok(())
    }

    /// Handles the `r` / `b` / `c` literal prefixes (`r"…"`, `r#"…"#`,
    /// `r#ident`, `b"…"`, `b'…'`, `br#"…"#`, `c"…"`, `cr"…"`). Returns
    /// `true` if a prefixed literal or raw identifier was consumed;
    /// `false` leaves the position untouched so the caller lexes a plain
    /// identifier.
    fn literal_prefix(&mut self) -> bool {
        let c0 = self.peek(0).unwrap_or_default();
        // Longest prefixes first: br / cr, then single letters.
        let (len, raw, byte_char) = match (c0, self.peek(1)) {
            ('b', Some('r')) | ('c', Some('r')) => (2, true, false),
            ('b', Some('\'')) => (1, false, true),
            ('r', _) => (1, true, false),
            ('b' | 'c', Some('"')) => (1, false, false),
            _ => return false,
        };
        if byte_char {
            self.pos += len;
            // b'x' is always a char-literal form, never a lifetime.
            return self.char_literal().is_ok();
        }
        // Count '#'s after the prefix; a raw form needs `#*"` and a raw
        // identifier needs exactly `r#ident`.
        let mut hashes = 0usize;
        while self.peek(len + hashes) == Some('#') {
            hashes += 1;
        }
        match self.peek(len + hashes) {
            Some('"') => {
                self.pos += len + hashes;
                if raw || hashes == 0 {
                    if raw {
                        let _ = self.raw_string(hashes);
                    } else {
                        let _ = self.string();
                    }
                    true
                } else {
                    false
                }
            }
            Some(c) if c0 == 'r' && hashes == 1 && (c == '_' || c.is_alphabetic()) => {
                // Raw identifier r#type: emit as the bare identifier.
                self.pos += 2;
                self.ident();
                true
            }
            _ => false,
        }
    }

    fn string(&mut self) -> Result<(), LexError> {
        let start = self.line;
        self.bump(); // opening quote
        loop {
            match self.bump() {
                Some('\\') => {
                    self.bump(); // whatever is escaped, including '"'
                }
                Some('"') => return Ok(()),
                Some(_) => {}
                None => return Err(self.err(start, "unterminated string literal")),
            }
        }
    }

    fn raw_string(&mut self, hashes: usize) -> Result<(), LexError> {
        let start = self.line;
        self.bump(); // opening quote
        loop {
            match self.bump() {
                Some('"') => {
                    if (0..hashes).all(|i| self.peek(i) == Some('#')) {
                        for _ in 0..hashes {
                            self.bump();
                        }
                        return Ok(());
                    }
                }
                Some(_) => {}
                None => return Err(self.err(start, "unterminated raw string literal")),
            }
        }
    }

    /// A `'` is either a char literal (`'a'`, `'\n'`, `'"'`) or a
    /// lifetime/label (`'a`, `'static`). Escapes and a closing quote two
    /// chars out mean char literal; an identifier head with no closing
    /// quote means lifetime.
    fn quote(&mut self) -> Result<(), LexError> {
        match (self.peek(1), self.peek(2)) {
            (Some('\\'), _) => self.char_literal(),
            (Some(c), Some('\'')) if c != '\'' => self.char_literal(),
            (Some(c), _) if c == '_' || c.is_alphabetic() => {
                let line = self.line;
                self.bump(); // quote
                let name = self.ident_text();
                self.out.push(Token {
                    tok: Tok::Lifetime(name),
                    line,
                });
                Ok(())
            }
            _ => {
                let line = self.line;
                Err(self.err(line, "stray single quote"))
            }
        }
    }

    fn char_literal(&mut self) -> Result<(), LexError> {
        let start = self.line;
        self.bump(); // opening quote
        loop {
            match self.bump() {
                Some('\\') => {
                    self.bump();
                }
                Some('\'') => return Ok(()),
                Some('\n') | None => return Err(self.err(start, "unterminated char literal")),
                Some(_) => {}
            }
        }
    }

    fn ident_text(&mut self) -> String {
        let mut s = String::new();
        while let Some(c) = self.peek(0) {
            if c == '_' || c.is_alphanumeric() {
                s.push(c);
                self.pos += 1;
            } else {
                break;
            }
        }
        s
    }

    fn ident(&mut self) {
        let line = self.line;
        let name = self.ident_text();
        self.out.push(Token {
            tok: Tok::Ident(name),
            line,
        });
    }

    /// Numbers are consumed and dropped: rules never match on them, but
    /// suffixed forms (`1_000u64`, `0xFF`, `1e9`) must not shed fake
    /// identifier tokens. Dots are left alone so ranges (`0..n`) and
    /// float fractions lex as punctuation, which no rule matches.
    fn number(&mut self) {
        while let Some(c) = self.peek(0) {
            if c == '_' || c.is_alphanumeric() {
                self.pos += 1;
            } else {
                break;
            }
        }
    }
}

/// Formats a token stream one token per line (`line<TAB>kind<TAB>text`)
/// — the fixture-corpus format under `tests/fixtures/lexer/`.
#[must_use]
pub fn format_tokens(tokens: &[Token]) -> String {
    let mut out = String::new();
    for t in tokens {
        let (kind, text) = match &t.tok {
            Tok::Ident(s) => ("ident", s.clone()),
            Tok::Punct(c) => ("punct", c.to_string()),
            Tok::Lifetime(s) => ("lifetime", s.clone()),
        };
        out.push_str(&format!("{}\t{kind}\t{text}\n", t.line));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn idents(src: &str) -> Vec<String> {
        lex(src)
            .expect("lexes")
            .into_iter()
            .filter_map(|t| match t.tok {
                Tok::Ident(s) => Some(s),
                _ => None,
            })
            .collect()
    }

    #[test]
    fn comments_and_strings_are_stripped() {
        let src = r##"
            // BTreeMap in a line comment
            /* HashMap /* nested BTreeSet */ still comment */
            let s = "Instant::now() in a string";
            let r = r#"thread::spawn in a raw "quoted" string"#;
            let b = b"panic! bytes";
            real_ident();
        "##;
        assert_eq!(
            idents(src),
            ["let", "s", "let", "r", "let", "b", "real_ident"]
        );
    }

    #[test]
    fn char_literals_vs_lifetimes() {
        let toks = lex("fn f<'a>(x: &'a str) { let c = 'x'; let q = '\\''; break 'outer; }")
            .expect("lexes");
        let lifetimes: Vec<_> = toks
            .iter()
            .filter_map(|t| match &t.tok {
                Tok::Lifetime(s) => Some(s.as_str()),
                _ => None,
            })
            .collect();
        assert_eq!(lifetimes, ["a", "a", "outer"]);
        assert!(!idents("let c = 'x';").contains(&"x".to_string()));
    }

    #[test]
    fn raw_identifiers_unwrap() {
        assert_eq!(idents("let r#type = r#fn;"), ["let", "type", "fn"]);
    }

    #[test]
    fn shebang_skipped_but_inner_attr_kept() {
        assert_eq!(idents("#!/usr/bin/env rust\nfoo();"), ["foo"]);
        assert_eq!(idents("#![forbid(unsafe_code)]"), ["forbid", "unsafe_code"]);
    }

    #[test]
    fn unterminated_constructs_error() {
        assert!(lex("/* never closed").is_err());
        assert!(lex("let s = \"open").is_err());
        assert!(lex("let c = '\\x").is_err());
    }

    #[test]
    fn numbers_shed_no_identifiers() {
        assert_eq!(
            idents("let x = 1_000u64 + 0xFF + 1e9; for i in 0..n {}"),
            ["let", "x", "for", "i", "in", "n"]
        );
    }
}
