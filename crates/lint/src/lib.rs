//! `dmis-lint`: the workspace's determinism conventions as
//! machine-checked repo contracts.
//!
//! The crate is a self-contained static-analysis pass over the
//! workspace's own sources: a small Rust lexer ([`lexer`]) that strips
//! comments and string literals and yields identifier/punctuation
//! tokens with line numbers, a rule set ([`rules`]) that encodes each
//! contract as banned (or, for the unsafe check, required) token
//! sequences scoped by path, a waiver ratchet ([`waiver`]) parsed from
//! `tools/lint_waivers.toml`, and the driver ([`engine`]) that walks
//! the tree, masks `#[cfg(test)]`/`#[test]` items, and settles hits
//! against the committed waivers.
//!
//! Run it with `cargo run -p dmis-lint` (exit 1 on any unwaived hit,
//! ratchet overflow, or waiver rot), or `--explain <rule>` for the
//! contract and its rationale. DESIGN.md § Static contracts holds the
//! rule-by-rule table.

#![forbid(unsafe_code)]
#![deny(deprecated)]
#![warn(missing_docs)]

pub mod engine;
pub mod lexer;
pub mod rules;
pub mod waiver;

pub use engine::{analyze, collect_workspace, scan_source, Report, SourceFile, Violation};
pub use lexer::{lex, LexError, Tok, Token};
pub use rules::{rule_by_name, Rule, RULES};
pub use waiver::{Waiver, WaiverFile};
