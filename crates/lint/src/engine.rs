//! The analysis driver: lex each file, mask test-gated regions, match
//! every applicable rule's patterns, then settle the hits against the
//! committed waivers and ratchet.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};

use crate::lexer::{self, Tok, Token};
use crate::rules::{self, Elem, Rule, RULES};
use crate::waiver::WaiverFile;

/// One workspace source file, path workspace-relative with `/`
/// separators.
#[derive(Debug, Clone)]
pub struct SourceFile {
    /// Workspace-relative path (`crates/core/src/engine.rs`).
    pub rel_path: String,
    /// Full file contents.
    pub text: String,
}

/// A single rule hit.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Violation {
    /// Rule that fired.
    pub rule: &'static str,
    /// File it fired in.
    pub path: String,
    /// 1-based line of the first token of the match.
    pub line: u32,
    /// The matched token text (for the report).
    pub excerpt: String,
}

impl std::fmt::Display for Violation {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}:{}: {}: `{}`",
            self.path, self.line, self.rule, self.excerpt
        )
    }
}

/// The outcome of one full analysis.
#[derive(Debug, Default)]
pub struct Report {
    /// Violations not absorbed by any waiver — each one fails the run.
    pub unwaived: Vec<Violation>,
    /// Violations absorbed by a waiver (informational).
    pub waived: Vec<Violation>,
    /// Configuration errors: lex failures, unknown waiver rules, waiver
    /// paths that no longer exist, ratchet overflows/omissions. Each one
    /// fails the run.
    pub config_errors: Vec<String>,
    /// Non-failing notes (waiver slack: fewer hits than the waiver
    /// allows — the count should ratchet down).
    pub notes: Vec<String>,
    /// Files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// True when the tree satisfies every contract under the committed
    /// waivers.
    #[must_use]
    pub fn is_clean(&self) -> bool {
        self.unwaived.is_empty() && self.config_errors.is_empty()
    }
}

/// Marks which tokens are inside test-gated items: a `#[...]` attribute
/// whose gate mentions `test` (outside a `not(...)`) masks the item that
/// follows it, through its closing `}` or terminating `;`.
///
/// Gating attributes are `#[test]`-shaped (a path ending in `test`, e.g.
/// `#[tokio::test]`) or `#[cfg(...)]` whose argument mentions `test`
/// without `not` — so `#[cfg(not(test))]` code stays scanned, and
/// `#[cfg_attr(test, ...)]` (which only modifies attributes) does not
/// hide the item it decorates.
#[must_use]
pub fn test_mask(tokens: &[Token]) -> Vec<bool> {
    let mut mask = vec![false; tokens.len()];
    let mut i = 0;
    while i < tokens.len() {
        // Outer attribute: `#` `[` ... `]` (inner `#![...]` attributes
        // configure the enclosing module, not a following item).
        if tokens[i].tok == Tok::Punct('#')
            && tokens.get(i + 1).map(|t| &t.tok) == Some(&Tok::Punct('['))
        {
            let (idents, close) = attr_idents(tokens, i + 1);
            if is_test_gate(&idents) {
                let end = item_end(tokens, close + 1);
                for m in mask.iter_mut().take(end).skip(i) {
                    *m = true;
                }
                i = end;
                continue;
            }
            i = close + 1;
            continue;
        }
        i += 1;
    }
    mask
}

/// Collects the identifiers inside a bracketed attribute starting at the
/// opening `[` and returns them with the index of the matching `]`.
fn attr_idents(tokens: &[Token], open: usize) -> (Vec<String>, usize) {
    let mut idents = Vec::new();
    let mut depth = 0usize;
    let mut i = open;
    while i < tokens.len() {
        match &tokens[i].tok {
            Tok::Punct('[') => depth += 1,
            Tok::Punct(']') => {
                depth -= 1;
                if depth == 0 {
                    return (idents, i);
                }
            }
            Tok::Ident(s) => idents.push(s.clone()),
            _ => {}
        }
        i += 1;
    }
    (idents, tokens.len().saturating_sub(1))
}

fn is_test_gate(idents: &[String]) -> bool {
    let Some(first) = idents.first() else {
        return false;
    };
    if first == "cfg" {
        return idents.iter().any(|s| s == "test") && !idents.iter().any(|s| s == "not");
    }
    // `#[test]`, `#[tokio::test]`, `#[should_panic]`-style companions
    // always ride with `#[test]`, so matching the path tail suffices.
    idents.last().is_some_and(|s| s == "test")
}

/// Finds the end (exclusive token index) of the item that starts at
/// `from`: the matching `}` of its first top-level brace block, or its
/// terminating top-level `;`, whichever comes first. Nested attributes
/// are stepped over so `#[cfg(test)] #[allow(...)] mod t { ... }` masks
/// through the whole module.
fn item_end(tokens: &[Token], from: usize) -> usize {
    let mut i = from;
    let mut depth = 0usize;
    while i < tokens.len() {
        match &tokens[i].tok {
            Tok::Punct('#')
                if depth == 0 && tokens.get(i + 1).map(|t| &t.tok) == Some(&Tok::Punct('[')) =>
            {
                let (_, close) = attr_idents(tokens, i + 1);
                i = close + 1;
                continue;
            }
            Tok::Punct('{') => depth += 1,
            Tok::Punct('}') => {
                depth = depth.saturating_sub(1);
                if depth == 0 {
                    return i + 1;
                }
            }
            Tok::Punct(';') if depth == 0 => return i + 1,
            _ => {}
        }
        i += 1;
    }
    tokens.len()
}

fn elem_matches(elem: &Elem, tok: &Tok) -> bool {
    match (elem, tok) {
        (Elem::Id(set), Tok::Ident(s)) => set.contains(&s.as_str()),
        (Elem::P(c), Tok::Punct(p)) => c == p,
        _ => false,
    }
}

fn pattern_at(pattern: &[Elem], tokens: &[Token], at: usize) -> bool {
    tokens.len() - at >= pattern.len()
        && pattern
            .iter()
            .zip(&tokens[at..])
            .all(|(e, t)| elem_matches(e, &t.tok))
}

fn excerpt(pattern: &[Elem], tokens: &[Token], at: usize) -> String {
    let mut s = String::new();
    for t in &tokens[at..at + pattern.len()] {
        match &t.tok {
            Tok::Ident(id) => s.push_str(id),
            Tok::Punct(c) => s.push(*c),
            Tok::Lifetime(l) => {
                s.push('\'');
                s.push_str(l);
            }
        }
    }
    s
}

/// Scans one lexed file against one rule. `mask` flags test-gated
/// tokens, which never count.
#[must_use]
pub fn scan_tokens(rule: &Rule, path: &str, tokens: &[Token], mask: &[bool]) -> Vec<Violation> {
    if rule.name == rules::FORBID_UNSAFE.name {
        // Required-sequence rule: the attribute must appear somewhere
        // (conventionally the header), mask irrelevant.
        let required = rule.patterns[0];
        let found = (0..tokens.len()).any(|i| pattern_at(required, tokens, i));
        return if found {
            Vec::new()
        } else {
            vec![Violation {
                rule: rule.name,
                path: path.to_string(),
                line: 1,
                excerpt: "missing #![forbid(unsafe_code)]".to_string(),
            }]
        };
    }
    let mut out = Vec::new();
    for i in 0..tokens.len() {
        if mask.get(i).copied().unwrap_or(false) {
            continue;
        }
        for pattern in rule.patterns {
            if pattern_at(pattern, tokens, i) {
                out.push(Violation {
                    rule: rule.name,
                    path: path.to_string(),
                    line: tokens[i].line,
                    excerpt: excerpt(pattern, tokens, i),
                });
            }
        }
    }
    out
}

/// Lexes and scans a single source text as if it lived at `rel_path`.
/// Returns the violations of every applicable rule, or the lex error.
///
/// # Errors
///
/// Propagates the [`lexer::LexError`] if the text does not lex.
pub fn scan_source(rel_path: &str, text: &str) -> Result<Vec<Violation>, lexer::LexError> {
    let tokens = lexer::lex(text)?;
    let mask = test_mask(&tokens);
    let mut out = Vec::new();
    for rule in RULES {
        if rules::applies(rule, rel_path) {
            out.extend(scan_tokens(rule, rel_path, &tokens, &mask));
        }
    }
    Ok(out)
}

/// Walks the workspace and returns every `.rs` file the linter covers:
/// `crates/`, `src/`, `tests/`, `examples/`, and `vendor/` (crate-root
/// checks only), skipping `target/` and fixture corpora.
///
/// # Errors
///
/// Propagates I/O errors from the directory walk.
pub fn collect_workspace(root: &Path) -> std::io::Result<Vec<SourceFile>> {
    let mut files = Vec::new();
    for top in ["crates", "src", "tests", "examples", "vendor"] {
        let dir = root.join(top);
        if dir.is_dir() {
            walk(root, &dir, &mut files)?;
        }
    }
    files.sort_by(|a, b| a.rel_path.cmp(&b.rel_path));
    Ok(files)
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<SourceFile>) -> std::io::Result<()> {
    for entry in std::fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == "fixtures" || name.starts_with('.') {
                continue;
            }
            walk(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let text = std::fs::read_to_string(&path)?;
            out.push(SourceFile {
                rel_path: rel_path(root, &path),
                text,
            });
        }
    }
    Ok(())
}

fn rel_path(root: &Path, path: &Path) -> String {
    let rel: PathBuf = path.strip_prefix(root).unwrap_or(path).to_path_buf();
    rel.to_string_lossy().replace('\\', "/")
}

/// Runs the full analysis: every rule over every file, then settles the
/// hits against `waivers`. Waiver paths are validated against the file
/// list, so a waiver for a deleted or renamed file is a config error
/// (waiver rot fails loudly instead of shielding a fresh file).
#[must_use]
pub fn analyze(files: &[SourceFile], waivers: &WaiverFile) -> Report {
    let mut report = Report {
        files_scanned: files.len(),
        ..Report::default()
    };
    validate_waivers(files, waivers, &mut report);

    // Allowance per (rule, path), consumed hit by hit.
    let mut allowance: BTreeMap<(&str, &str), u32> = BTreeMap::new();
    for w in &waivers.waivers {
        *allowance
            .entry((w.rule.as_str(), w.path.as_str()))
            .or_insert(0) += w.count;
    }

    for file in files {
        match scan_source(&file.rel_path, &file.text) {
            Err(e) => report
                .config_errors
                .push(format!("{}: lex error: {e}", file.rel_path)),
            Ok(violations) => {
                for v in violations {
                    let key = (v.rule, file.rel_path.as_str());
                    match allowance.get_mut(&key) {
                        Some(n) if *n > 0 => {
                            *n -= 1;
                            report.waived.push(v);
                        }
                        _ => report.unwaived.push(v),
                    }
                }
            }
        }
    }

    for ((rule, path), left) in &allowance {
        if *left > 0 {
            report.notes.push(format!(
                "waiver slack: {rule} at {path} allows {left} more hit(s) than exist — \
                 ratchet the count down"
            ));
        }
    }
    report
}

fn validate_waivers(files: &[SourceFile], waivers: &WaiverFile, report: &mut Report) {
    for w in &waivers.waivers {
        if rules::rule_by_name(&w.rule).is_none() {
            report
                .config_errors
                .push(format!("waiver names unknown rule `{}`", w.rule));
        }
        if !files.iter().any(|f| f.rel_path == w.path) {
            report.config_errors.push(format!(
                "waiver rot: `{}` waives {} but that file is not in the scanned workspace",
                w.path, w.rule
            ));
        }
        if w.count == 0 {
            report.config_errors.push(format!(
                "waiver for {} at {} has count 0 — delete it instead",
                w.rule, w.path
            ));
        }
    }
    // Ratchet: every rule pinned, and per-rule waiver totals within it.
    let mut totals: BTreeMap<&str, u32> = BTreeMap::new();
    for w in &waivers.waivers {
        *totals.entry(w.rule.as_str()).or_insert(0) += w.count;
    }
    for rule in RULES {
        match waivers.ratchet.get(rule.name) {
            None => report.config_errors.push(format!(
                "ratchet is missing rule `{}` — every rule must be pinned, 0 included",
                rule.name
            )),
            Some(max) => {
                let total = totals.get(rule.name).copied().unwrap_or(0);
                if total > *max {
                    report.config_errors.push(format!(
                        "ratchet exceeded: {} waives {total} hits but the ratchet pins {max} — \
                         debt can only shrink (or the raise must be explicit in this diff)",
                        rule.name
                    ));
                }
            }
        }
    }
    for name in waivers.ratchet.keys() {
        if rules::rule_by_name(name).is_none() {
            report
                .config_errors
                .push(format!("ratchet names unknown rule `{name}`"));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn toks(src: &str) -> Vec<Token> {
        lexer::lex(src).expect("lexes")
    }

    #[test]
    fn test_mask_covers_cfg_test_items() {
        let src = "fn live() { x(); }\n#[cfg(test)]\nmod tests { fn t() { y(); } }\nfn tail() {}";
        let tokens = toks(src);
        let mask = test_mask(&tokens);
        let masked: Vec<&str> = tokens
            .iter()
            .zip(&mask)
            .filter(|(_, &m)| m)
            .filter_map(|(t, _)| match &t.tok {
                Tok::Ident(s) => Some(s.as_str()),
                _ => None,
            })
            .collect();
        assert!(masked.contains(&"y"));
        assert!(!masked.contains(&"x"));
        assert!(!masked.contains(&"tail"));
    }

    #[test]
    fn cfg_not_test_is_not_masked() {
        let tokens = toks("#[cfg(not(test))]\nfn prod() { BTreeMap::new(); }");
        let mask = test_mask(&tokens);
        assert!(mask.iter().all(|&m| !m));
    }

    #[test]
    fn cfg_attr_test_does_not_mask() {
        let tokens = toks("#[cfg_attr(test, allow(dead_code))]\nfn prod() { spawn(); }");
        let mask = test_mask(&tokens);
        assert!(mask.iter().all(|&m| !m));
    }

    #[test]
    fn stacked_attributes_mask_through_the_item() {
        let src = "#[cfg(test)]\n#[allow(unused)]\nmod t { fn f() { HashMap::new(); } }";
        let v = scan_source("crates/graph/src/fake.rs", src).expect("lexes");
        assert!(v.is_empty(), "masked test module still fired: {v:?}");
    }

    #[test]
    fn semicolon_items_mask_narrowly() {
        let src = "#[cfg(test)]\nuse std::collections::HashMap;\nfn live() { HashMap::new(); }";
        let v = scan_source("crates/graph/src/fake.rs", src).expect("lexes");
        assert_eq!(v.len(), 1, "only the live use should fire: {v:?}");
        assert_eq!(v[0].line, 3);
    }
}
