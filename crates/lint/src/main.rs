//! CLI for the repo-contract linter.
//!
//! ```text
//! cargo run -p dmis-lint              # full run, exit 1 on violation
//! cargo run -p dmis-lint -- --list    # rule names + contracts
//! cargo run -p dmis-lint -- --explain no-ambient-time
//! ```

#![forbid(unsafe_code)]
#![deny(deprecated)]

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use dmis_lint::{analyze, collect_workspace, rule_by_name, waiver, RULES};

fn workspace_root() -> PathBuf {
    // crates/lint → workspace root.
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .ancestors()
        .nth(2)
        .expect("crates/lint has a workspace root two levels up")
        .to_path_buf()
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("--list") => {
            for rule in RULES {
                println!("{}\n    {}\n", rule.name, rule.contract);
            }
            ExitCode::SUCCESS
        }
        Some("--explain") => {
            let Some(name) = args.get(1) else {
                eprintln!("usage: dmis-lint --explain <rule>");
                return ExitCode::FAILURE;
            };
            match rule_by_name(name) {
                Some(rule) => {
                    println!(
                        "{}\n\ncontract: {}\n\nwhy: {}",
                        rule.name, rule.contract, rule.why
                    );
                    ExitCode::SUCCESS
                }
                None => {
                    eprintln!("unknown rule `{name}`; --list shows all rules");
                    ExitCode::FAILURE
                }
            }
        }
        Some(other) => {
            eprintln!("unknown argument `{other}`; supported: --list, --explain <rule>");
            ExitCode::FAILURE
        }
        None => run(&workspace_root()),
    }
}

fn run(root: &Path) -> ExitCode {
    let waiver_path = root.join("tools/lint_waivers.toml");
    let waiver_text = match std::fs::read_to_string(&waiver_path) {
        Ok(t) => t,
        Err(e) => {
            eprintln!("dmis-lint: cannot read {}: {e}", waiver_path.display());
            return ExitCode::FAILURE;
        }
    };
    let waivers = match waiver::parse(&waiver_text) {
        Ok(w) => w,
        Err(e) => {
            eprintln!("dmis-lint: {e}");
            return ExitCode::FAILURE;
        }
    };
    let files = match collect_workspace(root) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("dmis-lint: workspace walk failed: {e}");
            return ExitCode::FAILURE;
        }
    };
    let report = analyze(&files, &waivers);

    for err in &report.config_errors {
        eprintln!("error: {err}");
    }
    for v in &report.unwaived {
        eprintln!("error: {v}");
        if let Some(rule) = rule_by_name(v.rule) {
            eprintln!("    contract: {}", rule.contract);
        }
    }
    for note in &report.notes {
        eprintln!("note: {note}");
    }

    if report.is_clean() {
        println!(
            "dmis-lint: {} files clean ({} waived hit(s) under ratchet)",
            report.files_scanned,
            report.waived.len()
        );
        ExitCode::SUCCESS
    } else {
        eprintln!(
            "dmis-lint: {} unwaived violation(s), {} config error(s) across {} files; \
             run `cargo run -p dmis-lint -- --explain <rule>` for rationale",
            report.unwaived.len(),
            report.config_errors.len(),
            report.files_scanned
        );
        ExitCode::FAILURE
    }
}
