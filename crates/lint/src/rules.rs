//! The repo contracts as data: each rule names the convention it
//! enforces, the DESIGN.md anchor that argues for it, the paths it
//! applies to, and the token patterns that constitute a violation.
//!
//! Scoping is path-based and deliberately coarse: a rule either applies
//! to a file or it does not, and test code (`#[cfg(test)]` items,
//! `#[test]` functions, anything under a `tests/`, `benches/`, or
//! `examples/` directory) is exempt from every rule except
//! [`FORBID_UNSAFE`] — the contracts protect production bit-identity
//! and recovery, not test ergonomics.

/// One element of a token-sequence pattern.
#[derive(Debug, Clone, Copy)]
pub enum Elem {
    /// An identifier drawn from this set.
    Id(&'static [&'static str]),
    /// A single punctuation character.
    P(char),
}

/// A banned token sequence (length 1 for simple identifier bans).
pub type Pattern = &'static [Elem];

/// A machine-checked repo contract.
#[derive(Debug, Clone, Copy)]
pub struct Rule {
    /// Stable kebab-case name, used in waivers and `--explain`.
    pub name: &'static str,
    /// One-line statement of the contract.
    pub contract: &'static str,
    /// Why the contract protects bit-identity / recovery (the
    /// `--explain` body; the table lives in DESIGN.md § Static
    /// contracts).
    pub why: &'static str,
    /// Token sequences that violate the contract.
    pub patterns: &'static [Pattern],
}

/// `no-ordered-map-hot-path`.
pub const NO_ORDERED_MAP: Rule = Rule {
    name: "no-ordered-map-hot-path",
    contract: "BTreeMap/BTreeSet/HashMap/HashSet are banned in crates/graph/src, the core hot \
               modules (engine.rs, sharding.rs, parallel.rs, rank.rs, snapshot.rs), and the \
               derived matching engines; hot paths stay on dense NodeMap/NodeSet storage.",
    why: "PR 1/6 moved every per-node table to arena-backed dense storage: ordered maps \
          reintroduce O(log n) pointer-chasing on paths gated at O(touched), and HashMap's \
          RandomState makes iteration order run-dependent, which breaks receipt bit-identity. \
          The remaining EdgeKey tables are waived pending the ROADMAP 'Edge-keyed dense \
          storage' item.",
    patterns: &[&[Elem::Id(&["BTreeMap", "BTreeSet", "HashMap", "HashSet"])]],
};

/// `no-ambient-time`.
pub const NO_AMBIENT_TIME: Rule = Rule {
    name: "no-ambient-time",
    contract: "Instant::now / SystemTime only inside policy.rs (MonotonicClock), bench and sim \
               timing loops, and driver binaries; everything else takes time through the \
               injectable Clock.",
    why: "PR 8 made every policy decision a pure function of the seeded stream by routing all \
          time observations through the Clock trait. One ambient Instant::now() in a settle or \
          flush path passes every test yet makes replay/recovery diverge from the recorded \
          receipts, silently breaking the bit-identity the checkpoint/WAL proofs rely on.",
    patterns: &[
        &[
            Elem::Id(&["Instant"]),
            Elem::P(':'),
            Elem::P(':'),
            Elem::Id(&["now"]),
        ],
        &[Elem::Id(&["SystemTime", "UNIX_EPOCH"])],
    ],
};

/// `no-ambient-rng`.
pub const NO_AMBIENT_RNG: Rule = Rule {
    name: "no-ambient-rng",
    contract:
        "RNG construction only through seeded, draw-counted paths (SeedableRng::seed_from_u64 \
               et al.); entropy-seeded or thread-local RNGs are banned everywhere.",
    why: "The checkpoint META frame records the RNG seed and draw count so recovery can fast- \
          forward the stream to the exact position the crashed engine held. An RNG seeded from \
          ambient entropy — or a thread-local one drawing outside the counted path — corrupts \
          that contract: recovery replays different priorities and the witness check fails (or \
          worse, silently diverges in a derived structure).",
    patterns: &[&[Elem::Id(&[
        "thread_rng",
        "ThreadRng",
        "from_entropy",
        "from_os_rng",
        "OsRng",
        "getrandom",
    ])]],
};

/// `no-thread-spawn`.
pub const NO_THREAD_SPAWN: Rule = Rule {
    name: "no-thread-spawn",
    contract: "thread::spawn / thread::scope only in parallel.rs (the epoch executor) and \
               serve.rs (the serving harness); engines never spawn elsewhere.",
    why: "PR 3's determinism argument fixes the merge order, not the execution order — but only \
          because every worker lives inside the epoch barrier in parallel.rs, where outboxes \
          are merged in shard-index order. A stray spawn anywhere else reintroduces scheduling- \
          dependent state and the receipts stop being bit-identical across thread counts.",
    patterns: &[&[
        Elem::Id(&["thread"]),
        Elem::P(':'),
        Elem::P(':'),
        Elem::Id(&["spawn", "scope"]),
    ]],
};

/// `no-panic-decode`.
pub const NO_PANIC_DECODE: Rule = Rule {
    name: "no-panic-decode",
    contract: "unwrap / expect / panic!-family macros are banned in the durability decoders \
               (codec.rs, checkpoint.rs, wal.rs, recover.rs outside tests); hostile bytes \
               must surface as DecodeError/CodecError, never a panic.",
    why: "Recovery's whole job is reading bytes a crash may have mangled: PR 9's fault- \
          injection suite proves every torn/flipped/truncated image yields a valid prefix \
          state. A decoder that panics on hostile input turns a recoverable corruption into \
          a crash loop — the one failure mode the durability layer exists to rule out.",
    // Method-call shape (`.unwrap(`) rather than the bare identifier, so
    // a local *named* `expect` (e.g. `take_frame(cur, expect)`) does not
    // fire; the path forms catch `.map(Option::unwrap)` closures.
    patterns: &[
        &[Elem::P('.'), Elem::Id(&["unwrap", "expect"]), Elem::P('(')],
        &[
            Elem::Id(&["Option", "Result"]),
            Elem::P(':'),
            Elem::P(':'),
            Elem::Id(&["unwrap", "expect"]),
        ],
        &[
            Elem::Id(&["panic", "unreachable", "todo", "unimplemented"]),
            Elem::P('!'),
        ],
    ],
};

/// `forbid-unsafe-everywhere`.
pub const FORBID_UNSAFE: Rule = Rule {
    name: "forbid-unsafe-everywhere",
    contract: "Every crate root (src/lib.rs, src/main.rs, src/bin/*.rs — vendored stand-ins \
               included) carries #![forbid(unsafe_code)].",
    why: "The dense storage layer hands out raw word slices and the parallel executor hands \
          out disjoint &mut shard slices; both are safe today precisely because the compiler \
          checks them. forbid (not deny) means no module can opt back in with an allow — the \
          absence of unsafe is a workspace-wide invariant the equivalence suites lean on.",
    // Matched specially: this rule *requires* a token sequence instead of
    // banning one. The patterns slice documents the required prefix.
    patterns: &[&[
        Elem::P('#'),
        Elem::P('!'),
        Elem::P('['),
        Elem::Id(&["forbid"]),
        Elem::P('('),
        Elem::Id(&["unsafe_code"]),
        Elem::P(')'),
        Elem::P(']'),
    ]],
};

/// `no-print-in-lib`.
pub const NO_PRINT_IN_LIB: Rule = Rule {
    name: "no-print-in-lib",
    contract: "println!/eprintln!/print!/eprint!/dbg! are banned in library code; reporting \
               belongs to src/bin drivers, benches, examples, and tests.",
    why: "Library prints are unmeterable side channels: they skew the ns/change benches the \
          regression gates compare, interleave nondeterministically under the parallel \
          executor, and leak past the structured receipts/reports every harness meters. A \
          stray debug eprintln! in a settle path is also the classic way timing artifacts \
          sneak into 'deterministic' runs.",
    patterns: &[&[
        Elem::Id(&["println", "eprintln", "print", "eprint", "dbg"]),
        Elem::P('!'),
    ]],
};

/// All rules, in reporting order.
pub const RULES: &[&Rule] = &[
    &NO_ORDERED_MAP,
    &NO_AMBIENT_TIME,
    &NO_AMBIENT_RNG,
    &NO_THREAD_SPAWN,
    &NO_PANIC_DECODE,
    &FORBID_UNSAFE,
    &NO_PRINT_IN_LIB,
];

/// Looks a rule up by name.
#[must_use]
pub fn rule_by_name(name: &str) -> Option<&'static Rule> {
    RULES.iter().copied().find(|r| r.name == name)
}

/// The core hot modules covered by [`NO_ORDERED_MAP`].
const CORE_HOT_MODULES: &[&str] = &[
    "crates/core/src/engine.rs",
    "crates/core/src/sharding.rs",
    "crates/core/src/parallel.rs",
    "crates/core/src/rank.rs",
    "crates/core/src/snapshot.rs",
];

/// The durability decoders covered by [`NO_PANIC_DECODE`].
const DECODE_MODULES: &[&str] = &[
    "crates/core/src/durability/codec.rs",
    "crates/core/src/durability/checkpoint.rs",
    "crates/core/src/durability/wal.rs",
    "crates/core/src/durability/recover.rs",
];

/// True if `path` (workspace-relative, `/`-separated) lives in a
/// directory whose entire contents are test/bench/example code.
#[must_use]
pub fn is_test_path(path: &str) -> bool {
    path.split('/')
        .any(|seg| matches!(seg, "tests" | "benches" | "examples"))
}

fn in_dir(path: &str, dir: &str) -> bool {
    path.starts_with(dir) && path.as_bytes().get(dir.len()) == Some(&b'/')
}

/// True if `path` is a driver binary: a `src/bin/` entry or a crate's
/// `src/main.rs`. Drivers are where reporting and wall-clock timing
/// legitimately live.
#[must_use]
pub fn is_bin_driver(path: &str) -> bool {
    path.starts_with("src/bin/") || path.contains("/src/bin/") || path.ends_with("src/main.rs")
}

/// True if `path` is a crate root that must carry the forbid attribute.
#[must_use]
pub fn is_crate_root(path: &str) -> bool {
    path.ends_with("src/lib.rs")
        || path.ends_with("src/main.rs")
        || ((path.starts_with("src/bin/") || path.contains("/src/bin/")) && path.ends_with(".rs"))
}

/// Whether `rule` applies to `path` at all. Vendored stand-ins are only
/// subject to the crate-root attribute check; fixture corpora are never
/// scanned (the workspace walker skips them, and this predicate backs
/// that up).
#[must_use]
pub fn applies(rule: &Rule, path: &str) -> bool {
    if path.split('/').any(|seg| seg == "fixtures") {
        return false;
    }
    if rule.name == FORBID_UNSAFE.name {
        return is_crate_root(path);
    }
    if in_dir(path, "vendor") {
        return false;
    }
    match rule.name {
        "no-ordered-map-hot-path" => {
            in_dir(path, "crates/graph/src")
                || CORE_HOT_MODULES.contains(&path)
                || path == "crates/derived/src/matching.rs"
                || path == "crates/derived/src/matching_native.rs"
        }
        "no-ambient-time" => {
            !is_test_path(path)
                && path != "crates/core/src/policy.rs"
                && path != "crates/sim/src/serve.rs"
                && !in_dir(path, "crates/bench")
                && !is_bin_driver(path)
        }
        "no-ambient-rng" => !is_test_path(path),
        "no-thread-spawn" => {
            !is_test_path(path)
                && path != "crates/core/src/parallel.rs"
                && path != "crates/sim/src/serve.rs"
        }
        "no-panic-decode" => DECODE_MODULES.contains(&path),
        "no-print-in-lib" => !is_test_path(path) && !is_bin_driver(path),
        _ => false,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scopes_match_the_contract_prose() {
        let om = &NO_ORDERED_MAP;
        assert!(applies(om, "crates/graph/src/storage.rs"));
        assert!(applies(om, "crates/core/src/engine.rs"));
        assert!(applies(om, "crates/derived/src/matching_native.rs"));
        assert!(!applies(om, "crates/core/src/invariant.rs"));
        assert!(!applies(om, "crates/derived/src/verify.rs"));
        assert!(!applies(om, "crates/graph/tests/foo.rs"));

        let time = &NO_AMBIENT_TIME;
        assert!(applies(time, "crates/core/src/engine.rs"));
        assert!(!applies(time, "crates/core/src/policy.rs"));
        assert!(!applies(time, "crates/bench/benches/engine_updates.rs"));
        assert!(!applies(time, "crates/sim/src/serve.rs"));
        assert!(!applies(time, "src/bin/mis_serve.rs"));
        assert!(!applies(time, "vendor/criterion/src/lib.rs"));

        let spawn = &NO_THREAD_SPAWN;
        assert!(applies(spawn, "crates/core/src/engine.rs"));
        assert!(!applies(spawn, "crates/core/src/parallel.rs"));
        assert!(!applies(spawn, "crates/core/tests/thread_safety.rs"));

        let decode = &NO_PANIC_DECODE;
        assert!(applies(decode, "crates/core/src/durability/wal.rs"));
        assert!(!applies(decode, "crates/core/src/durability/io.rs"));

        let unsafe_rule = &FORBID_UNSAFE;
        assert!(applies(unsafe_rule, "crates/graph/src/lib.rs"));
        assert!(applies(unsafe_rule, "vendor/rand/src/lib.rs"));
        assert!(applies(unsafe_rule, "src/bin/mis_serve.rs"));
        assert!(!applies(unsafe_rule, "crates/graph/src/storage.rs"));

        let print = &NO_PRINT_IN_LIB;
        assert!(applies(print, "crates/core/src/engine.rs"));
        assert!(!applies(print, "src/bin/churn_demo.rs"));
        assert!(!applies(print, "crates/lint/src/main.rs"));
        assert!(!applies(print, "examples/quickstart.rs"));
        assert!(!applies(print, "crates/bench/benches/engine_updates.rs"));
    }

    #[test]
    fn every_rule_resolves_by_name() {
        for r in RULES {
            assert!(rule_by_name(r.name).is_some());
        }
        assert!(rule_by_name("no-such-rule").is_none());
    }
}
