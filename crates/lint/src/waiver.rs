//! The committed waiver ratchet: `tools/lint_waivers.toml`.
//!
//! A waiver grants a specific `(rule, path)` pair a bounded number of
//! hits, with a mandatory human reason. The `[ratchet]` table pins the
//! *total* waived hits per rule; the runner fails if any rule's waiver
//! sum exceeds its ratchet entry, so the only way to add debt is to
//! raise the ratchet in the same diff — and the only invisible change
//! is shrinking it. Every rule must appear in the ratchet, zero
//! included: an explicit zero is a statement, a missing row is a typo.
//!
//! The file is parsed by a hand-rolled reader for the TOML subset it
//! uses (comments, `[[waiver]]` array-of-tables, one `[ratchet]` table,
//! `key = "string" | integer` pairs) — the linter takes no
//! dependencies, and a stricter-than-TOML parser means a malformed
//! waiver file fails CI instead of silently dropping debt.

use std::collections::BTreeMap;

/// One granted exemption.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Waiver {
    /// Rule name the waiver applies to.
    pub rule: String,
    /// Workspace-relative path the waiver applies to.
    pub path: String,
    /// Maximum number of hits this waiver absorbs.
    pub count: u32,
    /// Why the debt exists (and ideally, the ROADMAP item retiring it).
    pub reason: String,
}

/// The parsed waiver file.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct WaiverFile {
    /// All `[[waiver]]` entries in file order.
    pub waivers: Vec<Waiver>,
    /// `[ratchet]` rows: rule name → maximum total waived hits.
    pub ratchet: BTreeMap<String, u32>,
}

/// A parse or consistency failure, with the offending line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WaiverError {
    /// 1-based line number in the waiver file.
    pub line: u32,
    /// Description of the problem.
    pub msg: String,
}

impl std::fmt::Display for WaiverError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "lint_waivers.toml:{}: {}", self.line, self.msg)
    }
}

enum Section {
    None,
    Waiver(PartialWaiver),
    Ratchet,
}

#[derive(Default)]
struct PartialWaiver {
    line: u32,
    rule: Option<String>,
    path: Option<String>,
    count: Option<u32>,
    reason: Option<String>,
}

impl PartialWaiver {
    fn finish(self) -> Result<Waiver, WaiverError> {
        let missing = |field: &str| WaiverError {
            line: self.line,
            msg: format!("[[waiver]] is missing required key `{field}`"),
        };
        let reason = self.reason.ok_or_else(|| missing("reason"))?;
        if reason.trim().is_empty() {
            return Err(WaiverError {
                line: self.line,
                msg: "waiver reason must not be empty".to_string(),
            });
        }
        Ok(Waiver {
            rule: self.rule.ok_or_else(|| missing("rule"))?,
            path: self.path.ok_or_else(|| missing("path"))?,
            count: self.count.ok_or_else(|| missing("count"))?,
            reason,
        })
    }
}

/// Parses the waiver-file text.
///
/// # Errors
///
/// Returns [`WaiverError`] on any line that is not a comment, blank
/// line, recognized section header, or `key = value` pair — and on
/// incomplete waivers, duplicate keys, or non-positive counts.
pub fn parse(text: &str) -> Result<WaiverFile, WaiverError> {
    let mut out = WaiverFile::default();
    let mut section = Section::None;
    for (idx, raw) in text.lines().enumerate() {
        let lineno = u32::try_from(idx + 1).unwrap_or(u32::MAX);
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == "[[waiver]]" {
            if let Section::Waiver(w) = std::mem::replace(
                &mut section,
                Section::Waiver(PartialWaiver {
                    line: lineno,
                    ..PartialWaiver::default()
                }),
            ) {
                out.waivers.push(w.finish()?);
            }
            continue;
        }
        if line == "[ratchet]" {
            if let Section::Waiver(w) = std::mem::replace(&mut section, Section::Ratchet) {
                out.waivers.push(w.finish()?);
            }
            continue;
        }
        if line.starts_with('[') {
            return Err(WaiverError {
                line: lineno,
                msg: format!("unknown section `{line}` (expected [[waiver]] or [ratchet])"),
            });
        }
        let (key, value) = split_kv(line, lineno)?;
        match &mut section {
            Section::None => {
                return Err(WaiverError {
                    line: lineno,
                    msg: "key/value pair before any section header".to_string(),
                })
            }
            Section::Ratchet => {
                let count = parse_count(&value, lineno)?;
                if out.ratchet.insert(key.clone(), count).is_some() {
                    return Err(WaiverError {
                        line: lineno,
                        msg: format!("duplicate ratchet entry for `{key}`"),
                    });
                }
            }
            Section::Waiver(w) => {
                let dup = |k: &str| WaiverError {
                    line: lineno,
                    msg: format!("duplicate key `{k}` in [[waiver]]"),
                };
                match key.as_str() {
                    "rule" => {
                        if w.rule.replace(parse_string(&value, lineno)?).is_some() {
                            return Err(dup("rule"));
                        }
                    }
                    "path" => {
                        if w.path.replace(parse_string(&value, lineno)?).is_some() {
                            return Err(dup("path"));
                        }
                    }
                    "reason" => {
                        if w.reason.replace(parse_string(&value, lineno)?).is_some() {
                            return Err(dup("reason"));
                        }
                    }
                    "count" => {
                        if w.count.replace(parse_count(&value, lineno)?).is_some() {
                            return Err(dup("count"));
                        }
                    }
                    other => {
                        return Err(WaiverError {
                            line: lineno,
                            msg: format!("unknown waiver key `{other}`"),
                        })
                    }
                }
            }
        }
    }
    if let Section::Waiver(w) = section {
        out.waivers.push(w.finish()?);
    }
    Ok(out)
}

fn split_kv(line: &str, lineno: u32) -> Result<(String, String), WaiverError> {
    let Some((key, value)) = line.split_once('=') else {
        return Err(WaiverError {
            line: lineno,
            msg: format!("expected `key = value`, got `{line}`"),
        });
    };
    Ok((key.trim().to_string(), value.trim().to_string()))
}

fn parse_string(value: &str, lineno: u32) -> Result<String, WaiverError> {
    let inner = value
        .strip_prefix('"')
        .and_then(|v| v.strip_suffix('"'))
        .ok_or_else(|| WaiverError {
            line: lineno,
            msg: format!("expected a double-quoted string, got `{value}`"),
        })?;
    if inner.contains('"') || inner.contains('\\') {
        return Err(WaiverError {
            line: lineno,
            msg: "escapes and embedded quotes are not supported".to_string(),
        });
    }
    Ok(inner.to_string())
}

fn parse_count(value: &str, lineno: u32) -> Result<u32, WaiverError> {
    value.parse::<u32>().map_err(|_| WaiverError {
        line: lineno,
        msg: format!("expected a non-negative integer, got `{value}`"),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    const GOOD: &str = r#"
# comment
[[waiver]]
rule = "no-ordered-map-hot-path"
path = "crates/graph/src/linegraph.rs"
count = 5
reason = "EdgeKey tables pending ROADMAP edge-keyed dense storage"

[[waiver]]
rule = "no-ordered-map-hot-path"
path = "crates/graph/src/stream.rs"
count = 7
reason = "EdgeKey presence sets in stream generators"

[ratchet]
no-ordered-map-hot-path = 12
no-ambient-time = 0
"#;

    #[test]
    fn parses_the_committed_shape() {
        let f = parse(GOOD).expect("parses");
        assert_eq!(f.waivers.len(), 2);
        assert_eq!(f.waivers[0].count, 5);
        assert_eq!(f.waivers[1].path, "crates/graph/src/stream.rs");
        assert_eq!(f.ratchet["no-ordered-map-hot-path"], 12);
        assert_eq!(f.ratchet["no-ambient-time"], 0);
    }

    #[test]
    fn rejects_malformed_input() {
        assert!(parse("rule = \"x\"").is_err(), "kv before section");
        assert!(parse("[waivers]").is_err(), "unknown section");
        assert!(parse("[[waiver]]\nrule = \"r\"").is_err(), "incomplete");
        assert!(
            parse("[[waiver]]\nrule = \"r\"\npath = \"p\"\ncount = 1\nreason = \"  \"").is_err(),
            "blank reason"
        );
        assert!(parse("[ratchet]\nr = -1").is_err(), "negative count");
        assert!(parse("[ratchet]\nr = 1\nr = 2").is_err(), "duplicate");
        assert!(
            parse("[[waiver]]\nrule = \"a\"\nrule = \"b\"").is_err(),
            "duplicate waiver key"
        );
    }
}
