//! Sharded-engine harness: shard count and thread count as simulator axes.
//!
//! The broadcast networks in this crate simulate the paper's *per-node*
//! distributed model. [`ShardedRun`] covers the complementary deployment
//! the ROADMAP targets: `K` engine shards (think: cores or machines)
//! cooperating through cross-shard handoffs, as implemented by
//! [`dmis_core::ShardedMisEngine`] and executed — optionally on worker
//! threads — by [`dmis_core::ParallelShardedMisEngine`]. The harness
//! translates every receipt into the simulator's [`Metrics`] vocabulary
//! so experiments can sweep shard and thread counts exactly like they
//! sweep graph families:
//!
//! - **rounds** — barrier-synchronized settle epochs until global
//!   quiescence (the parallel-time depth: shard runs within an epoch are
//!   independent, so wall-clock scales with epochs, not runs);
//! - **broadcasts** — cross-shard handoff messages;
//! - **bits** — handoff payload, one node identifier plus one counter
//!   delta per message.
//!
//! Because the parallel engine is bit-identical to the sequential one,
//! the `threads` axis changes *wall-clock only*: rounds, broadcasts, and
//! bits are invariant across thread counts, which is exactly what E12's
//! threads table demonstrates.

use std::collections::BTreeSet;

use dmis_core::{DynamicMis, ParallelShardedMisEngine};
use dmis_graph::{DynGraph, GraphError, NodeId, ShardLayout, TopologyChange};

use crate::metrics::{ChangeOutcome, Metrics};

/// A dynamic execution of the (optionally parallel) sharded engine, with
/// per-change and lifetime [`Metrics`] in simulator terms.
///
/// # Example
///
/// ```
/// use dmis_graph::{generators, ShardLayout, TopologyChange};
/// use dmis_sim::ShardedRun;
///
/// let (g, ids) = generators::cycle(10);
/// let mut run = ShardedRun::bootstrap(g, ShardLayout::striped(4), 3);
/// let outcome = run.apply_change(&TopologyChange::DeleteEdge(ids[0], ids[1]))?;
/// println!(
///     "{} adjustments, {}",
///     outcome.adjustments(),
///     outcome.metrics
/// );
/// # Ok::<(), dmis_graph::GraphError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ShardedRun {
    engine: ParallelShardedMisEngine,
    lifetime: Metrics,
}

impl ShardedRun {
    /// Boots a sequentially-executed sharded engine over `graph` (drawing
    /// priorities from `seed`) and starts metering.
    #[must_use]
    pub fn bootstrap(graph: DynGraph, layout: ShardLayout, seed: u64) -> Self {
        Self::bootstrap_parallel(graph, layout, 1, seed)
    }

    /// Boots a sharded engine whose epochs run on up to `threads` worker
    /// threads. Metrics are identical to [`Self::bootstrap`] for the same
    /// seed — the thread axis only moves wall-clock.
    #[must_use]
    pub fn bootstrap_parallel(
        graph: DynGraph,
        layout: ShardLayout,
        threads: usize,
        seed: u64,
    ) -> Self {
        ShardedRun {
            engine: dmis_core::Engine::builder()
                .graph(graph)
                .sharding(layout)
                .threads(threads)
                .seed(seed)
                .build_parallel(),
            lifetime: Metrics::new(),
        }
    }

    /// The underlying engine.
    #[must_use]
    pub fn engine(&self) -> &ParallelShardedMisEngine {
        &self.engine
    }

    /// Worker threads the settle epochs may use (1 = sequential).
    #[must_use]
    pub fn threads(&self) -> usize {
        self.engine.threads()
    }

    /// Forces or suppresses thread spawning; see
    /// [`ParallelShardedMisEngine::set_spawn_threshold`]. Metrics are
    /// unaffected for any value.
    pub fn set_spawn_threshold(&mut self, threshold: usize) {
        self.engine.set_spawn_threshold(threshold);
    }

    /// The current MIS.
    #[must_use]
    pub fn mis(&self) -> BTreeSet<NodeId> {
        self.engine.mis()
    }

    /// Size of the current MIS without allocating a set — the
    /// per-tick measurement the experiments poll.
    #[must_use]
    pub fn mis_len(&self) -> usize {
        self.engine.mis_len()
    }

    /// Metrics accumulated over every change applied so far.
    #[must_use]
    pub fn lifetime_metrics(&self) -> Metrics {
        self.lifetime
    }

    /// Bits per handoff message: one node identifier (the paper's
    /// `O(log n)` word) plus one counter-delta bit.
    fn handoff_bits(&self) -> usize {
        let ids = self.engine.graph().peek_next_id().index().max(1);
        1 + (64 - ids.leading_zeros() as usize)
    }

    fn outcome(
        &mut self,
        adjusted: BTreeSet<NodeId>,
        epochs: usize,
        handoffs: usize,
    ) -> ChangeOutcome {
        let metrics = Metrics {
            rounds: epochs,
            broadcasts: handoffs,
            bits: handoffs * self.handoff_bits(),
        };
        self.lifetime += metrics;
        ChangeOutcome { metrics, adjusted }
    }

    /// Applies one topology change and meters its recovery.
    ///
    /// # Errors
    ///
    /// Propagates [`GraphError`] from the engine; on error nothing is
    /// metered.
    pub fn apply_change(&mut self, change: &TopologyChange) -> Result<ChangeOutcome, GraphError> {
        let receipt = self.engine.apply(change)?;
        Ok(self.outcome(
            receipt.adjusted_nodes(),
            receipt.settle_epochs(),
            receipt.cross_shard_handoffs(),
        ))
    }

    /// Applies a batch of changes as one coordinated recovery and meters
    /// it.
    ///
    /// # Errors
    ///
    /// Propagates the first [`GraphError`]; the applied prefix is metered.
    pub fn apply_batch(&mut self, changes: &[TopologyChange]) -> Result<ChangeOutcome, GraphError> {
        match self.engine.apply_batch(changes) {
            Ok(receipt) => Ok(self.outcome(
                receipt.adjusted_nodes(),
                receipt.settle_epochs(),
                receipt.cross_shard_handoffs(),
            )),
            Err(e) => Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmis_graph::generators;
    use dmis_graph::stream::{self, ChurnConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn meters_accumulate_over_changes() {
        let mut rng = StdRng::seed_from_u64(1);
        let (g, _) = generators::erdos_renyi(30, 0.2, &mut rng);
        let mut run = ShardedRun::bootstrap(g, ShardLayout::striped(4), 9);
        let mut total_broadcasts = 0;
        for _ in 0..50 {
            let Some(change) =
                stream::random_change(run.engine().graph(), &ChurnConfig::default(), &mut rng)
            else {
                continue;
            };
            let outcome = run.apply_change(&change).unwrap();
            total_broadcasts += outcome.metrics.broadcasts;
            assert!(outcome.metrics.bits >= outcome.metrics.broadcasts);
        }
        assert_eq!(run.lifetime_metrics().broadcasts, total_broadcasts);
        run.engine().assert_internally_consistent();
    }

    #[test]
    fn single_shard_run_broadcasts_nothing() {
        let (g, ids) = generators::cycle(8);
        let mut run = ShardedRun::bootstrap(g, ShardLayout::single(), 2);
        let outcome = run
            .apply_change(&TopologyChange::DeleteEdge(ids[0], ids[1]))
            .unwrap();
        assert_eq!(outcome.metrics.broadcasts, 0);
        assert_eq!(run.lifetime_metrics().bits, 0);
    }

    #[test]
    fn batch_outcome_is_one_recovery() {
        let (g, ids) = generators::cycle(9);
        let mut run = ShardedRun::bootstrap(g, ShardLayout::striped(3), 5);
        let before = run.mis();
        let outcome = run
            .apply_batch(&[
                TopologyChange::DeleteEdge(ids[0], ids[1]),
                TopologyChange::DeleteEdge(ids[4], ids[5]),
            ])
            .unwrap();
        let diff: BTreeSet<NodeId> = before.symmetric_difference(&run.mis()).copied().collect();
        assert_eq!(outcome.adjusted, diff, "one merged recovery, net flips");
        run.engine().assert_internally_consistent();
    }

    #[test]
    fn thread_axis_leaves_metrics_invariant() {
        // The parallel engine is bit-identical to the sequential one, so
        // a metered run reports the same rounds/broadcasts/bits for any
        // thread count — the axis only moves wall-clock.
        let run_with = |threads: usize| {
            let mut rng = StdRng::seed_from_u64(7);
            let (g, _) = generators::erdos_renyi(24, 0.25, &mut rng);
            let mut run = ShardedRun::bootstrap_parallel(g, ShardLayout::striped(4), threads, 11);
            run.set_spawn_threshold(0);
            let mut log = Vec::new();
            for _ in 0..40 {
                if let Some(change) =
                    stream::random_change(run.engine().graph(), &ChurnConfig::default(), &mut rng)
                {
                    let outcome = run.apply_change(&change).unwrap();
                    log.push((outcome.metrics, outcome.adjusted));
                }
            }
            (log, run.lifetime_metrics(), run.mis())
        };
        let baseline = run_with(1);
        for threads in [2usize, 4] {
            assert_eq!(run_with(threads), baseline, "threads={threads}");
        }
    }

    #[test]
    fn mis_len_matches_mis() {
        let (g, _) = generators::cycle(12);
        let run = ShardedRun::bootstrap(g, ShardLayout::striped(2), 4);
        assert_eq!(run.mis_len(), run.mis().len());
    }
}
