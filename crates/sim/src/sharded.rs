//! Sharded-engine harness: shard count as a simulator axis.
//!
//! The broadcast networks in this crate simulate the paper's *per-node*
//! distributed model. [`ShardedRun`] covers the complementary deployment
//! the ROADMAP targets: `K` sequential engine shards (think: cores or
//! machines) cooperating through cross-shard handoffs, as implemented by
//! [`dmis_core::ShardedMisEngine`]. The harness translates every receipt
//! into the simulator's [`Metrics`] vocabulary so experiments can sweep
//! the shard count exactly like they sweep graph families:
//!
//! - **rounds** — coordinator turns (shard settle-runs) until global
//!   quiescence;
//! - **broadcasts** — cross-shard handoff messages;
//! - **bits** — handoff payload, one node identifier plus one counter
//!   delta per message.

use std::collections::BTreeSet;

use dmis_core::ShardedMisEngine;
use dmis_graph::{DynGraph, GraphError, NodeId, ShardLayout, TopologyChange};

use crate::metrics::{ChangeOutcome, Metrics};

/// A dynamic execution of the sharded engine, with per-change and
/// lifetime [`Metrics`] in simulator terms.
///
/// # Example
///
/// ```
/// use dmis_graph::{generators, ShardLayout, TopologyChange};
/// use dmis_sim::ShardedRun;
///
/// let (g, ids) = generators::cycle(10);
/// let mut run = ShardedRun::bootstrap(g, ShardLayout::striped(4), 3);
/// let outcome = run.apply_change(&TopologyChange::DeleteEdge(ids[0], ids[1]))?;
/// println!(
///     "{} adjustments, {}",
///     outcome.adjustments(),
///     outcome.metrics
/// );
/// # Ok::<(), dmis_graph::GraphError>(())
/// ```
#[derive(Debug, Clone)]
pub struct ShardedRun {
    engine: ShardedMisEngine,
    lifetime: Metrics,
}

impl ShardedRun {
    /// Boots a sharded engine over `graph` (drawing priorities from
    /// `seed`) and starts metering.
    #[must_use]
    pub fn bootstrap(graph: DynGraph, layout: ShardLayout, seed: u64) -> Self {
        ShardedRun {
            engine: ShardedMisEngine::from_graph(graph, layout, seed),
            lifetime: Metrics::new(),
        }
    }

    /// The underlying engine.
    #[must_use]
    pub fn engine(&self) -> &ShardedMisEngine {
        &self.engine
    }

    /// The current MIS.
    #[must_use]
    pub fn mis(&self) -> BTreeSet<NodeId> {
        self.engine.mis()
    }

    /// Metrics accumulated over every change applied so far.
    #[must_use]
    pub fn lifetime_metrics(&self) -> Metrics {
        self.lifetime
    }

    /// Bits per handoff message: one node identifier (the paper's
    /// `O(log n)` word) plus one counter-delta bit.
    fn handoff_bits(&self) -> usize {
        let ids = self.engine.graph().peek_next_id().index().max(1);
        1 + (64 - ids.leading_zeros() as usize)
    }

    fn outcome(
        &mut self,
        adjusted: BTreeSet<NodeId>,
        runs: usize,
        handoffs: usize,
    ) -> ChangeOutcome {
        let metrics = Metrics {
            rounds: runs,
            broadcasts: handoffs,
            bits: handoffs * self.handoff_bits(),
        };
        self.lifetime += metrics;
        ChangeOutcome { metrics, adjusted }
    }

    /// Applies one topology change and meters its recovery.
    ///
    /// # Errors
    ///
    /// Propagates [`GraphError`] from the engine; on error nothing is
    /// metered.
    pub fn apply_change(&mut self, change: &TopologyChange) -> Result<ChangeOutcome, GraphError> {
        let receipt = self.engine.apply(change)?;
        Ok(self.outcome(
            receipt.adjusted_nodes(),
            receipt.shard_runs(),
            receipt.cross_shard_handoffs(),
        ))
    }

    /// Applies a batch of changes as one coordinated recovery and meters
    /// it.
    ///
    /// # Errors
    ///
    /// Propagates the first [`GraphError`]; the applied prefix is metered.
    pub fn apply_batch(&mut self, changes: &[TopologyChange]) -> Result<ChangeOutcome, GraphError> {
        match self.engine.apply_batch(changes) {
            Ok(receipt) => Ok(self.outcome(
                receipt.adjusted_nodes(),
                receipt.shard_runs(),
                receipt.cross_shard_handoffs(),
            )),
            Err(e) => Err(e),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmis_graph::generators;
    use dmis_graph::stream::{self, ChurnConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn meters_accumulate_over_changes() {
        let mut rng = StdRng::seed_from_u64(1);
        let (g, _) = generators::erdos_renyi(30, 0.2, &mut rng);
        let mut run = ShardedRun::bootstrap(g, ShardLayout::striped(4), 9);
        let mut total_broadcasts = 0;
        for _ in 0..50 {
            let Some(change) =
                stream::random_change(run.engine().graph(), &ChurnConfig::default(), &mut rng)
            else {
                continue;
            };
            let outcome = run.apply_change(&change).unwrap();
            total_broadcasts += outcome.metrics.broadcasts;
            assert!(outcome.metrics.bits >= outcome.metrics.broadcasts);
        }
        assert_eq!(run.lifetime_metrics().broadcasts, total_broadcasts);
        run.engine().assert_internally_consistent();
    }

    #[test]
    fn single_shard_run_broadcasts_nothing() {
        let (g, ids) = generators::cycle(8);
        let mut run = ShardedRun::bootstrap(g, ShardLayout::single(), 2);
        let outcome = run
            .apply_change(&TopologyChange::DeleteEdge(ids[0], ids[1]))
            .unwrap();
        assert_eq!(outcome.metrics.broadcasts, 0);
        assert_eq!(run.lifetime_metrics().bits, 0);
    }

    #[test]
    fn batch_outcome_is_one_recovery() {
        let (g, ids) = generators::cycle(9);
        let mut run = ShardedRun::bootstrap(g, ShardLayout::striped(3), 5);
        let before = run.mis();
        let outcome = run
            .apply_batch(&[
                TopologyChange::DeleteEdge(ids[0], ids[1]),
                TopologyChange::DeleteEdge(ids[4], ids[5]),
            ])
            .unwrap();
        let diff: BTreeSet<NodeId> = before.symmetric_difference(&run.mis()).copied().collect();
        assert_eq!(outcome.adjusted, diff, "one merged recovery, net flips");
        run.engine().assert_internally_consistent();
    }
}
