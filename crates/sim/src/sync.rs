use std::collections::{BTreeMap, BTreeSet};

use dmis_core::{invariant, static_greedy, MisState, Priority, PriorityMap};
use dmis_graph::{DistributedChange, DynGraph, GraphError, NodeId, NodeMap, NodeSet};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{Automaton, ChangeOutcome, LocalEvent, MessageBits, Metrics, NeighborInfo, Protocol};

/// The synchronous broadcast network (Section 2 of the paper).
///
/// Time is divided into rounds; in each round every willing node broadcasts
/// one message heard by all of its neighbors in the next round. Topology
/// changes arrive only while the system is stable, and
/// [`SyncNetwork::apply_change`] runs the recovery to quiescence, measuring
/// the paper's three complexity measures (adjustments, rounds, broadcasts —
/// plus exact bits).
///
/// **Graceful vs. abrupt deletions.** A gracefully deleted node stays in the
/// communication graph, drives its own exit through the protocol, and is
/// physically removed only once the system is stable again (the paper's
/// "retires completely only once the system is stable"). An abruptly
/// deleted node vanishes immediately; its neighbors are merely notified of
/// the disappearance. For *edge* deletions the distinction does not affect
/// the MIS protocol (both endpoints already know each other's state; Lemma 9
/// treats the two cases identically), so both variants simply drop the edge.
///
/// # Example
///
/// Bootstrapping requires a protocol implementation; see `dmis-protocol`
/// for the paper's Algorithm 2 and the direct template. The unit tests in
/// this crate use a trivial ping protocol.
pub struct SyncNetwork<P: Protocol> {
    protocol: P,
    graph: DynGraph,
    /// Dense table of node automata, indexed by identifier.
    nodes: NodeMap<P::Node>,
    priorities: PriorityMap,
    retiring: NodeSet,
    /// Dense table of in-flight broadcasts (at most one per sender).
    outbox: NodeMap<<P::Node as Automaton>::Msg>,
    rng: StdRng,
    lifetime: Metrics,
    trace: Option<Vec<TraceEvent>>,
}

/// One broadcast captured by the network trace (see
/// [`SyncNetwork::enable_tracing`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Global round index (over the network's lifetime).
    pub round: usize,
    /// The broadcasting node.
    pub sender: NodeId,
    /// The message, rendered via `Debug`.
    pub message: String,
}

impl std::fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "r{:<4} {} ⇒ {}", self.round, self.sender, self.message)
    }
}

impl<P: Protocol> SyncNetwork<P> {
    /// Creates an empty network. `seed` determinizes all random-key draws.
    #[must_use]
    pub fn new(protocol: P, seed: u64) -> Self {
        SyncNetwork {
            protocol,
            graph: DynGraph::new(),
            nodes: NodeMap::new(),
            priorities: PriorityMap::new(),
            retiring: NodeSet::new(),
            outbox: NodeMap::new(),
            rng: StdRng::seed_from_u64(seed),
            lifetime: Metrics::new(),
            trace: None,
        }
    }

    /// Creates a network over an existing graph in an already-stable state:
    /// random keys are drawn for every node, the greedy MIS is computed, and
    /// each node is spawned with full knowledge of its stable neighborhood.
    ///
    /// This shortcut avoids replaying the construction of large initial
    /// graphs change by change; by history independence (Section 5) the
    /// resulting distribution over states is identical.
    #[must_use]
    pub fn bootstrap(protocol: P, graph: DynGraph, seed: u64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut priorities = PriorityMap::new();
        for v in graph.nodes() {
            let ell: u64 = rng.random();
            priorities.insert(v, Priority::new(ell, v));
        }
        Self::bootstrap_with(protocol, graph, priorities, rng)
    }

    /// Bootstraps with prescribed priorities (tests and adversarial orders).
    ///
    /// # Panics
    ///
    /// Panics if some node of `graph` has no priority.
    #[must_use]
    pub fn bootstrap_with_priorities(
        protocol: P,
        graph: DynGraph,
        priorities: PriorityMap,
        seed: u64,
    ) -> Self {
        Self::bootstrap_with(protocol, graph, priorities, StdRng::seed_from_u64(seed))
    }

    fn bootstrap_with(protocol: P, graph: DynGraph, priorities: PriorityMap, rng: StdRng) -> Self {
        let mis = static_greedy::greedy_mis(&graph, &priorities);
        let mut nodes = NodeMap::new();
        for v in graph.nodes() {
            let info: Vec<NeighborInfo> = graph
                .neighbors(v)
                .expect("live node")
                .map(|u| NeighborInfo {
                    id: u,
                    ell: priorities.of(u).key(),
                    state: MisState::from_membership(mis.contains(&u)),
                })
                .collect();
            let node = protocol.spawn_stable(
                v,
                priorities.of(v).key(),
                MisState::from_membership(mis.contains(&v)),
                &info,
            );
            nodes.insert(v, node);
        }
        SyncNetwork {
            protocol,
            graph,
            nodes,
            priorities,
            retiring: NodeSet::new(),
            outbox: NodeMap::new(),
            rng,
            lifetime: Metrics::new(),
            trace: None,
        }
    }

    /// The communication graph (includes gracefully retiring nodes until
    /// they complete their exit).
    #[must_use]
    pub fn graph(&self) -> &DynGraph {
        &self.graph
    }

    /// The logical graph: the communication graph minus retiring nodes.
    #[must_use]
    pub fn logical_graph(&self) -> DynGraph {
        let mut g = self.graph.clone();
        for v in self.retiring.iter() {
            g.remove_node(v).expect("retiring nodes are in the graph");
        }
        g
    }

    /// The random order π (keys are the nodes' ℓ values).
    #[must_use]
    pub fn priorities(&self) -> &PriorityMap {
        &self.priorities
    }

    /// Outputs of all live (non-retiring) nodes.
    #[must_use]
    pub fn outputs(&self) -> BTreeMap<NodeId, MisState> {
        self.nodes
            .iter()
            .filter(|&(v, _)| !self.retiring.contains(v))
            .map(|(v, n)| (v, n.output()))
            .collect()
    }

    /// The current MIS according to node outputs.
    #[must_use]
    pub fn mis(&self) -> BTreeSet<NodeId> {
        self.outputs()
            .into_iter()
            .filter_map(|(v, s)| s.is_in().then_some(v))
            .collect()
    }

    /// Immutable access to a node automaton (tests).
    #[must_use]
    pub fn node(&self, v: NodeId) -> Option<&P::Node> {
        self.nodes.get(v)
    }

    /// Metrics accumulated over the whole lifetime of the network.
    #[must_use]
    pub fn lifetime_metrics(&self) -> Metrics {
        self.lifetime
    }

    /// Starts recording every broadcast (round, sender, rendered message).
    /// Useful when debugging a protocol or narrating an execution.
    pub fn enable_tracing(&mut self) {
        self.trace.get_or_insert_with(Vec::new);
    }

    /// Takes the recorded trace, leaving recording enabled (empty buffer).
    /// Returns an empty vector if tracing was never enabled.
    pub fn take_trace(&mut self) -> Vec<TraceEvent> {
        match self.trace.as_mut() {
            Some(t) => std::mem::take(t),
            None => Vec::new(),
        }
    }

    /// Returns `true` when no messages are in flight and every node is
    /// quiet.
    #[must_use]
    pub fn is_stable(&self) -> bool {
        self.outbox.is_empty() && self.nodes.values().all(Automaton::is_quiet)
    }

    /// Applies one topology change and runs the network back to stability.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError`] if the change is invalid for the current
    /// graph (missing nodes/edges, duplicate edge, stale insertion id).
    ///
    /// # Panics
    ///
    /// Panics if the protocol fails to stabilize within `6n + 40` rounds —
    /// a correctness bug in the protocol under test, not a recoverable
    /// condition.
    pub fn apply_change(
        &mut self,
        change: &DistributedChange,
    ) -> Result<ChangeOutcome, GraphError> {
        assert!(
            self.is_stable(),
            "topology changes only arrive while the system is stable"
        );
        let before = self.outputs();
        self.inject(change)?;
        let mut metrics = self.run_until_quiet();
        metrics += self.finalize_retirements();
        let after = self.outputs();
        let adjusted: BTreeSet<NodeId> = before
            .iter()
            .filter(|(v, s)| after.get(v).is_some_and(|s2| s2 != *s))
            .map(|(&v, _)| v)
            .collect();
        self.lifetime += metrics;
        Ok(ChangeOutcome { metrics, adjusted })
    }

    /// Applies a **batch** of topology changes that hit the network
    /// simultaneously — the multi-failure scenario of the paper's first
    /// open question — and runs a single combined recovery.
    ///
    /// All events are delivered before the first recovery round, so the
    /// protocol under test faces a genuinely multi-source disturbance
    /// (the §4.2 machinery of Algorithm 2 generalizes to it).
    ///
    /// # Errors
    ///
    /// Returns the first [`GraphError`]; changes before the failing one
    /// remain applied and the network is still run back to stability, so
    /// it stays usable.
    ///
    /// # Panics
    ///
    /// Panics if the protocol fails to stabilize (see
    /// [`SyncNetwork::apply_change`]).
    pub fn apply_batch(
        &mut self,
        changes: &[DistributedChange],
    ) -> Result<ChangeOutcome, GraphError> {
        assert!(
            self.is_stable(),
            "topology changes only arrive while the system is stable"
        );
        let before = self.outputs();
        let mut failure = None;
        for change in changes {
            if let Err(e) = self.inject(change) {
                failure = Some(e);
                break;
            }
        }
        let mut metrics = self.run_until_quiet();
        metrics += self.finalize_retirements();
        if let Some(e) = failure {
            self.lifetime += metrics;
            return Err(e);
        }
        let after = self.outputs();
        let adjusted: BTreeSet<NodeId> = before
            .iter()
            .filter(|(v, s)| after.get(v).is_some_and(|s2| s2 != *s))
            .map(|(&v, _)| v)
            .collect();
        self.lifetime += metrics;
        Ok(ChangeOutcome { metrics, adjusted })
    }

    fn inject(&mut self, change: &DistributedChange) -> Result<(), GraphError> {
        match change {
            DistributedChange::InsertEdge(u, v) => {
                self.ensure_live(*u)?;
                self.ensure_live(*v)?;
                self.graph.insert_edge(*u, *v)?;
                self.event(*u, LocalEvent::EdgeAdded { peer: *v });
                self.event(*v, LocalEvent::EdgeAdded { peer: *u });
            }
            DistributedChange::GracefulDeleteEdge(u, v)
            | DistributedChange::AbruptDeleteEdge(u, v) => {
                let graceful = matches!(change, DistributedChange::GracefulDeleteEdge(..));
                self.ensure_live(*u)?;
                self.ensure_live(*v)?;
                self.graph.remove_edge(*u, *v)?;
                self.event(*u, LocalEvent::EdgeRemoved { peer: *v, graceful });
                self.event(*v, LocalEvent::EdgeRemoved { peer: *u, graceful });
            }
            DistributedChange::InsertNode { id, edges } => {
                if self.graph.peek_next_id() != *id {
                    return Err(GraphError::MissingNode(*id));
                }
                for u in edges {
                    self.ensure_live(*u)?;
                }
                let got = self.graph.add_node_with_edges(edges.iter().copied())?;
                debug_assert_eq!(got, *id);
                let ell: u64 = self.rng.random();
                self.priorities.insert(*id, Priority::new(ell, *id));
                let mut node = self.protocol.spawn(*id, ell);
                node.on_event(LocalEvent::SelfJoined {
                    neighbors: edges.clone(),
                });
                self.nodes.insert(*id, node);
                for &u in edges {
                    self.event(u, LocalEvent::NeighborJoined { peer: *id });
                }
            }
            DistributedChange::UnmuteNode { id, edges } => {
                if self.graph.peek_next_id() != *id {
                    return Err(GraphError::MissingNode(*id));
                }
                for u in edges {
                    self.ensure_live(*u)?;
                }
                let got = self.graph.add_node_with_edges(edges.iter().copied())?;
                debug_assert_eq!(got, *id);
                let ell: u64 = self.rng.random();
                self.priorities.insert(*id, Priority::new(ell, *id));
                let info: Vec<NeighborInfo> = edges
                    .iter()
                    .map(|&u| NeighborInfo {
                        id: u,
                        ell: self.priorities.of(u).key(),
                        state: self.nodes[u].output(),
                    })
                    .collect();
                let mut node = self.protocol.spawn(*id, ell);
                node.on_event(LocalEvent::SelfUnmuted { neighbors: info });
                self.nodes.insert(*id, node);
                for &u in edges {
                    self.event(u, LocalEvent::NeighborJoined { peer: *id });
                }
            }
            DistributedChange::GracefulDeleteNode(v) => {
                self.ensure_live(*v)?;
                self.retiring.insert(*v);
                self.event(*v, LocalEvent::SelfRetiring);
            }
            DistributedChange::AbruptDeleteNode(v) => {
                self.ensure_live(*v)?;
                let nbrs = self.graph.remove_node(*v)?;
                self.priorities.remove(*v);
                self.nodes.remove(*v);
                self.outbox.remove(*v);
                for u in nbrs {
                    self.event(u, LocalEvent::NeighborDepartedAbrupt { peer: *v });
                }
            }
        }
        Ok(())
    }

    fn ensure_live(&self, v: NodeId) -> Result<(), GraphError> {
        if self.graph.has_node(v) && !self.retiring.contains(v) {
            Ok(())
        } else {
            Err(GraphError::MissingNode(v))
        }
    }

    fn event(&mut self, v: NodeId, event: LocalEvent) {
        self.nodes
            .get_mut(v)
            .expect("event target exists")
            .on_event(event);
    }

    /// Runs rounds until no messages are in flight and all nodes are quiet.
    #[allow(clippy::type_complexity)]
    fn run_until_quiet(&mut self) -> Metrics {
        let max_rounds = 6 * self.graph.node_count() + 40;
        let mut metrics = Metrics::new();
        loop {
            // Deliver last round's broadcasts.
            let mut inboxes: NodeMap<Vec<(NodeId, <P::Node as Automaton>::Msg)>> = NodeMap::new();
            for (sender, msg) in self.outbox.iter() {
                for w in self.graph.neighbors(sender).expect("senders are live") {
                    if let Some(inbox) = inboxes.get_mut(w) {
                        inbox.push((sender, msg.clone()));
                    } else {
                        inboxes.insert(w, vec![(sender, msg.clone())]);
                    }
                }
            }
            self.outbox.clear();
            // Active nodes: anything with mail or pending work.
            let mut active: NodeSet = inboxes.keys().collect();
            for (v, node) in self.nodes.iter() {
                if !node.is_quiet() {
                    active.insert(v);
                }
            }
            if active.is_empty() {
                break;
            }
            metrics.rounds += 1;
            assert!(
                metrics.rounds <= max_rounds,
                "protocol failed to stabilize within {max_rounds} rounds"
            );
            let empty: Vec<(NodeId, <P::Node as Automaton>::Msg)> = Vec::new();
            for v in active.iter() {
                let inbox = inboxes.get(v).unwrap_or(&empty);
                let node = self.nodes.get_mut(v).expect("active nodes exist");
                if let Some(msg) = node.step(inbox) {
                    metrics.broadcasts += 1;
                    metrics.bits += msg.bits();
                    if let Some(trace) = self.trace.as_mut() {
                        trace.push(TraceEvent {
                            round: self.lifetime.rounds + metrics.rounds,
                            sender: v,
                            message: format!("{msg:?}"),
                        });
                    }
                    self.outbox.insert(v, msg);
                }
            }
        }
        metrics
    }

    /// Physically removes gracefully retired nodes and informs their
    /// neighbors. Correct protocols produce no further traffic here (a
    /// retired node's final output is `M̄`, and dropping an `M̄` neighbor
    /// violates no invariant), but any traffic is accounted for.
    fn finalize_retirements(&mut self) -> Metrics {
        if self.retiring.is_empty() {
            return Metrics::new();
        }
        let retiring: Vec<NodeId> = self.retiring.iter().collect();
        for v in retiring {
            let nbrs = self.graph.remove_node(v).expect("retiring node is live");
            self.priorities.remove(v);
            self.nodes.remove(v);
            self.outbox.remove(v);
            for u in nbrs {
                self.event(u, LocalEvent::NeighborRetired { peer: v });
            }
        }
        self.retiring.clear();
        self.run_until_quiet()
    }

    /// Asserts the outputs form a maximal independent set of the logical
    /// graph (protocol-agnostic correctness).
    ///
    /// # Panics
    ///
    /// Panics if they do not.
    pub fn assert_valid_mis(&self) {
        let logical = self.logical_graph();
        assert!(
            invariant::is_maximal_independent_set_dense(&logical, &self.mis_dense()),
            "outputs are not a maximal independent set"
        );
    }

    /// The current MIS as a dense bitset — the invariant checks' native
    /// representation, no ordered-set materialization.
    fn mis_dense(&self) -> dmis_graph::NodeSet {
        self.outputs()
            .into_iter()
            .filter_map(|(v, s)| s.is_in().then_some(v))
            .collect()
    }

    /// Asserts the outputs satisfy the π-greedy MIS invariant — the defining
    /// property of the paper's algorithms (baselines like Luby need only
    /// [`SyncNetwork::assert_valid_mis`]).
    ///
    /// # Panics
    ///
    /// Panics if the invariant is violated.
    pub fn assert_greedy_invariant(&self) {
        let logical = self.logical_graph();
        assert!(
            invariant::check_mis_invariant_dense(&logical, &self.priorities, &self.mis_dense())
                .is_ok(),
            "outputs violate the greedy MIS invariant"
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::protocol::testing::{PingNode, PingProtocol};
    use dmis_graph::generators;

    fn ping_network(n: usize) -> (SyncNetwork<PingProtocol>, Vec<NodeId>) {
        let (g, ids) = generators::path(n);
        (SyncNetwork::bootstrap(PingProtocol, g, 1), ids)
    }

    #[test]
    fn bootstrap_is_stable() {
        let (net, _) = ping_network(5);
        assert!(net.is_stable());
        assert_eq!(net.graph().node_count(), 5);
        assert_eq!(net.outputs().len(), 5);
    }

    #[test]
    fn edge_insert_triggers_events_and_messages() {
        let (mut net, ids) = ping_network(4);
        let outcome = net
            .apply_change(&DistributedChange::InsertEdge(ids[0], ids[3]))
            .unwrap();
        // Each endpoint saw 1 event → sends 2 pings each = 4 broadcasts.
        assert_eq!(outcome.metrics.broadcasts, 4);
        assert_eq!(outcome.metrics.bits, 32);
        assert!(outcome.metrics.rounds >= 2);
        assert!(net.is_stable());
        let n0: &PingNode = net.node(ids[0]).unwrap();
        assert_eq!(n0.seen_events, 1);
    }

    #[test]
    fn messages_are_heard_by_all_neighbors() {
        let (mut net, ids) = ping_network(3);
        // Node ids[1] has two neighbors; an event at ids[1] broadcasts to
        // both.
        net.apply_change(&DistributedChange::GracefulDeleteEdge(ids[1], ids[2]))
            .unwrap();
        // ids[0] heard ids[1]'s pings (2), ids[2] heard its own side only
        // after the edge vanished — it no longer hears ids[1].
        let n0: &PingNode = net.node(ids[0]).unwrap();
        assert_eq!(n0.seen_msgs, 2);
    }

    #[test]
    fn node_insertion_spawns_and_notifies() {
        let (mut net, ids) = ping_network(3);
        let fresh = net.graph().peek_next_id();
        let outcome = net
            .apply_change(&DistributedChange::InsertNode {
                id: fresh,
                edges: vec![ids[0], ids[2]],
            })
            .unwrap();
        assert!(net.graph().has_node(fresh));
        assert!(net.node(fresh).is_some());
        // 3 nodes saw one event each → 6 broadcasts.
        assert_eq!(outcome.metrics.broadcasts, 6);
        assert!(net.priorities().get(fresh).is_some());
    }

    #[test]
    fn unmute_carries_neighbor_knowledge() {
        let (mut net, ids) = ping_network(2);
        let fresh = net.graph().peek_next_id();
        net.apply_change(&DistributedChange::UnmuteNode {
            id: fresh,
            edges: vec![ids[0], ids[1]],
        })
        .unwrap();
        assert!(net.graph().has_edge(fresh, ids[0]));
    }

    #[test]
    fn abrupt_deletion_removes_immediately() {
        let (mut net, ids) = ping_network(3);
        net.apply_change(&DistributedChange::AbruptDeleteNode(ids[1]))
            .unwrap();
        assert!(!net.graph().has_node(ids[1]));
        assert!(net.node(ids[1]).is_none());
        assert!(net.priorities().get(ids[1]).is_none());
        let n0: &PingNode = net.node(ids[0]).unwrap();
        assert_eq!(n0.seen_events, 1);
    }

    #[test]
    fn graceful_deletion_retires_after_stability() {
        let (mut net, ids) = ping_network(3);
        net.apply_change(&DistributedChange::GracefulDeleteNode(ids[1]))
            .unwrap();
        // After the change completes the node is gone.
        assert!(!net.graph().has_node(ids[1]));
        // Its neighbors saw its retirement event.
        let n0: &PingNode = net.node(ids[0]).unwrap();
        assert_eq!(n0.seen_events, 1);
        assert!(net.is_stable());
    }

    #[test]
    fn graceful_node_can_still_talk_during_recovery() {
        // The retiring node's pings are heard: its 2 broadcasts reach both
        // neighbors before it retires.
        let (mut net, ids) = ping_network(3);
        net.apply_change(&DistributedChange::GracefulDeleteNode(ids[1]))
            .unwrap();
        let n2: &PingNode = net.node(ids[2]).unwrap();
        assert_eq!(n2.seen_msgs, 2, "heard the retiring node's messages");
    }

    #[test]
    fn invalid_changes_are_rejected() {
        let (mut net, ids) = ping_network(2);
        assert!(net
            .apply_change(&DistributedChange::InsertEdge(ids[0], NodeId(99)))
            .is_err());
        assert!(net
            .apply_change(&DistributedChange::AbruptDeleteNode(NodeId(99)))
            .is_err());
        assert!(net
            .apply_change(&DistributedChange::InsertNode {
                id: NodeId(0),
                edges: vec![],
            })
            .is_err());
        assert!(net.is_stable());
    }

    #[test]
    fn lifetime_metrics_accumulate() {
        let (mut net, ids) = ping_network(4);
        let a = net
            .apply_change(&DistributedChange::InsertEdge(ids[0], ids[2]))
            .unwrap();
        let b = net
            .apply_change(&DistributedChange::AbruptDeleteEdge(ids[0], ids[2]))
            .unwrap();
        let total = net.lifetime_metrics();
        assert_eq!(
            total.broadcasts,
            a.metrics.broadcasts + b.metrics.broadcasts
        );
    }

    #[test]
    fn tracing_records_broadcasts() {
        let (mut net, ids) = ping_network(3);
        net.enable_tracing();
        net.apply_change(&DistributedChange::InsertEdge(ids[0], ids[2]))
            .unwrap();
        let trace = net.take_trace();
        // Each endpoint pings twice = 4 recorded broadcasts.
        assert_eq!(trace.len(), 4);
        assert!(trace.iter().all(|e| e.message.starts_with("Ping")));
        let rendered = trace[0].to_string();
        assert!(rendered.contains('⇒'), "{rendered}");
        // The buffer is drained but recording continues.
        assert!(net.take_trace().is_empty());
        net.apply_change(&DistributedChange::AbruptDeleteEdge(ids[0], ids[2]))
            .unwrap();
        assert!(!net.take_trace().is_empty());
    }

    #[test]
    fn trace_disabled_by_default() {
        let (mut net, ids) = ping_network(3);
        net.apply_change(&DistributedChange::InsertEdge(ids[0], ids[2]))
            .unwrap();
        assert!(net.take_trace().is_empty());
    }

    #[test]
    fn adjustments_are_empty_for_constant_output_protocol() {
        let (mut net, ids) = ping_network(4);
        let outcome = net
            .apply_change(&DistributedChange::InsertEdge(ids[0], ids[2]))
            .unwrap();
        assert_eq!(outcome.adjustments(), 0, "ping nodes never change output");
    }
}
