use std::fmt;

use dmis_core::MisState;
use dmis_graph::NodeId;

use crate::{LocalEvent, NeighborInfo};

/// Message payload size accounting.
///
/// The paper restricts messages to `O(log n)` bits; implementations report
/// their exact payload size so experiments can verify both the broadcast
/// count *and* the bit count (the §4 discussion after Métivier et al. shows
/// a constant number of bits per broadcast suffices once neighbors know
/// their relative order).
pub trait MessageBits {
    /// Payload size of this message in bits.
    fn bits(&self) -> usize;
}

/// A node automaton in the synchronous broadcast model.
///
/// Each round, the simulator feeds a node every message its neighbors
/// broadcast in the previous round; the node updates its local state and may
/// broadcast one message (heard by *all* neighbors next round — the model
/// does not allow per-neighbor messages).
pub trait Automaton {
    /// The protocol's message type.
    type Msg: Clone + fmt::Debug + MessageBits;

    /// Reacts to a local topology notification. Any resulting broadcast
    /// happens on the next [`Automaton::step`].
    fn on_event(&mut self, event: LocalEvent);

    /// Executes one synchronous round: consumes the inbox (messages
    /// broadcast by neighbors last round, sender-tagged) and optionally
    /// returns a broadcast.
    fn step(&mut self, inbox: &[(NodeId, Self::Msg)]) -> Option<Self::Msg>;

    /// Current output of the node. Transient protocol states (the paper's
    /// `C` and `R`) must report the last committed `M`/`M̄` output.
    fn output(&self) -> MisState;

    /// Returns `true` if the node has nothing pending: it is in a committed
    /// state and will not broadcast unless new messages or events arrive.
    fn is_quiet(&self) -> bool;
}

/// Factory for a protocol's node automata.
pub trait Protocol {
    /// The node automaton type.
    type Node: Automaton;

    /// Spawns a brand-new node that knows only its identifier and its own
    /// random key ℓ (its neighborhood arrives via
    /// [`LocalEvent::SelfJoined`] and subsequent messages).
    fn spawn(&self, id: NodeId, ell: u64) -> Self::Node;

    /// Spawns a node inside an already-stable network (used to bootstrap
    /// large initial graphs without replaying their construction): the node
    /// knows its output and its full neighborhood.
    fn spawn_stable(
        &self,
        id: NodeId,
        ell: u64,
        state: MisState,
        neighbors: &[NeighborInfo],
    ) -> Self::Node;
}

#[cfg(test)]
pub(crate) mod testing {
    //! A trivial protocol used to exercise the network machinery without
    //! pulling in `dmis-protocol`: every node broadcasts a fixed number of
    //! ping messages after each event it observes, and is always `M̄`.

    use super::*;

    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct Ping(pub u8);

    impl MessageBits for Ping {
        fn bits(&self) -> usize {
            8
        }
    }

    #[derive(Debug)]
    pub struct PingNode {
        #[allow(dead_code)]
        pub id: NodeId,
        pub pending: u8,
        pub seen_msgs: usize,
        pub seen_events: usize,
    }

    impl Automaton for PingNode {
        type Msg = Ping;

        fn on_event(&mut self, _event: LocalEvent) {
            self.seen_events += 1;
            self.pending = self.pending.saturating_add(2);
        }

        fn step(&mut self, inbox: &[(NodeId, Ping)]) -> Option<Ping> {
            self.seen_msgs += inbox.len();
            if self.pending > 0 {
                self.pending -= 1;
                Some(Ping(self.pending))
            } else {
                None
            }
        }

        fn output(&self) -> MisState {
            MisState::Out
        }

        fn is_quiet(&self) -> bool {
            self.pending == 0
        }
    }

    pub struct PingProtocol;

    impl Protocol for PingProtocol {
        type Node = PingNode;

        fn spawn(&self, id: NodeId, _ell: u64) -> PingNode {
            PingNode {
                id,
                pending: 0,
                seen_msgs: 0,
                seen_events: 0,
            }
        }

        fn spawn_stable(
            &self,
            id: NodeId,
            ell: u64,
            _state: MisState,
            _neighbors: &[NeighborInfo],
        ) -> PingNode {
            self.spawn(id, ell)
        }
    }
}
