use std::cmp::Reverse;
use std::collections::BTreeSet;
use std::collections::{BTreeMap, BinaryHeap};
use std::fmt;

use dmis_core::MisState;
use dmis_graph::{DynGraph, NodeId, NodeMap};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use crate::{LocalEvent, MessageBits, Metrics};

/// A node automaton in the **asynchronous** broadcast model.
///
/// There are no rounds: a node reacts to each delivered message (or local
/// event) by updating its state and possibly broadcasting. The paper defines
/// the asynchronous round complexity as "the longest path of communication",
/// which the engine tracks as the maximum causal depth over all delivered
/// messages.
pub trait AsyncAutomaton {
    /// The protocol's message type.
    type Msg: Clone + fmt::Debug + MessageBits;

    /// Handles one delivered message; every returned message is broadcast.
    fn on_message(&mut self, from: NodeId, msg: &Self::Msg) -> Vec<Self::Msg>;

    /// Handles a local topology notification; every returned message is
    /// broadcast.
    fn on_event(&mut self, event: LocalEvent) -> Vec<Self::Msg>;

    /// Current output.
    fn output(&self) -> MisState;
}

/// Chooses per-message link delays — the adversary of the asynchronous
/// model.
pub trait DelaySchedule {
    /// Delay (≥ 1 time unit) for a message sent from `from` to `to` at time
    /// `now`.
    fn delay(&mut self, from: NodeId, to: NodeId, now: u64) -> u64;
}

/// All messages take exactly one time unit (the synchronous special case).
#[derive(Debug, Clone, Copy, Default)]
pub struct UnitDelays;

impl DelaySchedule for UnitDelays {
    fn delay(&mut self, _from: NodeId, _to: NodeId, _now: u64) -> u64 {
        1
    }
}

/// Uniformly random delays in `1..=max` — an oblivious asynchronous
/// adversary that reorders messages heavily.
#[derive(Debug, Clone)]
pub struct RandomDelays {
    rng: StdRng,
    max: u64,
}

impl RandomDelays {
    /// Creates a schedule drawing delays from `1..=max`.
    ///
    /// # Panics
    ///
    /// Panics if `max == 0`.
    #[must_use]
    pub fn new(seed: u64, max: u64) -> Self {
        assert!(max >= 1, "delays must be at least 1");
        RandomDelays {
            rng: StdRng::seed_from_u64(seed),
            max,
        }
    }
}

impl DelaySchedule for RandomDelays {
    fn delay(&mut self, _from: NodeId, _to: NodeId, _now: u64) -> u64 {
        self.rng.random_range(1..=self.max)
    }
}

/// Outcome of draining an asynchronous execution.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct AsyncOutcome {
    /// Broadcast invocations (each heard by all neighbors).
    pub broadcasts: usize,
    /// Point-to-point deliveries (≤ broadcasts × max degree).
    pub deliveries: usize,
    /// Total payload bits over all broadcasts.
    pub bits: usize,
    /// Longest causal chain of messages — the paper's asynchronous round
    /// complexity.
    pub causal_depth: usize,
    /// Virtual time at which the last message was delivered.
    pub finish_time: u64,
}

impl AsyncOutcome {
    /// Projects onto the common [`Metrics`] shape (rounds := causal depth).
    #[must_use]
    pub fn as_metrics(&self) -> Metrics {
        Metrics {
            rounds: self.causal_depth,
            broadcasts: self.broadcasts,
            bits: self.bits,
        }
    }
}

#[derive(Debug)]
struct InFlight<M> {
    deliver_at: u64,
    seq: u64,
    from: NodeId,
    to: NodeId,
    depth: usize,
    msg: M,
}

// Order by delivery time then sequence number (FIFO per timestamp).
impl<M> PartialEq for InFlight<M> {
    fn eq(&self, other: &Self) -> bool {
        (self.deliver_at, self.seq) == (other.deliver_at, other.seq)
    }
}
impl<M> Eq for InFlight<M> {}
impl<M> PartialOrd for InFlight<M> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<M> Ord for InFlight<M> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.deliver_at, self.seq).cmp(&(other.deliver_at, other.seq))
    }
}

/// The asynchronous broadcast network: an event-driven engine delivering
/// messages under a [`DelaySchedule`], tracking causal depth.
///
/// Unlike [`crate::SyncNetwork`], this engine does not manage topology
/// changes end to end; the harness mutates the graph, injects the
/// corresponding [`LocalEvent`]s, and drains the queue. This mirrors the
/// paper's use of the asynchronous model (Corollary 6 only needs the direct
/// template there).
pub struct AsyncNetwork<A: AsyncAutomaton, D: DelaySchedule> {
    graph: DynGraph,
    /// Dense table of node automata (the public constructor still accepts
    /// a `BTreeMap` for ergonomic bulk construction).
    nodes: NodeMap<A>,
    schedule: D,
    queue: BinaryHeap<Reverse<InFlight<A::Msg>>>,
    seq: u64,
    outcome: AsyncOutcome,
}

impl<A: AsyncAutomaton, D: DelaySchedule> AsyncNetwork<A, D> {
    /// Creates a network over `graph` with pre-constructed node automata.
    ///
    /// # Panics
    ///
    /// Panics if `nodes` does not cover exactly the nodes of `graph`.
    #[must_use]
    pub fn new(graph: DynGraph, nodes: BTreeMap<NodeId, A>, schedule: D) -> Self {
        assert_eq!(
            nodes.keys().copied().collect::<Vec<_>>(),
            graph.nodes().collect::<Vec<_>>(),
            "automata must cover exactly the graph's nodes"
        );
        AsyncNetwork {
            graph,
            nodes: nodes.into_iter().collect(),
            schedule,
            queue: BinaryHeap::new(),
            seq: 0,
            outcome: AsyncOutcome::default(),
        }
    }

    /// Mutable access to the graph for harness-driven topology changes.
    /// Callers must keep `nodes` consistent via
    /// [`AsyncNetwork::remove_node`] / [`AsyncNetwork::add_node`].
    pub fn graph_mut(&mut self) -> &mut DynGraph {
        &mut self.graph
    }

    /// The communication graph.
    #[must_use]
    pub fn graph(&self) -> &DynGraph {
        &self.graph
    }

    /// Adds an automaton for a node the harness just inserted into the
    /// graph.
    ///
    /// # Panics
    ///
    /// Panics if the node is not in the graph or already has an automaton.
    pub fn add_node(&mut self, v: NodeId, automaton: A) {
        assert!(self.graph.has_node(v), "insert into the graph first");
        let prev = self.nodes.insert(v, automaton);
        assert!(prev.is_none(), "node {v} already has an automaton");
    }

    /// Removes a node's automaton (after removing it from the graph); any
    /// queued messages to or from it are dropped on delivery.
    pub fn remove_node(&mut self, v: NodeId) -> Option<A> {
        self.nodes.remove(v)
    }

    /// Delivers a local event to `v` at time `now = finish_time`, seeding
    /// causal depth 1 for any resulting broadcasts.
    ///
    /// # Panics
    ///
    /// Panics if `v` has no automaton.
    pub fn inject_event(&mut self, v: NodeId, event: LocalEvent) {
        let now = self.outcome.finish_time;
        let msgs = self
            .nodes
            .get_mut(v)
            .expect("event target exists")
            .on_event(event);
        for msg in msgs {
            self.broadcast(v, msg, 0, now);
        }
    }

    fn broadcast(&mut self, from: NodeId, msg: A::Msg, depth: usize, now: u64) {
        self.outcome.broadcasts += 1;
        self.outcome.bits += msg.bits();
        let neighbors: Vec<NodeId> = match self.graph.neighbors(from) {
            Some(it) => it.collect(),
            None => return,
        };
        for to in neighbors {
            let delay = self.schedule.delay(from, to, now);
            debug_assert!(delay >= 1);
            self.seq += 1;
            self.queue.push(Reverse(InFlight {
                deliver_at: now + delay,
                seq: self.seq,
                from,
                to,
                depth: depth + 1,
                msg: msg.clone(),
            }));
        }
    }

    /// Drains the message queue to quiescence, returning the accumulated
    /// outcome.
    ///
    /// # Panics
    ///
    /// Panics if more than `10⁷` deliveries occur (a livelocked protocol).
    pub fn run(&mut self) -> AsyncOutcome {
        let mut processed = 0usize;
        while let Some(Reverse(inflight)) = self.queue.pop() {
            processed += 1;
            assert!(processed <= 10_000_000, "asynchronous protocol livelocked");
            let InFlight {
                deliver_at,
                from,
                to,
                depth,
                msg,
                ..
            } = inflight;
            self.outcome.finish_time = self.outcome.finish_time.max(deliver_at);
            // Messages to departed nodes (or over removed edges) are lost.
            if !self.graph.has_edge(from, to) {
                continue;
            }
            let Some(node) = self.nodes.get_mut(to) else {
                continue;
            };
            self.outcome.deliveries += 1;
            self.outcome.causal_depth = self.outcome.causal_depth.max(depth);
            let replies = node.on_message(from, &msg);
            for reply in replies {
                self.broadcast(to, reply, depth, deliver_at);
            }
        }
        self.outcome
    }

    /// Outputs of all nodes.
    #[must_use]
    pub fn outputs(&self) -> BTreeMap<NodeId, MisState> {
        self.nodes.iter().map(|(v, n)| (v, n.output())).collect()
    }

    /// The current MIS according to node outputs.
    #[must_use]
    pub fn mis(&self) -> BTreeSet<NodeId> {
        self.nodes
            .iter()
            .filter_map(|(v, n)| n.output().is_in().then_some(v))
            .collect()
    }

    /// The outcome accumulated so far.
    #[must_use]
    pub fn outcome(&self) -> AsyncOutcome {
        self.outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dmis_graph::generators;

    /// Relays the first message it ever hears (classic flood): lets tests
    /// verify causal-depth accounting equals graph eccentricity.
    #[derive(Debug)]
    struct Flood {
        relayed: bool,
    }

    #[derive(Debug, Clone)]
    struct Token;

    impl MessageBits for Token {
        fn bits(&self) -> usize {
            1
        }
    }

    impl AsyncAutomaton for Flood {
        type Msg = Token;

        fn on_message(&mut self, _from: NodeId, _msg: &Token) -> Vec<Token> {
            if self.relayed {
                vec![]
            } else {
                self.relayed = true;
                vec![Token]
            }
        }

        fn on_event(&mut self, _event: LocalEvent) -> Vec<Token> {
            self.relayed = true;
            vec![Token]
        }

        fn output(&self) -> MisState {
            MisState::Out
        }
    }

    fn flood_net(
        g: DynGraph,
        schedule: impl DelaySchedule,
    ) -> AsyncNetwork<Flood, impl DelaySchedule> {
        let nodes: BTreeMap<NodeId, Flood> =
            g.nodes().map(|v| (v, Flood { relayed: false })).collect();
        AsyncNetwork::new(g, nodes, schedule)
    }

    #[test]
    fn flood_depth_equals_eccentricity_under_unit_delays() {
        let (g, ids) = generators::path(6);
        let mut net = flood_net(g, UnitDelays);
        net.inject_event(ids[0], LocalEvent::SelfRetiring);
        let outcome = net.run();
        // Longest causal chain: ids[0] → ids[1] → … → ids[5], plus the end
        // node's own relay travelling one hop back = 6 deliveries deep.
        assert_eq!(outcome.causal_depth, 6);
        assert_eq!(outcome.broadcasts, 6, "each node relays once");
    }

    #[test]
    fn causal_depth_is_delay_independent() {
        for seed in 0..5 {
            let (g, ids) = generators::cycle(8);
            let mut net = flood_net(g, RandomDelays::new(seed, 10));
            net.inject_event(ids[0], LocalEvent::SelfRetiring);
            let outcome = net.run();
            // On a cycle of 8 the flood reaches the antipode in 4 hops, but
            // depths up to 8 can occur when a slow short path loses to a
            // long fast path; the depth is still bounded by n.
            assert!(outcome.causal_depth >= 4);
            assert!(outcome.causal_depth <= 8);
            assert_eq!(outcome.broadcasts, 8);
        }
    }

    #[test]
    fn deliveries_and_bits_are_counted() {
        let (g, ids) = generators::complete(4);
        let mut net = flood_net(g, UnitDelays);
        net.inject_event(ids[0], LocalEvent::SelfRetiring);
        let outcome = net.run();
        assert_eq!(outcome.broadcasts, 4);
        assert_eq!(outcome.bits, 4);
        assert_eq!(outcome.deliveries, 12, "each broadcast hits 3 neighbors");
        let metrics = outcome.as_metrics();
        assert_eq!(metrics.broadcasts, 4);
    }

    #[test]
    fn messages_over_removed_edges_are_lost() {
        let (g, ids) = generators::path(2);
        let mut net = flood_net(g, UnitDelays);
        net.inject_event(ids[0], LocalEvent::SelfRetiring);
        // Cut the edge before the message is delivered.
        net.graph_mut().remove_edge(ids[0], ids[1]).unwrap();
        let outcome = net.run();
        assert_eq!(outcome.deliveries, 0);
    }

    #[test]
    #[should_panic(expected = "cover exactly")]
    fn node_map_must_match_graph() {
        let (g, _) = generators::path(3);
        let _ = AsyncNetwork::new(g, BTreeMap::<NodeId, Flood>::new(), UnitDelays);
    }

    #[test]
    fn add_and_remove_nodes() {
        let (g, ids) = generators::path(2);
        let mut net = flood_net(g, UnitDelays);
        let v = net.graph_mut().add_node();
        net.graph_mut().insert_edge(v, ids[0]).unwrap();
        net.add_node(v, Flood { relayed: false });
        assert!(net.remove_node(v).is_some());
        assert!(net.remove_node(v).is_none());
    }
}
