//! Ingestion harness: queue depth as a simulator axis.
//!
//! [`IngestRun`] wires `dmis-core`'s change-ingestion session
//! ([`dmis_core::IngestSession`]) into the simulator's metering
//! vocabulary: the adversary's change stream is pushed into a coalescing
//! queue and settled one merged batch per **flush** — the window
//! boundaries chosen by any [`dmis_core::FlushPolicy`] — so the run
//! meters the ROADMAP's async-batching trade-off end to end —
//!
//! - **rounds** — settle epochs of the flushed recoveries (parallel-time
//!   depth, amortized over the whole window);
//! - **broadcasts** — cross-shard handoffs of the flushed recoveries;
//! - **bits** — handoff payload, as in [`crate::ShardedRun`];
//! - **coalesced changes** — stream entries the queue eliminated before
//!   any settle work happened (opposing-pair cancels, duplicate merges);
//! - **queue delay** — the latency price of batching, in both
//!   clock-free pushes-waited units ([`IngestRun::mean_queue_delay`])
//!   and session-clock wall time ([`IngestRun::delay_p50`] /
//!   [`IngestRun::delay_p99`] — the SLO columns the bench gate bounds).
//!
//! The harness is generic over the engine: it drives a boxed
//! [`DynamicMis`], so the same run works unsharded, sharded, or
//! thread-parallel — experiment E12's queue-depth table sweeps the
//! watermark against a K-sharded engine built through
//! [`crate::RunConfig`].

use std::collections::BTreeSet;
use std::time::Duration;

use dmis_core::{DynamicMis, IngestReceipt, IngestSession};
use dmis_graph::{GraphError, NodeId, TopologyChange};

use crate::metrics::{ChangeOutcome, Metrics};

/// A metered ingestion deployment: a coalescing change queue in front of
/// any [`DynamicMis`] engine, auto-flushed by a
/// [`dmis_core::FlushPolicy`]. Boot one through
/// [`crate::RunConfig::ingest`].
///
/// # Example
///
/// ```
/// use dmis_graph::{generators, ShardLayout, TopologyChange};
/// use dmis_sim::RunConfig;
///
/// let (g, ids) = generators::cycle(10);
/// let mut run = RunConfig::new(g)
///     .layout(ShardLayout::striped(4))
///     .watermark(2)
///     .seed(3)
///     .ingest();
/// // First push queues; the second reaches the watermark and flushes.
/// assert!(run.push(&TopologyChange::DeleteEdge(ids[0], ids[1]))?.is_none());
/// let outcome = run.push(&TopologyChange::DeleteEdge(ids[5], ids[6]))?;
/// assert!(outcome.is_some(), "watermark 2 flushed the window");
/// assert_eq!(run.flushes(), 1);
/// # Ok::<(), dmis_graph::GraphError>(())
/// ```
#[derive(Debug)]
pub struct IngestRun {
    session: IngestSession<Box<dyn DynamicMis + Send>>,
    lifetime: Metrics,
    flushes: usize,
    pushed_total: usize,
    coalesced_total: usize,
    applied_total: usize,
    /// Σ over flushed changes of their wait (changes that entered the
    /// queue after them within the same window): the total queueing
    /// delay, in change-arrivals, batching imposed.
    queue_delay_total: usize,
    /// Every flushed push's arrival→flush wait on the session clock,
    /// kept sorted for the percentile SLO columns.
    clock_delays: Vec<Duration>,
}

impl IngestRun {
    /// Wraps a change-ingestion session. The engine may be any
    /// [`DynamicMis`] flavor; metrics sections that are
    /// sharding-specific (broadcasts, rounds) read zero on the unsharded
    /// engine.
    #[must_use]
    pub fn from_session(session: IngestSession<Box<dyn DynamicMis + Send>>) -> Self {
        IngestRun {
            session,
            lifetime: Metrics::new(),
            flushes: 0,
            pushed_total: 0,
            coalesced_total: 0,
            applied_total: 0,
            queue_delay_total: 0,
            clock_delays: Vec::new(),
        }
    }

    /// The underlying engine. Queued changes are not visible in it until
    /// a flush.
    #[must_use]
    pub fn engine(&self) -> &dyn DynamicMis {
        &**self.session.engine()
    }

    /// The depth watermark in force, if the flush policy has one (the
    /// smoother's current choice for an adaptive policy).
    #[must_use]
    pub fn watermark(&self) -> Option<usize> {
        self.session.watermark()
    }

    /// Current (coalesced) queue depth.
    #[must_use]
    pub fn queue_depth(&self) -> usize {
        self.session.queue_depth()
    }

    /// Windows flushed so far.
    #[must_use]
    pub fn flushes(&self) -> usize {
        self.flushes
    }

    /// Changes pushed so far (including still-queued and coalesced-away
    /// ones).
    #[must_use]
    pub fn pushed(&self) -> usize {
        self.pushed_total
    }

    /// Changes the queue eliminated before any settle work.
    #[must_use]
    pub fn coalesced_changes(&self) -> usize {
        self.coalesced_total
    }

    /// Changes applied by flushed windows.
    #[must_use]
    pub fn applied(&self) -> usize {
        self.applied_total
    }

    /// Mean queueing delay per flushed change, in change-arrivals: 0 for
    /// watermark 1 (every change settles immediately), approaching
    /// (watermark − 1)/2 as windows fill — the latency half of the
    /// trade-off.
    #[must_use]
    pub fn mean_queue_delay(&self) -> f64 {
        if self.applied_total + self.coalesced_total == 0 {
            return 0.0;
        }
        self.queue_delay_total as f64 / (self.applied_total + self.coalesced_total) as f64
    }

    /// Median arrival→flush wait over every flushed push, on the
    /// session clock (deterministic under a manual clock).
    #[must_use]
    pub fn delay_p50(&self) -> Duration {
        percentile(&self.clock_delays, 50)
    }

    /// 99th-percentile arrival→flush wait over every flushed push — the
    /// tail-latency SLO column the bench gate bounds.
    #[must_use]
    pub fn delay_p99(&self) -> Duration {
        percentile(&self.clock_delays, 99)
    }

    /// Size of the current MIS without allocating a set.
    #[must_use]
    pub fn mis_len(&self) -> usize {
        self.engine().mis_len()
    }

    /// The current MIS.
    #[must_use]
    pub fn mis(&self) -> BTreeSet<NodeId> {
        self.engine().mis()
    }

    /// Metrics accumulated over every flushed recovery so far.
    #[must_use]
    pub fn lifetime_metrics(&self) -> Metrics {
        self.lifetime
    }

    /// Bits per handoff message, as in [`crate::ShardedRun`].
    fn handoff_bits(&self) -> usize {
        let ids = self.engine().graph().peek_next_id().index().max(1);
        1 + (64 - ids.leading_zeros() as usize)
    }

    /// Pushes one change into the queue; the session flushes when its
    /// policy trips (depth watermark reached, or the oldest queued
    /// change hit the deadline), and the flush's outcome is returned
    /// when one happened.
    ///
    /// # Errors
    ///
    /// Propagates [`GraphError`] from an auto-flush; the queue is
    /// consumed as by [`Self::flush`].
    pub fn push(&mut self, change: &TopologyChange) -> Result<Option<ChangeOutcome>, GraphError> {
        self.pushed_total += 1;
        match self.session.push(change.clone())? {
            Some(receipt) => Ok(Some(self.meter(&receipt))),
            None => Ok(None),
        }
    }

    /// Re-evaluates the flush policy against the session clock without
    /// pushing — how deadline-bearing policies fire between pushes.
    ///
    /// # Errors
    ///
    /// Propagates [`GraphError`] exactly as [`Self::flush`] does.
    pub fn poll(&mut self) -> Result<Option<ChangeOutcome>, GraphError> {
        match self.session.poll()? {
            Some(receipt) => Ok(Some(self.meter(&receipt))),
            None => Ok(None),
        }
    }

    /// Flushes the queued window as one merged recovery and meters it.
    /// Flushing an empty queue is a metered no-op recovery.
    ///
    /// # Errors
    ///
    /// Propagates the first [`GraphError`]. The queue is consumed either
    /// way; an errored window is dropped from the lifetime metering (the
    /// engine keeps the valid prefix applied, but no receipt exists to
    /// meter it), so `pushed()` can exceed
    /// `applied() + coalesced_changes() + queue_depth()` after an error.
    pub fn flush(&mut self) -> Result<ChangeOutcome, GraphError> {
        let receipt = self.session.flush()?;
        Ok(self.meter(&receipt))
    }

    /// Folds one flush's [`IngestReceipt`] into the lifetime accounting.
    fn meter(&mut self, receipt: &IngestReceipt) -> ChangeOutcome {
        let window = receipt.pushed();
        self.flushes += 1;
        self.coalesced_total += receipt.coalesced_changes();
        self.applied_total += receipt.applied();
        // Each of the window's changes waited for the ones arriving after
        // it: total delay of a w-change window is w(w−1)/2 arrivals.
        self.queue_delay_total += window * window.saturating_sub(1) / 2;
        for &w in receipt.queue_delay().waits() {
            let at = self.clock_delays.partition_point(|&d| d <= w);
            self.clock_delays.insert(at, w);
        }
        let handoffs = receipt.batch().cross_shard_handoffs();
        let metrics = Metrics {
            rounds: receipt.batch().settle_epochs(),
            broadcasts: handoffs,
            bits: handoffs * self.handoff_bits(),
        };
        self.lifetime += metrics;
        ChangeOutcome {
            metrics,
            adjusted: receipt.batch().adjusted_nodes(),
        }
    }
}

/// Nearest-rank percentile of an ascending-sorted slice; zero when
/// empty.
fn percentile(sorted: &[Duration], p: usize) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    sorted[(sorted.len() - 1) * p / 100]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RunConfig;
    use dmis_core::FlushPolicy;
    use dmis_graph::{generators, ShardLayout};

    #[test]
    fn watermark_one_matches_per_change_sharded_run() {
        let (g, ids) = generators::cycle(12);
        let mut run = RunConfig::new(g.clone())
            .layout(ShardLayout::striped(4))
            .watermark(1)
            .seed(7)
            .ingest();
        let mut reference = crate::ShardedRun::bootstrap(g, ShardLayout::striped(4), 7);
        for w in ids.windows(2).take(6) {
            let change = TopologyChange::DeleteEdge(w[0], w[1]);
            let outcome = run.push(&change).unwrap().expect("watermark 1 flushes");
            let expected = reference.apply_change(&change).unwrap();
            assert_eq!(outcome.adjusted, expected.adjusted);
            assert_eq!(outcome.metrics.broadcasts, expected.metrics.broadcasts);
        }
        assert_eq!(run.flushes(), 6);
        assert_eq!(run.coalesced_changes(), 0);
        assert!(run.mean_queue_delay().abs() < f64::EPSILON);
        assert_eq!(run.mis(), reference.mis());
    }

    #[test]
    fn opposing_pairs_cancel_inside_the_window() {
        let (g, ids) = generators::cycle(10);
        let mut run = RunConfig::new(g)
            .layout(ShardLayout::striped(2))
            .watermark(4)
            .seed(5)
            .ingest();
        let before = run.mis_len();
        assert!(run
            .push(&TopologyChange::DeleteEdge(ids[0], ids[1]))
            .unwrap()
            .is_none());
        assert!(run
            .push(&TopologyChange::InsertEdge(ids[0], ids[1]))
            .unwrap()
            .is_none());
        assert_eq!(run.queue_depth(), 0, "pair cancelled");
        let outcome = run.flush().unwrap();
        assert!(outcome.adjusted.is_empty());
        assert_eq!(outcome.metrics.rounds, 0, "zero settle work");
        assert_eq!(run.coalesced_changes(), 2);
        assert_eq!(run.mis_len(), before);
    }

    #[test]
    fn deeper_queues_trade_latency_for_fewer_flushes() {
        let run_with = |watermark: usize| {
            let (g, ids) = generators::cycle(16);
            let mut run = RunConfig::new(g)
                .layout(ShardLayout::striped(4))
                .watermark(watermark)
                .seed(9)
                .ingest();
            // Toggle a rotating edge: off, on, off, on, … so deep windows
            // cancel churn outright.
            for i in 0..24usize {
                let (u, v) = (ids[i % 16], ids[(i + 1) % 16]);
                run.push(&TopologyChange::DeleteEdge(u, v)).unwrap();
                run.push(&TopologyChange::InsertEdge(u, v)).unwrap();
            }
            run.flush().unwrap();
            (
                run.flushes(),
                run.coalesced_changes(),
                run.mean_queue_delay(),
                run.mis(),
            )
        };
        let (f1, c1, d1, mis1) = run_with(1);
        let (f8, c8, d8, mis8) = run_with(8);
        assert_eq!(mis1, mis8, "outputs are watermark-independent");
        assert!(f8 < f1, "deeper queue flushes less often ({f8} !< {f1})");
        assert!(c8 > c1, "deeper queue cancels more churn ({c8} !> {c1})");
        assert!(d8 > d1, "latency is the price ({d8} !> {d1})");
    }

    #[test]
    fn manual_clock_makes_delay_percentiles_exact() {
        use dmis_core::ManualClock;
        use std::sync::Arc;
        use std::time::Duration;

        let (g, ids) = generators::cycle(8);
        let clock = ManualClock::new();
        let mut run = RunConfig::new(g)
            .watermark(4)
            .clock(Arc::new(clock.clone()))
            .seed(2)
            .ingest();
        // One push per tick: at the watermark-4 flush the four arrivals
        // have waited 3, 2, 1, 0 ticks. Nearest-rank over 4 samples puts
        // p99 at index (4−1)·99/100 = 2 and p50 at index 1.
        for i in 0..4usize {
            let (u, v) = (ids[i], ids[i + 1]);
            run.push(&TopologyChange::DeleteEdge(u, v)).unwrap();
            clock.advance(Duration::from_millis(1));
        }
        assert_eq!(run.flushes(), 1);
        assert_eq!(run.delay_p99(), Duration::from_millis(2));
        assert_eq!(run.delay_p50(), Duration::from_millis(1));
    }

    #[test]
    fn adaptive_policy_reports_its_moving_watermark() {
        let (g, ids) = generators::cycle(16);
        let mut run = RunConfig::new(g)
            .policy(FlushPolicy::adaptive())
            .seed(4)
            .ingest();
        let before = run.watermark().expect("adaptive policy has a depth");
        // Anti-coalescing trickle: fresh edge deletions, no key reuse.
        for w in ids.windows(2) {
            run.push(&TopologyChange::DeleteEdge(w[0], w[1])).unwrap();
        }
        run.flush().unwrap();
        let after = run.watermark().expect("adaptive policy has a depth");
        assert!(
            after < before,
            "uncoalescible stream shallows the smoother ({after} !< {before})"
        );
    }
}
