//! Crash-restart drill: kill a durable serving writer at a seeded byte,
//! recover, resume the stream, and prove readers never observed an
//! epoch the durable history cannot honor.
//!
//! The drill is the deployment-shaped closure of the durability story
//! (`dmis-core::durability`): a [`ServeRun`] writer streams churn with
//! log-then-publish persistence while reader threads sample the
//! snapshot channel; a [`FaultIo`] byte budget kills the writer
//! mid-stream (torn final record and all); [`recover`] rebuilds the
//! engine from the last checkpoint plus the surviving WAL suffix; a
//! resumed [`ServeRun`] replays the *unpersisted* remainder of the
//! stream on the recovered engine. The invariants asserted:
//!
//! - the crashed writer dies with [`GraphError::PersistFailed`] — the
//!   unlogged window is rejected, never half-applied;
//! - the recovered epoch **equals** the epoch the crashed run's readers
//!   last observed: every published epoch had its record persisted
//!   first, so recovery re-derives exactly the published prefix —
//!   readers resuming on the recovered engine never see a regressed
//!   (or torn) epoch;
//! - the resumed run finishes **bit-identical** to an uncrashed twin —
//!   same MIS, same RNG position, same final epoch — because the
//!   replayed prefix plus the resumed suffix *is* the twin's history.

use std::sync::Arc;

use dmis_core::durability::{recover, splitmix64, FaultIo, MemIo, StorageIo, WAL_FILE};
use dmis_core::{DynamicMis, IngestSession, MisReader};
use dmis_graph::stream::{self, ChurnConfig};
use dmis_graph::{generators, DynGraph, GraphError, TopologyChange};
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::serve::ServeRun;
use crate::RunConfig;

/// Stream length of one drill; long enough that every seeded budget
/// lands mid-stream with both a durable checkpoint behind it and
/// unpersisted changes ahead of it.
const STREAM_LEN: usize = 160;
/// Checkpoint cadence (in flushes) of the drilled writer.
const CKP_EVERY: usize = 16;
/// Engine priority seed; fixed so the drill seed varies only the churn
/// and the crash point.
const ENGINE_SEED: u64 = 12;

/// What one [`crash_restart_drill`] proved, for the report line.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DrillReport {
    /// The drill seed (churn stream + crash byte budget).
    pub seed: u64,
    /// Stream changes generated (one flush each: watermark 1).
    pub stream_len: usize,
    /// The [`FaultIo`] byte budget the writer crashed under.
    pub crash_budget: u64,
    /// Epoch the crashed run's readers last observed — flushes that
    /// persisted *and* published before the crash.
    pub crashed_epoch: u64,
    /// WAL sequence the recovery checkpoint anchored at.
    pub checkpoint_seq: u64,
    /// WAL records replayed on top of that checkpoint.
    pub replayed: usize,
    /// Flushes the resumed run performed to finish the stream.
    pub resumed_flushes: usize,
    /// The final epoch both the twin and the resumed run landed on.
    pub final_epoch: u64,
}

/// Generates the drill's base graph and a valid `STREAM_LEN`-change
/// churn sequence (validated against a shadow graph; falls back to an
/// isolated node insert when the churn config has no legal move).
fn drill_stream(seed: u64) -> (DynGraph, Vec<TopologyChange>) {
    let churn = ChurnConfig {
        edge_insert: 0.3,
        edge_delete: 0.25,
        node_insert: 0.25,
        node_delete: 0.2,
        max_new_degree: 4,
    };
    let mut rng = StdRng::seed_from_u64(0xD211 ^ seed);
    let (g, _) = generators::erdos_renyi(32, 0.15, &mut rng);
    let mut shadow = g.clone();
    let mut out = Vec::new();
    while out.len() < STREAM_LEN {
        let change = stream::random_change(&shadow, &churn, &mut rng).unwrap_or(
            TopologyChange::InsertNode {
                id: shadow.peek_next_id(),
                edges: vec![],
            },
        );
        change.apply(&mut shadow).expect("valid against shadow");
        out.push(change);
    }
    (g, out)
}

/// A durable watermark-1 serving run over `g` on `io`.
fn durable_run(g: DynGraph, readers: usize, io: Arc<dyn StorageIo>) -> ServeRun {
    RunConfig::new(g)
        .watermark(1)
        .seed(ENGINE_SEED)
        .readers(readers)
        .probes(4)
        .serve()
        .with_durability(io, CKP_EVERY)
        .expect("bootstrap storage is healthy")
}

/// Runs one crash-restart drill at `seed` and asserts the recovery
/// invariants (see the module docs); returns the measured report.
///
/// # Panics
///
/// Panics if any invariant fails — the drill *is* the assertion; CI
/// sweeps it over `DMIS_CRASH_SEED` values.
pub fn crash_restart_drill(seed: u64) -> DrillReport {
    let (g, stream) = drill_stream(seed);

    // The uncrashed twin: same engine, same stream, plain storage. Its
    // log length bounds the crash budget; its final state is the ground
    // truth the recovered run must reproduce.
    let twin_store = MemIo::new();
    let mut twin = durable_run(g.clone(), 1, Arc::new(twin_store.clone()));
    let twin_report = twin.run(&stream).expect("fault-free twin");
    assert_eq!(
        twin_report.flushes, STREAM_LEN,
        "watermark 1: flush per change"
    );
    let wal_bytes = twin_store.file_len(WAL_FILE).expect("twin logged") as u64;

    // The crashed writer: identical run, but storage dies after a
    // seeded byte budget — always before the log is complete, so the
    // writer must fail with the persistence error mid-stream.
    let store = MemIo::new();
    let crash_budget = 1 + splitmix64(seed) % (wal_bytes - 8);
    let mut run = durable_run(
        g,
        2,
        Arc::new(FaultIo::crash_after(store.clone(), crash_budget)),
    );
    let crash = run.run(&stream);
    assert_eq!(
        crash.expect_err("the budget is smaller than the log"),
        GraphError::PersistFailed,
        "seed={seed}: a crashed writer rejects the unlogged window"
    );
    let crashed_epoch = run.reader().epoch();

    // Recovery on the surviving bytes (shared with the dead FaultIo):
    // checkpoint, truncated log, replayed suffix.
    let recovered = recover(Arc::new(store.clone())).expect("recoverable store");
    let recovered_epoch = recovered.checkpoint_seq + recovered.replayed as u64;
    assert_eq!(
        recovered.engine.durability_meta().epoch,
        Some(recovered_epoch),
        "seed={seed}: replay epoch arithmetic"
    );
    assert_eq!(
        recovered_epoch, crashed_epoch,
        "seed={seed}: log-then-publish means recovery re-derives exactly \
         the prefix the readers were served — no regression, no invention"
    );

    // Resume: the recovered engine picks the stream back up at the
    // first unpersisted change (one record per change, so the durable
    // record count *is* the resume index).
    let resume_at = recovered.wal.records_persisted() as usize;
    let DrillRecovered { session, reader } = reattach(recovered.engine);
    let mut resumed = ServeRun::from_parts(session, reader, 2, 4).resume_durability(
        recovered.wal,
        Arc::new(store),
        CKP_EVERY,
    );
    let resumed_report = resumed.run(&stream[resume_at..]).expect("healthy resume");
    assert_eq!(resumed_report.epoch_regressions, 0, "seed={seed}");
    assert_eq!(
        resumed_report.final_epoch, twin_report.final_epoch,
        "seed={seed}: resumed epoch catches the twin exactly"
    );
    assert_eq!(
        resumed.engine().mis(),
        twin.engine().mis(),
        "seed={seed}: crash + recover + resume is bit-identical to never crashing"
    );
    assert_eq!(
        resumed.engine().durability_meta(),
        twin.engine().durability_meta(),
        "seed={seed}: layout, RNG position, and epoch all converge"
    );

    DrillReport {
        seed,
        stream_len: stream.len(),
        crash_budget,
        crashed_epoch,
        checkpoint_seq: recovered.checkpoint_seq,
        replayed: recovered.replayed,
        resumed_flushes: resumed_report.flushes,
        final_epoch: resumed_report.final_epoch,
    }
}

/// A recovered engine re-wrapped for serving.
struct DrillRecovered {
    session: IngestSession<Box<dyn DynamicMis + Send>>,
    reader: MisReader,
}

/// Attaches a fresh reader handle (at the *restored* epoch — the
/// publication channel was re-installed by recovery) and a watermark-1
/// session around a recovered engine.
fn reattach(mut engine: Box<dyn DynamicMis + Send>) -> DrillRecovered {
    let reader = engine.reader();
    DrillRecovered {
        session: IngestSession::with_watermark(engine, 1),
        reader,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn the_drill_passes_on_a_fixed_seed() {
        let report = crash_restart_drill(3);
        assert_eq!(report.stream_len, STREAM_LEN);
        assert_eq!(report.final_epoch, STREAM_LEN as u64);
        assert_eq!(
            report.crashed_epoch,
            report.checkpoint_seq + report.replayed as u64
        );
        assert_eq!(
            report.resumed_flushes,
            STREAM_LEN - report.crashed_epoch as usize
        );
    }
}
