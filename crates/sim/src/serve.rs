//! Serving harness: concurrent snapshot reads as a simulator axis.
//!
//! [`ServeRun`] wires `dmis-core`'s epoch-versioned read path
//! ([`dmis_core::MisReader`]) into a deployment-shaped experiment: one
//! writer thread replays an ingest stream through a coalescing queue
//! (flushing one merged batch per [`dmis_core::FlushPolicy`] window,
//! exactly as [`crate::IngestRun`] does) while R reader threads hammer
//! the published snapshots. The run meters both sides of the concurrent
//! read path —
//!
//! - **reads** — snapshot acquisitions plus membership probes the
//!   readers completed, and their aggregate throughput;
//! - **staleness** — how many epochs behind the writer an acquired
//!   snapshot was at the moment it was acquired (0 means the reader
//!   held the newest published state);
//! - **epoch regressions** — samples where a reader observed an epoch
//!   older than its previous sample. The snapshot channel promises this
//!   is impossible; the harness counts rather than asserts so the
//!   serving report doubles as a cheap production-shaped invariant
//!   check (the consistency *proof* lives in
//!   `crates/core/tests/snapshot_consistency.rs`);
//! - **update latency** — p50/p99 session-clock time of the writer's
//!   flush (merged-batch apply + publication), the cost the read path
//!   adds to the write path being bounded by the bench gate;
//! - **queue delay** — p50/p99 arrival→flush wait over the stream's
//!   pushes, the ingestion-latency SLO column.
//!
//! Epoch arithmetic is exact: the engine publishes once per settle and
//! a flush is one settle, so after F flushes the writer is at epoch F
//! and every reader's final sample observes an epoch in `0..=F`.
//!
//! A run becomes **durable** with [`ServeRun::with_durability`]: every
//! flushed window is appended to a write-ahead log *before* it is
//! applied (log-then-publish), and a checkpoint image is cut every N
//! flushes, so a crashed writer recovers to a state at or ahead of
//! anything its readers observed — the drill proving that end to end is
//! [`crate::crash_restart_drill`].

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use dmis_core::durability::{Checkpoint, StorageIo, WriteAheadLog};
use dmis_core::{DynamicMis, IngestReceipt, IngestSession, MisReader};
use dmis_graph::{GraphError, NodeId, TopologyChange};

/// What one reader thread tallied over its sampling loop.
struct ReaderTally {
    reads: u64,
    samples: u64,
    staleness_sum: u64,
    staleness_max: u64,
    regressions: u64,
}

/// A metered serving deployment: a policy-flushed writer in front of
/// any [`DynamicMis`] engine, with R concurrent [`MisReader`] threads.
/// Boot one through [`crate::RunConfig::serve`].
///
/// # Example
///
/// ```
/// use dmis_graph::{generators, ShardLayout, TopologyChange};
/// use dmis_sim::RunConfig;
///
/// let (g, ids) = generators::cycle(16);
/// let stream: Vec<_> = ids
///     .windows(2)
///     .map(|w| TopologyChange::DeleteEdge(w[0], w[1]))
///     .collect();
/// let mut run = RunConfig::new(g)
///     .layout(ShardLayout::striped(2))
///     .watermark(4)
///     .seed(7)
///     .readers(2)
///     .probes(8)
///     .serve();
/// let report = run.run(&stream)?;
/// assert_eq!(report.epoch_regressions, 0);
/// assert_eq!(report.final_epoch, report.flushes as u64);
/// # Ok::<(), dmis_graph::GraphError>(())
/// ```
#[derive(Debug)]
pub struct ServeRun {
    session: IngestSession<Box<dyn DynamicMis + Send>>,
    reader: MisReader,
    readers: usize,
    probes: usize,
    probe_space: u64,
    durability: Option<Durability>,
}

/// Checkpoint cadence for a durable serving run: where the images go,
/// how often they are cut, and how many WAL records the attached log
/// holds (the `wal_seq` stamped into each image).
#[derive(Debug)]
struct Durability {
    io: Arc<dyn StorageIo>,
    every: usize,
    records: u64,
}

/// The metered outcome of one [`ServeRun::run`] window.
#[derive(Debug, Clone, PartialEq)]
pub struct ServeReport {
    /// Merged-batch windows the writer flushed (including the final
    /// partial window, when the stream does not end on a policy
    /// boundary).
    pub flushes: usize,
    /// Stream changes the flushed windows applied (post-coalescing).
    pub applied: usize,
    /// The writer's epoch after the last flush: `flushes`, since the
    /// engine publishes exactly once per settle.
    pub final_epoch: u64,
    /// Snapshot acquisitions + membership probes across all readers.
    pub reads_total: u64,
    /// `reads_total` over the run's wall-clock span.
    pub reads_per_sec: f64,
    /// Mean epochs-behind-writer over all reader samples.
    pub staleness_mean: f64,
    /// Worst epochs-behind-writer any sample observed.
    pub staleness_max: u64,
    /// Samples whose epoch was older than the same reader's previous
    /// sample. Always 0 unless the snapshot channel is broken.
    pub epoch_regressions: u64,
    /// Median session-clock nanoseconds per writer flush.
    pub update_p50_ns: u64,
    /// 99th-percentile session-clock nanoseconds per writer flush.
    pub update_p99_ns: u64,
    /// Median arrival→flush wait over the stream's pushes — the
    /// ingestion-latency SLO column.
    pub queue_delay_p50: Duration,
    /// 99th-percentile arrival→flush wait over the stream's pushes.
    pub queue_delay_p99: Duration,
}

impl ServeRun {
    /// Wraps a change-ingestion session with its serving handle and the
    /// reader axes ([`crate::RunConfig::serve`] assembles these).
    #[must_use]
    pub fn from_parts(
        session: IngestSession<Box<dyn DynamicMis + Send>>,
        reader: MisReader,
        readers: usize,
        probes: usize,
    ) -> Self {
        let probe_space = session.engine().graph().peek_next_id().index().max(1);
        ServeRun {
            session,
            reader,
            readers,
            probes,
            probe_space,
            durability: None,
        }
    }

    /// Makes the run durable from scratch: creates a fresh
    /// [`WriteAheadLog`] on `io`, saves an initial [`Checkpoint`] of the
    /// engine's current state, and wires the log into the writer's flush
    /// path (every flush persists its coalesced window *before* applying
    /// it — log-then-publish). Thereafter a checkpoint image is cut
    /// every `every` flushes, so recovery replays at most `every`
    /// records.
    ///
    /// # Errors
    ///
    /// Propagates storage failures from the log creation or the initial
    /// checkpoint save.
    pub fn with_durability(
        mut self,
        io: Arc<dyn StorageIo>,
        every: usize,
    ) -> std::io::Result<Self> {
        let wal = WriteAheadLog::create(Arc::clone(&io))?;
        Checkpoint::capture(&**self.session.engine(), 0).save(io.as_ref())?;
        self.session.set_wal_sink(Box::new(wal));
        self.durability = Some(Durability {
            io,
            every: every.max(1),
            records: 0,
        });
        Ok(self)
    }

    /// Makes the run durable on an *existing* log — the resume half of
    /// the crash-restart story: after [`dmis_core::durability::recover`]
    /// rebuilt the engine, hand its truncated-and-reopened log back in
    /// and streaming continues exactly where the durable prefix ended.
    #[must_use]
    pub fn resume_durability(
        mut self,
        wal: WriteAheadLog,
        io: Arc<dyn StorageIo>,
        every: usize,
    ) -> Self {
        let records = wal.records_persisted();
        self.session.set_wal_sink(Box::new(wal));
        self.durability = Some(Durability {
            io,
            every: every.max(1),
            records,
        });
        self
    }

    /// The serving handle. Clones of it are what `run` hands to reader
    /// threads; it stays valid (frozen at the last published epoch)
    /// after the run returns.
    #[must_use]
    pub fn reader(&self) -> MisReader {
        self.reader.clone()
    }

    /// The underlying engine.
    #[must_use]
    pub fn engine(&self) -> &dyn DynamicMis {
        &**self.session.engine()
    }

    /// Replays `stream` through the policy-flushed queue on the calling
    /// thread while the configured reader threads sample the snapshot
    /// channel, each sample acquiring one snapshot and making the
    /// configured number of membership probes against it.
    ///
    /// Readers run until the writer finishes, and always complete at
    /// least one sample, so the report is meaningful even for a stream
    /// shorter than one flush window.
    ///
    /// # Errors
    ///
    /// Propagates the first [`GraphError`] from a flush; reader threads
    /// are joined before the error returns.
    pub fn run(&mut self, stream: &[TopologyChange]) -> Result<ServeReport, GraphError> {
        let done = AtomicBool::new(false);
        let started = Instant::now();
        let mut flush_ns: Vec<u64> = Vec::new();
        let mut delays: Vec<Duration> = Vec::new();
        let mut applied = 0usize;
        let mut flushes = 0usize;

        let (tallies, write_result) = std::thread::scope(|s| {
            let handles: Vec<_> = (0..self.readers)
                .map(|r| {
                    let reader = self.reader.clone();
                    let done = &done;
                    let probes = self.probes;
                    let probe_space = self.probe_space;
                    s.spawn(move || sample_loop(&reader, done, probes, probe_space, r as u64))
                })
                .collect();

            let mut meter = |receipt: &IngestReceipt| {
                flushes += 1;
                applied += receipt.applied();
                let ns = receipt.queue_delay().settle().as_nanos();
                flush_ns.push(ns.min(u128::from(u64::MAX)) as u64);
                delays.extend_from_slice(receipt.queue_delay().waits());
            };
            let mut result = Ok(());
            for change in stream {
                match self.session.push(change.clone()) {
                    Ok(Some(receipt)) => {
                        meter(&receipt);
                        result = self.checkpoint_if_due();
                        if result.is_err() {
                            break;
                        }
                    }
                    Ok(None) => {}
                    Err(e) => {
                        result = Err(e);
                        break;
                    }
                }
            }
            if result.is_ok() && self.session.queue_depth() > 0 {
                match self.session.flush() {
                    Ok(receipt) => {
                        meter(&receipt);
                        result = self.checkpoint_if_due();
                    }
                    Err(e) => result = Err(e),
                }
            }
            done.store(true, Ordering::Release);
            let tallies: Vec<ReaderTally> = handles
                .into_iter()
                .map(|h| h.join().expect("reader threads do not panic"))
                .collect();
            (tallies, result)
        });
        write_result?;
        let elapsed = started.elapsed().as_secs_f64().max(f64::MIN_POSITIVE);

        let reads_total: u64 = tallies.iter().map(|t| t.reads).sum();
        let samples: u64 = tallies.iter().map(|t| t.samples).sum();
        let staleness_sum: u64 = tallies.iter().map(|t| t.staleness_sum).sum();
        flush_ns.sort_unstable();
        delays.sort_unstable();
        Ok(ServeReport {
            flushes,
            applied,
            final_epoch: self.reader.epoch(),
            reads_total,
            reads_per_sec: reads_total as f64 / elapsed,
            staleness_mean: if samples == 0 {
                0.0
            } else {
                staleness_sum as f64 / samples as f64
            },
            staleness_max: tallies.iter().map(|t| t.staleness_max).max().unwrap_or(0),
            epoch_regressions: tallies.iter().map(|t| t.regressions).sum(),
            update_p50_ns: percentile(&flush_ns, 50),
            update_p99_ns: percentile(&flush_ns, 99),
            queue_delay_p50: percentile_d(&delays, 50),
            queue_delay_p99: percentile_d(&delays, 99),
        })
    }

    /// Bumps the durable-record counter for the flush that just
    /// persisted (the session's WAL sink appended exactly one record)
    /// and cuts a checkpoint image when the cadence comes due. A no-op
    /// for non-durable runs.
    fn checkpoint_if_due(&mut self) -> Result<(), GraphError> {
        let Some(d) = self.durability.as_mut() else {
            return Ok(());
        };
        d.records += 1;
        if !d.records.is_multiple_of(d.every as u64) {
            return Ok(());
        }
        Checkpoint::capture(&**self.session.engine(), d.records)
            .save(d.io.as_ref())
            .map_err(|_| GraphError::PersistFailed)
    }
}

/// One reader thread's loop: sample until the writer is done, and at
/// least once. A sample is one snapshot acquisition plus `probes`
/// membership probes at xorshift-generated ids (any id is a valid probe
/// — membership is total).
fn sample_loop(
    reader: &MisReader,
    done: &AtomicBool,
    probes: usize,
    probe_space: u64,
    salt: u64,
) -> ReaderTally {
    let mut tally = ReaderTally {
        reads: 0,
        samples: 0,
        staleness_sum: 0,
        staleness_max: 0,
        regressions: 0,
    };
    let mut x =
        0x9e37_79b9_7f4a_7c15_u64.wrapping_add(salt.wrapping_mul(0xff51_afd7_ed55_8ccd)) | 1;
    let mut last_epoch = 0u64;
    let mut finished = false;
    while !finished {
        finished = done.load(Ordering::Acquire);
        let snap = reader.snapshot();
        let behind = reader.epoch().saturating_sub(snap.epoch());
        if snap.epoch() < last_epoch {
            tally.regressions += 1;
        }
        last_epoch = snap.epoch();
        let mut in_mis = 0usize;
        for _ in 0..probes {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            if snap.contains(NodeId(x % probe_space)) {
                in_mis += 1;
            }
        }
        // A consistency smoke (probe ids may repeat, so only the empty
        // case is duplicate-proof): an empty snapshot has no members.
        assert!(snap.mis_len() > 0 || in_mis == 0, "torn snapshot");
        tally.reads += probes as u64 + 1;
        tally.samples += 1;
        tally.staleness_sum += behind;
        tally.staleness_max = tally.staleness_max.max(behind);
    }
    tally
}

/// Nearest-rank percentile of an ascending-sorted slice; 0 when empty.
fn percentile(sorted: &[u64], p: usize) -> u64 {
    if sorted.is_empty() {
        return 0;
    }
    sorted[(sorted.len() - 1) * p / 100]
}

/// Nearest-rank percentile over durations; zero when empty.
fn percentile_d(sorted: &[Duration], p: usize) -> Duration {
    if sorted.is_empty() {
        return Duration::ZERO;
    }
    sorted[(sorted.len() - 1) * p / 100]
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RunConfig;
    use dmis_graph::{generators, ShardLayout};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn serving_run_meters_reads_and_stays_consistent() {
        let mut rng = StdRng::seed_from_u64(11);
        let (g, _ids) = generators::erdos_renyi(64, 0.1, &mut rng);
        let pool = dmis_graph::stream::random_pair_pool(&g, 48, &mut rng);
        let stream = dmis_graph::stream::flapping_stream(&g, &pool, 200, false, &mut rng);
        let mut run = RunConfig::new(g)
            .layout(ShardLayout::striped(2))
            .watermark(4)
            .seed(3)
            .readers(2)
            .probes(16)
            .serve();
        let report = run.run(&stream).unwrap();
        assert_eq!(report.flushes, 50);
        assert_eq!(report.final_epoch, 50);
        assert_eq!(report.epoch_regressions, 0);
        assert!(report.reads_total >= 2 * 17, "both readers sampled");
        assert!(report.reads_per_sec > 0.0);
        assert!(report.update_p50_ns <= report.update_p99_ns);
        assert!(report.queue_delay_p50 <= report.queue_delay_p99);
    }

    #[test]
    fn final_snapshot_matches_quiesced_engine() {
        let (g, ids) = generators::cycle(32);
        let stream: Vec<_> = ids
            .windows(2)
            .step_by(2)
            .map(|w| TopologyChange::DeleteEdge(w[0], w[1]))
            .collect();
        let mut run = RunConfig::new(g).watermark(3).seed(9).probes(4).serve();
        let report = run.run(&stream).unwrap();
        assert_eq!(report.applied, stream.len());
        let snap = run.reader().snapshot();
        assert_eq!(snap.epoch(), report.final_epoch);
        assert_eq!(snap.mis_len(), run.engine().mis_len());
        for &v in &ids {
            assert_eq!(Some(snap.contains(v)), run.engine().is_in_mis(v));
        }
    }

    #[test]
    fn a_durable_run_recovers_to_the_state_readers_saw() {
        use dmis_core::durability::{recover, MemIo};

        let mut rng = StdRng::seed_from_u64(21);
        let (g, _ids) = generators::erdos_renyi(48, 0.12, &mut rng);
        let pool = dmis_graph::stream::random_pair_pool(&g, 32, &mut rng);
        let stream = dmis_graph::stream::flapping_stream(&g, &pool, 120, false, &mut rng);
        let store = MemIo::new();
        let mut run = RunConfig::new(g)
            .layout(ShardLayout::striped(2))
            .watermark(4)
            .seed(6)
            .probes(4)
            .serve()
            .with_durability(Arc::new(store.clone()), 8)
            .unwrap();
        let report = run.run(&stream).unwrap();
        assert_eq!(report.flushes, 30);

        let recovered = recover(Arc::new(store)).unwrap();
        assert_eq!(recovered.checkpoint_seq, 24, "cadence-8 checkpoint");
        assert_eq!(recovered.replayed, 6, "only the suffix replays");
        assert_eq!(recovered.engine.mis(), run.engine().mis());
        assert_eq!(
            recovered.engine.durability_meta().epoch,
            Some(report.final_epoch),
            "recovery lands on the epoch the readers were being served"
        );
    }

    #[test]
    fn empty_stream_reports_the_attach_epoch() {
        let (g, _) = generators::path(8);
        let mut run = RunConfig::new(g)
            .watermark(2)
            .seed(1)
            .readers(2)
            .probes(4)
            .serve();
        let report = run.run(&[]).unwrap();
        assert_eq!(report.flushes, 0);
        assert_eq!(report.final_epoch, 0);
        assert_eq!(report.epoch_regressions, 0);
        assert!(report.reads_total > 0, "readers sample at least once");
    }
}
