//! Shared deployment configuration for the metered harnesses.
//!
//! [`RunConfig`] is the one description both deployment-shaped harnesses
//! boot from: graph, shard layout, worker threads, flush policy (or
//! plain depth watermark), session clock, rng seed, and — for the
//! serving side — reader-thread count and probes per sample. Finish
//! with [`RunConfig::ingest`] for the queue-in-front-of-engine harness
//! ([`IngestRun`]) or [`RunConfig::serve`] for the concurrent-read
//! harness ([`ServeRun`]); both sweep the *same* axes, so an experiment
//! varying one knob holds every other fixed by construction.

use std::sync::Arc;

use dmis_core::{Clock, Engine, FlushPolicy, IngestSession, MonotonicClock};
use dmis_graph::{DynGraph, ShardLayout};

use crate::ingest::IngestRun;
use crate::serve::ServeRun;

/// Builder for the ingestion and serving harnesses: one axis set, two
/// deployments.
///
/// # Example
///
/// ```
/// use dmis_core::FlushPolicy;
/// use dmis_graph::{generators, ShardLayout, TopologyChange};
/// use dmis_sim::RunConfig;
///
/// let (g, ids) = generators::cycle(10);
/// let mut run = RunConfig::new(g)
///     .layout(ShardLayout::striped(4))
///     .policy(FlushPolicy::Depth(2))
///     .seed(3)
///     .ingest();
/// assert!(run.push(&TopologyChange::DeleteEdge(ids[0], ids[1]))?.is_none());
/// assert!(run.push(&TopologyChange::DeleteEdge(ids[5], ids[6]))?.is_some());
/// # Ok::<(), dmis_graph::GraphError>(())
/// ```
#[derive(Debug)]
pub struct RunConfig {
    graph: DynGraph,
    layout: ShardLayout,
    threads: usize,
    policy: FlushPolicy,
    clock: Option<Arc<dyn Clock>>,
    seed: u64,
    readers: usize,
    probes: usize,
}

impl RunConfig {
    /// Starts a configuration over `graph` with the neutral axes: a
    /// single shard, one worker thread, per-change flushing
    /// ([`FlushPolicy::Depth`]`(1)`), the monotonic wall clock, seed 0,
    /// one reader making 8 probes per sample.
    #[must_use]
    pub fn new(graph: DynGraph) -> Self {
        RunConfig {
            graph,
            layout: ShardLayout::single(),
            threads: 1,
            policy: FlushPolicy::Depth(1),
            clock: None,
            seed: 0,
            readers: 1,
            probes: 8,
        }
    }

    /// Shard layout of the engine (settled in barrier-synchronized
    /// epochs; see [`dmis_core::ShardedMisEngine`]).
    #[must_use]
    pub fn layout(mut self, layout: ShardLayout) -> Self {
        self.layout = layout;
        self
    }

    /// Worker threads for the settle epochs (1 keeps the sequential
    /// coordinator).
    #[must_use]
    pub fn threads(mut self, threads: usize) -> Self {
        self.threads = threads;
        self
    }

    /// When the ingestion queue auto-flushes (see
    /// [`dmis_core::FlushPolicy`]).
    #[must_use]
    pub fn policy(mut self, policy: FlushPolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Depth-watermark convenience: flush every `watermark` pushes —
    /// shorthand for `.policy(FlushPolicy::Depth(watermark))`, the axis
    /// experiment E12 sweeps.
    #[must_use]
    pub fn watermark(mut self, watermark: usize) -> Self {
        self.policy = FlushPolicy::Depth(watermark);
        self
    }

    /// Injects the session clock every arrival stamp, deadline check,
    /// and settle-cost observation reads — a [`dmis_core::ManualClock`]
    /// makes deadline and adaptive policies deterministic.
    #[must_use]
    pub fn clock(mut self, clock: Arc<dyn Clock>) -> Self {
        self.clock = Some(clock);
        self
    }

    /// Seed of the engine's random priority order π.
    #[must_use]
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Concurrent reader threads of the serving harness.
    #[must_use]
    pub fn readers(mut self, readers: usize) -> Self {
        self.readers = readers;
        self
    }

    /// Membership probes per reader sample in the serving harness.
    #[must_use]
    pub fn probes(mut self, probes: usize) -> Self {
        self.probes = probes;
        self
    }

    /// Boots the ingestion harness: the configured engine behind a
    /// policy-flushed coalescing queue.
    #[must_use]
    pub fn ingest(self) -> IngestRun {
        let engine = Engine::builder()
            .graph(self.graph)
            .seed(self.seed)
            .sharding(self.layout)
            .threads(self.threads)
            .build();
        let clock = self
            .clock
            .unwrap_or_else(|| Arc::new(MonotonicClock::new()));
        IngestRun::from_session(IngestSession::with_policy_and_clock(
            engine,
            self.policy,
            clock,
        ))
    }

    /// Boots the serving harness: the configured engine with its
    /// snapshot channel attached, a policy-flushed writer, and the
    /// configured reader axes.
    #[must_use]
    pub fn serve(self) -> ServeRun {
        let (engine, reader) = Engine::builder()
            .graph(self.graph)
            .seed(self.seed)
            .sharding(self.layout)
            .threads(self.threads)
            .build_with_reader();
        let clock = self
            .clock
            .unwrap_or_else(|| Arc::new(MonotonicClock::new()));
        let session = IngestSession::with_policy_and_clock(engine, self.policy, clock);
        ServeRun::from_parts(session, reader, self.readers, self.probes)
    }
}
