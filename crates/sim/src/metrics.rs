use std::collections::BTreeSet;
use std::fmt;
use std::ops::AddAssign;

use dmis_graph::NodeId;

/// The paper's three complexity measures for one recovery, plus exact bit
/// accounting.
///
/// - `rounds`: synchronous rounds (or causal depth, asynchronously) from the
///   topology change until the system is stable again;
/// - `broadcasts`: number of broadcast messages ("the total number of times,
///   over all nodes, that any node sends a O(log n)-bit broadcast message");
/// - `bits`: total message payload in bits (the paper's §4 refinement after
///   Métivier et al. shows O(1) bits per broadcast suffice on average).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Metrics {
    /// Rounds until stabilization.
    pub rounds: usize,
    /// Total broadcast messages.
    pub broadcasts: usize,
    /// Total payload bits across all broadcasts.
    pub bits: usize,
}

impl Metrics {
    /// The zero metric.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }
}

impl AddAssign for Metrics {
    fn add_assign(&mut self, rhs: Metrics) {
        self.rounds += rhs.rounds;
        self.broadcasts += rhs.broadcasts;
        self.bits += rhs.bits;
    }
}

impl fmt::Display for Metrics {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} rounds, {} broadcasts, {} bits",
            self.rounds, self.broadcasts, self.bits
        )
    }
}

/// Full outcome of one topology change handled by a network.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ChangeOutcome {
    /// Communication metrics for the recovery.
    pub metrics: Metrics,
    /// The nodes (surviving the change) whose output flipped — the paper's
    /// adjustment set.
    pub adjusted: BTreeSet<NodeId>,
}

impl ChangeOutcome {
    /// The adjustment complexity of this change.
    #[must_use]
    pub fn adjustments(&self) -> usize {
        self.adjusted.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accumulate() {
        let mut a = Metrics {
            rounds: 1,
            broadcasts: 2,
            bits: 3,
        };
        a += Metrics {
            rounds: 10,
            broadcasts: 20,
            bits: 30,
        };
        assert_eq!(
            a,
            Metrics {
                rounds: 11,
                broadcasts: 22,
                bits: 33
            }
        );
        assert_eq!(a.to_string(), "11 rounds, 22 broadcasts, 33 bits");
    }

    #[test]
    fn outcome_counts() {
        let outcome = ChangeOutcome {
            metrics: Metrics::new(),
            adjusted: [NodeId(1), NodeId(4)].into_iter().collect(),
        };
        assert_eq!(outcome.adjustments(), 2);
    }
}
