use dmis_core::MisState;
use dmis_graph::NodeId;

/// What a node learns about a neighbor "for free" when it is unmuted.
///
/// An unmuted node "was previously invisible to its neighbors but heard
/// their communication" (Section 2), so it rejoins already knowing each
/// neighbor's random ID ℓ and current output.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NeighborInfo {
    /// The neighbor's identifier.
    pub id: NodeId,
    /// The neighbor's random key (the paper's ℓ value).
    pub ell: u64,
    /// The neighbor's current output state.
    pub state: MisState,
}

/// A topology-change notification delivered locally to one node.
///
/// Events carry only the knowledge the paper's model grants for free;
/// anything else (ℓ values, states of new neighbors) must be learned through
/// broadcast messages, which is precisely what the §4.1 insertion handshakes
/// pay their `O(d(v*))` broadcasts for.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum LocalEvent {
    /// An incident edge appeared; the node learns the peer's identifier
    /// only.
    EdgeAdded {
        /// The new neighbor.
        peer: NodeId,
    },
    /// An incident edge disappeared. Graceful or abrupt makes no difference
    /// to the MIS protocol for edges (Lemma 9 treats both identically) but
    /// is reported faithfully.
    EdgeRemoved {
        /// The former neighbor.
        peer: NodeId,
        /// Whether the edge could still relay messages (graceful).
        graceful: bool,
    },
    /// A new (or unmuted) node appeared as a neighbor; only its identifier
    /// is known — its ℓ arrives by broadcast.
    NeighborJoined {
        /// The new neighbor.
        peer: NodeId,
    },
    /// A neighbor disappeared abruptly: no further communication with it is
    /// possible, and the node must react using local knowledge only
    /// (Section 4.2).
    NeighborDepartedAbrupt {
        /// The vanished neighbor.
        peer: NodeId,
    },
    /// A gracefully departing neighbor has completed its retirement (the
    /// system is stable again); drop it from local knowledge.
    NeighborRetired {
        /// The retired neighbor.
        peer: NodeId,
    },
    /// This node just joined the network. It knows only the identifiers of
    /// its initial neighbors.
    SelfJoined {
        /// Identifiers of the initial neighbors.
        neighbors: Vec<NodeId>,
    },
    /// This node was unmuted: it already knows everything about its
    /// neighborhood from listening.
    SelfUnmuted {
        /// Full knowledge of each neighbor.
        neighbors: Vec<NeighborInfo>,
    },
    /// This node is being deleted gracefully: it must drive its own exit
    /// (reach output `M̄`) and may keep communicating until the system is
    /// stable.
    SelfRetiring,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn events_are_comparable() {
        let a = LocalEvent::EdgeAdded { peer: NodeId(1) };
        let b = LocalEvent::EdgeAdded { peer: NodeId(1) };
        assert_eq!(a, b);
        assert_ne!(
            a,
            LocalEvent::EdgeRemoved {
                peer: NodeId(1),
                graceful: true
            }
        );
    }

    #[test]
    fn neighbor_info_carries_state() {
        let info = NeighborInfo {
            id: NodeId(2),
            ell: 77,
            state: MisState::In,
        };
        assert!(info.state.is_in());
        assert_eq!(info.ell, 77);
    }
}
