//! # dmis-sim
//!
//! A discrete message-passing simulator realizing the distributed model of
//! *Optimal Dynamic Distributed MIS* (Section 2 of the paper):
//!
//! - an undirected communication graph whose nodes exchange **broadcast**
//!   messages (a message sent by a node is heard by all of its neighbors; a
//!   node cannot send different messages to different neighbors in the same
//!   round);
//! - **synchronous** rounds ([`SyncNetwork`]) and an **asynchronous** mode
//!   ([`AsyncNetwork`]) where message delays are arbitrary and the round
//!   complexity is the longest causal chain of messages;
//! - **topology changes** between stable periods: edge insertion,
//!   graceful/abrupt edge deletion, node insertion, node unmuting, and
//!   graceful/abrupt node deletion ([`dmis_graph::DistributedChange`]);
//! - the three complexity measures of the paper: **adjustments** (output
//!   changes), **rounds** (to re-stabilization), and **broadcasts** (number
//!   of `O(log n)`-bit broadcast messages), plus exact **bit** accounting;
//! - a **sharded-deployment harness** ([`ShardedRun`]) metering the
//!   K-shard engine of `dmis-core` — optionally with its settle epochs on
//!   worker threads — in the same vocabulary: barrier epochs as rounds,
//!   cross-shard handoffs as broadcasts;
//! - an **ingestion harness** ([`IngestRun`]) putting the coalescing
//!   change queue of `dmis-core`'s unified API in front of any
//!   [`dmis_core::DynamicMis`] engine, metering the queue-depth
//!   (latency) vs settle-work (broadcasts/rounds) trade-off end to end;
//! - a **serving harness** ([`ServeRun`]) replaying an ingest stream on
//!   a writer thread while R concurrent [`dmis_core::MisReader`]
//!   threads sample the epoch-versioned snapshot channel — metering
//!   read throughput, snapshot staleness, flush (update) latency, and
//!   the queue-delay SLO percentiles — optionally made durable
//!   ([`ServeRun::with_durability`]) with log-then-publish WAL appends
//!   and periodic checkpoints from `dmis-core`'s durability layer;
//! - a **crash-restart drill** ([`crash_restart_drill`]) killing a
//!   durable writer at a seeded byte, recovering, resuming the stream,
//!   and asserting the result is bit-identical to an uncrashed twin
//!   with no reader-visible epoch regression;
//! - a shared **deployment builder** ([`RunConfig`]) both harnesses
//!   boot from, so a sweep varies one axis (flush policy, shard count,
//!   readers) with every other held fixed.
//!
//! This crate is the *substitution* for the paper's (purely abstract)
//! distributed environment — see the repository-level `DESIGN.md`
//! ("Simulator as the distributed environment"). Protocols plug in via the
//! [`Protocol`]/[`Automaton`] traits (synchronous) and [`AsyncAutomaton`]
//! (asynchronous); the paper's algorithms themselves live in
//! `dmis-protocol`.

#![forbid(unsafe_code)]
#![deny(deprecated)]
#![warn(missing_docs)]

mod async_net;
mod config;
mod drill;
mod event;
mod ingest;
mod metrics;
mod protocol;
mod serve;
mod sharded;
mod sync;

pub use async_net::{
    AsyncAutomaton, AsyncNetwork, AsyncOutcome, DelaySchedule, RandomDelays, UnitDelays,
};
pub use config::RunConfig;
pub use drill::{crash_restart_drill, DrillReport};
pub use event::{LocalEvent, NeighborInfo};
pub use ingest::IngestRun;
pub use metrics::{ChangeOutcome, Metrics};
pub use protocol::{Automaton, MessageBits, Protocol};
pub use serve::{ServeReport, ServeRun};
pub use sharded::ShardedRun;
pub use sync::{SyncNetwork, TraceEvent};
