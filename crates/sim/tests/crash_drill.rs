//! CI entry point for the crash-restart drill: sweep seeded crash
//! points (the drill itself panics on any recovery-invariant failure).
//!
//! `DMIS_CRASH_SEED=<n>` pins one seed (the CI durability job loops it
//! over 1..=5 so each crash point is a separate, attributable run);
//! unset, the test sweeps the same range in-process.

use dmis_sim::crash_restart_drill;

#[test]
fn crash_restart_drill_recovers_and_resumes() {
    let seeds: Vec<u64> = match std::env::var("DMIS_CRASH_SEED") {
        Ok(s) => vec![s.parse().expect("DMIS_CRASH_SEED must be an integer")],
        Err(_) => (1..=5).collect(),
    };
    for seed in seeds {
        let report = crash_restart_drill(seed);
        assert_eq!(
            report.crashed_epoch,
            report.checkpoint_seq + report.replayed as u64,
            "seed={seed}: recovery re-derives exactly the published prefix"
        );
        assert_eq!(
            report.crashed_epoch as usize + report.resumed_flushes,
            report.stream_len,
            "seed={seed}: every change lands exactly once across the crash"
        );
        assert!(
            report.crash_budget > 0,
            "seed={seed}: the drill actually injected a fault"
        );
    }
}
