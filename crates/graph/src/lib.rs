//! # dmis-graph
//!
//! Dynamic undirected graph substrate for the *Optimal Dynamic Distributed
//! MIS* reproduction (Censor-Hillel, Haramaty, Karnin, PODC 2016).
//!
//! The paper's dynamic distributed model is a sequence of single topology
//! changes (edge/node × insertion/deletion) applied to an undirected
//! communication graph, with enough quiet time between changes for the
//! system to stabilize. This crate provides:
//!
//! - [`DynGraph`]: an undirected graph supporting O(1) expected-time edge and
//!   node insertion/deletion, the exact operations the paper's adversary may
//!   perform;
//! - [`NodeMap`] / [`NodeSet`]: the dense node-indexed storage layer —
//!   flat slot containers keyed directly by [`NodeId`] that back every
//!   per-node table in the workspace (see `DESIGN.md`);
//! - [`ShardLayout`]: range partitioning of the dense identifier space,
//!   the storage view behind the sharded engine in `dmis-core` — maps
//!   every node to an owning shard and a shard-local dense slot;
//! - [`TopologyChange`]: the four template-level change types of Section 3 of
//!   the paper, plus [`DistributedChange`] refining them into the seven
//!   distributed variants of Section 2 (graceful/abrupt deletions, unmuting);
//! - [`generators`]: graph families used throughout the paper's examples and
//!   our experiments (stars, complete bipartite graphs, disjoint 3-paths,
//!   Erdős–Rényi, Barabási–Albert, grids, ...);
//! - [`LineGraphMirror`] and [`CliqueBlowup`]: the two standard reductions of
//!   Section 5 (maximal matching via the line graph, (Δ+1)-coloring via the
//!   clique blow-up);
//! - [`stream`]: random update-stream generators driving long-lived dynamic
//!   executions.
//!
//! # Example
//!
//! ```
//! use dmis_graph::{DynGraph, NodeId};
//!
//! let mut g = DynGraph::new();
//! let a = g.add_node();
//! let b = g.add_node();
//! g.insert_edge(a, b)?;
//! assert!(g.has_edge(a, b));
//! assert_eq!(g.degree(a), Some(1));
//! g.remove_node(b)?;
//! assert_eq!(g.degree(a), Some(0));
//! # Ok::<(), dmis_graph::GraphError>(())
//! ```

#![forbid(unsafe_code)]
#![deny(deprecated)]
#![warn(missing_docs)]

mod blowup;
mod change;
mod error;
mod graph;
mod id;
mod linegraph;
mod shard;
mod storage;
mod traversal;

pub mod generators;
pub mod stream;

pub use blowup::CliqueBlowup;
pub use change::{ChangeKind, DistributedChange, TopologyChange};
pub use error::GraphError;
pub use graph::{DynGraph, EdgeKey};
pub use id::NodeId;
pub use linegraph::LineGraphMirror;
pub use shard::ShardLayout;
pub use storage::{NodeMap, NodeSet, RankFront};
pub use traversal::{bfs_order, connected_components, is_connected, shortest_path_len};
