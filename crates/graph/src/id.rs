use std::fmt;

/// Stable identifier of a node in a [`crate::DynGraph`].
///
/// Identifiers are assigned monotonically by the graph and are never reused,
/// so a `NodeId` uniquely names a node across the whole lifetime of a dynamic
/// execution — exactly what the paper's model needs, where a deleted node
/// that later "re-joins" is a *new* node with fresh randomness.
///
/// # Example
///
/// ```
/// use dmis_graph::DynGraph;
///
/// let mut g = DynGraph::new();
/// let a = g.add_node();
/// let b = g.add_node();
/// assert_ne!(a, b);
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct NodeId(pub u64);

impl NodeId {
    /// Returns the raw index of this identifier.
    #[must_use]
    pub const fn index(self) -> u64 {
        self.0
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl From<NodeId> for u64 {
    fn from(id: NodeId) -> Self {
        id.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn debug_and_display_are_compact() {
        assert_eq!(format!("{:?}", NodeId(7)), "n7");
        assert_eq!(format!("{}", NodeId(7)), "n7");
    }

    #[test]
    fn ordering_follows_index() {
        assert!(NodeId(1) < NodeId(2));
        assert_eq!(u64::from(NodeId(9)), 9);
        assert_eq!(NodeId(9).index(), 9);
    }
}
