use crate::{DynGraph, GraphError, NodeId, NodeMap};

/// The clique blow-up reduction `G ↦ G'` used by the paper (after Luby) to
/// obtain (Δ+1)-coloring from MIS.
///
/// Every node `v` of `G` becomes a clique of `Δ+1` copies
/// `(v, 0), ..., (v, Δ)` in `G'`, and every edge `{u, v}` of `G` becomes the
/// perfect matching `{(u, i), (v, i)}` between the corresponding cliques. An
/// MIS of `G'` contains exactly one copy `(v, c_v)` per node `v` (a clique
/// admits one MIS node, and maximality forces one), and `c_v` is then a
/// proper (Δ+1)-coloring of `G`: if `{u, v} ∈ E` and `c_u = c_v = i`, the
/// matching edge `{(u, i), (v, i)}` would join two MIS nodes.
///
/// The blow-up fixes a color budget `palette = Δ_max + 1` up front, which is
/// the standard formulation; dynamic executions must respect that degree cap.
///
/// # Example
///
/// ```
/// use dmis_graph::{CliqueBlowup, DynGraph};
///
/// let (mut g, ids) = DynGraph::with_nodes(2);
/// g.insert_edge(ids[0], ids[1])?;
/// let blowup = CliqueBlowup::new(&g, 2);
/// assert_eq!(blowup.blown_graph().node_count(), 4); // 2 nodes × 2 copies
/// # Ok::<(), dmis_graph::GraphError>(())
/// ```
#[derive(Debug, Clone)]
pub struct CliqueBlowup {
    blown: DynGraph,
    palette: usize,
    copies: NodeMap<Vec<NodeId>>,
    origin: NodeMap<(NodeId, usize)>,
}

impl CliqueBlowup {
    /// Builds the blow-up of `g` with the given `palette` size (number of
    /// copies per node, i.e. the color budget).
    ///
    /// # Panics
    ///
    /// Panics if `palette == 0` or if `palette <= Δ(g)` (the reduction then
    /// cannot produce a proper coloring).
    #[must_use]
    pub fn new(g: &DynGraph, palette: usize) -> Self {
        assert!(palette > 0, "palette must be positive");
        assert!(
            palette > g.max_degree(),
            "palette {palette} must exceed max degree {}",
            g.max_degree()
        );
        let mut blowup = CliqueBlowup {
            blown: DynGraph::new(),
            palette,
            copies: NodeMap::new(),
            origin: NodeMap::new(),
        };
        for v in g.nodes() {
            blowup.add_clique(v);
        }
        for key in g.edges() {
            let (u, v) = key.endpoints();
            blowup.add_matching(u, v).expect("copies exist");
        }
        blowup
    }

    /// Returns the blown-up graph `G'`.
    #[must_use]
    pub fn blown_graph(&self) -> &DynGraph {
        &self.blown
    }

    /// Returns the palette size (copies per node).
    #[must_use]
    pub fn palette(&self) -> usize {
        self.palette
    }

    /// Returns the copies `(v, 0..palette)` of base node `v`, if present.
    #[must_use]
    pub fn copies_of(&self, v: NodeId) -> Option<&[NodeId]> {
        self.copies.get(v).map(Vec::as_slice)
    }

    /// Returns `(base node, color index)` for a blown-up node.
    #[must_use]
    pub fn origin_of(&self, blown: NodeId) -> Option<(NodeId, usize)> {
        self.origin.get(blown).copied()
    }

    fn add_clique(&mut self, v: NodeId) {
        let mut ids = Vec::with_capacity(self.palette);
        for i in 0..self.palette {
            let id = self
                .blown
                .add_node_with_edges(ids.iter().copied())
                .expect("previous copies exist");
            self.origin.insert(id, (v, i));
            ids.push(id);
        }
        self.copies.insert(v, ids);
    }

    fn add_matching(&mut self, u: NodeId, v: NodeId) -> Result<(), GraphError> {
        let cu = self
            .copies
            .get(u)
            .ok_or(GraphError::MissingNode(u))?
            .clone();
        let cv = self
            .copies
            .get(v)
            .ok_or(GraphError::MissingNode(v))?
            .clone();
        for (a, b) in cu.into_iter().zip(cv) {
            self.blown.insert_edge(a, b)?;
        }
        Ok(())
    }

    /// Mirrors a base-graph node insertion: adds a fresh clique for `v` and
    /// matchings to every neighbor clique.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::MissingNode`] if a neighbor has no clique.
    pub fn insert_base_node(&mut self, v: NodeId, neighbors: &[NodeId]) -> Result<(), GraphError> {
        for u in neighbors {
            if !self.copies.contains(*u) {
                return Err(GraphError::MissingNode(*u));
            }
        }
        self.add_clique(v);
        for &u in neighbors {
            self.add_matching(v, u)?;
        }
        Ok(())
    }

    /// Mirrors a base-graph edge insertion.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::MissingNode`] if either clique is missing, or
    /// [`GraphError::DuplicateEdge`] if the matching already exists.
    pub fn insert_base_edge(&mut self, u: NodeId, v: NodeId) -> Result<(), GraphError> {
        self.add_matching(u, v)
    }

    /// Mirrors a base-graph edge deletion.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::MissingNode`] / [`GraphError::MissingEdge`] if
    /// the matching is absent.
    pub fn remove_base_edge(&mut self, u: NodeId, v: NodeId) -> Result<(), GraphError> {
        let cu = self
            .copies
            .get(u)
            .ok_or(GraphError::MissingNode(u))?
            .clone();
        let cv = self
            .copies
            .get(v)
            .ok_or(GraphError::MissingNode(v))?
            .clone();
        for (a, b) in cu.into_iter().zip(cv) {
            self.blown.remove_edge(a, b)?;
        }
        Ok(())
    }

    /// Mirrors a base-graph node deletion: removes the whole clique of `v`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::MissingNode`] if `v` has no clique.
    pub fn remove_base_node(&mut self, v: NodeId) -> Result<(), GraphError> {
        let ids = self.copies.remove(v).ok_or(GraphError::MissingNode(v))?;
        for id in ids {
            self.origin.remove(id);
            self.blown.remove_node(id)?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators;

    #[test]
    fn blowup_counts() {
        let (g, _) = generators::path(3); // Δ = 2, palette 3
        let b = CliqueBlowup::new(&g, 3);
        assert_eq!(b.blown_graph().node_count(), 9);
        // 3 cliques of 3 edges + 2 matchings of 3 edges.
        assert_eq!(b.blown_graph().edge_count(), 9 + 6);
        b.blown_graph().assert_consistent();
    }

    #[test]
    #[should_panic(expected = "palette")]
    fn palette_must_exceed_degree() {
        let (g, _) = generators::star(4); // Δ = 3
        let _ = CliqueBlowup::new(&g, 3);
    }

    #[test]
    fn origins_and_copies_round_trip() {
        let (g, ids) = generators::path(2);
        let b = CliqueBlowup::new(&g, 2);
        let copies = b.copies_of(ids[0]).unwrap().to_vec();
        assert_eq!(copies.len(), 2);
        assert_eq!(b.origin_of(copies[1]), Some((ids[0], 1)));
        assert_eq!(b.copies_of(NodeId(88)), None);
        assert_eq!(b.origin_of(NodeId(88)), None);
    }

    #[test]
    fn matching_edges_connect_equal_indices() {
        let (g, ids) = generators::path(2);
        let b = CliqueBlowup::new(&g, 3);
        let cu = b.copies_of(ids[0]).unwrap();
        let cv = b.copies_of(ids[1]).unwrap();
        for (i, &a) in cu.iter().enumerate() {
            for (j, &bnode) in cv.iter().enumerate() {
                assert_eq!(b.blown_graph().has_edge(a, bnode), i == j);
            }
        }
    }

    #[test]
    fn dynamic_mirroring() {
        let (mut g, ids) = DynGraph::with_nodes(3);
        // Degree cap 2 across the execution, palette 3.
        let mut b = CliqueBlowup::new(&g, 3);
        g.insert_edge(ids[0], ids[1]).unwrap();
        b.insert_base_edge(ids[0], ids[1]).unwrap();
        g.insert_edge(ids[1], ids[2]).unwrap();
        b.insert_base_edge(ids[1], ids[2]).unwrap();
        assert_eq!(b.blown_graph().edge_count(), 3 * 3 + 2 * 3);
        g.remove_edge(ids[0], ids[1]).unwrap();
        b.remove_base_edge(ids[0], ids[1]).unwrap();
        let v = g.add_node_with_edges([ids[0]]).unwrap();
        b.insert_base_node(v, &[ids[0]]).unwrap();
        g.remove_node(ids[2]).unwrap();
        b.remove_base_node(ids[2]).unwrap();
        // Rebuild from scratch and compare statistics.
        let fresh = CliqueBlowup::new(&g, 3);
        assert_eq!(
            fresh.blown_graph().node_count(),
            b.blown_graph().node_count()
        );
        assert_eq!(
            fresh.blown_graph().edge_count(),
            b.blown_graph().edge_count()
        );
        b.blown_graph().assert_consistent();
    }

    #[test]
    fn errors_on_missing_cliques() {
        let (g, ids) = generators::path(2);
        let mut b = CliqueBlowup::new(&g, 2);
        assert!(b.insert_base_edge(ids[0], NodeId(77)).is_err());
        assert!(b.remove_base_edge(ids[0], NodeId(77)).is_err());
        assert!(b.remove_base_node(NodeId(77)).is_err());
        assert!(b.insert_base_node(NodeId(78), &[NodeId(77)]).is_err());
    }
}
