use crate::{GraphError, NodeId, NodeMap, NodeSet};

/// Canonical (unordered) key of an undirected edge: the endpoints sorted.
///
/// Used wherever an edge must serve as a map key, most prominently by
/// [`crate::LineGraphMirror`], which names each line-graph node after the
/// underlying edge.
///
/// # Example
///
/// ```
/// use dmis_graph::{EdgeKey, NodeId};
///
/// let k1 = EdgeKey::new(NodeId(5), NodeId(2));
/// let k2 = EdgeKey::new(NodeId(2), NodeId(5));
/// assert_eq!(k1, k2);
/// assert_eq!(k1.endpoints(), (NodeId(2), NodeId(5)));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EdgeKey {
    lo: NodeId,
    hi: NodeId,
}

impl EdgeKey {
    /// Creates the canonical key for the edge `{u, v}`.
    ///
    /// # Panics
    ///
    /// Panics if `u == v`; self-loops are not representable.
    #[must_use]
    pub fn new(u: NodeId, v: NodeId) -> Self {
        assert_ne!(u, v, "self-loop cannot form an edge key");
        if u < v {
            EdgeKey { lo: u, hi: v }
        } else {
            EdgeKey { lo: v, hi: u }
        }
    }

    /// Returns the endpoints in sorted order `(lo, hi)`.
    #[must_use]
    pub const fn endpoints(self) -> (NodeId, NodeId) {
        (self.lo, self.hi)
    }

    /// Returns the endpoint different from `v`, or `None` if `v` is not an
    /// endpoint.
    #[must_use]
    pub fn other(self, v: NodeId) -> Option<NodeId> {
        if v == self.lo {
            Some(self.hi)
        } else if v == self.hi {
            Some(self.lo)
        } else {
            None
        }
    }

    /// Returns `true` if `v` is one of the endpoints.
    #[must_use]
    pub fn contains(self, v: NodeId) -> bool {
        v == self.lo || v == self.hi
    }
}

/// Degree at which a flat neighbor vector is split into chunks.
const CHUNK_PROMOTE: usize = 256;
/// Chunk size right after a promotion or split.
const CHUNK_TARGET: usize = 128;
/// Degree ceiling per chunk; a chunk reaching it splits in two.
const CHUNK_MAX: usize = 2 * CHUNK_TARGET;

/// One node's adjacency: a sorted flat vector for the common low-degree
/// case, promoted to a sequence of bounded sorted chunks once the degree
/// crosses [`CHUNK_PROMOTE`].
///
/// Power-law hubs are the motivation: with a single `Vec`, every edge
/// toggle at a degree-10^4 hub pays an O(deg) memmove and the binary
/// search spans hundreds of cache lines. Chunking caps both at
/// [`CHUNK_MAX`] entries (2 KiB): an insert memmoves within one chunk,
/// and neighbor filtering walks chunk-sized slices that stay
/// cache-resident. Chunks partition the sorted order (every id in chunk
/// `i` precedes every id in chunk `i+1`) and are never empty, so
/// ascending iteration — the determinism contract — is chunk
/// concatenation. A node's list never demotes while populated; the
/// chunked shape is a pure function of the operation history, keeping
/// replays bit-identical.
#[derive(Debug, Clone)]
enum AdjList {
    /// Sorted neighbor vector, degree < [`CHUNK_PROMOTE`].
    Flat(Vec<NodeId>),
    /// Sorted non-empty chunks of at most [`CHUNK_MAX`] ids each, plus
    /// the cached total degree.
    Chunked {
        chunks: Vec<Vec<NodeId>>,
        len: usize,
    },
}

impl AdjList {
    /// Degree — O(1) in both shapes.
    fn len(&self) -> usize {
        match self {
            AdjList::Flat(v) => v.len(),
            AdjList::Chunked { len, .. } => *len,
        }
    }

    /// Index of the chunk whose range covers `w` (for lookups), clamped
    /// to the last chunk for past-the-end inserts.
    fn chunk_of(chunks: &[Vec<NodeId>], w: NodeId) -> usize {
        chunks
            .partition_point(|c| *c.last().expect("chunks are never empty") < w)
            .min(chunks.len() - 1)
    }

    /// Returns `true` if `w` is a neighbor.
    fn contains(&self, w: NodeId) -> bool {
        match self {
            AdjList::Flat(v) => v.binary_search(&w).is_ok(),
            AdjList::Chunked { chunks, .. } => {
                chunks[Self::chunk_of(chunks, w)].binary_search(&w).is_ok()
            }
        }
    }

    /// Inserts `w` keeping sorted order; returns `false` if already
    /// present. Promotes / splits when size bounds are crossed.
    fn insert_sorted(&mut self, w: NodeId) -> bool {
        match self {
            AdjList::Flat(v) => {
                let Err(pos) = v.binary_search(&w) else {
                    return false;
                };
                v.insert(pos, w);
                if v.len() >= CHUNK_PROMOTE {
                    let len = v.len();
                    let chunks = v
                        .chunks(CHUNK_TARGET)
                        .map(|c| {
                            let mut chunk = Vec::with_capacity(CHUNK_MAX);
                            chunk.extend_from_slice(c);
                            chunk
                        })
                        .collect();
                    *self = AdjList::Chunked { chunks, len };
                }
                true
            }
            AdjList::Chunked { chunks, len } => {
                let i = Self::chunk_of(chunks, w);
                let Err(pos) = chunks[i].binary_search(&w) else {
                    return false;
                };
                chunks[i].insert(pos, w);
                *len += 1;
                if chunks[i].len() >= CHUNK_MAX {
                    let tail = chunks[i].split_off(CHUNK_TARGET);
                    chunks.insert(i + 1, tail);
                }
                true
            }
        }
    }

    /// Removes `w`; returns `false` if absent. An emptied chunk is
    /// dropped; an emptied list reverts to the flat shape.
    fn remove_sorted(&mut self, w: NodeId) -> bool {
        match self {
            AdjList::Flat(v) => {
                let Ok(pos) = v.binary_search(&w) else {
                    return false;
                };
                v.remove(pos);
                true
            }
            AdjList::Chunked { chunks, len } => {
                let i = Self::chunk_of(chunks, w);
                let Ok(pos) = chunks[i].binary_search(&w) else {
                    return false;
                };
                chunks[i].remove(pos);
                *len -= 1;
                if chunks[i].is_empty() {
                    let empty = chunks.remove(i);
                    if chunks.is_empty() {
                        // Reuse the emptied chunk's allocation as the
                        // flat vector.
                        *self = AdjList::Flat(empty);
                    }
                }
                true
            }
        }
    }

    /// The sorted neighbor sequence as contiguous slices: one slice for
    /// the flat shape, the chunk sequence otherwise. Concatenation is
    /// ascending; this is the hot settle loops' iteration surface.
    fn chunk_slices(&self) -> AdjChunks<'_> {
        match self {
            AdjList::Flat(v) => AdjChunks {
                flat: Some(v.as_slice()),
                chunks: [].iter(),
            },
            AdjList::Chunked { chunks, .. } => AdjChunks {
                flat: None,
                chunks: chunks.iter(),
            },
        }
    }

    /// Ascending iteration over all neighbor ids.
    fn iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.chunk_slices().flatten().copied()
    }

    /// Consumes the list into its backing allocations (for recycling).
    fn into_vecs(self) -> Vec<Vec<NodeId>> {
        match self {
            AdjList::Flat(v) => vec![v],
            AdjList::Chunked { chunks, .. } => chunks,
        }
    }
}

/// Two chunkings of the same neighbor set are equal: equality is the
/// logical sorted sequence, not the chunk layout.
impl PartialEq for AdjList {
    fn eq(&self, other: &Self) -> bool {
        self.len() == other.len() && self.iter().zip(other.iter()).all(|(a, b)| a == b)
    }
}

impl Eq for AdjList {}

/// Iterator over one node's adjacency as sorted contiguous slices; see
/// [`DynGraph::neighbor_chunks`].
struct AdjChunks<'a> {
    flat: Option<&'a [NodeId]>,
    chunks: std::slice::Iter<'a, Vec<NodeId>>,
}

impl<'a> Iterator for AdjChunks<'a> {
    type Item = &'a [NodeId];

    fn next(&mut self) -> Option<&'a [NodeId]> {
        if let Some(s) = self.flat.take() {
            return Some(s);
        }
        self.chunks.next().map(Vec::as_slice)
    }
}

/// A fully dynamic undirected simple graph.
///
/// This is the substrate on which every algorithm of the reproduction runs.
/// It supports the exact operation set of the paper's adversary — node
/// insertion (with or without initial edges), node deletion, edge insertion
/// and edge deletion — and nothing more exotic (no self-loops, no parallel
/// edges, no weights).
///
/// Adjacency is stored densely — a [`NodeMap`] of **sorted neighbor
/// vectors**, indexed directly by [`NodeId`] — so the hot operations
/// (`neighbors`, `degree`, `has_edge`) are direct slot accesses instead of
/// tree walks. Neighbor vectors are kept sorted, so all iteration orders
/// are deterministic (ascending identifier), exactly as with the ordered
/// sets this layout replaced; determinism matters because the paper's
/// guarantees are *distributional* over the algorithm's internal
/// randomness only, and tests must be able to replay executions
/// bit-for-bit from a seed.
///
/// Identifiers are never reused (the paper's model: a departed node that
/// rejoins is a *new* node), so a deleted node leaves a vacant slot. The
/// graph recycles the vacated neighbor-vector *allocations* through a free
/// list, and maintains a degree histogram so [`DynGraph::max_degree`] is
/// O(1) instead of a full scan.
///
/// # Example
///
/// ```
/// use dmis_graph::DynGraph;
///
/// let mut g = DynGraph::new();
/// let a = g.add_node();
/// let b = g.add_node();
/// let c = g.add_node();
/// g.insert_edge(a, b)?;
/// g.insert_edge(b, c)?;
/// assert_eq!(g.node_count(), 3);
/// assert_eq!(g.edge_count(), 2);
/// assert_eq!(g.neighbors(b).unwrap().count(), 2);
/// # Ok::<(), dmis_graph::GraphError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct DynGraph {
    adj: NodeMap<AdjList>,
    next_id: u64,
    edge_count: usize,
    /// `degree_hist[d]` = number of live nodes with degree `d`.
    degree_hist: Vec<usize>,
    /// Cached maximum degree; kept exact by [`DynGraph::shift_degree`].
    max_degree: usize,
    /// Recycled neighbor-vector allocations from deleted nodes.
    spare: Vec<Vec<NodeId>>,
}

impl PartialEq for DynGraph {
    fn eq(&self, other: &Self) -> bool {
        // The histogram and max degree are derived from `adj`, and the
        // spare pool is an allocation cache — none carry graph identity.
        self.next_id == other.next_id
            && self.edge_count == other.edge_count
            && self.adj == other.adj
    }
}

impl Eq for DynGraph {}

impl DynGraph {
    /// Creates an empty graph.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty graph and immediately adds `n` isolated nodes,
    /// returning their identifiers in insertion order.
    ///
    /// # Example
    ///
    /// ```
    /// use dmis_graph::DynGraph;
    ///
    /// let (g, ids) = DynGraph::with_nodes(4);
    /// assert_eq!(g.node_count(), 4);
    /// assert_eq!(ids.len(), 4);
    /// ```
    #[must_use]
    pub fn with_nodes(n: usize) -> (Self, Vec<NodeId>) {
        let mut g = Self::with_node_capacity(n);
        let ids = (0..n).map(|_| g.add_node()).collect();
        (g, ids)
    }

    /// Creates an empty graph whose adjacency arena is pre-sized for
    /// identifiers below `n`: no slot regrow (see [`Self::regrows`])
    /// occurs until node `n` is inserted.
    #[must_use]
    pub fn with_node_capacity(n: usize) -> Self {
        DynGraph {
            adj: NodeMap::with_capacity(n),
            ..Self::default()
        }
    }

    /// Ensures identifiers below `n` can be inserted without the
    /// adjacency arena reallocating (and hence without counting a
    /// regrow).
    pub fn reserve_nodes(&mut self, n: usize) {
        self.adj.reserve_slots(n);
    }

    /// Reconstructs a graph from its serialized parts: the identifier
    /// watermark ([`Self::peek_next_id`] of the original), the live node
    /// ids, and the edge list — the inverse of walking [`Self::nodes`]
    /// and [`Self::edges`]. This is the durability checkpoint's restore
    /// path: identifiers are never reused, so deleted nodes leave holes
    /// and `nodes` may be sparse below `next_id`.
    ///
    /// # Errors
    ///
    /// - [`GraphError::MissingNode`] if a node id is at or above the
    ///   watermark (it could never have been allocated), or if an edge
    ///   endpoint is not a listed node;
    /// - [`GraphError::DuplicateEdge`] if a node id repeats (reported as
    ///   a self-pair, matching [`Self::add_node_with_edges`]) or an edge
    ///   repeats;
    /// - [`GraphError::SelfLoop`] if an edge joins a node to itself.
    pub fn from_adjacency(
        next_id: NodeId,
        nodes: &[NodeId],
        edges: &[(NodeId, NodeId)],
    ) -> Result<Self, GraphError> {
        let mut g = Self::with_node_capacity(next_id.index() as usize);
        for &v in nodes {
            if v >= next_id {
                return Err(GraphError::MissingNode(v));
            }
            if g.adj.contains(v) {
                return Err(GraphError::DuplicateEdge(v, v));
            }
            g.adj.insert(v, AdjList::Flat(Vec::new()));
            g.enter_degree(0);
        }
        g.next_id = next_id.index();
        for &(u, v) in edges {
            g.insert_edge(u, v)?;
        }
        Ok(g)
    }

    /// Times an insert had to *reallocate* the adjacency slot arena to
    /// reach its id — the scale tier's pre-sizing verification counter.
    /// Growth of individual neighbor vectors is not counted: chunking
    /// bounds those at `CHUNK_MAX` entries per allocation.
    #[must_use]
    pub fn regrows(&self) -> u64 {
        self.adj.regrows()
    }

    /// Adds a new isolated node and returns its fresh identifier.
    ///
    /// Identifiers are never reused, even after deletions.
    pub fn add_node(&mut self) -> NodeId {
        let id = NodeId(self.next_id);
        self.next_id += 1;
        let nbrs = self.spare.pop().unwrap_or_default();
        self.adj.insert(id, AdjList::Flat(nbrs));
        self.enter_degree(0);
        id
    }

    /// Adds a new node along with edges to every node in `neighbors`.
    ///
    /// This is the paper's "node insertion, possibly with multiple edges".
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::MissingNode`] if any listed neighbor does not
    /// exist, or [`GraphError::DuplicateEdge`] if `neighbors` lists the same
    /// node twice. On error the graph is left unchanged.
    pub fn add_node_with_edges<I>(&mut self, neighbors: I) -> Result<NodeId, GraphError>
    where
        I: IntoIterator<Item = NodeId>,
    {
        let neighbors: Vec<NodeId> = neighbors.into_iter().collect();
        let mut seen = NodeSet::new();
        for &u in &neighbors {
            if !self.has_node(u) {
                return Err(GraphError::MissingNode(u));
            }
            if !seen.insert(u) {
                return Err(GraphError::DuplicateEdge(u, u));
            }
        }
        let id = self.add_node();
        for u in neighbors {
            self.insert_edge(id, u)
                .expect("edges from a fresh node are always insertable");
        }
        Ok(id)
    }

    /// Removes a node and all its incident edges, returning the set of
    /// neighbors it had at the moment of deletion.
    ///
    /// The returned neighbor set is exactly the information a distributed
    /// implementation needs to react to the deletion (Section 4.2 of the
    /// paper starts the recovery at those neighbors).
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::MissingNode`] if the node does not exist.
    pub fn remove_node(&mut self, v: NodeId) -> Result<Vec<NodeId>, GraphError> {
        let nbrs = self.adj.remove(v).ok_or(GraphError::MissingNode(v))?;
        let out: Vec<NodeId> = nbrs.iter().collect();
        for &u in &out {
            let list = self
                .adj
                .get_mut(u)
                .expect("adjacency is symmetric by construction");
            let removed = list.remove_sorted(v);
            debug_assert!(removed, "adjacency is symmetric by construction");
            let d = list.len();
            self.shift_degree(d + 1, d);
        }
        self.edge_count -= out.len();
        self.leave_degree(out.len());
        // Recycle the allocations: identifiers are never reused, but the
        // heap memory behind them is.
        for mut chunk in nbrs.into_vecs() {
            chunk.clear();
            self.spare.push(chunk);
        }
        Ok(out)
    }

    /// Inserts the undirected edge `{u, v}`.
    ///
    /// # Errors
    ///
    /// - [`GraphError::SelfLoop`] if `u == v`;
    /// - [`GraphError::MissingNode`] if either endpoint does not exist;
    /// - [`GraphError::DuplicateEdge`] if the edge is already present.
    pub fn insert_edge(&mut self, u: NodeId, v: NodeId) -> Result<(), GraphError> {
        if u == v {
            return Err(GraphError::SelfLoop(u));
        }
        if !self.has_node(u) {
            return Err(GraphError::MissingNode(u));
        }
        if !self.has_node(v) {
            return Err(GraphError::MissingNode(v));
        }
        let list_u = self.adj.get_mut(u).expect("checked above");
        if !list_u.insert_sorted(v) {
            return Err(GraphError::DuplicateEdge(u, v));
        }
        let du = list_u.len();
        let list_v = self.adj.get_mut(v).expect("checked above");
        let fresh = list_v.insert_sorted(u);
        debug_assert!(fresh, "symmetric edge cannot pre-exist");
        let dv = list_v.len();
        self.shift_degree(du - 1, du);
        self.shift_degree(dv - 1, dv);
        self.edge_count += 1;
        Ok(())
    }

    /// Removes the undirected edge `{u, v}`.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::MissingNode`] if either endpoint does not exist
    /// and [`GraphError::MissingEdge`] if the edge is not present.
    pub fn remove_edge(&mut self, u: NodeId, v: NodeId) -> Result<(), GraphError> {
        if !self.has_node(u) {
            return Err(GraphError::MissingNode(u));
        }
        if !self.has_node(v) {
            return Err(GraphError::MissingNode(v));
        }
        let list_u = self.adj.get_mut(u).expect("checked above");
        if !list_u.remove_sorted(v) {
            return Err(GraphError::MissingEdge(u, v));
        }
        let du = list_u.len();
        let list_v = self.adj.get_mut(v).expect("checked above");
        let removed = list_v.remove_sorted(u);
        debug_assert!(removed, "adjacency is symmetric by construction");
        let dv = list_v.len();
        self.shift_degree(du + 1, du);
        self.shift_degree(dv + 1, dv);
        self.edge_count -= 1;
        Ok(())
    }

    /// Returns the identifier the next inserted node will receive, without
    /// inserting it.
    ///
    /// Useful for describing a [`crate::TopologyChange::InsertNode`] before
    /// applying it.
    #[must_use]
    pub fn peek_next_id(&self) -> NodeId {
        NodeId(self.next_id)
    }

    /// Returns `true` if the node exists.
    #[must_use]
    pub fn has_node(&self, v: NodeId) -> bool {
        self.adj.contains(v)
    }

    /// Returns `true` if the edge `{u, v}` exists.
    #[must_use]
    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.adj.get(u).is_some_and(|list| list.contains(v))
    }

    /// Returns the degree of `v`, or `None` if the node does not exist.
    #[must_use]
    pub fn degree(&self, v: NodeId) -> Option<usize> {
        self.adj.get(v).map(AdjList::len)
    }

    /// Returns the maximal degree Δ over all nodes (0 for an empty graph).
    ///
    /// O(1): maintained incrementally through a degree histogram instead
    /// of the full scan the ordered-map layout required.
    #[must_use]
    pub fn max_degree(&self) -> usize {
        self.max_degree
    }

    /// Returns the number of nodes.
    #[must_use]
    pub fn node_count(&self) -> usize {
        self.adj.len()
    }

    /// Returns the number of edges.
    #[must_use]
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Returns `true` if the graph has no nodes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.adj.is_empty()
    }

    /// Iterates over all node identifiers in ascending order.
    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.adj.keys()
    }

    /// Iterates over the neighbors of `v` in ascending identifier order, or
    /// `None` if the node does not exist.
    pub fn neighbors(&self, v: NodeId) -> Option<impl Iterator<Item = NodeId> + '_> {
        self.adj.get(v).map(AdjList::iter)
    }

    /// Returns the neighbors of `v` as **ascending sorted contiguous
    /// slices** — one slice for the common low-degree case, a sequence of
    /// cache-resident chunks (≤ 2 KiB each) for promoted hubs. This is
    /// the settle loops' zero-copy iteration surface; concatenating the
    /// slices yields exactly [`Self::neighbors`]' order.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::MissingNode`] if the node does not exist.
    pub fn neighbor_chunks(
        &self,
        v: NodeId,
    ) -> Result<impl Iterator<Item = &[NodeId]> + '_, GraphError> {
        self.adj
            .get(v)
            .map(AdjList::chunk_slices)
            .ok_or(GraphError::MissingNode(v))
    }

    /// Returns the neighbors of `v` collected into a vector.
    ///
    /// # Errors
    ///
    /// Returns [`GraphError::MissingNode`] if the node does not exist.
    pub fn neighbors_vec(&self, v: NodeId) -> Result<Vec<NodeId>, GraphError> {
        self.adj
            .get(v)
            .map(|list| list.iter().collect())
            .ok_or(GraphError::MissingNode(v))
    }

    /// Iterates over all edges, each reported once as an [`EdgeKey`], in
    /// ascending order.
    pub fn edges(&self) -> impl Iterator<Item = EdgeKey> + '_ {
        self.adj.iter().flat_map(|(u, nbrs)| {
            nbrs.iter()
                .filter(move |&v| u < v)
                .map(move |v| EdgeKey::new(u, v))
        })
    }

    /// Verifies internal consistency (symmetric adjacency, accurate edge
    /// count, no self-loops). Intended for tests and debugging.
    ///
    /// # Panics
    ///
    /// Panics with a descriptive message if any invariant is violated.
    pub fn assert_consistent(&self) {
        let mut count = 0usize;
        let mut max_seen = 0usize;
        for (u, nbrs) in self.adj.iter() {
            if let AdjList::Chunked { chunks, len } = nbrs {
                assert!(
                    chunks.iter().all(|c| !c.is_empty() && c.len() < CHUNK_MAX),
                    "chunk size bounds violated at {u}"
                );
                assert_eq!(
                    chunks.iter().map(Vec::len).sum::<usize>(),
                    *len,
                    "cached chunked degree of {u} drifted"
                );
            }
            let mut degree = 0usize;
            let mut prev: Option<NodeId> = None;
            for v in nbrs.iter() {
                assert!(
                    prev.is_none_or(|p| p < v),
                    "neighbor sequence of {u} not sorted/deduplicated"
                );
                prev = Some(v);
                degree += 1;
                assert_ne!(u, v, "self-loop at {u}");
                let back = self
                    .adj
                    .get(v)
                    .unwrap_or_else(|| panic!("dangling neighbor {v} of {u}"));
                assert!(back.contains(u), "asymmetric edge ({u}, {v})");
                count += 1;
            }
            assert_eq!(degree, nbrs.len(), "cached degree of {u} drifted");
            max_seen = max_seen.max(degree);
            assert!(
                self.degree_hist.get(degree).copied().unwrap_or(0) > 0,
                "degree histogram missing degree {degree} of {u}"
            );
        }
        assert_eq!(count % 2, 0, "odd directed-edge count");
        assert_eq!(count / 2, self.edge_count, "edge count drifted");
        assert_eq!(self.max_degree, max_seen, "cached max degree drifted");
        assert_eq!(
            self.degree_hist.iter().sum::<usize>(),
            self.adj.len(),
            "degree histogram mass drifted"
        );
    }

    /// Records a node entering the degree histogram at degree `d`.
    fn enter_degree(&mut self, d: usize) {
        if d >= self.degree_hist.len() {
            self.degree_hist.resize(d + 1, 0);
        }
        self.degree_hist[d] += 1;
        self.max_degree = self.max_degree.max(d);
    }

    /// Records a node leaving the histogram from degree `d`.
    fn leave_degree(&mut self, d: usize) {
        self.degree_hist[d] -= 1;
        while self.max_degree > 0 && self.degree_hist[self.max_degree] == 0 {
            self.max_degree -= 1;
        }
    }

    /// Moves one node from degree `from` to degree `to`.
    ///
    /// Amortized O(1): the downward scan in [`DynGraph::leave_degree`] is
    /// paid for by the increments that raised the maximum.
    fn shift_degree(&mut self, from: usize, to: usize) {
        if from == to {
            return;
        }
        if to >= self.degree_hist.len() {
            self.degree_hist.resize(to + 1, 0);
        }
        self.degree_hist[to] += 1;
        self.max_degree = self.max_degree.max(to);
        self.leave_degree(from);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn triangle() -> (DynGraph, Vec<NodeId>) {
        let (mut g, ids) = DynGraph::with_nodes(3);
        g.insert_edge(ids[0], ids[1]).unwrap();
        g.insert_edge(ids[1], ids[2]).unwrap();
        g.insert_edge(ids[2], ids[0]).unwrap();
        (g, ids)
    }

    #[test]
    fn fresh_graph_is_empty() {
        let g = DynGraph::new();
        assert!(g.is_empty());
        assert_eq!(g.node_count(), 0);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.max_degree(), 0);
    }

    #[test]
    fn add_and_remove_nodes() {
        let mut g = DynGraph::new();
        let a = g.add_node();
        let b = g.add_node();
        assert!(g.has_node(a) && g.has_node(b));
        let nbrs = g.remove_node(a).unwrap();
        assert!(nbrs.is_empty());
        assert!(!g.has_node(a));
        assert_eq!(g.remove_node(a), Err(GraphError::MissingNode(a)));
        g.assert_consistent();
    }

    #[test]
    fn ids_are_never_reused() {
        let mut g = DynGraph::new();
        let a = g.add_node();
        g.remove_node(a).unwrap();
        let b = g.add_node();
        assert_ne!(a, b);
    }

    #[test]
    fn edge_insertion_and_errors() {
        let (mut g, ids) = DynGraph::with_nodes(2);
        let (a, b) = (ids[0], ids[1]);
        g.insert_edge(a, b).unwrap();
        assert_eq!(g.insert_edge(a, b), Err(GraphError::DuplicateEdge(a, b)));
        assert_eq!(g.insert_edge(b, a), Err(GraphError::DuplicateEdge(b, a)));
        assert_eq!(g.insert_edge(a, a), Err(GraphError::SelfLoop(a)));
        assert_eq!(
            g.insert_edge(a, NodeId(99)),
            Err(GraphError::MissingNode(NodeId(99)))
        );
        assert!(g.has_edge(b, a), "edges are undirected");
        g.assert_consistent();
    }

    #[test]
    fn edge_removal_and_errors() {
        let (mut g, ids) = DynGraph::with_nodes(3);
        let (a, b, c) = (ids[0], ids[1], ids[2]);
        g.insert_edge(a, b).unwrap();
        g.remove_edge(b, a).unwrap();
        assert!(!g.has_edge(a, b));
        assert_eq!(g.remove_edge(a, b), Err(GraphError::MissingEdge(a, b)));
        assert_eq!(g.remove_edge(a, c), Err(GraphError::MissingEdge(a, c)));
        assert_eq!(
            g.remove_edge(NodeId(42), a),
            Err(GraphError::MissingNode(NodeId(42)))
        );
        g.assert_consistent();
    }

    #[test]
    fn node_removal_detaches_edges() {
        let (mut g, ids) = triangle();
        let removed_nbrs = g.remove_node(ids[1]).unwrap();
        assert_eq!(removed_nbrs, vec![ids[0], ids[2]]);
        assert_eq!(g.edge_count(), 1);
        assert!(g.has_edge(ids[0], ids[2]));
        assert_eq!(g.degree(ids[0]), Some(1));
        g.assert_consistent();
    }

    #[test]
    fn add_node_with_edges_validates_first() {
        let (mut g, ids) = DynGraph::with_nodes(2);
        let ghost = NodeId(777);
        let before = g.clone();
        assert_eq!(
            g.add_node_with_edges([ids[0], ghost]),
            Err(GraphError::MissingNode(ghost))
        );
        assert_eq!(g, before, "failed insertion must not mutate");
        assert_eq!(
            g.add_node_with_edges([ids[0], ids[0]]),
            Err(GraphError::DuplicateEdge(ids[0], ids[0]))
        );
        let v = g.add_node_with_edges(ids.iter().copied()).unwrap();
        assert_eq!(g.degree(v), Some(2));
        g.assert_consistent();
    }

    #[test]
    fn edges_iterator_reports_each_edge_once() {
        let (g, ids) = triangle();
        let edges: Vec<EdgeKey> = g.edges().collect();
        assert_eq!(edges.len(), 3);
        assert!(edges.contains(&EdgeKey::new(ids[0], ids[2])));
    }

    #[test]
    fn degree_and_max_degree() {
        let (mut g, ids) = DynGraph::with_nodes(4);
        for &other in &ids[1..] {
            g.insert_edge(ids[0], other).unwrap();
        }
        assert_eq!(g.max_degree(), 3);
        assert_eq!(g.degree(ids[0]), Some(3));
        assert_eq!(g.degree(NodeId(1234)), None);
    }

    #[test]
    fn edge_key_canonicalizes() {
        let k = EdgeKey::new(NodeId(9), NodeId(3));
        assert_eq!(k.endpoints(), (NodeId(3), NodeId(9)));
        assert_eq!(k.other(NodeId(3)), Some(NodeId(9)));
        assert_eq!(k.other(NodeId(9)), Some(NodeId(3)));
        assert_eq!(k.other(NodeId(5)), None);
        assert!(k.contains(NodeId(9)));
        assert!(!k.contains(NodeId(5)));
    }

    #[test]
    #[should_panic(expected = "self-loop")]
    fn edge_key_rejects_self_loop() {
        let _ = EdgeKey::new(NodeId(1), NodeId(1));
    }

    #[test]
    fn cached_max_degree_tracks_churn() {
        let (mut g, ids) = DynGraph::with_nodes(6);
        assert_eq!(g.max_degree(), 0);
        for &other in &ids[1..] {
            g.insert_edge(ids[0], other).unwrap();
        }
        assert_eq!(g.max_degree(), 5);
        // Deleting the hub must walk the cached maximum back down.
        g.remove_node(ids[0]).unwrap();
        assert_eq!(g.max_degree(), 0);
        g.insert_edge(ids[1], ids[2]).unwrap();
        g.insert_edge(ids[2], ids[3]).unwrap();
        assert_eq!(g.max_degree(), 2);
        g.remove_edge(ids[2], ids[3]).unwrap();
        assert_eq!(g.max_degree(), 1);
        g.assert_consistent();
    }

    #[test]
    fn dense_layout_survives_long_churn() {
        // Interleave node/edge insertions and deletions so vacant slots,
        // the spare free list, and the degree histogram all get exercised.
        let mut g = DynGraph::new();
        let mut live: Vec<NodeId> = Vec::new();
        for round in 0..200u64 {
            if round % 3 == 0 && live.len() > 4 {
                let v = live.remove((round as usize * 7) % live.len());
                g.remove_node(v).unwrap();
            } else {
                let peers: Vec<NodeId> = live.iter().copied().take((round as usize) % 4).collect();
                let v = g.add_node_with_edges(peers).unwrap();
                live.push(v);
            }
            if round % 17 == 0 {
                g.assert_consistent();
            }
        }
        g.assert_consistent();
        assert_eq!(g.node_count(), live.len());
    }

    #[test]
    fn neighbor_chunks_are_sorted_views() {
        let (mut g, ids) = DynGraph::with_nodes(4);
        g.insert_edge(ids[2], ids[0]).unwrap();
        g.insert_edge(ids[2], ids[3]).unwrap();
        g.insert_edge(ids[2], ids[1]).unwrap();
        let chunks: Vec<&[NodeId]> = g.neighbor_chunks(ids[2]).unwrap().collect();
        assert_eq!(chunks, vec![&[ids[0], ids[1], ids[3]][..]]);
        assert!(g.neighbor_chunks(NodeId(99)).is_err());
    }

    #[test]
    fn hub_adjacency_promotes_to_chunks_and_stays_equivalent() {
        // Degree crosses CHUNK_PROMOTE: the hub's list must chunk, keep
        // every query/iteration surface identical, and survive removal
        // churn back down to the flat shape.
        let n = CHUNK_PROMOTE + 200;
        let (mut g, ids) = DynGraph::with_nodes(n + 1);
        let hub = ids[n];
        // Insert in a scrambled order so mid-chunk inserts happen.
        let mut order: Vec<usize> = (0..n).collect();
        order.sort_by_key(|i| (i * 2_654_435_761) % n);
        for &i in &order {
            g.insert_edge(hub, ids[i]).unwrap();
        }
        assert_eq!(g.degree(hub), Some(n));
        g.assert_consistent();
        // Ascending iteration across chunk boundaries.
        let nbrs = g.neighbors_vec(hub).unwrap();
        assert_eq!(nbrs, ids[..n].to_vec());
        let concat: Vec<NodeId> = g.neighbor_chunks(hub).unwrap().flatten().copied().collect();
        assert_eq!(concat, nbrs, "chunk concatenation is the iteration");
        let chunk_count = g.neighbor_chunks(hub).unwrap().count();
        assert!(chunk_count > 1, "hub should be chunked");
        assert!(g.has_edge(hub, ids[0]) && g.has_edge(hub, ids[n - 1]));
        assert!(!g.has_edge(hub, hub));
        // Remove most edges: chunks drain, merge away, and the list
        // eventually reverts to flat without losing consistency.
        for &i in order.iter().take(n - 3) {
            g.remove_edge(ids[i], hub).unwrap();
        }
        assert_eq!(g.degree(hub), Some(3));
        g.assert_consistent();
        // A chunked and a flat realization of the same neighbor set
        // compare equal: equality is logical content.
        let (mut flat_g, fids) = DynGraph::with_nodes(CHUNK_PROMOTE + 1);
        let (mut chunked_g, cids) = DynGraph::with_nodes(CHUNK_PROMOTE + 1);
        assert_eq!(fids, cids);
        let center = fids[0];
        for &leaf in &fids[1..CHUNK_PROMOTE] {
            flat_g.insert_edge(center, leaf).unwrap();
        }
        for &leaf in fids[1..].iter() {
            chunked_g.insert_edge(center, leaf).unwrap();
        }
        chunked_g.remove_edge(center, fids[CHUNK_PROMOTE]).unwrap();
        assert_eq!(flat_g, chunked_g, "chunk layout is not graph identity");
    }

    #[test]
    fn hub_node_removal_recycles_chunk_allocations() {
        let n = CHUNK_PROMOTE + 50;
        let (mut g, ids) = DynGraph::with_nodes(n + 1);
        let hub = ids[n];
        for &leaf in &ids[..n] {
            g.insert_edge(hub, leaf).unwrap();
        }
        let nbrs = g.remove_node(hub).unwrap();
        assert_eq!(nbrs, ids[..n].to_vec());
        assert_eq!(g.edge_count(), 0);
        g.assert_consistent();
    }

    #[test]
    fn pre_sized_graph_does_not_regrow() {
        let mut g = DynGraph::with_node_capacity(500);
        for _ in 0..500 {
            g.add_node();
        }
        assert_eq!(g.regrows(), 0, "bootstrap stayed within the reservation");
        g.add_node();
        // 501 nodes against a 500-slot reservation: one realloc.
        assert!(g.regrows() >= 1);
        g.reserve_nodes(2000);
        let before = g.regrows();
        for _ in 0..1400 {
            g.add_node();
        }
        assert_eq!(g.regrows(), before, "reserve_nodes covered the growth");
    }

    #[test]
    fn from_adjacency_round_trips_with_holes() {
        // Build a churned graph (deleted node => id hole), serialize its
        // parts, reconstruct, and compare for full equality.
        let (mut g, ids) = DynGraph::with_nodes(5);
        g.insert_edge(ids[0], ids[1]).unwrap();
        g.insert_edge(ids[1], ids[2]).unwrap();
        g.insert_edge(ids[3], ids[4]).unwrap();
        g.remove_node(ids[2]).unwrap();
        let nodes: Vec<NodeId> = g.nodes().collect();
        let edges: Vec<(NodeId, NodeId)> = g.edges().map(EdgeKey::endpoints).collect();
        let rebuilt = DynGraph::from_adjacency(g.peek_next_id(), &nodes, &edges).unwrap();
        assert_eq!(rebuilt, g);
        assert_eq!(rebuilt.peek_next_id(), g.peek_next_id());
        assert_eq!(rebuilt.max_degree(), g.max_degree());
        rebuilt.assert_consistent();
    }

    #[test]
    fn from_adjacency_rejects_malformed_parts() {
        let a = NodeId(0);
        let b = NodeId(1);
        assert_eq!(
            DynGraph::from_adjacency(NodeId(1), &[a, b], &[]),
            Err(GraphError::MissingNode(b)),
            "ids at or above the watermark were never allocated"
        );
        assert_eq!(
            DynGraph::from_adjacency(NodeId(2), &[a, a], &[]),
            Err(GraphError::DuplicateEdge(a, a)),
            "repeated node id"
        );
        assert_eq!(
            DynGraph::from_adjacency(NodeId(2), &[a, b], &[(a, b), (b, a)]),
            Err(GraphError::DuplicateEdge(b, a)),
            "repeated edge"
        );
        assert_eq!(
            DynGraph::from_adjacency(NodeId(2), &[a], &[(a, b)]),
            Err(GraphError::MissingNode(b)),
            "edge endpoint must be a listed node"
        );
    }

    #[test]
    fn neighbors_vec_errors_on_missing() {
        let g = DynGraph::new();
        assert_eq!(
            g.neighbors_vec(NodeId(0)),
            Err(GraphError::MissingNode(NodeId(0)))
        );
    }
}
