//! Dense node-indexed storage: the containers behind every per-node table
//! in the workspace.
//!
//! [`NodeId`]s are slot indices: the graph assigns them monotonically, so a
//! `NodeId` doubles as an index into flat arrays. [`NodeMap`] and
//! [`NodeSet`] exploit this to replace `BTreeMap<NodeId, T>` /
//! `BTreeSet<NodeId>` with O(1) direct-indexed accesses — the difference
//! between a pointer-chasing tree walk and a single cache line on the
//! engine's settle loop.
//!
//! Deleted nodes leave *vacant* slots. Slots are **not** recycled for new
//! nodes, by design: the paper's dynamic model requires a node that leaves
//! and later rejoins to be a fresh node with fresh randomness (history
//! independence, Section 5), so identifiers — and hence slots — are never
//! reused. Containers therefore grow with the total number of nodes ever
//! inserted; the graph keeps a free list of the *allocations* (neighbor
//! vectors) vacated by deletions and recycles those instead.
//!
//! Iteration order over both containers is ascending `NodeId`, matching the
//! ordered-map containers they replaced, so all replay-determinism
//! guarantees are preserved.

use std::fmt;
use std::ops::{Index, IndexMut};

use crate::NodeId;

#[inline]
fn slot(id: NodeId) -> usize {
    usize::try_from(id.index()).expect("node index fits in usize")
}

/// A map from [`NodeId`] to `T`, backed by a flat slot vector.
///
/// Semantically a drop-in replacement for `BTreeMap<NodeId, T>` over
/// graph-assigned identifiers: O(1) `get`/`insert`/`remove`, iteration in
/// ascending identifier order. Vacant slots (deleted or never-assigned
/// nodes) cost one `Option` discriminant each.
///
/// Equality compares *contents* — two maps holding the same entries are
/// equal even if their slot vectors trail off differently.
///
/// # Example
///
/// ```
/// use dmis_graph::{NodeId, NodeMap};
///
/// let mut m: NodeMap<&str> = NodeMap::new();
/// m.insert(NodeId(2), "two");
/// m.insert(NodeId(0), "zero");
/// assert_eq!(m.get(NodeId(2)), Some(&"two"));
/// assert_eq!(m.len(), 2);
/// let keys: Vec<_> = m.keys().collect();
/// assert_eq!(keys, vec![NodeId(0), NodeId(2)]);
/// ```
#[derive(Clone)]
pub struct NodeMap<T> {
    slots: Vec<Option<T>>,
    len: usize,
    /// Times an insert-driven slot growth had to reallocate the backing
    /// vector. Stays 0 for the lifetime of a map pre-sized past every id
    /// it will ever see — the scale tier's no-regrow bootstrap contract.
    regrows: u64,
}

impl<T> Default for NodeMap<T> {
    fn default() -> Self {
        NodeMap {
            slots: Vec::new(),
            len: 0,
            regrows: 0,
        }
    }
}

impl<T> NodeMap<T> {
    /// Creates an empty map.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty map with room for identifiers below `n` without
    /// reallocation.
    #[must_use]
    pub fn with_capacity(n: usize) -> Self {
        NodeMap {
            slots: Vec::with_capacity(n),
            len: 0,
            regrows: 0,
        }
    }

    /// Ensures identifiers below `n` can be inserted without the slot
    /// vector reallocating (and hence without counting a regrow).
    pub fn reserve_slots(&mut self, n: usize) {
        if n > self.slots.capacity() {
            self.slots.reserve(n - self.slots.len());
        }
    }

    /// Times an insert had to *reallocate* the slot vector to reach its
    /// id. Growth within a prior reservation is not a regrow.
    #[must_use]
    pub fn regrows(&self) -> u64 {
        self.regrows
    }

    /// Number of present entries.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if no entry is present.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns `true` if `id` has an entry.
    #[must_use]
    pub fn contains(&self, id: NodeId) -> bool {
        self.slots.get(slot(id)).is_some_and(Option::is_some)
    }

    /// Returns a reference to the value of `id`, if present.
    #[must_use]
    pub fn get(&self, id: NodeId) -> Option<&T> {
        self.slots.get(slot(id)).and_then(Option::as_ref)
    }

    /// Returns a mutable reference to the value of `id`, if present.
    #[must_use]
    pub fn get_mut(&mut self, id: NodeId) -> Option<&mut T> {
        self.slots.get_mut(slot(id)).and_then(Option::as_mut)
    }

    /// Inserts a value for `id`, returning the previous value if any.
    pub fn insert(&mut self, id: NodeId, value: T) -> Option<T> {
        let i = slot(id);
        if i >= self.slots.len() {
            self.regrows += u64::from(i + 1 > self.slots.capacity());
            self.slots.resize_with(i + 1, || None);
        }
        let prev = self.slots[i].replace(value);
        if prev.is_none() {
            self.len += 1;
        }
        prev
    }

    /// Removes and returns the value of `id`, leaving its slot vacant.
    pub fn remove(&mut self, id: NodeId) -> Option<T> {
        let removed = self.slots.get_mut(slot(id)).and_then(Option::take);
        if removed.is_some() {
            self.len -= 1;
        }
        removed
    }

    /// Removes all entries, keeping the allocation.
    pub fn clear(&mut self) {
        self.slots.clear();
        self.len = 0;
    }

    /// Iterates over `(id, &value)` pairs in ascending identifier order.
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &T)> + '_ {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, v)| Some((NodeId(i as u64), v.as_ref()?)))
    }

    /// Iterates over `(id, &mut value)` pairs in ascending identifier
    /// order.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = (NodeId, &mut T)> + '_ {
        self.slots
            .iter_mut()
            .enumerate()
            .filter_map(|(i, v)| Some((NodeId(i as u64), v.as_mut()?)))
    }

    /// Iterates over present identifiers in ascending order.
    pub fn keys(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.iter().map(|(id, _)| id)
    }

    /// Iterates over present values in ascending identifier order.
    pub fn values(&self) -> impl Iterator<Item = &T> + '_ {
        self.iter().map(|(_, v)| v)
    }
}

impl<T> Index<NodeId> for NodeMap<T> {
    type Output = T;

    fn index(&self, id: NodeId) -> &T {
        self.get(id)
            .unwrap_or_else(|| panic!("no entry for node {id}"))
    }
}

impl<T> IndexMut<NodeId> for NodeMap<T> {
    fn index_mut(&mut self, id: NodeId) -> &mut T {
        self.get_mut(id)
            .unwrap_or_else(|| panic!("no entry for node {id}"))
    }
}

impl<T: PartialEq> PartialEq for NodeMap<T> {
    fn eq(&self, other: &Self) -> bool {
        self.len == other.len && self.iter().zip(other.iter()).all(|(a, b)| a == b)
    }
}

impl<T: Eq> Eq for NodeMap<T> {}

impl<T: fmt::Debug> fmt::Debug for NodeMap<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_map().entries(self.iter()).finish()
    }
}

impl<T> FromIterator<(NodeId, T)> for NodeMap<T> {
    fn from_iter<I: IntoIterator<Item = (NodeId, T)>>(iter: I) -> Self {
        let mut map = NodeMap::new();
        for (id, v) in iter {
            map.insert(id, v);
        }
        map
    }
}

impl<T> Extend<(NodeId, T)> for NodeMap<T> {
    fn extend<I: IntoIterator<Item = (NodeId, T)>>(&mut self, iter: I) {
        for (id, v) in iter {
            self.insert(id, v);
        }
    }
}

/// A set of [`NodeId`]s, backed by a bit vector.
///
/// Semantically a drop-in replacement for `BTreeSet<NodeId>` over
/// graph-assigned identifiers: O(1) `insert`/`remove`/`contains`, one bit
/// per identifier in the live range, iteration in ascending order via word
/// scans.
///
/// # Example
///
/// ```
/// use dmis_graph::{NodeId, NodeSet};
///
/// let mut s = NodeSet::new();
/// assert!(s.insert(NodeId(70)));
/// assert!(s.insert(NodeId(3)));
/// assert!(!s.insert(NodeId(3)), "already present");
/// assert!(s.contains(NodeId(70)));
/// let v: Vec<_> = s.iter().collect();
/// assert_eq!(v, vec![NodeId(3), NodeId(70)]);
/// ```
#[derive(Clone, Default)]
pub struct NodeSet {
    words: Vec<u64>,
    len: usize,
    /// Times an insert-driven word growth had to reallocate the backing
    /// vector (see [`NodeMap::regrows`]).
    regrows: u64,
}

impl NodeSet {
    /// Creates an empty set.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty set with room for identifiers below `n` without
    /// reallocation.
    #[must_use]
    pub fn with_capacity(n: usize) -> Self {
        NodeSet {
            words: Vec::with_capacity(n.div_ceil(64)),
            len: 0,
            regrows: 0,
        }
    }

    /// Ensures identifiers below `n` can be inserted without the word
    /// vector reallocating (and hence without counting a regrow).
    pub fn reserve_nodes(&mut self, n: usize) {
        let words = n.div_ceil(64);
        if words > self.words.capacity() {
            self.words.reserve(words - self.words.len());
        }
    }

    /// Times an insert had to *reallocate* the word vector to reach its
    /// id. Growth within a prior reservation is not a regrow.
    #[must_use]
    pub fn regrows(&self) -> u64 {
        self.regrows
    }

    /// Number of members — O(1), maintained incrementally by every
    /// mutating operation (single-bit edits adjust by the flip, word
    /// kernels popcount only the touched words).
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Recounts the membership by popcounting every backing word — the
    /// O(words) ground truth the cached [`Self::len`] is asserted against
    /// in the engines' consistency checks.
    #[must_use]
    pub fn popcount(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }

    /// Returns `true` if the set has no members.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns `true` if `id` is a member.
    #[must_use]
    pub fn contains(&self, id: NodeId) -> bool {
        let i = slot(id);
        self.words
            .get(i / 64)
            .is_some_and(|w| w >> (i % 64) & 1 == 1)
    }

    /// Adds `id`; returns `true` if it was not already a member.
    pub fn insert(&mut self, id: NodeId) -> bool {
        let i = slot(id);
        let (word, bit) = (i / 64, 1u64 << (i % 64));
        if word >= self.words.len() {
            self.regrows += u64::from(word + 1 > self.words.capacity());
            self.words.resize(word + 1, 0);
        }
        let fresh = self.words[word] & bit == 0;
        self.words[word] |= bit;
        self.len += usize::from(fresh);
        fresh
    }

    /// Removes `id`; returns `true` if it was a member.
    pub fn remove(&mut self, id: NodeId) -> bool {
        let i = slot(id);
        let (word, bit) = (i / 64, 1u64 << (i % 64));
        match self.words.get_mut(word) {
            Some(w) if *w & bit != 0 => {
                *w &= !bit;
                self.len -= 1;
                true
            }
            _ => false,
        }
    }

    /// Removes all members, keeping the allocation.
    pub fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
        self.len = 0;
    }

    /// Iterates over members in ascending order.
    pub fn iter(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            std::iter::successors((w != 0).then_some(w), |&rem| {
                let next = rem & (rem - 1);
                (next != 0).then_some(next)
            })
            .map(move |rem| NodeId((wi * 64 + rem.trailing_zeros() as usize) as u64))
        })
    }

    /// The raw 64-bit words backing the set: bit `i % 64` of word `i / 64`
    /// is set iff `NodeId(i)` is a member. Trailing words may be zero.
    ///
    /// This is the escape hatch for word-parallel kernels that want to
    /// combine several sets without going through per-bit accessors.
    #[must_use]
    pub fn words(&self) -> &[u64] {
        &self.words
    }

    /// In-place union: `self ← self ∪ other`, whole words at a time.
    ///
    /// Cost is O(words of `other`) regardless of how many members change;
    /// the cardinality is maintained by popcounting only the touched words.
    pub fn union_with(&mut self, other: &NodeSet) {
        if other.words.len() > self.words.len() {
            self.regrows += u64::from(other.words.len() > self.words.capacity());
            self.words.resize(other.words.len(), 0);
        }
        for (a, &b) in self.words.iter_mut().zip(&other.words) {
            let grown = b & !*a;
            if grown != 0 {
                *a |= b;
                self.len += grown.count_ones() as usize;
            }
        }
    }

    /// In-place intersection: `self ← self ∩ other`, whole words at a time.
    pub fn intersect_with(&mut self, other: &NodeSet) {
        for (wi, a) in self.words.iter_mut().enumerate() {
            let b = other.words.get(wi).copied().unwrap_or(0);
            let lost = *a & !b;
            if lost != 0 {
                *a &= b;
                self.len -= lost.count_ones() as usize;
            }
        }
    }

    /// In-place difference: `self ← self \ other`, whole words at a time.
    pub fn difference_with(&mut self, other: &NodeSet) {
        for (a, &b) in self.words.iter_mut().zip(&other.words) {
            let lost = *a & b;
            if lost != 0 {
                *a &= !b;
                self.len -= lost.count_ones() as usize;
            }
        }
    }

    /// Inserts every id of an **ascending sorted** slice — the shape of a
    /// [`crate::DynGraph`] neighbor slice — by building each 64-bit chunk
    /// of the implied neighbor mask and OR-ing it in as one word.
    ///
    /// For a high-degree node this replaces `deg` bounds-checked per-bit
    /// inserts with one read-modify-write per *occupied word*, which is
    /// what makes candidate-front unions word-parallel.
    ///
    /// # Panics
    ///
    /// Debug-asserts that `ids` is sorted ascending (duplicates allowed).
    pub fn insert_sorted_slice(&mut self, ids: &[NodeId]) {
        debug_assert!(ids.windows(2).all(|w| w[0] <= w[1]), "slice not sorted");
        let mut i = 0;
        while i < ids.len() {
            let word = slot(ids[i]) / 64;
            let mut mask = 0u64;
            while i < ids.len() && slot(ids[i]) / 64 == word {
                mask |= 1u64 << (slot(ids[i]) % 64);
                i += 1;
            }
            if word >= self.words.len() {
                self.regrows += u64::from(word + 1 > self.words.capacity());
                self.words.resize(word + 1, 0);
            }
            let grown = mask & !self.words[word];
            if grown != 0 {
                self.words[word] |= mask;
                self.len += grown.count_ones() as usize;
            }
        }
    }
}

impl PartialEq for NodeSet {
    fn eq(&self, other: &Self) -> bool {
        self.len == other.len && self.iter().zip(other.iter()).all(|(a, b)| a == b)
    }
}

impl Eq for NodeSet {}

impl fmt::Debug for NodeSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_set().entries(self.iter()).finish()
    }
}

impl FromIterator<NodeId> for NodeSet {
    fn from_iter<I: IntoIterator<Item = NodeId>>(iter: I) -> Self {
        let mut set = NodeSet::new();
        for id in iter {
            set.insert(id);
        }
        set
    }
}

impl Extend<NodeId> for NodeSet {
    fn extend<I: IntoIterator<Item = NodeId>>(&mut self, iter: I) {
        for id in iter {
            self.insert(id);
        }
    }
}

/// A two-level bitset min-queue over a dense *rank* space — the
/// word-parallel replacement for a `BinaryHeap` whose keys are a fixed
/// permutation of a dense id space.
///
/// The pending set lives in leaf words (bit `r % 64` of `words[r / 64]`);
/// a summary level keeps one bit per non-zero leaf word (bit `w % 64` of
/// `summary[w / 64]`), so [`Self::pop_min`] finds the minimum pending
/// rank with two `trailing_zeros` instructions once the scan cursor sits
/// on a non-empty summary word. [`Self::insert`] touches exactly one word
/// per level and can only *lower* the cursor, and every pop either stays
/// on the cursor's summary word or advances it — so a full
/// insert-all/pop-all cycle costs O(inserts + summary words spanned), not
/// O(pending · log pending) like the heap it replaces, and performs **no
/// allocation** once the backing words have grown to the rank span
/// (capacity persists across [`Self::pop_min`] draining the queue).
///
/// Ranks must order-match the priority the caller settles by; producing
/// them from a priority map is the engine crate's job (its `RankIndex`).
/// Unlike a heap, inserting a rank already pending is a no-op (the queue
/// is a *set*), which is exactly the settle loop's dedup semantics.
///
/// # Example
///
/// ```
/// use dmis_graph::RankFront;
///
/// let mut front = RankFront::new();
/// front.insert(130);
/// front.insert(7);
/// assert!(!front.insert(7), "already pending");
/// assert_eq!(front.pop_min(), Some(7));
/// front.insert(2); // lower than anything popped so far: cursor rewinds
/// assert_eq!(front.pop_min(), Some(2));
/// assert_eq!(front.pop_min(), Some(130));
/// assert_eq!(front.pop_min(), None);
/// ```
#[derive(Debug, Clone, Default)]
pub struct RankFront {
    /// Leaf level: bit `r % 64` of `words[r / 64]` ⟺ rank `r` pending.
    words: Vec<u64>,
    /// Summary level: bit `w % 64` of `summary[w / 64]` ⟺ `words[w] ≠ 0`.
    summary: Vec<u64>,
    /// Lowest summary-word index that may hold a set bit. Monotone during
    /// a drain; rewound by inserts below it.
    cursor: usize,
    /// Number of pending ranks.
    len: usize,
    /// Times an insert-driven word growth had to reallocate either level
    /// (see [`NodeMap::regrows`]).
    regrows: u64,
}

impl RankFront {
    /// Creates an empty front.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates an empty front with room for ranks below `span` without
    /// reallocation.
    #[must_use]
    pub fn with_capacity(span: usize) -> Self {
        RankFront {
            words: Vec::with_capacity(span.div_ceil(64)),
            summary: Vec::with_capacity(span.div_ceil(64 * 64)),
            cursor: 0,
            len: 0,
            regrows: 0,
        }
    }

    /// Ensures ranks below `span` can be inserted without either level
    /// reallocating (and hence without counting a regrow).
    pub fn reserve(&mut self, span: usize) {
        let words = span.div_ceil(64);
        if words > self.words.capacity() {
            self.words.reserve(words - self.words.len());
        }
        let swords = span.div_ceil(64 * 64);
        if swords > self.summary.capacity() {
            self.summary.reserve(swords - self.summary.len());
        }
    }

    /// Times an insert had to *reallocate* a level's word vector to reach
    /// its rank. Growth within a prior reservation is not a regrow.
    #[must_use]
    pub fn regrows(&self) -> u64 {
        self.regrows
    }

    /// Number of pending ranks.
    #[must_use]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Returns `true` if no rank is pending.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Returns `true` if `rank` is pending.
    #[must_use]
    pub fn contains(&self, rank: usize) -> bool {
        self.words
            .get(rank / 64)
            .is_some_and(|w| w >> (rank % 64) & 1 == 1)
    }

    /// Marks `rank` pending; returns `true` if it was not already.
    pub fn insert(&mut self, rank: usize) -> bool {
        let (word, bit) = (rank / 64, 1u64 << (rank % 64));
        if word >= self.words.len() {
            self.regrows += u64::from(word + 1 > self.words.capacity());
            self.words.resize(word + 1, 0);
        }
        if self.words[word] & bit != 0 {
            return false;
        }
        self.words[word] |= bit;
        let (sword, sbit) = (word / 64, 1u64 << (word % 64));
        if sword >= self.summary.len() {
            self.regrows += u64::from(sword + 1 > self.summary.capacity());
            self.summary.resize(sword + 1, 0);
        }
        self.summary[sword] |= sbit;
        self.cursor = self.cursor.min(sword);
        self.len += 1;
        true
    }

    /// Removes and returns the minimum pending rank, if any.
    pub fn pop_min(&mut self) -> Option<usize> {
        if self.len == 0 {
            return None;
        }
        while self.summary[self.cursor] == 0 {
            self.cursor += 1;
        }
        let sbit = self.summary[self.cursor].trailing_zeros() as usize;
        let word = self.cursor * 64 + sbit;
        let bit = self.words[word].trailing_zeros() as usize;
        self.words[word] &= self.words[word] - 1;
        if self.words[word] == 0 {
            self.summary[self.cursor] &= !(1u64 << sbit);
        }
        self.len -= 1;
        Some(word * 64 + bit)
    }

    /// Removes `rank` if pending; returns `true` if it was.
    pub fn remove(&mut self, rank: usize) -> bool {
        let (word, bit) = (rank / 64, 1u64 << (rank % 64));
        match self.words.get_mut(word) {
            Some(w) if *w & bit != 0 => {
                *w &= !bit;
                if *w == 0 {
                    self.summary[word / 64] &= !(1u64 << (word % 64));
                }
                self.len -= 1;
                true
            }
            _ => false,
        }
    }

    /// Removes all pending ranks, keeping the allocation.
    pub fn clear(&mut self) {
        self.words.iter_mut().for_each(|w| *w = 0);
        self.summary.iter_mut().for_each(|w| *w = 0);
        self.cursor = 0;
        self.len = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_insert_get_remove() {
        let mut m: NodeMap<u32> = NodeMap::new();
        assert!(m.is_empty());
        assert_eq!(m.insert(NodeId(5), 50), None);
        assert_eq!(m.insert(NodeId(5), 55), Some(50));
        assert_eq!(m.len(), 1);
        assert_eq!(m.get(NodeId(5)), Some(&55));
        assert_eq!(m.get(NodeId(4)), None);
        assert_eq!(m.get(NodeId(99)), None, "past the slot vector");
        *m.get_mut(NodeId(5)).unwrap() += 1;
        assert_eq!(m[NodeId(5)], 56);
        assert_eq!(m.remove(NodeId(5)), Some(56));
        assert_eq!(m.remove(NodeId(5)), None);
        assert!(m.is_empty());
    }

    #[test]
    fn map_iterates_in_id_order() {
        let m: NodeMap<char> = [(NodeId(9), 'c'), (NodeId(0), 'a'), (NodeId(4), 'b')]
            .into_iter()
            .collect();
        let pairs: Vec<_> = m.iter().map(|(id, &v)| (id, v)).collect();
        assert_eq!(
            pairs,
            vec![(NodeId(0), 'a'), (NodeId(4), 'b'), (NodeId(9), 'c')]
        );
        assert_eq!(m.values().copied().collect::<String>(), "abc");
    }

    #[test]
    fn map_equality_ignores_trailing_vacancy() {
        let mut a: NodeMap<u8> = NodeMap::new();
        let mut b: NodeMap<u8> = NodeMap::new();
        a.insert(NodeId(1), 7);
        b.insert(NodeId(1), 7);
        b.insert(NodeId(60), 9);
        b.remove(NodeId(60));
        assert_eq!(a, b, "same contents, different slot vectors");
        b.insert(NodeId(2), 7);
        assert_ne!(a, b);
    }

    #[test]
    #[should_panic(expected = "no entry for node n3")]
    fn map_index_panics_on_vacant() {
        let m: NodeMap<u8> = NodeMap::new();
        let _ = m[NodeId(3)];
    }

    #[test]
    fn set_insert_remove_contains() {
        let mut s = NodeSet::new();
        assert!(s.insert(NodeId(0)));
        assert!(s.insert(NodeId(63)));
        assert!(s.insert(NodeId(64)));
        assert!(!s.insert(NodeId(64)));
        assert_eq!(s.len(), 3);
        assert!(s.contains(NodeId(63)));
        assert!(!s.contains(NodeId(62)));
        assert!(!s.contains(NodeId(1000)), "past the word vector");
        assert!(s.remove(NodeId(63)));
        assert!(!s.remove(NodeId(63)));
        assert_eq!(s.len(), 2);
    }

    #[test]
    fn set_iterates_in_ascending_order() {
        let ids = [200u64, 0, 64, 63, 1, 128];
        let s: NodeSet = ids.iter().map(|&i| NodeId(i)).collect();
        let got: Vec<u64> = s.iter().map(NodeId::index).collect();
        assert_eq!(got, vec![0, 1, 63, 64, 128, 200]);
    }

    #[test]
    fn set_equality_ignores_trailing_zero_words() {
        let mut a = NodeSet::new();
        let mut b = NodeSet::new();
        a.insert(NodeId(3));
        b.insert(NodeId(3));
        b.insert(NodeId(500));
        b.remove(NodeId(500));
        assert_eq!(a, b);
        assert_eq!(format!("{a:?}"), "{n3}");
    }

    #[test]
    fn set_word_ops_match_per_bit_reference() {
        let build = |ids: &[u64]| ids.iter().map(|&i| NodeId(i)).collect::<NodeSet>();
        let a_ids = [0u64, 5, 63, 64, 130, 200];
        let b_ids = [5u64, 64, 65, 129, 130, 512];
        let reference = |op: fn(&u64, &[u64]) -> bool| {
            a_ids
                .iter()
                .filter(|i| op(i, &b_ids))
                .copied()
                .collect::<Vec<_>>()
        };

        let mut u = build(&a_ids);
        u.union_with(&build(&b_ids));
        let mut want: Vec<u64> = a_ids.iter().chain(&b_ids).copied().collect();
        want.sort_unstable();
        want.dedup();
        assert_eq!(u.iter().map(NodeId::index).collect::<Vec<_>>(), want);
        assert_eq!(u.len(), want.len(), "popcount len after union");

        let mut i = build(&a_ids);
        i.intersect_with(&build(&b_ids));
        let want = reference(|i, b| b.contains(i));
        assert_eq!(i.iter().map(NodeId::index).collect::<Vec<_>>(), want);
        assert_eq!(i.len(), want.len(), "popcount len after intersect");

        let mut d = build(&a_ids);
        d.difference_with(&build(&b_ids));
        let want = reference(|i, b| !b.contains(i));
        assert_eq!(d.iter().map(NodeId::index).collect::<Vec<_>>(), want);
        assert_eq!(d.len(), want.len(), "popcount len after difference");

        // Asymmetric word lengths: the shorter operand acts as zeros.
        let mut small = build(&[1]);
        small.intersect_with(&build(&[1, 1000]));
        assert_eq!(small.len(), 1);
        let mut small = build(&[1, 1000]);
        small.intersect_with(&build(&[1]));
        assert_eq!(small.iter().collect::<Vec<_>>(), vec![NodeId(1)]);
    }

    #[test]
    fn set_insert_sorted_slice_is_per_bit_equivalent() {
        let ids: Vec<NodeId> = [3u64, 4, 5, 63, 64, 64, 127, 128, 500]
            .iter()
            .map(|&i| NodeId(i))
            .collect();
        let mut batched = NodeSet::new();
        batched.insert(NodeId(4));
        batched.insert(NodeId(700));
        let mut per_bit = batched.clone();
        batched.insert_sorted_slice(&ids);
        per_bit.extend(ids.iter().copied());
        assert_eq!(batched, per_bit);
        assert_eq!(batched.len(), per_bit.len());
        batched.insert_sorted_slice(&[]);
        assert_eq!(batched, per_bit);
    }

    #[test]
    fn set_words_expose_backing_bits() {
        let s: NodeSet = [0u64, 1, 64].iter().map(|&i| NodeId(i)).collect();
        assert_eq!(s.words(), &[0b11, 0b1]);
    }

    #[test]
    fn front_pops_in_ascending_rank_order() {
        let mut front = RankFront::new();
        for r in [4096usize, 0, 63, 64, 65, 4095, 70000] {
            assert!(front.insert(r));
        }
        assert!(!front.insert(63), "insert is idempotent");
        assert_eq!(front.len(), 7);
        assert!(front.contains(4095) && !front.contains(1));
        let mut popped = Vec::new();
        while let Some(r) = front.pop_min() {
            popped.push(r);
        }
        assert_eq!(popped, vec![0, 63, 64, 65, 4095, 4096, 70000]);
        assert!(front.is_empty());
        assert_eq!(front.pop_min(), None);
    }

    #[test]
    fn front_cursor_rewinds_on_lower_insert() {
        let mut front = RankFront::new();
        front.insert(10_000);
        assert_eq!(front.pop_min(), Some(10_000));
        // The cursor sits deep in the summary; a low insert must rewind it.
        front.insert(3);
        front.insert(20_000);
        assert_eq!(front.pop_min(), Some(3));
        assert_eq!(front.pop_min(), Some(20_000));
        assert_eq!(front.pop_min(), None);
    }

    #[test]
    fn front_matches_heap_on_random_interleavings() {
        // Settle-loop shape: pushes during a drain are strictly above the
        // last pop, plus arbitrary re-seeding between drains.
        let mut state = 0x9E3779B97F4A7C15u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        let mut front = RankFront::with_capacity(1 << 14);
        let mut heap = std::collections::BinaryHeap::new();
        let mut pending = std::collections::BTreeSet::new();
        for _ in 0..200 {
            for _ in 0..(next() % 8) {
                let r = (next() % (1 << 14)) as usize;
                let fresh = pending.insert(r);
                assert_eq!(front.insert(r), fresh, "insert at {r}");
                if fresh {
                    heap.push(std::cmp::Reverse(r));
                }
            }
            for _ in 0..(next() % 10) {
                let want = heap.pop().map(|std::cmp::Reverse(r)| {
                    assert!(pending.remove(&r), "models agree on membership");
                    r
                });
                assert_eq!(front.pop_min(), want);
            }
            assert_eq!(front.len(), pending.len());
        }
    }

    #[test]
    fn front_remove_and_clear() {
        let mut front = RankFront::new();
        front.insert(5);
        front.insert(900);
        assert!(front.remove(5));
        assert!(!front.remove(5));
        assert!(!front.remove(4000), "past the word vector");
        assert_eq!(front.pop_min(), Some(900));
        front.insert(1);
        front.clear();
        assert!(front.is_empty());
        assert_eq!(front.pop_min(), None);
        front.insert(64);
        assert_eq!(front.pop_min(), Some(64));
    }

    #[test]
    fn popcount_matches_cached_len_through_word_kernels() {
        let mut s: NodeSet = [0u64, 63, 64, 130, 500]
            .iter()
            .map(|&i| NodeId(i))
            .collect();
        assert_eq!(s.popcount(), s.len());
        s.union_with(&[64u64, 65, 1000].iter().map(|&i| NodeId(i)).collect());
        assert_eq!(s.popcount(), s.len());
        s.insert_sorted_slice(&[NodeId(2), NodeId(3), NodeId(2000)]);
        assert_eq!(s.popcount(), s.len());
        s.difference_with(&[63u64, 65].iter().map(|&i| NodeId(i)).collect());
        assert_eq!(s.popcount(), s.len());
        s.remove(NodeId(0));
        assert_eq!(s.popcount(), s.len());
    }

    #[test]
    fn pre_sized_containers_never_regrow() {
        let mut m: NodeMap<u32> = NodeMap::with_capacity(200);
        let mut s = NodeSet::with_capacity(200);
        let mut f = RankFront::with_capacity(200);
        for i in 0..200 {
            m.insert(NodeId(i), 0);
            s.insert(NodeId(i));
            f.insert(i as usize);
        }
        assert_eq!(m.regrows(), 0, "map was pre-sized");
        assert_eq!(s.regrows(), 0, "set was pre-sized");
        assert_eq!(f.regrows(), 0, "front was pre-sized");
        // Past the reservation: growth now counts.
        m.insert(NodeId(100_000), 0);
        s.insert(NodeId(100_000));
        f.insert(100_000);
        assert_eq!(m.regrows(), 1);
        assert_eq!(s.regrows(), 1);
        assert!(f.regrows() >= 1, "leaf (and possibly summary) regrew");
        // reserve_* then grow again within the new reservation: no count.
        m.reserve_slots(200_000);
        s.reserve_nodes(200_000);
        f.reserve(200_000);
        m.insert(NodeId(199_999), 0);
        s.insert(NodeId(199_999));
        f.insert(199_999);
        assert_eq!(m.regrows(), 1);
        assert_eq!(s.regrows(), 1);
    }

    #[test]
    fn set_clear_keeps_allocation_semantics() {
        let mut s: NodeSet = (0..130).map(NodeId).collect();
        assert_eq!(s.len(), 130);
        s.clear();
        assert!(s.is_empty());
        assert!(!s.contains(NodeId(5)));
        assert!(s.insert(NodeId(5)));
    }
}
