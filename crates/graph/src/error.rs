use std::error::Error;
use std::fmt;

use crate::NodeId;

/// Error type for all fallible [`crate::DynGraph`] operations.
///
/// # Example
///
/// ```
/// use dmis_graph::{DynGraph, GraphError, NodeId};
///
/// let mut g = DynGraph::new();
/// let a = g.add_node();
/// let err = g.insert_edge(a, a).unwrap_err();
/// assert_eq!(err, GraphError::SelfLoop(a));
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GraphError {
    /// The referenced node does not exist (never inserted, or deleted).
    MissingNode(NodeId),
    /// The referenced edge does not exist.
    MissingEdge(NodeId, NodeId),
    /// The edge already exists; parallel edges are not representable.
    DuplicateEdge(NodeId, NodeId),
    /// Self-loops are not allowed in the paper's model.
    SelfLoop(NodeId),
    /// A durability sink could not persist a flushed change window
    /// before it was applied (write-ahead logging failed); the window
    /// is consumed but neither logged nor applied.
    PersistFailed,
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::MissingNode(v) => write!(f, "node {v} does not exist"),
            GraphError::MissingEdge(u, v) => write!(f, "edge ({u}, {v}) does not exist"),
            GraphError::DuplicateEdge(u, v) => write!(f, "edge ({u}, {v}) already exists"),
            GraphError::SelfLoop(v) => write!(f, "self-loop at node {v} is not allowed"),
            GraphError::PersistFailed => write!(f, "persisting a flushed change window failed"),
        }
    }
}

impl Error for GraphError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_lowercase_without_punctuation() {
        let msgs = [
            GraphError::MissingNode(NodeId(1)).to_string(),
            GraphError::MissingEdge(NodeId(1), NodeId(2)).to_string(),
            GraphError::DuplicateEdge(NodeId(1), NodeId(2)).to_string(),
            GraphError::SelfLoop(NodeId(1)).to_string(),
            GraphError::PersistFailed.to_string(),
        ];
        for m in msgs {
            assert!(!m.ends_with('.'), "no trailing punctuation: {m}");
            assert!(m.chars().next().unwrap().is_lowercase());
        }
    }

    #[test]
    fn error_trait_object() {
        let e: Box<dyn Error> = Box::new(GraphError::MissingNode(NodeId(3)));
        assert!(e.to_string().contains("n3"));
    }
}
